// Engine shootout: the paper's §IV head-to-head on one cluster size —
// runs TeraSort across 1GigE, 10GigE, IPoIB, Hadoop-A and OSU-IB and
// prints the improvement percentages the paper quotes.
//
//   ./examples/engine_shootout [sort_gb] [nodes]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "workloads/experiment.h"

using namespace hmr;
using namespace hmr::workloads;

int main(int argc, char** argv) {
  const std::uint64_t sort_gb = argc > 1 ? std::atoll(argv[1]) : 8;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;

  const std::vector<EngineSetup> setups = {
      EngineSetup::one_gige(), EngineSetup::ten_gige(), EngineSetup::ipoib(),
      EngineSetup::hadoop_a(), EngineSetup::osu_ib()};

  Table table({"Engine", "Job time (s)", "vs 1GigE", "vs IPoIB"});
  std::vector<double> seconds;
  for (const auto& setup : setups) {
    RunConfig config;
    config.setup = setup;
    config.workload = "terasort";
    config.sort_modeled_bytes = sort_gb * kGiB;
    config.nodes = nodes;
    std::fprintf(stderr, "running %s ...\n", setup.label.c_str());
    seconds.push_back(run_experiment(config).seconds());
  }
  for (size_t i = 0; i < setups.size(); ++i) {
    auto pct = [&](double base) {
      return Table::num((base - seconds[i]) / base * 100.0, 1) + "%";
    };
    table.add_row({setups[i].label, Table::num(seconds[i], 1),
                   pct(seconds[0]), pct(seconds[2])});
  }
  std::printf("TeraSort %lluGB on %d DataNodes (1 HDD each)\n",
              static_cast<unsigned long long>(sort_gb), nodes);
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
