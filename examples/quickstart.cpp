// Quickstart: stand up a simulated 4-node IB cluster, generate 8 GB of
// TeraGen input, run TeraSort under the paper's RDMA shuffle engine, and
// validate the output.
//
//   ./examples/quickstart [engine]     engine: vanilla | osu-ib | hadoop-a
#include <cstdio>
#include <string>

#include "common/units.h"
#include "mapred/types.h"
#include "workloads/experiment.h"

using namespace hmr;
using namespace hmr::workloads;

int main(int argc, char** argv) {
  const std::string engine = argc > 1 ? argv[1] : "osu-ib";

  // 1. Pick a fabric + engine pairing (§IV compares these head to head).
  RunConfig config;
  if (engine == "vanilla") {
    config.setup = EngineSetup::ipoib();
  } else if (engine == "hadoop-a") {
    config.setup = EngineSetup::hadoop_a();
  } else {
    config.setup = EngineSetup::osu_ib();
  }

  // 2. Describe the job: 8 GB TeraSort on 4 DataNodes, one HDD each.
  config.workload = "terasort";
  config.sort_modeled_bytes = 8 * kGiB;
  config.nodes = 4;
  config.disks = 1;
  // The simulation carries 8 MB of real records for the 8 GB of modeled
  // data; correctness is checked on the real bytes, timing on the model.
  config.target_real_bytes = 8 * kMiB;

  std::printf("running 8GB TeraSort with %s ...\n",
              config.setup.label.c_str());
  const RunOutcome outcome = run_experiment(config);

  std::printf("engine          : %s\n", config.setup.label.c_str());
  std::printf("job time        : %.1f s (simulated)\n", outcome.seconds());
  std::printf("maps / reduces  : %d / %d\n", outcome.job.num_maps,
              outcome.job.num_reduces);
  std::printf("shuffled        : %s\n",
              format_bytes(outcome.job.shuffled_modeled_bytes).c_str());
  std::printf("cache hit rate  : %llu hits / %llu misses\n",
              static_cast<unsigned long long>(outcome.job.cache_hits),
              static_cast<unsigned long long>(outcome.job.cache_misses));
  std::printf("TeraValidate    : %s\n", outcome.validated ? "PASS" : "FAIL");
  return outcome.validated ? 0 : 1;
}
