// Multi-tenant scheduling walkthrough: streams the same Poisson trace
// of TeraSort jobs from three users through each scheduling policy —
// FIFO, fair-share (alice weighted 3x), and capacity (alice capped at
// one concurrent job) — and prints how queue wait and job latency
// redistribute across tenants while the work itself stays identical.
//
// See docs/SCHEDULER.md for the scheduling model and policy semantics,
// and docs/CONFIG.md "Multi-tenant scheduling" for the conf keys.
//
//   ./examples/multitenant [jobs]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "common/units.h"
#include "workloads/multitenant.h"

using namespace hmr;
using namespace hmr::workloads;

namespace {

MultiTenantSpec trace_spec(int jobs) {
  MultiTenantSpec spec;
  spec.setup = EngineSetup::osu_ib();
  spec.nodes = 2;
  spec.block_size = 16 * kMiB;
  spec.job_modeled_bytes = 64 * kMiB;
  spec.target_real_bytes = 1 * kMiB;
  spec.num_jobs = jobs;
  spec.seed = 7;
  spec.sched.max_running_jobs = 4;
  spec.sched.arrival_jobs_per_min = 60.0;
  spec.tenants = {{"alice", 2.0}, {"bob", 1.0}, {"carol", 1.0}};
  return spec;
}

MultiTenantOutcome run_policy(MultiTenantSpec spec,
                              mapred::SchedPolicy policy) {
  spec.sched.policy = policy;
  if (policy == mapred::SchedPolicy::kFair) {
    spec.sched.pools["alice"].weight = 3.0;
  }
  if (policy == mapred::SchedPolicy::kCapacity) {
    spec.sched.pools["alice"].quota = 1;
  }
  return run_multitenant(spec);
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 12;
  const MultiTenantSpec spec = trace_spec(jobs);

  Table table({"Policy", "p50 (s)", "p95 (s)", "Makespan (s)",
               "alice avg wait (s)", "bob avg wait (s)"});
  for (const auto policy :
       {mapred::SchedPolicy::kFifo, mapred::SchedPolicy::kFair,
        mapred::SchedPolicy::kCapacity}) {
    std::fprintf(stderr, "%s...\n", mapred::sched_policy_name(policy));
    const auto outcome = run_policy(spec, policy);
    const auto avg_wait = [&](const char* user) {
      auto it = outcome.tenants.find(user);
      if (it == outcome.tenants.end() || it->second.completed == 0) {
        return 0.0;
      }
      return it->second.total_queue_wait / it->second.completed;
    };
    table.add_row({mapred::sched_policy_name(policy),
                   Table::num(outcome.latency.p50, 1),
                   Table::num(outcome.latency.p95, 1),
                   Table::num(outcome.makespan, 1),
                   Table::num(avg_wait("alice"), 1),
                   Table::num(avg_wait("bob"), 1)});
  }
  std::printf(
      "== %d-job Poisson trace (60 jobs/min), three tenants, OSU-IB ==\n",
      jobs);
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "Every run validates byte-identical sorted output; policies only\n"
      "move *when* each tenant's jobs run, never *what* they compute.\n");
  return 0;
}
