// PageRank: an iterative, multi-job MapReduce application on the public
// API — each iteration is a full job whose output becomes the next
// iteration's input, the classic pre-Spark Hadoop pattern. Shows the
// framework is a general engine, and exercises job chaining on the
// RDMA shuffle.
//
//   ./examples/pagerank [engine] [nodes-in-graph] [iterations]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mapred/types.h"
#include "workloads/jobs.h"
#include "workloads/testbed.h"

using namespace hmr;
using namespace hmr::workloads;
using dataplane::KvPair;

namespace {

constexpr double kDamping = 0.85;

Bytes encode_node(double rank, const std::vector<std::uint64_t>& edges) {
  ByteWriter w;
  w.put_double(rank);
  w.put_varint(edges.size());
  for (auto e : edges) w.put_u64(e);
  return w.take();
}

Bytes key_of(std::uint64_t node) {
  ByteWriter w;
  w.put_u64(node);
  return w.take();
}

// Builds the PageRank job for one iteration.
mapred::JobSpec pagerank_job(hdfs::MiniDfs& dfs, const std::string& in,
                             const std::string& out, std::uint64_t n,
                             const std::string& engine) {
  mapred::JobSpec spec;
  spec.name = "pagerank";
  spec.input_files = dfs.list(in + "/");
  spec.output_dir = out;
  spec.conf.set(mapred::kShuffleEngine, engine);
  spec.conf.set_int(mapred::kNumReduces, 8);

  // Map: pass the structure through (tag 'S'), and send each neighbour
  // its rank share (tag 'C').
  spec.map_fn = [](const KvPair& record, const mapred::Emit& emit) {
    ByteReader r(record.value);
    const double rank = r.f64().value();
    const auto degree = r.varint().value();
    KvPair structure;
    structure.key = record.key;
    structure.value.push_back('S');
    structure.value.insert(structure.value.end(), record.value.begin(),
                           record.value.end());
    emit(std::move(structure));
    if (degree == 0) return;
    const double share = rank / double(degree);
    for (std::uint64_t i = 0; i < degree; ++i) {
      const auto neighbor = r.u64().value();
      KvPair contribution;
      ByteWriter kw(&contribution.key);
      kw.put_u64(neighbor);
      contribution.value.push_back('C');
      contribution.value.resize(9);
      std::memcpy(contribution.value.data() + 1, &share, 8);
      emit(std::move(contribution));
    }
  };

  // Reduce: sum contributions, apply damping, re-emit rank + structure.
  spec.reduce_fn = [n](const Bytes& key, const std::vector<Bytes>& values,
                       const mapred::Emit& emit) {
    double sum = 0.0;
    const Bytes* structure = nullptr;
    for (const auto& value : values) {
      if (value.empty()) continue;
      if (value[0] == 'C') {
        double share;
        std::memcpy(&share, value.data() + 1, 8);
        sum += share;
      } else {
        structure = &value;
      }
    }
    if (structure == nullptr) return;  // dangling node with no edges in
    ByteReader r(std::span<const std::uint8_t>(*structure).subspan(1));
    (void)r.f64();  // old rank
    const auto degree = r.varint().value();
    std::vector<std::uint64_t> edges(degree);
    for (auto& e : edges) e = r.u64().value();
    const double rank = (1.0 - kDamping) / double(n) + kDamping * sum;
    KvPair out;
    out.key = key;
    out.value = encode_node(rank, edges);
    emit(std::move(out));
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string engine = argc > 1 ? argv[1] : "osu-ib";
  const std::uint64_t n = argc > 2 ? std::atoll(argv[2]) : 20000;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 5;

  TestbedSpec bed_spec;
  bed_spec.nodes = 4;
  bed_spec.profile = engine == "vanilla" ? net::NetProfile::ipoib_qdr()
                                         : net::NetProfile::verbs_qdr();
  bed_spec.hdfs.block_size = 8 * kMiB;
  Testbed bed(bed_spec);

  // Graph: n nodes, out-degree 2..12, plus a "hub" every 1000 nodes that
  // everyone nearby links to (so the top ranks are predictable-ish).
  Rng rng(7, "graph");
  ByteWriter part;
  int part_id = 0;
  double total_time = 0;
  bed.engine().spawn([](Testbed& bed, std::uint64_t n, Rng& rng,
                        ByteWriter& part, int& part_id) -> sim::Task<> {
    for (std::uint64_t node = 0; node < n; ++node) {
      std::vector<std::uint64_t> edges;
      const int degree = 2 + int(rng.below(11));
      for (int e = 0; e < degree; ++e) edges.push_back(rng.below(n));
      edges.push_back((node / 1000) * 1000);  // local hub
      KvPair record{key_of(node), encode_node(1.0 / double(n), edges)};
      dataplane::encode_kv(record, part);
      if (part.size() > 4 * kMiB || node + 1 == n) {
        char name[32];
        std::snprintf(name, sizeof name, "part-%05d", part_id++);
        const Status st = co_await bed.dfs().write(
            bed.cluster().host(1), std::string("/iter0/") + name,
            part.take());
        HMR_CHECK(st.ok());
      }
    }
  }(bed, n, rng, part, part_id));
  bed.engine().run();

  for (int iter = 0; iter < iterations; ++iter) {
    const std::string in = "/iter" + std::to_string(iter);
    const std::string out = "/iter" + std::to_string(iter + 1);
    auto result =
        bed.run_job(pagerank_job(bed.dfs(), in, out, n, engine));
    total_time += result.elapsed();
    std::fprintf(stderr, "iteration %d: %.1f s simulated\n", iter + 1,
                 result.elapsed());
  }

  // Pull the final ranks, check mass conservation, print the top nodes.
  std::vector<std::pair<double, std::uint64_t>> ranks;
  double mass = 0;
  const std::string final_dir = "/iter" + std::to_string(iterations) + "/";
  for (const auto& file : bed.dfs().list(final_dir)) {
    auto payload = bed.dfs().peek(file).value();
    auto records = dataplane::decode_run(payload).value();
    for (const auto& record : records) {
      ByteReader kr(record.key);
      ByteReader vr(record.value);
      const auto node = kr.u64().value();
      const double rank = vr.f64().value();
      ranks.emplace_back(rank, node);
      mass += rank;
    }
  }
  std::sort(ranks.rbegin(), ranks.rend());

  std::printf("PageRank over %llu nodes, %d iterations (%s): %.1f s total\n",
              static_cast<unsigned long long>(n), iterations, engine.c_str(),
              total_time);
  std::printf("rank mass: %.4f (1.0 = conserved modulo dangling nodes)\n",
              mass);
  std::printf("top nodes (hubs every 1000 expected):\n");
  for (size_t i = 0; i < ranks.size() && i < 5; ++i) {
    std::printf("  node %-8llu rank %.6f\n",
                static_cast<unsigned long long>(ranks[i].second),
                ranks[i].first);
  }
  const bool hubs_on_top =
      !ranks.empty() && ranks[0].second % 1000 == 0;
  return hubs_on_top && mass > 0.5 ? 0 : 1;
}
