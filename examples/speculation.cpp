// Speculative-execution walkthrough: runs the same TeraSort three
// times — healthy cluster, one CPU-degraded node without speculation
// (the straggler dictates the job tail), and the same sick node with
// LATE speculation on (a backup on a healthy host wins the race) —
// and shows the tail recovered with output byte-identical across all
// three runs.
//
// See DESIGN.md §6.5 for the attempt/LATE model, docs/CONFIG.md
// "Compute fault injection" and "Speculative execution (LATE)" for the
// conf keys used here.
//
//   ./examples/speculation [sort_gb]
#include <cstdio>
#include <cstdlib>

#include "common/units.h"
#include "mapred/types.h"
#include "sim/fault.h"
#include "workloads/experiment.h"
#include "workloads/report.h"

using namespace hmr;
using namespace hmr::workloads;

namespace {

RunConfig base_config(std::uint64_t sort_gb) {
  RunConfig config;
  config.setup = EngineSetup::osu_ib();
  config.workload = "terasort";
  config.sort_modeled_bytes = sort_gb * kGiB;
  config.nodes = 4;
  return config;
}

// Host 1's CPU drops to a quarter speed just after the job starts and
// never recovers — the homogeneous-hardware assumption the paper's
// testbed bought with matched Xeons, broken on purpose.
void degrade_host_one(RunConfig& config) {
  auto& extra = config.setup.extra;
  extra.set(sim::kCpuFaultHosts, "1");
  extra.set_double(sim::kCpuFaultAtSec, 1.0);
  extra.set_double(sim::kCpuFaultFactor, 0.25);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t sort_gb = argc > 1 ? std::atoll(argv[1]) : 2;

  std::fprintf(stderr, "healthy run (%llu GB TeraSort, OSU-IB)...\n",
               static_cast<unsigned long long>(sort_gb));
  const RunOutcome healthy = run_experiment(base_config(sort_gb));
  std::printf("=== healthy cluster ===\n%s\n",
              job_report(healthy.job).c_str());

  RunConfig sick = base_config(sort_gb);
  degrade_host_one(sick);
  std::fprintf(stderr, "host 1 at quarter speed, speculation off...\n");
  const RunOutcome straggling = run_experiment(sick);
  std::printf("=== host 1 degraded, no speculation ===\n%s\n",
              job_report(straggling.job).c_str());

  RunConfig rescued = base_config(sort_gb);
  degrade_host_one(rescued);
  auto& extra = rescued.setup.extra;
  extra.set_bool(mapred::kSpeculativeExecution, true);
  extra.set_bool(mapred::kReduceSpeculativeExecution, true);
  std::fprintf(stderr, "same sick host, LATE speculation on...\n");
  const RunOutcome spec = run_experiment(rescued);
  std::printf("=== host 1 degraded, speculation on ===\n%s\n",
              job_report(spec.job).c_str());

  std::printf("speculative attempts / wins / kills: %llu / %llu / %llu\n",
              static_cast<unsigned long long>(spec.job.speculative_attempts),
              static_cast<unsigned long long>(spec.job.speculative_wins),
              static_cast<unsigned long long>(spec.job.speculative_kills));
  std::printf("straggler tail without speculation: +%.1f%%\n",
              100.0 * (straggling.seconds() / healthy.seconds() - 1.0));
  std::printf("tail with speculation:              +%.1f%%\n",
              100.0 * (spec.seconds() / healthy.seconds() - 1.0));

  const bool identical =
      spec.validation.digest.records == healthy.validation.digest.records &&
      spec.validation.digest.checksum == healthy.validation.digest.checksum &&
      straggling.validation.digest.checksum ==
          healthy.validation.digest.checksum;
  std::printf("output identical across all three runs: %s\n",
              identical ? "yes" : "NO — speculation corrupted output!");
  return identical && spec.seconds() < straggling.seconds() ? 0 : 1;
}
