// Tuning walkthrough (§III-C(3), §IV-D): sweeps the RDMA engine's user
// tunables — prefetch cache on/off, packet size, responder pool — on a
// Sort workload over SSDs, printing the effect of each knob.
//
//   ./examples/caching_tuning [sort_gb]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "common/units.h"
#include "mapred/types.h"
#include "workloads/experiment.h"

using namespace hmr;
using namespace hmr::workloads;

namespace {

double run_with(Conf extra, std::uint64_t sort_gb) {
  RunConfig config;
  config.setup = EngineSetup::osu_ib();
  config.setup.extra.merge(extra);
  config.workload = "sort";
  config.sort_modeled_bytes = sort_gb * kGiB;
  config.nodes = 4;
  config.ssd = true;  // the paper's caching study uses SSD data stores
  return run_experiment(config).seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t sort_gb = argc > 1 ? std::atoll(argv[1]) : 8;
  Table table({"Configuration", "Job time (s)"});

  std::fprintf(stderr, "baseline (defaults)...\n");
  const double base = run_with({}, sort_gb);
  table.add_row({"defaults (cache on, 1MB packets, 4 responders)",
                 Table::num(base, 1)});

  {
    std::fprintf(stderr, "caching disabled...\n");
    Conf conf;
    conf.set_bool(mapred::kCachingEnabled, false);
    table.add_row({"mapred.local.caching.enabled=false",
                   Table::num(run_with(conf, sort_gb), 1)});
  }
  for (const char* packet : {"64KB", "4MB"}) {
    std::fprintf(stderr, "packet %s...\n", packet);
    Conf conf;
    conf.set(mapred::kRdmaPacketBytes, packet);
    table.add_row({std::string("mapred.rdma.packet.bytes=") + packet,
                   Table::num(run_with(conf, sort_gb), 1)});
  }
  for (int responders : {1, 16}) {
    std::fprintf(stderr, "%d responders...\n", responders);
    Conf conf;
    conf.set_int(mapred::kResponderThreads, responders);
    table.add_row({"mapred.rdma.responder.threads=" +
                       std::to_string(responders),
                   Table::num(run_with(conf, sort_gb), 1)});
  }
  {
    std::fprintf(stderr, "overlap disabled...\n");
    Conf conf;
    conf.set_bool(mapred::kOverlapReduce, false);
    table.add_row({"mapred.shuffle.overlap.reduce=false",
                   Table::num(run_with(conf, sort_gb), 1)});
  }

  std::printf("Sort %lluGB on 4 DataNodes with SSD, OSU-IB engine\n",
              static_cast<unsigned long long>(sort_gb));
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
