// Fault-injection walkthrough: kills one TaskTracker's shuffle service
// mid-shuffle and shows the RDMA engine recovering — fetch timeouts,
// capped backoff retries, tracker blacklisting, and map re-execution —
// with output byte-identical to the fault-free run.
//
// The paper's design (§III-B) assumes a healthy fabric and defers fault
// handling to future work (§VI); this exercises that extension. See
// DESIGN.md "Fault model and recovery" and docs/CONFIG.md for the knobs.
//
//   ./examples/fault_recovery [sort_gb]
#include <cstdio>
#include <cstdlib>

#include "common/units.h"
#include "mapred/types.h"
#include "sim/fault.h"
#include "workloads/experiment.h"
#include "workloads/report.h"

using namespace hmr;
using namespace hmr::workloads;

namespace {

RunConfig base_config(std::uint64_t sort_gb) {
  RunConfig config;
  config.setup = EngineSetup::osu_ib();
  config.workload = "terasort";
  config.sort_modeled_bytes = sort_gb * kGiB;
  config.nodes = 4;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t sort_gb = argc > 1 ? std::atoll(argv[1]) : 4;

  std::fprintf(stderr, "fault-free run (%llu GB TeraSort, OSU-IB)...\n",
               static_cast<unsigned long long>(sort_gb));
  const RunOutcome clean = run_experiment(base_config(sort_gb));
  std::printf("=== fault-free ===\n%s\n", job_report(clean.job).c_str());

  // Kill host 1's TaskTracker halfway through the clean run's shuffle
  // window: connections still accept, requests are silently swallowed —
  // the copiers only learn of the death through fetch timeouts.
  sim::FaultPlan plan(11);
  const double mid_shuffle =
      clean.job.submit_time +
      0.5 * (clean.job.shuffle_done_time - clean.job.submit_time);
  plan.kill_tracker(1, mid_shuffle);

  RunConfig faulted = base_config(sort_gb);
  faulted.faults = &plan;
  // Production-ish recovery knobs, tightened so the demo converges fast
  // (the defaults in docs/CONFIG.md are sized for hour-long jobs).
  faulted.setup.extra.set_double(mapred::kFetchTimeoutSec, 5.0);
  faulted.setup.extra.set_double(mapred::kFetchBackoffBaseSec, 0.2);
  faulted.setup.extra.set_double(mapred::kFetchBackoffMaxSec, 2.0);
  faulted.setup.extra.set_int(mapred::kBlacklistFailures, 2);

  std::fprintf(stderr, "same job, tracker on host 1 killed at t=%.1fs...\n",
               mid_shuffle);
  const RunOutcome recovered = run_experiment(faulted);
  std::printf("=== tracker killed mid-shuffle ===\n%s\n",
              job_report(recovered.job).c_str());

  const bool identical =
      recovered.validation.digest.records == clean.validation.digest.records &&
      recovered.validation.digest.checksum == clean.validation.digest.checksum;
  std::printf("output checksum identical to fault-free run: %s\n",
              identical ? "yes" : "NO — recovery lost data!");
  std::printf("slowdown from losing 1 of %d trackers mid-shuffle: %.1f%%\n",
              faulted.nodes,
              100.0 * (recovered.seconds() / clean.seconds() - 1.0));
  return identical ? 0 : 1;
}
