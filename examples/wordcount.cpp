// WordCount: a user-defined map/reduce pair on the public API — shows
// that the framework is a general MapReduce, not just a sort harness.
//
//   ./examples/wordcount [engine]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/units.h"
#include "mapred/types.h"
#include "workloads/jobs.h"
#include "workloads/testbed.h"

using namespace hmr;
using namespace hmr::workloads;

int main(int argc, char** argv) {
  const std::string engine = argc > 1 ? argv[1] : "osu-ib";

  TestbedSpec bed_spec;
  bed_spec.nodes = 4;
  bed_spec.profile = engine == "vanilla" ? net::NetProfile::ipoib_qdr()
                                         : net::NetProfile::verbs_qdr();
  bed_spec.hdfs.block_size = 64 * kMiB;
  Testbed bed(bed_spec);

  DataGenSpec gen;
  gen.dir = "/text";
  gen.modeled_total = 2 * kGiB;
  gen.part_modeled = bed_spec.hdfs.block_size;
  gen.scale = 512.0;  // 4 MB of real text
  auto digest = bed.generate("textgen", gen);
  if (!digest.ok()) {
    std::fprintf(stderr, "textgen failed: %s\n",
                 digest.status().to_string().c_str());
    return 1;
  }

  Conf conf;
  conf.set(mapred::kShuffleEngine, engine);
  auto job = wordcount_job(bed.dfs(), "/text", "/counts", conf);
  const auto result = bed.run_job(std::move(job));

  // Collect the counts back out of HDFS and print the top words.
  std::vector<std::pair<std::uint64_t, std::string>> counts;
  for (const auto& part : bed.dfs().list("/counts/")) {
    auto payload = bed.dfs().peek(part).value();
    auto records = dataplane::decode_run(payload).value();
    for (auto& record : records) {
      std::uint64_t count = 0;
      std::memcpy(&count, record.value.data(), 8);
      counts.emplace_back(count,
                          std::string(record.key.begin(), record.key.end()));
    }
  }
  std::sort(counts.rbegin(), counts.rend());

  std::printf("wordcount over %s of text (%s engine): %.1f s simulated\n",
              format_bytes(gen.modeled_total).c_str(), engine.c_str(),
              result.elapsed());
  std::printf("%-12s %s\n", "word", "count");
  for (size_t i = 0; i < counts.size() && i < 10; ++i) {
    std::printf("%-12s %llu\n", counts[i].second.c_str(),
                static_cast<unsigned long long>(counts[i].first));
  }
  return 0;
}
