// Timeline tracing: run a job with the execution tracer attached and
// write a Chrome/Perfetto trace of every map and reduce task — open
// trace.json in ui.perfetto.dev to see the waves, the shuffle overlap,
// and the reduce tail the paper's §III-B4 figure sketches.
//
//   ./examples/trace_job [engine] [out.json]
#include <cstdio>
#include <fstream>
#include <string>

#include "common/units.h"
#include "mapred/types.h"
#include "sim/trace.h"
#include "workloads/jobs.h"
#include "workloads/testbed.h"

using namespace hmr;
using namespace hmr::workloads;

int main(int argc, char** argv) {
  const std::string engine = argc > 1 ? argv[1] : "osu-ib";
  const std::string out_path = argc > 2 ? argv[2] : "trace.json";

  TestbedSpec bed_spec;
  bed_spec.nodes = 4;
  bed_spec.profile = engine == "vanilla" ? net::NetProfile::ipoib_qdr()
                                         : net::NetProfile::verbs_qdr();
  bed_spec.hdfs.block_size = 128 * kMiB;
  Testbed bed(bed_spec);

  DataGenSpec gen;
  gen.dir = "/in";
  gen.modeled_total = 4 * kGiB;
  gen.part_modeled = bed_spec.hdfs.block_size;
  gen.scale = 1024.0;
  if (!bed.generate("teragen", gen).ok()) return 1;

  Conf conf;
  conf.set(mapred::kShuffleEngine, engine);
  sim::Tracer tracer(bed.engine(),
                     std::uint64_t(conf.get_int(
                         mapred::kTraceMaxEvents,
                         std::int64_t(sim::Tracer::kDefaultMaxEvents))));
  bed.engine().set_tracer(&tracer);

  auto result = bed.run_job(terasort_job(bed.dfs(), "/in", "/out", conf));
  bed.engine().set_tracer(nullptr);

  std::ofstream out(out_path);
  out << tracer.to_chrome_json();
  out.close();

  std::printf("4GB TeraSort (%s): %.1f s simulated, %zu trace spans\n",
              engine.c_str(), result.elapsed(), tracer.size());
  if (tracer.dropped_events() > 0) {
    std::printf("trace buffer full: dropped %llu events "
                "(raise %s)\n",
                static_cast<unsigned long long>(tracer.dropped_events()),
                mapred::kTraceMaxEvents);
  }
  std::printf("wrote %s — open it in ui.perfetto.dev or chrome://tracing\n",
              out_path.c_str());
  return 0;
}
