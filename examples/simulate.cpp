// General-purpose CLI driver: run any workload/engine/cluster
// combination and print the job report — the "hadoop jar" of the
// simulated cluster.
//
//   ./examples/simulate --workload terasort --size 20GB --nodes 8
//       --engine osu-ib --disks 2 [--ssd] [--block 256MB]
//       [--set mapred.local.caching.enabled=false ...]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/units.h"
#include "mapred/types.h"
#include "workloads/experiment.h"
#include "workloads/report.h"

using namespace hmr;
using namespace hmr::workloads;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload terasort|sort] [--size <bytes, e.g. "
               "20GB>]\n"
               "          [--nodes N] [--disks N] [--ssd]\n"
               "          [--engine vanilla|osu-ib|hadoop-a]\n"
               "          [--fabric 1gige|10gige|ipoib|verbs]\n"
               "          [--block <bytes>] [--seed N] [--real <bytes>]\n"
               "          [--set key=value ...]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  RunConfig config;
  config.setup = EngineSetup::osu_ib();
  config.workload = "terasort";
  config.sort_modeled_bytes = 8 * kGiB;
  config.nodes = 4;
  std::string engine = "osu-ib";
  std::string fabric;

  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      usage(argv[0]);
      std::exit(2);
    }
    return argv[++i];
  };

  std::vector<std::pair<std::string, std::string>> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workload") {
      config.workload = next_value(i);
    } else if (arg == "--size") {
      auto bytes = parse_bytes(next_value(i));
      if (!bytes.ok()) {
        usage(argv[0]);
        return 2;
      }
      config.sort_modeled_bytes = *bytes;
    } else if (arg == "--nodes") {
      config.nodes = std::atoi(next_value(i));
    } else if (arg == "--disks") {
      config.disks = std::atoi(next_value(i));
    } else if (arg == "--ssd") {
      config.ssd = true;
    } else if (arg == "--engine") {
      engine = next_value(i);
    } else if (arg == "--fabric") {
      fabric = next_value(i);
    } else if (arg == "--block") {
      config.block_size = parse_bytes(next_value(i)).value_or(0);
    } else if (arg == "--seed") {
      config.seed = std::uint64_t(std::atoll(next_value(i)));
    } else if (arg == "--real") {
      config.target_real_bytes =
          parse_bytes(next_value(i)).value_or(config.target_real_bytes);
    } else if (arg == "--set") {
      const std::string kv = next_value(i);
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        usage(argv[0]);
        return 2;
      }
      overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else {
      usage(argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }

  if (engine == "vanilla") {
    config.setup = EngineSetup::ipoib();
  } else if (engine == "hadoop-a") {
    config.setup = EngineSetup::hadoop_a();
  } else if (engine == "osu-ib") {
    config.setup = EngineSetup::osu_ib();
  } else {
    usage(argv[0]);
    return 2;
  }
  if (!fabric.empty()) {
    if (fabric == "1gige") config.setup.profile = net::NetProfile::one_gige();
    else if (fabric == "10gige") config.setup.profile = net::NetProfile::ten_gige();
    else if (fabric == "ipoib") config.setup.profile = net::NetProfile::ipoib_qdr();
    else if (fabric == "verbs") config.setup.profile = net::NetProfile::verbs_qdr();
    else {
      usage(argv[0]);
      return 2;
    }
    config.setup.label = engine + " / " + config.setup.profile.name;
  }
  for (const auto& [key, value] : overrides) {
    config.setup.extra.set(key, value);
  }

  std::fprintf(stderr, "running %s %s on %d nodes (%d %s each), %s...\n",
               format_bytes(config.sort_modeled_bytes).c_str(),
               config.workload.c_str(), config.nodes, config.disks,
               config.ssd ? "SSD" : "HDD", config.setup.label.c_str());
  const RunOutcome outcome = run_experiment(config);
  const auto& job = outcome.job;
  std::fputs(job_report(job).c_str(), stdout);
  std::printf("validation                 %s\n",
              outcome.validated ? "PASS" : "SKIPPED");
  return 0;
}
