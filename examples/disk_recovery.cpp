// Storage-fault walkthrough: runs the same TeraSort three times —
// fault-free, with checksum verification disabled (pricing the CRC
// overhead), and with disks actively failing on half the cluster
// (transient IO errors, silent read/write/cache corruption, a
// disk-full window, a slow disk) — and shows the integrity ladder
// recovering everything with output byte-identical to the fault-free
// run.
//
// See DESIGN.md §6.2 for the fault model and recovery ladders, and
// docs/CONFIG.md "Disk fault injection" for the conf keys used here.
//
//   ./examples/disk_recovery [sort_gb]
#include <cstdio>
#include <cstdlib>

#include "common/units.h"
#include "mapred/types.h"
#include "sim/fault.h"
#include "workloads/experiment.h"
#include "workloads/report.h"

using namespace hmr;
using namespace hmr::workloads;

namespace {

RunConfig base_config(std::uint64_t sort_gb) {
  RunConfig config;
  config.setup = EngineSetup::osu_ib();
  config.workload = "terasort";
  config.sort_modeled_bytes = sort_gb * kGiB;
  config.nodes = 4;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t sort_gb = argc > 1 ? std::atoll(argv[1]) : 4;

  std::fprintf(stderr, "fault-free run (%llu GB TeraSort, OSU-IB)...\n",
               static_cast<unsigned long long>(sort_gb));
  const RunOutcome clean = run_experiment(base_config(sort_gb));
  std::printf("=== fault-free ===\n%s\n", job_report(clean.job).c_str());

  // What does the end-to-end checksumming cost on healthy disks?
  RunConfig unchecked = base_config(sort_gb);
  unchecked.setup.extra.set_bool(mapred::kIntegrityEnabled, false);
  std::fprintf(stderr, "same job, integrity verification off...\n");
  const RunOutcome raw = run_experiment(unchecked);
  std::printf("checksum overhead on healthy disks: %.2f%%\n\n",
              100.0 * (clean.seconds() / raw.seconds() - 1.0));

  // Now break the disks on hosts 1 and 2 (of 4): every fault class at
  // once, via the flat conf keys a harness would use.
  RunConfig faulted = base_config(sort_gb);
  auto& extra = faulted.setup.extra;
  extra.set(sim::kDiskFaultHosts, "1,2");
  extra.set_double(sim::kDiskIoErrorProb, 0.05);
  extra.set_double(sim::kDiskReadCorruptProb, 0.03);
  extra.set_double(sim::kDiskWriteCorruptProb, 0.05);
  extra.set_double(sim::kDiskCacheCorruptProb, 0.1);
  extra.set_double(sim::kDiskFullAtSec, 10.0);
  extra.set_double(sim::kDiskFullDurationSec, 5.0);
  extra.set_double(sim::kDiskSlowAtSec, 20.0);
  extra.set_double(sim::kDiskSlowFactor, 0.5);
  // Recovery knobs tightened so the demo converges fast (defaults are
  // sized for hour-long jobs; see docs/CONFIG.md).
  extra.set_double(mapred::kFetchTimeoutSec, 5.0);
  extra.set_double(mapred::kFetchBackoffBaseSec, 0.2);
  extra.set_double(mapred::kFetchBackoffMaxSec, 2.0);
  extra.set_int(mapred::kBlacklistFailures, 3);

  std::fprintf(stderr, "same job, disks failing on hosts 1 and 2...\n");
  const RunOutcome recovered = run_experiment(faulted);
  std::printf("=== disks failing on 2 of 4 hosts ===\n%s\n",
              job_report(recovered.job).c_str());

  const bool identical =
      recovered.validation.digest.records == clean.validation.digest.records &&
      recovered.validation.digest.checksum == clean.validation.digest.checksum;
  std::printf("output checksum identical to fault-free run: %s\n",
              identical ? "yes" : "NO — recovery lost data!");
  std::printf("slowdown from the failing disks: %.1f%%\n",
              100.0 * (recovered.seconds() / clean.seconds() - 1.0));
  return identical ? 0 : 1;
}
