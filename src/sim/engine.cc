#include "sim/engine.h"

#include <cstdio>

#include "common/logging.h"

namespace hmr::sim {

namespace detail {

void on_detached_done(PromiseBase& promise, void* frame_address) noexcept {
  if (promise.exception) {
    try {
      std::rethrow_exception(promise.exception);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fatal: detached sim task threw: %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "fatal: detached sim task threw\n");
    }
    std::abort();
  }
  Engine* engine = promise.engine;
  HMR_CHECK(engine != nullptr);
  --engine->live_processes_;
  engine->live_detached_.erase(frame_address);
}

}  // namespace detail

Engine::Engine(std::uint64_t seed, EventQueue::Impl queue_impl)
    : queue_(queue_impl), seed_(seed) {
  Logger::instance().set_time_source([this] { return now_; });
}

Engine::~Engine() {
  Logger::instance().clear_time_source();
  shutting_down_ = true;
  // Destroy still-suspended detached frames. Their locals' destructors may
  // try to schedule wakeups; schedule_at ignores those while shutting down.
  // Destroying one frame can complete (and deregister) others only through
  // scheduling, which is disabled, so a snapshot copy is safe.
  auto leftovers = live_detached_;
  for (void* address : leftovers) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

void Engine::schedule_at(Time at, std::coroutine_handle<> h) {
  if (shutting_down_) return;
  HMR_CHECK_MSG(at >= now_, "scheduling into the past");
  queue_.push(now_, EventQueue::Event{at, next_seq_++, h});
}

void Engine::spawn(Task<> task) {
  auto handle = task.release();
  HMR_CHECK_MSG(handle, "spawning an empty task");
  auto& promise = handle.promise();
  promise.detached = true;
  promise.engine = this;
  ++live_processes_;
  live_detached_.insert(handle.address());
  schedule_now(handle);
}

bool Engine::step() {
  if (queue_.empty()) return false;
  if (max_events_ != 0 && events_dispatched_ >= max_events_) {
    // Runaway valve: stop dispatching and let run()/run_until() return
    // with overrun() set, leaving the queue intact for inspection. The
    // caller decides whether that is fatal.
    overrun_ = true;
    return false;
  }
  EventQueue::Event event = queue_.pop();
  HMR_CHECK(event.at >= now_);
  now_ = event.at;
  ++events_dispatched_;
  event.handle.resume();
  return true;
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.next_at() <= deadline) {
    if (!step()) break;
  }
  // Don't jump time past still-queued events after an overrun stop.
  if (!overrun_ && now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace hmr::sim
