#include "sim/engine.h"

#include <cstdio>
#include <map>

#include "common/logging.h"
#include "sim/trace.h"

namespace hmr::sim {

namespace detail {

void on_detached_done(PromiseBase& promise, void* frame_address) noexcept {
  if (promise.exception) {
    try {
      std::rethrow_exception(promise.exception);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fatal: detached sim task threw: %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "fatal: detached sim task threw\n");
    }
    std::abort();
  }
  Engine* engine = promise.engine;
  HMR_CHECK(engine != nullptr);
  --engine->live_processes_;
  engine->live_detached_.erase(frame_address);
}

}  // namespace detail

Engine::Engine(std::uint64_t seed, EventQueue::Impl queue_impl)
    : queue_(queue_impl), seed_(seed) {
  Logger::instance().set_time_source([this] { return now_; });
}

Engine::~Engine() {
  Logger::instance().clear_time_source();
  shutting_down_ = true;
  // Destroy still-suspended detached frames. Their locals' destructors may
  // try to schedule wakeups; schedule_at ignores those while shutting down.
  // Destroying one frame can complete (and deregister) others only through
  // scheduling, which is disabled, so a snapshot copy is safe.
  auto leftovers = live_detached_;
  for (void* address : leftovers) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

void Engine::schedule_at(Time at, std::coroutine_handle<> h) {
  if (shutting_down()) return;
  HMR_CHECK_MSG(at >= now_, "scheduling into the past");
  queue_.push(now_, EventQueue::Event{at, next_seq_++, h});
}

void Engine::schedule_work(ParallelWork& work) {
  // Mirrors schedule_at's shutdown behaviour: a parallel() awaited
  // during teardown never resumes; the frame is reclaimed with the rest
  // of the detached set.
  if (shutting_down()) return;
  work.seq = next_seq_;
  queue_.push(now_,
              EventQueue::Event{now_, next_seq_++, work.continuation, &work});
}

void Engine::set_parallel_workers(int workers) {
  HMR_CHECK_MSG(workers >= 1, "sim.parallel.workers must be >= 1");
  if (workers == parallel_workers_) return;
  parallel_workers_ = workers;
  // Drop a mismatched pool; the right-sized one is built lazily on the
  // next multi-chain batch (serial runs never spawn threads at all).
  pool_.reset();
}

void Engine::spawn(Task<> task) {
  auto handle = task.release();
  HMR_CHECK_MSG(handle, "spawning an empty task");
  auto& promise = handle.promise();
  promise.detached = true;
  promise.engine = this;
  ++live_processes_;
  live_detached_.insert(handle.address());
  schedule_now(handle);
}

bool Engine::step() {
  if (queue_.empty()) return false;
  if (max_events_ != 0 && events_dispatched_ >= max_events_) {
    // Runaway valve: stop dispatching and let run()/run_until() return
    // with overrun() set, leaving the queue intact for inspection. The
    // caller decides whether that is fatal.
    overrun_ = true;
    return false;
  }
  EventQueue::Event event = queue_.pop();
  HMR_CHECK(event.at >= now_);
  now_ = event.at;
  ++events_dispatched_;
  if (event.work == nullptr) {
    event.handle.resume();
  } else {
    dispatch_parallel_batch(event.work);
  }
  return true;
}

void Engine::dispatch_parallel_batch(ParallelWork* first) {
  batch_.clear();
  batch_.push_back(first);
  // Extend with the contiguous run of work events at the same timestamp;
  // pops come out in seq order, so batch_ is ordered by construction.
  // Stopping at the first plain (or later) event preserves the global
  // (timestamp, seq) resume order: nothing a work continuation schedules
  // can precede the rest of the batch (new events get larger seqs), and
  // a plain event interleaved between work events simply splits the run.
  // The max-events valve counts each batched event exactly as the serial
  // pop loop would, so an overrun trips at the identical event at every
  // worker count.
  while (!queue_.empty() &&
         !(max_events_ != 0 && events_dispatched_ >= max_events_)) {
    const EventQueue::Event& next = queue_.front();
    if (next.at != now_ || next.work == nullptr) break;
    batch_.push_back(queue_.pop().work);
    ++events_dispatched_;
  }

  // Partition by owning host, chains in first-appearance order and seq
  // order within a chain. This accounting runs identically at every
  // worker count, so the engine.parallel.* counters — and with them the
  // serialized metrics snapshot — never depend on the pool width.
  std::map<int, std::size_t> chain_of_host;
  std::size_t used = 0;
  for (ParallelWork* work : batch_) {
    const auto [it, inserted] = chain_of_host.try_emplace(work->host, used);
    if (inserted) {
      if (used == chains_.size()) chains_.emplace_back();
      chains_[used].clear();
      ++used;
    }
    chains_[it->second].push_back(work);
  }
  chains_.resize(used);
  if (parallel_batches_ == nullptr) {
    parallel_batches_ = &metrics_.counter("engine.parallel.batches");
    parallel_batch_events_ = &metrics_.counter("engine.parallel.batch_events");
    parallel_chains_ = &metrics_.counter("engine.parallel.chains");
  }
  parallel_batches_->add();
  parallel_batch_events_->add(std::int64_t(batch_.size()));
  parallel_chains_->add(std::int64_t(used));

  if (parallel_workers_ <= 1) {
    // Serial reference semantics: fn, effects drain, and continuation
    // run back-to-back per event in seq order — indistinguishable from
    // an engine with no batching at all, because a work continuation
    // cannot advance time and everything it schedules sorts after the
    // remaining batch events.
    for (ParallelWork* work : batch_) {
      work->execute();
      drain_and_resume(*work);
    }
    return;
  }
  if (used > 1) {
    if (pool_ == nullptr || pool_->workers() != parallel_workers_) {
      pool_ = std::make_unique<WorkerPool>(parallel_workers_);
    }
    pool_->run(chains_);
  } else {
    // One chain parallelizes with nothing; run it here and skip the
    // pool entirely (same fns-then-drains order as the pooled path).
    for (ParallelWork* work : batch_) work->execute();
  }
  for (ParallelWork* work : batch_) drain_and_resume(*work);
}

void Engine::drain_and_resume(ParallelWork& work) {
  ParallelEffects& effects = work.effects;
  for (const auto& [counter, delta] : effects.counters_) counter->add(delta);
  if (!effects.traces_.empty()) {
    if (Tracer* t = tracer()) {
      for (const auto& s : effects.traces_) {
        if (s.instant) {
          t->instant(s.track, s.category, s.name);
        } else {
          t->complete(s.track, s.category, s.name, s.start);
        }
      }
    }
  }
  for (const auto& fn : effects.deferred_) fn();
  // resume() may complete the awaiting task and free its frame — and
  // `work` lives in that frame — so it is strictly the last touch.
  const std::coroutine_handle<> continuation = work.continuation;
  continuation.resume();
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.next_at() <= deadline) {
    if (!step()) break;
  }
  // Don't jump time past still-queued events after an overrun stop.
  if (!overrun_ && now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace hmr::sim
