#include "sim/sync.h"

namespace hmr::sim {

void Event::set() {
  if (set_) return;
  set_ = true;
  // Wake everyone queued right now; tasks that re-check after reset() must
  // re-await. Waiters added during wakeup (same timestamp) see set_ == true
  // in await_ready and never park.
  while (!waiters_.empty()) {
    engine_.schedule_now(waiters_.front());
    waiters_.pop_front();
  }
}

Resource::Resource(Engine& engine, std::int64_t capacity, std::string name)
    : engine_(engine),
      capacity_(capacity),
      available_(capacity),
      name_(std::move(name)) {
  HMR_CHECK_MSG(capacity > 0, "resource capacity must be positive: " + name_);
}

void Resource::release(std::int64_t amount) {
  available_ += amount;
  HMR_CHECK_MSG(available_ <= capacity_, "resource over-release: " + name_);
  grant_waiters();
}

void Resource::grant_waiters() {
  // Strict FIFO: only the head may be admitted. The debit happens here, on
  // the waiter's behalf, so units stay booked while the wakeup travels
  // through the engine queue.
  while (!waiters_.empty() && available_ >= waiters_.front().amount) {
    Waiter waiter = waiters_.front();
    waiters_.pop_front();
    available_ -= waiter.amount;
    engine_.schedule_now(waiter.handle);
  }
}

Task<ResourceHold> hold(Resource& resource, std::int64_t amount) {
  co_await resource.acquire(amount);
  co_return ResourceHold{resource, amount};
}

}  // namespace hmr::sim
