// Pending-event container for sim::Engine.
//
// Ordering contract (see DESIGN.md §"Event-queue ordering"): events are
// dispatched strictly by (timestamp, insertion sequence). The sequence
// number is unique per engine, so the key is a total order and every
// correct priority queue yields the identical dispatch sequence —
// determinism holds by construction, not by container internals.
//
// The default implementation is a 4-ary implicit min-heap plus a
// "now-FIFO" fast path: an event scheduled at exactly the current time
// bypasses the heap into a plain FIFO, which costs O(1) instead of
// O(log n) against however many future timers are pending. This is the
// dominant pattern in the simulator — schedule_now() wakeups from
// channels, resources, and completed transfers all land at now().
//
// Why the FIFO preserves the ordering contract: an entry is admitted
// only when its timestamp equals now(), and the engine never advances
// now() while the FIFO is non-empty (a FIFO entry is always a minimal
// pending event, so it dispatches before any strictly-later heap
// event). Same-time events split across FIFO and heap are tie-broken by
// sequence number at pop(), exactly as a single heap would.
//
// kLegacyBinaryHeap reproduces the pre-optimization
// std::priority_queue<Event> (binary heap, no FIFO). It exists so the
// simfuzz oracle can replay a scenario on both implementations and
// assert byte-identical results, and so bench/micro_engine can report
// the speedup ratio against the committed baseline.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hmr::sim {

using Time = double;

struct ParallelWork;  // sim/parallel.h

class EventQueue {
 public:
  enum class Impl {
    kFourAry,          // 4-ary min-heap + now-FIFO (default)
    kLegacyBinaryHeap  // pre-optimization std::priority_queue equivalent
  };

  struct Event {
    Time at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    // Non-null marks a *work event*: the engine executes work->fn
    // (possibly on a worker thread, batched with same-timestamp work
    // events) before resuming `handle`. Plain events leave it null.
    ParallelWork* work = nullptr;
  };

  explicit EventQueue(Impl impl = Impl::kFourAry) : impl_(impl) {}

  bool empty() const { return heap_.empty() && fifo_head_ == fifo_.size(); }
  std::size_t size() const {
    return heap_.size() + (fifo_.size() - fifo_head_);
  }

  // Timestamp of the next event to dispatch; queue must be non-empty.
  Time next_at() const { return front().at; }

  // The next event to dispatch, without removing it; queue must be
  // non-empty. Used by the engine to extend a parallel batch with the
  // contiguous run of same-timestamp work events.
  const Event& front() const {
    if (fifo_head_ == fifo_.size()) return heap_.front();
    if (heap_.empty() || fifo_front_wins()) return fifo_[fifo_head_];
    return heap_.front();
  }

  // `now` is the engine's current time: events landing exactly at `now`
  // take the FIFO fast path (4-ary impl only).
  void push(Time now, Event event) {
    if (impl_ == Impl::kFourAry && event.at == now) {
      fifo_.push_back(event);
      return;
    }
    if (impl_ == Impl::kFourAry) {
      push_heap4(event);
    } else {
      push_heap2(event);
    }
  }

  // Removes and returns the minimal (at, seq) event; queue must be
  // non-empty.
  Event pop() {
    if (fifo_head_ != fifo_.size() && (heap_.empty() || fifo_front_wins())) {
      Event out = fifo_[fifo_head_++];
      if (fifo_head_ == fifo_.size()) {
        fifo_.clear();
        fifo_head_ = 0;
      }
      return out;
    }
    return impl_ == Impl::kFourAry ? pop_heap4() : pop_heap2();
  }

  Impl impl() const { return impl_; }

 private:
  static bool less(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  bool fifo_front_wins() const {
    return less(fifo_[fifo_head_], heap_.front());
  }

  // 4-ary implicit heap: children of i are 4i+1..4i+4. Shallower than a
  // binary heap (log4 vs log2 levels) and the four-child scan is
  // cache-friendly: one level's children share a cache line pair.
  // Insertion uses a hole, not swaps.
  void push_heap4(const Event& event) {
    std::size_t i = heap_.size();
    heap_.push_back(event);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!less(event, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = event;
  }

  Event pop_heap4() {
    Event out = heap_.front();
    const Event last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n != 0) {
      std::size_t i = 0;
      while (true) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (less(heap_[c], heap_[best])) best = c;
        }
        if (!less(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return out;
  }

  // Binary heap via the same sift routines std::priority_queue uses.
  void push_heap2(const Event& event) {
    std::size_t i = heap_.size();
    heap_.push_back(event);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 1;
      if (!less(event, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = event;
  }

  Event pop_heap2() {
    Event out = heap_.front();
    const Event last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n != 0) {
      std::size_t i = 0;
      while (true) {
        const std::size_t left = (i << 1) + 1;
        if (left >= n) break;
        std::size_t best = left;
        const std::size_t right = left + 1;
        if (right < n && less(heap_[right], heap_[left])) best = right;
        if (!less(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return out;
  }

  Impl impl_;
  std::vector<Event> heap_;
  // FIFO of events at exactly now(); head index instead of pop_front so
  // drained prefixes cost nothing until the vector resets.
  std::vector<Event> fifo_;
  std::size_t fifo_head_ = 0;
};

}  // namespace hmr::sim
