// Conservative parallel event execution for sim::Engine.
//
// The engine stays deterministic by construction: parallelism is opt-in
// per call site through `co_await engine.parallel(host, fn)`, which
// turns `fn` into a *work event* at the current simulated time. When the
// engine reaches a contiguous run of same-timestamp work events it
// partitions them by owning host into independent chains, executes the
// chains on a fixed-size worker pool (sim.parallel.workers, default 1 =
// the serial engine), and then applies each work item's staged side
// effects and resumes its continuation serially in (timestamp, seq)
// order. See DESIGN.md §6.4 for the full determinism argument.
//
// The contract a parallel fn must obey (the host-independence
// assumption):
//  - deterministic: output depends only on its closure,
//  - confined: reads only its closure, host-local state owned by the
//    awaiting task, and immutable shared state; never engine, queue,
//    metrics, tracer, RNG streams, or another host's state,
//  - effects-staged: anything that must reach shared state goes through
//    the ParallelEffects buffer, which the engine drains on its own
//    thread in deterministic order,
//  - non-blocking: no simulated waiting (fns are plain functions, not
//    coroutines) and no real blocking either.
// Violations are caught, not trusted away: the always-on simfuzz
// `engine.parallel_identity` oracle replays every scenario serially and
// demands byte-identical results, and the TSan CI job runs the stress
// suite with real worker threads.
//
// This header is the only place in the tree allowed to use raw threads
// and locks (hmr-lint rule `thread-discipline`); everything else goes
// through Engine::parallel().
#pragma once

#include <condition_variable>   // lint:ignore(thread-discipline): WorkerPool owns all cross-thread state
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>                // lint:ignore(thread-discipline): WorkerPool owns all cross-thread state
#include <string>
#include <thread>               // lint:ignore(thread-discipline): WorkerPool owns all cross-thread state
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "sim/event_queue.h"

namespace hmr::sim {

class Engine;

// Per-work staging buffer for side effects produced inside a parallel
// fn. Each ParallelWork owns exactly one, so fns append without
// synchronization; the engine drains buffers on its own thread in
// (timestamp, seq) order, which makes the merged effect stream identical
// to what a serial execution would have produced.
class ParallelEffects {
 public:
  // Stages `counter += delta`. The handle must outlive the drain (all
  // MetricsRegistry entries are node-stable, so any registered counter
  // qualifies).
  void add(Counter& counter, std::int64_t delta = 1) {
    counters_.emplace_back(&counter, delta);
  }
  // Stages a zero-duration tracer marker at the batch timestamp.
  void instant(std::string track, std::string category, std::string name) {
    traces_.push_back(StagedTrace{std::move(track), std::move(category),
                                  std::move(name), 0.0, /*instant=*/true});
  }
  // Stages a complete tracer span from `start` to the batch timestamp.
  void complete(std::string track, std::string category, std::string name,
                Time start) {
    traces_.push_back(StagedTrace{std::move(track), std::move(category),
                                  std::move(name), start, /*instant=*/false});
  }
  // Stages an arbitrary engine-thread callback (e.g. scheduling new
  // events); runs during the drain, before the continuation resumes.
  void defer(std::function<void()> fn) { deferred_.push_back(std::move(fn)); }

  bool empty() const {
    return counters_.empty() && traces_.empty() && deferred_.empty();
  }

 private:
  friend class Engine;
  struct StagedTrace {
    std::string track;
    std::string category;
    std::string name;
    Time start;
    bool instant;
  };
  std::vector<std::pair<Counter*, std::int64_t>> counters_;
  std::vector<StagedTrace> traces_;
  std::vector<std::function<void()>> deferred_;
};

// One scheduled unit of parallel work. Lives inside the awaiting
// coroutine's frame (it *is* the awaiter), so it stays valid exactly as
// long as the task is suspended on it; the engine must not touch it
// after resuming the continuation.
struct ParallelWork {
  int host = -1;
  std::uint64_t seq = 0;
  std::function<void(ParallelEffects&)> fn;
  std::coroutine_handle<> continuation;
  ParallelEffects effects;
  std::exception_ptr error;

  // Runs on a worker (or the engine thread at workers=1). Exceptions are
  // captured and rethrown from await_resume on the engine thread, so a
  // throwing fn fails the awaiting task, not the process.
  void execute() {
    try {
      fn(effects);
    } catch (...) {
      error = std::current_exception();
    }
  }
};

// Fixed-size pool executing host chains of a single batch. The engine
// thread participates as worker 0, so a pool of size N spawns N-1
// helper threads; run() is a full barrier — every chain has finished
// (with a happens-before edge to the caller) when it returns.
//
// All cross-thread state in the simulator lives here, behind one mutex;
// fns themselves run unsynchronized because chains share nothing (the
// host partition is the isolation boundary).
class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return workers_; }

  // Executes every chain; items within a chain run in order on one
  // worker. Blocks until all chains complete.
  void run(const std::vector<std::vector<ParallelWork*>>& chains);

 private:
  void worker_loop();
  // Claims and runs one chain; false when none remain to claim.
  bool run_one_chain();

  const int workers_;
  // lint:ignore(thread-discipline): WorkerPool is the sanctioned owner of raw threads/locks
  std::mutex mu_;
  // lint:ignore(thread-discipline): batch start signal, guarded by mu_
  std::condition_variable start_cv_;
  // lint:ignore(thread-discipline): batch completion signal, guarded by mu_
  std::condition_variable done_cv_;
  // Guarded by mu_:
  const std::vector<std::vector<ParallelWork*>>* chains_ = nullptr;
  std::size_t next_chain_ = 0;  // claim ticket for the current batch
  std::size_t done_chains_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  // lint:ignore(thread-discipline): the pool's long-lived helper threads
  std::vector<std::thread> threads_;
};

}  // namespace hmr::sim
