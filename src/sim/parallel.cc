#include "sim/parallel.h"

#include "common/status.h"

namespace hmr::sim {

WorkerPool::WorkerPool(int workers) : workers_(workers) {
  HMR_CHECK_MSG(workers >= 1, "WorkerPool needs at least one worker");
  threads_.reserve(std::size_t(workers - 1));
  for (int i = 0; i < workers - 1; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    // lint:ignore(thread-discipline): WorkerPool shutdown handshake
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  // lint:ignore(thread-discipline): join the pool's own helper threads
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::vector<std::vector<ParallelWork*>>& chains) {
  if (chains.empty()) return;
  {
    // lint:ignore(thread-discipline): publish the batch under the pool lock
    std::lock_guard<std::mutex> lock(mu_);
    chains_ = &chains;
    done_chains_ = 0;
    next_chain_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  // The engine thread is worker 0: it claims chains like everyone else,
  // so a single-chain batch never pays a thread handoff.
  while (run_one_chain()) {
  }
  // lint:ignore(thread-discipline): barrier wait; the release below is the happens-before edge
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_chains_ == chains.size(); });
  // The mutex hand-off above is the happens-before edge: every effect a
  // worker wrote into its chains' staging buffers is visible to the
  // engine thread from here on.
  chains_ = nullptr;
}

bool WorkerPool::run_one_chain() {
  const std::vector<std::vector<ParallelWork*>>* chains = nullptr;
  std::size_t index = 0;
  {
    // Snapshot and claim under one lock: a helper that wakes late (or
    // straddles two batches) either claims a chain of the batch that is
    // genuinely current or sees nothing left — never a stale chain.
    // lint:ignore(thread-discipline): claim ticket must be taken under the pool lock
    std::lock_guard<std::mutex> lock(mu_);
    chains = chains_;
    if (chains == nullptr) return false;
    index = next_chain_;
    if (index >= chains->size()) return false;
    ++next_chain_;
  }
  for (ParallelWork* work : (*chains)[index]) work->execute();
  {
    // lint:ignore(thread-discipline): completion count shared with the barrier wait
    std::lock_guard<std::mutex> lock(mu_);
    if (++done_chains_ == chains->size()) done_cv_.notify_all();
  }
  return true;
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      // lint:ignore(thread-discipline): helper threads sleep on the batch start signal
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    while (run_one_chain()) {
    }
  }
}

}  // namespace hmr::sim
