// Coroutine task type for the discrete-event engine.
//
// A sim process is an ordinary function returning sim::Task<T>. Tasks are
// lazy (nothing runs until awaited or spawned) and support two lifetimes:
//
//  * structured: `T r = co_await child(...);` — the parent owns the frame
//    and the child resumes the parent on completion (symmetric transfer);
//  * detached:   `engine.spawn(child(...));` — the engine takes ownership
//    and the frame self-destroys at final suspend.
//
// Coroutines are created, resumed, and destroyed on the engine thread
// only — worker threads (sim/parallel.h) run plain closures, never
// coroutine frames — so the promise machinery needs no atomics.
// Determinism comes from all cross-task wakeups being routed through
// the engine's ordered event queue.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hmr::sim {

class Engine;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  bool detached = false;
  Engine* engine = nullptr;  // set on spawn, for live-process accounting

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

void on_detached_done(PromiseBase& promise, void* frame_address) noexcept;

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& promise = h.promise();
    if (promise.detached) {
      on_detached_done(promise, h.address());
      h.destroy();
      return std::noop_coroutine();
    }
    if (promise.continuation) return promise.continuation;
    return std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> result;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    template <typename U>
    void return_value(U&& value) {
      result.emplace(std::forward<U>(value));
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  Handle release() { return std::exchange(handle_, {}); }

  // Awaitable interface: starts the child and resumes the awaiter when the
  // child completes.
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  T await_resume() {
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
    HMR_CHECK_MSG(promise.result.has_value(), "task finished without a value");
    return std::move(*promise.result);
  }

 private:
  friend class Engine;
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  Handle release() { return std::exchange(handle_, {}); }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
  }

 private:
  friend class Engine;
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

}  // namespace hmr::sim
