// Discrete-event simulation engine.
//
// Deterministic: the event queue is ordered by (timestamp, insertion
// sequence), so equal-time events dispatch in the order they were
// scheduled, independent of container internals. Simulated time is a
// double in seconds.
//
// Coroutine resumption always happens on the engine thread. The only
// concurrency is conservative parallel execution of *work events*
// (co_await engine.parallel(host, fn), sim/parallel.h): pure compute
// closures batched by timestamp, partitioned by host, executed on a
// worker pool, with side effects staged and drained in (timestamp, seq)
// order — byte-identical to the serial engine by construction
// (DESIGN.md §6.4).
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/event_queue.h"
#include "sim/parallel.h"
#include "sim/task.h"

namespace hmr::sim {

class Tracer;

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1,
                  EventQueue::Impl queue_impl = EventQueue::Impl::kFourAry);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedules a bare coroutine resume. `at` must be >= now().
  void schedule_at(Time at, std::coroutine_handle<> h);
  void schedule_after(Time dt, std::coroutine_handle<> h) {
    schedule_at(now_ + dt, h);
  }
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  // Awaitable: suspends the current task for dt simulated seconds.
  auto delay(Time dt) {
    struct Awaiter {
      Engine& engine;
      Time at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule_at(at, h);
      }
      void await_resume() const noexcept {}
    };
    HMR_CHECK_MSG(dt >= 0.0, "negative delay");
    return Awaiter{*this, now_ + dt};
  }

  // Detaches the task: the engine starts it at the current time and the
  // frame self-destroys on completion.
  void spawn(Task<> task);

  // Awaitable: runs `fn` as a work event at the current simulated time,
  // attributed to `host` for batch partitioning. Same-timestamp work
  // events on distinct hosts may execute concurrently on the worker
  // pool; fns must obey the confinement contract in sim/parallel.h and
  // report shared-state effects through the ParallelEffects argument.
  // Consumes zero simulated time. If fn throws, the exception resurfaces
  // here on the engine thread.
  class [[nodiscard]] ParallelAwaiter {
   public:
    ParallelAwaiter(Engine& engine, int host,
                    std::function<void(ParallelEffects&)> fn)
        : engine_(engine) {
      work_.host = host;
      work_.fn = std::move(fn);
    }
    ParallelAwaiter(const ParallelAwaiter&) = delete;
    ParallelAwaiter& operator=(const ParallelAwaiter&) = delete;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      work_.continuation = h;
      engine_.schedule_work(work_);
    }
    void await_resume() {
      if (work_.error) std::rethrow_exception(work_.error);
    }

   private:
    Engine& engine_;
    ParallelWork work_;
  };
  ParallelAwaiter parallel(int host, std::function<void(ParallelEffects&)> fn) {
    return ParallelAwaiter(*this, host, std::move(fn));
  }

  // Worker-pool width for work-event batches; 1 (the default) is the
  // serial engine — fns run inline on the engine thread, interleaved
  // with their continuations exactly as plain events would. Values > 1
  // change only where fn bodies execute in real time, never the
  // simulated outcome. Settable between batches at any point.
  void set_parallel_workers(int workers);
  int parallel_workers() const { return parallel_workers_; }

  // Runs until the event queue drains. Returns the final simulated time.
  Time run();
  // Runs until the queue drains or simulated time would pass `deadline`.
  Time run_until(Time deadline);
  // Dispatches at most one event; returns false if the queue was empty
  // or the max_events valve tripped (see overrun()).
  bool step();

  // Number of spawned processes that have not yet finished. A nonzero
  // value after run() means processes are blocked forever (deadlock or
  // an unclosed channel) — tests assert on this.
  std::int64_t live_processes() const { return live_processes_; }
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  // Safety valve for runaway simulations; 0 disables the limit. When the
  // limit is hit, run()/run_until() return cleanly with overrun() true
  // and the remaining events still queued, so harnesses (simfuzz,
  // benches) can report the overrun as a failure instead of crashing.
  void set_max_events(std::uint64_t max_events) { max_events_ = max_events; }
  bool overrun() const { return overrun_; }
  std::size_t pending_events() const { return queue_.size(); }
  // True once the destructor has started tearing down detached frames;
  // scheduling is disabled and sinks (e.g. the tracer) must not assume
  // engine services beyond now(). Atomic so guards (Tracer::Span) stay
  // valid even when spans die on worker threads.
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  // Optional execution tracer (sim/trace.h); null when tracing is off.
  // Atomic for the same reason as shutting_down(): the Span teardown
  // guard must read a coherent pointer from any thread.
  void set_tracer(Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  Tracer* tracer() const { return tracer_.load(std::memory_order_acquire); }
  // Deterministic per-component stream: Rng(seed, name).
  Rng make_rng(std::string_view stream) const {
    return Rng(seed_, stream);
  }
  std::uint64_t seed() const { return seed_; }

 private:
  friend void detail::on_detached_done(detail::PromiseBase&, void*) noexcept;

  // Enqueues a work event at now(); called from ParallelAwaiter.
  void schedule_work(ParallelWork& work);
  // Collects the contiguous run of same-timestamp work events starting
  // at `first`, partitions by host, executes, drains, resumes.
  void dispatch_parallel_batch(ParallelWork* first);
  // Applies one work item's staged effects in order, then resumes its
  // continuation (after which the work object must not be touched).
  void drain_and_resume(ParallelWork& work);

  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t max_events_ = 0;
  bool overrun_ = false;
  std::int64_t live_processes_ = 0;
  std::uint64_t seed_;
  MetricsRegistry metrics_;
  std::atomic<Tracer*> tracer_{nullptr};
  // Frames of spawned-but-unfinished processes, destroyed at shutdown.
  // Ordered so shutdown teardown iterates deterministically.
  std::set<void*> live_detached_;
  std::atomic<bool> shutting_down_{false};

  // --- parallel work-event state (sim/parallel.h) ---
  int parallel_workers_ = 1;
  std::unique_ptr<WorkerPool> pool_;  // created on first multi-chain batch
  // Reused batch scratch: the events of the current batch in seq order,
  // and their partition into per-host chains.
  std::vector<ParallelWork*> batch_;
  std::vector<std::vector<ParallelWork*>> chains_;
  // Batch accounting handles, registered lazily on the first batch (the
  // identical code path runs at every worker count, so serial and
  // parallel runs register — and count — identically).
  Counter* parallel_batches_ = nullptr;
  Counter* parallel_batch_events_ = nullptr;
  Counter* parallel_chains_ = nullptr;
};

}  // namespace hmr::sim
