// Discrete-event simulation engine.
//
// Single-threaded, deterministic: the event queue is ordered by
// (timestamp, insertion sequence), so equal-time events dispatch in the
// order they were scheduled, independent of container internals.
// Simulated time is a double in seconds.
#pragma once

#include <coroutine>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/event_queue.h"
#include "sim/task.h"

namespace hmr::sim {

class Tracer;

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1,
                  EventQueue::Impl queue_impl = EventQueue::Impl::kFourAry);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedules a bare coroutine resume. `at` must be >= now().
  void schedule_at(Time at, std::coroutine_handle<> h);
  void schedule_after(Time dt, std::coroutine_handle<> h) {
    schedule_at(now_ + dt, h);
  }
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  // Awaitable: suspends the current task for dt simulated seconds.
  auto delay(Time dt) {
    struct Awaiter {
      Engine& engine;
      Time at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule_at(at, h);
      }
      void await_resume() const noexcept {}
    };
    HMR_CHECK_MSG(dt >= 0.0, "negative delay");
    return Awaiter{*this, now_ + dt};
  }

  // Detaches the task: the engine starts it at the current time and the
  // frame self-destroys on completion.
  void spawn(Task<> task);

  // Runs until the event queue drains. Returns the final simulated time.
  Time run();
  // Runs until the queue drains or simulated time would pass `deadline`.
  Time run_until(Time deadline);
  // Dispatches at most one event; returns false if the queue was empty
  // or the max_events valve tripped (see overrun()).
  bool step();

  // Number of spawned processes that have not yet finished. A nonzero
  // value after run() means processes are blocked forever (deadlock or
  // an unclosed channel) — tests assert on this.
  std::int64_t live_processes() const { return live_processes_; }
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  // Safety valve for runaway simulations; 0 disables the limit. When the
  // limit is hit, run()/run_until() return cleanly with overrun() true
  // and the remaining events still queued, so harnesses (simfuzz,
  // benches) can report the overrun as a failure instead of crashing.
  void set_max_events(std::uint64_t max_events) { max_events_ = max_events; }
  bool overrun() const { return overrun_; }
  std::size_t pending_events() const { return queue_.size(); }
  // True once the destructor has started tearing down detached frames;
  // scheduling is disabled and sinks (e.g. the tracer) must not assume
  // engine services beyond now().
  bool shutting_down() const { return shutting_down_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  // Optional execution tracer (sim/trace.h); null when tracing is off.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }
  // Deterministic per-component stream: Rng(seed, name).
  Rng make_rng(std::string_view stream) const {
    return Rng(seed_, stream);
  }
  std::uint64_t seed() const { return seed_; }

 private:
  friend void detail::on_detached_done(detail::PromiseBase&, void*) noexcept;

  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t max_events_ = 0;
  bool overrun_ = false;
  std::int64_t live_processes_ = 0;
  std::uint64_t seed_;
  MetricsRegistry metrics_;
  Tracer* tracer_ = nullptr;
  // Frames of spawned-but-unfinished processes, destroyed at shutdown.
  // Ordered so shutdown teardown iterates deterministically.
  std::set<void*> live_detached_;
  bool shutting_down_ = false;
};

}  // namespace hmr::sim
