// Declarative fault injection for the shuffle path (the paper's §VI
// future work: the design assumes a healthy fabric; this plan lets a
// simulation break it on purpose).
//
// A FaultPlan is pure data plus a seeded RNG stream: higher layers
// (shuffle responders/servlets, net::Cluster) consult it at the moments
// a real fault would bite — serving a DataRequest, mid-job on a NIC.
// Three fault classes:
//
//  * kill_tracker   — from `at` onward the host's shuffle service stops
//                     responding (a hung TaskTracker JVM: connections
//                     still accept, requests are silently swallowed).
//  * drop/stall_responses — each response is independently dropped or
//                     delayed with the given probability (flaky HCA,
//                     overloaded responder pool).
//  * degrade_nic    — at `at` the host's NIC bandwidth is multiplied by
//                     `factor` (cable renegotiation, failed bonding leg).
//
// Queries are deterministic given the seed, so faulty runs replay
// exactly — the recovery tests depend on this.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"

namespace hmr::sim {

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 1) : rng_(seed, "sim.faultplan") {}

  // From time `at`, host_id's shuffle service drops every request.
  void kill_tracker(int host_id, double at) { kills_[host_id] = at; }
  // Each response from host_id is dropped with probability `prob`.
  void drop_responses(int host_id, double prob) {
    response_faults_[host_id].drop_prob = prob;
  }
  // Each response from host_id is delayed `stall_seconds` with
  // probability `prob` before being served.
  void stall_responses(int host_id, double prob, double stall_seconds) {
    auto& fault = response_faults_[host_id];
    fault.stall_prob = prob;
    fault.stall_seconds = stall_seconds;
  }
  // At time `at`, multiply host_id's NIC bandwidth by `factor`.
  void degrade_nic(int host_id, double at, double factor) {
    degrades_.push_back(NicDegrade{host_id, at, factor});
  }

  bool tracker_dead(int host_id, double now) const {
    auto it = kills_.find(host_id);
    return it != kills_.end() && now >= it->second;
  }

  enum class ResponseFate { kDeliver, kDrop, kStall };
  // Rolls the per-response dice for host_id (advances the plan's RNG
  // stream; call once per response). On kStall, *stall_seconds is the
  // delay to apply before serving.
  ResponseFate response_fate(int host_id, double* stall_seconds);

  struct NicDegrade {
    int host_id = -1;
    double at = 0.0;
    double factor = 1.0;
  };
  const std::vector<NicDegrade>& nic_degrades() const { return degrades_; }

 private:
  struct ResponseFault {
    double drop_prob = 0.0;
    double stall_prob = 0.0;
    double stall_seconds = 0.0;
  };

  std::map<int, double> kills_;  // host id -> death time
  std::map<int, ResponseFault> response_faults_;
  std::vector<NicDegrade> degrades_;
  Rng rng_;
};

}  // namespace hmr::sim
