// Declarative fault injection for the shuffle path (the paper's §VI
// future work: the design assumes a healthy fabric; this plan lets a
// simulation break it on purpose).
//
// A FaultPlan is pure data plus a seeded RNG stream: higher layers
// (shuffle responders/servlets, net::Cluster, storage::LocalFS) consult
// it at the moments a real fault would bite — serving a DataRequest,
// mid-job on a NIC, per disk IO. Fault classes:
//
//  * kill_tracker   — from `at` onward the host's shuffle service stops
//                     responding (a hung TaskTracker JVM: connections
//                     still accept, requests are silently swallowed).
//  * drop/stall_responses — each response is independently dropped or
//                     delayed with the given probability (flaky HCA,
//                     overloaded responder pool).
//  * degrade_nic    — at `at` the host's NIC bandwidth is multiplied by
//                     `factor` (cable renegotiation, failed bonding leg);
//                     an optional restore time turns it into a transient
//                     congestion window.
//  * disk_fault     — per-host storage faults (DiskFault below):
//                     transient IO errors, silent bit-flip corruption,
//                     a disk-full window, and slow-disk degrade. Armed
//                     on the host's LocalFS by Cluster::inject_faults.
//  * compute faults — straggler injection (ComputeFaults below):
//                     cpu.degrade multiplies a host's compute speed for
//                     a timer-armed window; task.hang freezes attempt
//                     progress on a host for a bounded window (the
//                     attempt stays alive — the case watchdog timeouts
//                     alone catch late); task.slow_progress multiplies
//                     task compute bandwidth. All windows are bounded or
//                     merely slow, never fatal: every attempt still
//                     completes, so a speculation-disabled replay of the
//                     same plan terminates (the byte-identity oracle
//                     depends on this).
//
// Queries are deterministic given the seed, so faulty runs replay
// exactly — the recovery tests depend on this.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/conf.h"
#include "common/rng.h"
#include "common/status.h"

namespace hmr::sim {

// --- disk fault conf keys (DESIGN.md §6.2, docs/CONFIG.md) --------------
// Flat-key form of a DiskFault, applied to every host id listed in
// `sim.fault.disk.hosts`. Unknown `sim.fault.*` keys are rejected at
// job submission (disk_faults_from_conf) so a typo'd plan cannot
// silently test nothing.
inline constexpr const char* kDiskFaultHosts = "sim.fault.disk.hosts";
inline constexpr const char* kDiskIoErrorProb = "sim.fault.disk.io.error.prob";
inline constexpr const char* kDiskReadCorruptProb =
    "sim.fault.disk.read.corrupt.prob";
inline constexpr const char* kDiskWriteCorruptProb =
    "sim.fault.disk.write.corrupt.prob";
inline constexpr const char* kDiskCacheCorruptProb =
    "sim.fault.disk.cache.corrupt.prob";
inline constexpr const char* kDiskFullAtSec = "sim.fault.disk.full.at.sec";
inline constexpr const char* kDiskFullDurationSec =
    "sim.fault.disk.full.duration.sec";
inline constexpr const char* kDiskSlowAtSec = "sim.fault.disk.slow.at.sec";
inline constexpr const char* kDiskSlowFactor = "sim.fault.disk.slow.factor";

// --- compute fault conf keys (docs/CONFIG.md) ---------------------------
// Flat-key straggler injection, parsed by ComputeFaults::from_conf with
// the same strictness as the disk keys (both parsers share one known-key
// universe, so either accepts the other family's keys and rejects
// anything else under `sim.fault.`).
inline constexpr const char* kCpuFaultHosts = "sim.fault.cpu.hosts";
inline constexpr const char* kCpuFaultAtSec = "sim.fault.cpu.at.sec";
inline constexpr const char* kCpuFaultFactor = "sim.fault.cpu.factor";
inline constexpr const char* kCpuFaultDurationSec =
    "sim.fault.cpu.duration.sec";
inline constexpr const char* kTaskHangHosts = "sim.fault.task.hang.hosts";
inline constexpr const char* kTaskHangAtSec = "sim.fault.task.hang.at.sec";
inline constexpr const char* kTaskHangDurationSec =
    "sim.fault.task.hang.duration.sec";
inline constexpr const char* kTaskSlowHosts = "sim.fault.task.slow.hosts";
inline constexpr const char* kTaskSlowAtSec = "sim.fault.task.slow.at.sec";
inline constexpr const char* kTaskSlowDurationSec =
    "sim.fault.task.slow.duration.sec";
inline constexpr const char* kTaskSlowFactor = "sim.fault.task.slow.factor";

// One host's storage fault profile. Probabilities are per LocalFS
// operation; times are absolute sim seconds (< 0 disables the window).
struct DiskFault {
  double io_error_prob = 0.0;       // timed op fails with Unavailable
  double read_corrupt_prob = 0.0;   // read returns a bit-flipped payload
  double write_corrupt_prob = 0.0;  // write silently stores corrupt bytes
  double cache_corrupt_prob = 0.0;  // cached segment rots before a hit
  double full_at = -1.0;            // writes rejected in
  double full_duration = 0.0;       //   [full_at, full_at + full_duration)
  double slow_at = -1.0;            // from slow_at, disk bandwidth is
  double slow_factor = 1.0;         //   multiplied by slow_factor

  // True when LocalFS must consult the fault per operation (everything
  // except the one-shot slow-disk degrade, which is timer-armed).
  bool any_io_fault() const {
    return io_error_prob > 0 || read_corrupt_prob > 0 ||
           write_corrupt_prob > 0 || cache_corrupt_prob > 0 || full_at >= 0;
  }
};

// Host compute-speed degradation: at `at`, the host's effective CPU
// speed is multiplied by `factor` (< 1 slows every compute() on the
// host — map/reduce functions, merges, protocol charges). When
// `duration` > 0 the original speed is restored at `at + duration`
// (timer-armed by Cluster::inject_faults); otherwise permanent.
struct CpuDegrade {
  int host_id = -1;
  double at = 0.0;
  double factor = 1.0;
  double duration = 0.0;  // <= 0: permanent
};

// Task-level fault window on a host, consulted at attempt progress
// checkpoints (mapred/attempt.h) rather than timer-armed: a kHang
// window freezes the attempt until the window closes (duration must be
// > 0 — a permanent hang would never complete); a kSlow window
// multiplies task compute bandwidth by `factor` (< 1 slows, duration
// <= 0 permanent).
struct TaskFault {
  enum class Kind { kHang, kSlow };
  Kind kind = Kind::kSlow;
  int host_id = -1;
  double at = 0.0;
  double duration = 0.0;
  double factor = 1.0;  // kSlow only
};

// The straggler half of a fault plan. Pure data, no RNG: queries are
// functions of (host, now), so speculation on/off cannot perturb the
// replay of other fault classes.
struct ComputeFaults {
  std::vector<CpuDegrade> cpu;
  std::vector<TaskFault> task;

  bool empty() const { return cpu.empty() && task.empty(); }
  void merge(const ComputeFaults& other);

  // End of the latest hang window active on host_id at `now`, or 0 when
  // the host is not hung (hang windows have duration > 0, so any active
  // window ends strictly after now > 0).
  double hang_until(int host_id, double now) const;
  // Product of the compute-bandwidth factors of every slow window
  // active on host_id at `now`; 1.0 when none.
  double slow_factor(int host_id, double now) const;

  // Parses the flat `sim.fault.cpu.*` / `sim.fault.task.*` keys, with
  // the same strictness contract as disk_faults_from_conf below.
  static Result<ComputeFaults> from_conf(const Conf& conf);
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 1)
      : seed_(seed), rng_(seed, "sim.faultplan") {}

  std::uint64_t seed() const { return seed_; }

  // From time `at`, host_id's shuffle service drops every request.
  void kill_tracker(int host_id, double at) { kills_[host_id] = at; }
  // Each response from host_id is dropped with probability `prob`.
  void drop_responses(int host_id, double prob) {
    response_faults_[host_id].drop_prob = prob;
  }
  // Each response from host_id is delayed `stall_seconds` with
  // probability `prob` before being served.
  void stall_responses(int host_id, double prob, double stall_seconds) {
    auto& fault = response_faults_[host_id];
    fault.stall_prob = prob;
    fault.stall_seconds = stall_seconds;
  }
  // At time `at`, multiply host_id's NIC bandwidth by `factor`. When
  // `restore_at` >= 0, the degradation is undone at that time (a
  // transient congestion window rather than a permanent failure).
  void degrade_nic(int host_id, double at, double factor,
                   double restore_at = -1.0) {
    degrades_.push_back(NicDegrade{host_id, at, factor, restore_at});
  }
  // At time `at`, multiply host_id's compute speed by `factor`; restored
  // after `duration` seconds when duration > 0.
  void degrade_cpu(int host_id, double at, double factor,
                   double duration = 0.0) {
    compute_.cpu.push_back(CpuDegrade{host_id, at, factor, duration});
  }
  // Freeze task-attempt progress on host_id in [at, at + duration).
  void hang_tasks(int host_id, double at, double duration) {
    compute_.task.push_back(
        TaskFault{TaskFault::Kind::kHang, host_id, at, duration, 1.0});
  }
  // Multiply task compute bandwidth on host_id by `factor` in
  // [at, at + duration) (duration <= 0: from `at` onward).
  void slow_tasks(int host_id, double at, double duration, double factor) {
    compute_.task.push_back(
        TaskFault{TaskFault::Kind::kSlow, host_id, at, duration, factor});
  }
  const ComputeFaults& compute_faults() const { return compute_; }
  // Storage faults for host_id (armed on its LocalFS by
  // Cluster::inject_faults; one profile per host, last call wins).
  void disk_fault(int host_id, const DiskFault& fault) {
    disk_faults_[host_id] = fault;
  }
  const std::map<int, DiskFault>& disk_faults() const { return disk_faults_; }

  // Parses the flat `sim.fault.disk.*` keys into per-host DiskFaults.
  // Strict: any key under `sim.fault.` that is not a known disk-fault
  // key, a malformed host list, or an out-of-range value is an
  // InvalidArgument naming the offender — a typo'd fault plan must fail
  // loudly, not silently inject nothing.
  static Result<std::map<int, DiskFault>> disk_faults_from_conf(
      const Conf& conf);

  bool tracker_dead(int host_id, double now) const {
    auto it = kills_.find(host_id);
    return it != kills_.end() && now >= it->second;
  }

  enum class ResponseFate { kDeliver, kDrop, kStall };
  // Rolls the per-response dice for host_id (advances the plan's RNG
  // stream; call once per response). On kStall, *stall_seconds is the
  // delay to apply before serving.
  ResponseFate response_fate(int host_id, double* stall_seconds);

  struct NicDegrade {
    int host_id = -1;
    double at = 0.0;
    double factor = 1.0;
    double restore_at = -1.0;  // < 0: permanent
  };
  const std::vector<NicDegrade>& nic_degrades() const { return degrades_; }

 private:
  struct ResponseFault {
    double drop_prob = 0.0;
    double stall_prob = 0.0;
    double stall_seconds = 0.0;
  };

  std::map<int, double> kills_;  // host id -> death time
  std::map<int, ResponseFault> response_faults_;
  std::vector<NicDegrade> degrades_;
  std::map<int, DiskFault> disk_faults_;
  ComputeFaults compute_;
  std::uint64_t seed_ = 1;
  Rng rng_;
};

}  // namespace hmr::sim
