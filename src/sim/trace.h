// Execution tracing: records named spans of simulated time and exports
// the Chrome/Perfetto trace-event JSON format, so a whole MapReduce job
// can be inspected on a timeline (load trace.json into ui.perfetto.dev
// or chrome://tracing).
//
// Tracing is opt-in per Engine (set_tracer) and zero-cost when off: call
// sites guard with `if (auto* t = engine.tracer())`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.h"

namespace hmr::sim {

class Tracer {
 public:
  // The event buffer would otherwise grow without bound on long
  // simulations; past `max_events` new events are dropped and counted
  // (trace.dropped_events in the engine's metrics). 0 = unbounded.
  // Configurable per job via sim.trace.max.events.
  static constexpr std::uint64_t kDefaultMaxEvents = 1'000'000;

  explicit Tracer(Engine& engine,
                  std::uint64_t max_events = kDefaultMaxEvents)
      : engine_(engine), max_events_(max_events) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // A complete span on `track` (e.g. a host or task lane) from `start`
  // to the current simulated time.
  void complete(std::string_view track, std::string_view category,
                std::string_view name, double start_time) {
    if (at_capacity()) return;
    events_.push_back(Event{std::string(track), std::string(category),
                            std::string(name), start_time,
                            engine_.now(), /*instant=*/false});
  }
  // A zero-duration marker.
  void instant(std::string_view track, std::string_view category,
               std::string_view name) {
    if (at_capacity()) return;
    events_.push_back(Event{std::string(track), std::string(category),
                            std::string(name), engine_.now(), engine_.now(),
                            /*instant=*/true});
  }

  size_t size() const { return events_.size(); }
  std::uint64_t max_events() const { return max_events_; }
  std::uint64_t dropped_events() const { return dropped_events_; }

  // Chrome trace-event JSON ("traceEvents" array form). Tracks become
  // named threads of one process; timestamps are microseconds of
  // simulated time.
  std::string to_chrome_json() const;

  // RAII span helper.
  class Span {
   public:
    Span(Tracer* tracer, std::string track, std::string category,
         std::string name)
        : tracer_(tracer),
          track_(std::move(track)),
          category_(std::move(category)),
          name_(std::move(name)),
          start_(tracer != nullptr ? tracer->engine_.now() : 0.0) {}
    Span(Span&& other) noexcept
        : tracer_(std::exchange(other.tracer_, nullptr)),
          track_(std::move(other.track_)),
          category_(std::move(other.category_)),
          name_(std::move(other.name_)),
          start_(other.start_) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;
    ~Span() {
      if (tracer_ != nullptr) {
        tracer_->complete(track_, category_, name_, start_);
      }
    }

   private:
    Tracer* tracer_;
    std::string track_;
    std::string category_;
    std::string name_;
    double start_;
  };

  Span span(std::string track, std::string category, std::string name) {
    return Span(this, std::move(track), std::move(category), std::move(name));
  }

 private:
  struct Event {
    std::string track;
    std::string category;
    std::string name;
    double start;
    double end;
    bool instant;
  };

  bool at_capacity() {
    if (max_events_ == 0 || events_.size() < max_events_) return false;
    ++dropped_events_;
    engine_.metrics().counter("trace.dropped_events").add();
    return true;
  }

  Engine& engine_;
  std::uint64_t max_events_;
  std::uint64_t dropped_events_ = 0;
  std::vector<Event> events_;
};

// Null-safe RAII helper: no tracer, no cost.
inline Tracer::Span maybe_span(Tracer* tracer, std::string track,
                               std::string category, std::string name) {
  return Tracer::Span(tracer, std::move(track), std::move(category),
                      std::move(name));
}

}  // namespace hmr::sim
