// Execution tracing: records named spans of simulated time and exports
// the Chrome/Perfetto trace-event JSON format, so a whole MapReduce job
// can be inspected on a timeline (load trace.json into ui.perfetto.dev
// or chrome://tracing).
//
// Tracing is opt-in per Engine (set_tracer) and zero-cost when off: call
// sites guard with `if (auto* t = engine.tracer())`.
//
// Track/category/name strings are interned: an event stores three
// 32-bit ids instead of three heap-allocated std::strings, so the
// per-span cost after the first occurrence of a label is three ordered
// map lookups and a 32-byte vector append — no allocation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/engine.h"

namespace hmr::sim {

class Tracer {
 public:
  // The event buffer would otherwise grow without bound on long
  // simulations; past `max_events` new events are dropped and counted
  // (trace.dropped_events in the engine's metrics). 0 = unbounded.
  // Configurable per job via sim.trace.max.events.
  static constexpr std::uint64_t kDefaultMaxEvents = 1'000'000;

  explicit Tracer(Engine& engine,
                  std::uint64_t max_events = kDefaultMaxEvents)
      : engine_(engine),
        max_events_(max_events),
        dropped_metric_(&engine.metrics().counter("trace.dropped_events")) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  // A Tracer must not leave a dangling Engine::tracer() behind: live
  // Spans (suspended in coroutine frames the engine tears down later)
  // check engine->tracer() == their tracer before recording, which is
  // only safe if destruction detaches. See SpanLifetime tests.
  ~Tracer() {
    if (engine_.tracer() == this) engine_.set_tracer(nullptr);
  }

  // A complete span on `track` (e.g. a host or task lane) from `start`
  // to the current simulated time.
  void complete(std::string_view track, std::string_view category,
                std::string_view name, double start_time) {
    if (at_capacity()) return;
    events_.push_back(Event{intern(track), intern(category), intern(name),
                            start_time, engine_.now(), /*instant=*/false});
  }
  // A zero-duration marker.
  void instant(std::string_view track, std::string_view category,
               std::string_view name) {
    if (at_capacity()) return;
    events_.push_back(Event{intern(track), intern(category), intern(name),
                            engine_.now(), engine_.now(),
                            /*instant=*/true});
  }

  size_t size() const { return events_.size(); }
  std::uint64_t max_events() const { return max_events_; }
  std::uint64_t dropped_events() const { return dropped_events_; }
  Engine& engine() const { return engine_; }

  // Chrome trace-event JSON ("traceEvents" array form). Tracks become
  // named threads of one process; timestamps are microseconds of
  // simulated time.
  std::string to_chrome_json() const;

  // RAII span helper. Holds interned ids, not strings, so moving or
  // destroying a Span never allocates. The destructor records only if
  // the engine still points at the same tracer and is not tearing down:
  // spans living in detached coroutine frames get destroyed during
  // ~Engine (possibly after the Tracer itself is gone), and must
  // degrade to a no-op instead of touching freed memory.
  class Span {
   public:
    Span(Tracer* tracer, std::string_view track, std::string_view category,
         std::string_view name)
        : tracer_(tracer),
          engine_(tracer != nullptr ? &tracer->engine_ : nullptr),
          track_(tracer != nullptr ? tracer->intern(track) : 0),
          category_(tracer != nullptr ? tracer->intern(category) : 0),
          name_(tracer != nullptr ? tracer->intern(name) : 0),
          start_(tracer != nullptr ? tracer->engine_.now() : 0.0) {}
    Span(Span&& other) noexcept
        : tracer_(std::exchange(other.tracer_, nullptr)),
          engine_(other.engine_),
          track_(other.track_),
          category_(other.category_),
          name_(other.name_),
          start_(other.start_) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;
    ~Span() {
      if (tracer_ == nullptr) return;
      // The engine outlives every span (spans live in frames the engine
      // owns), so these reads are safe; the tracer may already be dead,
      // so it must not be touched until the identity check passes.
      if (engine_->shutting_down() || engine_->tracer() != tracer_) return;
      tracer_->complete_ids(track_, category_, name_, start_);
    }

   private:
    Tracer* tracer_;
    Engine* engine_;
    std::uint32_t track_;
    std::uint32_t category_;
    std::uint32_t name_;
    double start_;
  };

  Span span(std::string_view track, std::string_view category,
            std::string_view name) {
    return Span(this, track, category, name);
  }

 private:
  struct Event {
    std::uint32_t track;
    std::uint32_t category;
    std::uint32_t name;
    double start;
    double end;
    bool instant;
  };

  std::uint32_t intern(std::string_view s) {
    const auto it = intern_ids_.find(s);
    if (it != intern_ids_.end()) return it->second;
    const auto id = std::uint32_t(strings_.size());
    strings_.emplace_back(s);
    intern_ids_.emplace(strings_.back(), id);
    return id;
  }

  void complete_ids(std::uint32_t track, std::uint32_t category,
                    std::uint32_t name, double start_time) {
    if (at_capacity()) return;
    events_.push_back(
        Event{track, category, name, start_time, engine_.now(),
              /*instant=*/false});
  }

  bool at_capacity() {
    if (max_events_ == 0 || events_.size() < max_events_) return false;
    ++dropped_events_;
    dropped_metric_->add();
    return true;
  }

  Engine& engine_;
  std::uint64_t max_events_;
  std::uint64_t dropped_events_ = 0;
  Counter* dropped_metric_;
  std::vector<Event> events_;
  // id -> string and string -> id; the map keys are copies (node-stable),
  // heterogeneous lookup avoids temporary strings on the hot path.
  std::vector<std::string> strings_;
  std::map<std::string, std::uint32_t, std::less<>> intern_ids_;
};

// Null-safe RAII helper: no tracer, no cost.
inline Tracer::Span maybe_span(Tracer* tracer, std::string_view track,
                               std::string_view category,
                               std::string_view name) {
  return Tracer::Span(tracer, track, category, name);
}

}  // namespace hmr::sim
