// Bounded, closeable MPMC channel for sim tasks — the backbone of the
// producer/consumer structures in the paper's shuffle engines
// (DataRequestQueue, DataToMergeQueue, DataToReduceQueue).
//
// recv() yields std::optional<T>: nullopt means the channel was closed
// and fully drained, the idiomatic daemon-shutdown signal.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.h"

namespace hmr::sim {

template <typename T>
class Channel {
 public:
  Channel(Engine& engine, size_t capacity)
      : engine_(engine), capacity_(capacity) {
    HMR_CHECK_MSG(capacity_ > 0, "channel capacity must be positive");
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }
  bool closed() const { return closed_; }
  bool empty() const { return buffer_.empty(); }

  // Awaitable send. Sending on a closed channel is a programming error.
  auto send(T value) {
    struct Awaiter {
      Channel& channel;
      T value;
      bool parked = false;
      bool await_ready() {
        HMR_CHECK_MSG(!channel.closed_, "send on closed channel");
        return channel.senders_.empty() &&
               channel.buffer_.size() < channel.capacity_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        parked = true;
        channel.senders_.push_back({h, &value});
      }
      void await_resume() {
        // Parked senders are drained by recv()/close() which move the value
        // out through the registered slot before rescheduling us.
        if (!parked) channel.push(std::move(value));
      }
    };
    return Awaiter{*this, std::move(value)};
  }

  // Awaitable receive; nullopt once closed and drained.
  auto recv() {
    struct Awaiter {
      Channel& channel;
      std::optional<T> value;
      bool parked = false;
      bool await_ready() {
        return !channel.buffer_.empty() || channel.closed_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        parked = true;
        channel.receivers_.push_back({h, &value});
      }
      std::optional<T> await_resume() {
        if (!parked) {
          if (!channel.buffer_.empty()) {
            value = std::move(channel.buffer_.front());
            channel.buffer_.pop_front();
            channel.admit_parked_sender();
          }
          // else: closed and drained -> nullopt
        }
        return std::move(value);
      }
    };
    return Awaiter{*this, std::nullopt, false};
  }

  // Non-suspending send: delivers if a receiver is parked or buffer space
  // exists; returns false when full or closed (callers drop or retry).
  bool try_send(T value) {
    if (closed_) return false;
    if (!senders_.empty() || buffer_.size() >= capacity_) {
      if (receivers_.empty()) return false;
    }
    push(std::move(value));
    return true;
  }

  // Non-suspending receive: a buffered item if any, else nullopt (does not
  // distinguish empty from closed — callers poll).
  std::optional<T> try_recv() {
    if (buffer_.empty()) return std::nullopt;
    T value = std::move(buffer_.front());
    buffer_.pop_front();
    admit_parked_sender();
    return value;
  }

  // Closes the channel: parked receivers beyond the buffered items get
  // nullopt; future recv() drains the buffer then yields nullopt.
  void close() {
    if (closed_) return;
    closed_ = true;
    HMR_CHECK_MSG(senders_.empty(), "close with parked senders");
    while (!receivers_.empty()) {
      ReceiverNode node = receivers_.front();
      receivers_.pop_front();
      if (!buffer_.empty()) {
        *node.slot = std::move(buffer_.front());
        buffer_.pop_front();
      }
      engine_.schedule_now(node.handle);
    }
  }

 private:
  struct SenderNode {
    std::coroutine_handle<> handle;
    T* slot;
  };
  struct ReceiverNode {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  void push(T value) {
    if (!receivers_.empty()) {
      ReceiverNode node = receivers_.front();
      receivers_.pop_front();
      *node.slot = std::move(value);
      engine_.schedule_now(node.handle);
      return;
    }
    buffer_.push_back(std::move(value));
  }

  // After a buffered item is consumed, promote the oldest parked sender.
  void admit_parked_sender() {
    if (senders_.empty() || buffer_.size() >= capacity_) return;
    SenderNode node = senders_.front();
    senders_.pop_front();
    buffer_.push_back(std::move(*node.slot));
    engine_.schedule_now(node.handle);
  }

  Engine& engine_;
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> buffer_;
  std::deque<SenderNode> senders_;
  std::deque<ReceiverNode> receivers_;
};

}  // namespace hmr::sim
