#include "sim/trace.h"

#include <cstdio>

namespace hmr::sim {
namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  // Assign each track a stable tid in first-seen order (the metadata
  // records themselves list tracks in name order, as before interning).
  std::map<std::string_view, int> tids;
  for (const auto& event : events_) {
    tids.emplace(strings_[event.track], int(tids.size()) + 1);
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[128];
  for (const auto& [track, tid] : tids) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, track);
    out += "}}";
  }
  for (const auto& event : events_) {
    out += ',';
    const double ts_us = event.start * 1e6;
    if (event.instant) {
      out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
      out += std::to_string(tids[strings_[event.track]]);
      std::snprintf(buf, sizeof buf, ",\"ts\":%.3f", ts_us);
      out += buf;
    } else {
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(tids[strings_[event.track]]);
      std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f", ts_us,
                    (event.end - event.start) * 1e6);
      out += buf;
    }
    out += ",\"cat\":";
    append_json_string(out, strings_[event.category]);
    out += ",\"name\":";
    append_json_string(out, strings_[event.name]);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace hmr::sim
