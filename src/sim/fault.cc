#include "sim/fault.h"

#include <cstdlib>
#include <set>
#include <string>

namespace hmr::sim {

namespace {

// Every key the disk fault-plan parser understands. Anything else under
// `sim.fault.` is a typo and must be rejected.
const std::set<std::string, std::less<>> kKnownDiskFaultKeys = {
    kDiskFaultHosts,        kDiskIoErrorProb,     kDiskReadCorruptProb,
    kDiskWriteCorruptProb,  kDiskCacheCorruptProb, kDiskFullAtSec,
    kDiskFullDurationSec,   kDiskSlowAtSec,       kDiskSlowFactor,
};

Result<std::vector<int>> parse_host_list(const std::string& value) {
  std::vector<int> hosts;
  size_t start = 0;
  while (start <= value.size()) {
    auto end = value.find(',', start);
    if (end == std::string::npos) end = value.size();
    const std::string piece = value.substr(start, end - start);
    start = end + 1;
    if (piece.empty()) continue;
    char* tail = nullptr;
    const long host = std::strtol(piece.c_str(), &tail, 10);
    if (tail == piece.c_str() || *tail != '\0' || host < 0) {
      return Status::InvalidArgument(
          std::string(kDiskFaultHosts) + ": bad host id \"" + piece +
          "\" (want a comma-separated list of non-negative host ids)");
    }
    hosts.push_back(int(host));
    if (end == value.size()) break;
  }
  if (hosts.empty()) {
    return Status::InvalidArgument(std::string(kDiskFaultHosts) +
                                   ": empty host list");
  }
  return hosts;
}

Status check_prob(const Conf& conf, const char* key) {
  const double p = conf.get_double(key, 0.0);
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(std::string(key) +
                                   " must be a probability in [0, 1]");
  }
  return Status::Ok();
}

}  // namespace

Result<std::map<int, DiskFault>> FaultPlan::disk_faults_from_conf(
    const Conf& conf) {
  bool any_disk_key = false;
  for (const auto& [key, value] : conf.items()) {
    if (!key.starts_with("sim.fault.")) continue;
    if (!kKnownDiskFaultKeys.contains(key)) {
      return Status::InvalidArgument(
          "unknown fault key `" + key +
          "` (known sim.fault.disk.* keys are listed in docs/CONFIG.md; "
          "a misspelled key would silently inject nothing)");
    }
    any_disk_key = true;
    (void)value;
  }
  std::map<int, DiskFault> out;
  if (!any_disk_key) return out;
  if (!conf.contains(kDiskFaultHosts)) {
    return Status::InvalidArgument(
        std::string(kDiskFaultHosts) +
        " is required when any sim.fault.disk.* key is set");
  }
  for (const char* key : {kDiskIoErrorProb, kDiskReadCorruptProb,
                          kDiskWriteCorruptProb, kDiskCacheCorruptProb}) {
    HMR_RETURN_IF_ERROR(check_prob(conf, key));
  }
  DiskFault fault;
  fault.io_error_prob = conf.get_double(kDiskIoErrorProb, 0.0);
  fault.read_corrupt_prob = conf.get_double(kDiskReadCorruptProb, 0.0);
  fault.write_corrupt_prob = conf.get_double(kDiskWriteCorruptProb, 0.0);
  fault.cache_corrupt_prob = conf.get_double(kDiskCacheCorruptProb, 0.0);
  fault.full_at = conf.get_double(kDiskFullAtSec, -1.0);
  fault.full_duration = conf.get_double(kDiskFullDurationSec, 0.0);
  fault.slow_at = conf.get_double(kDiskSlowAtSec, -1.0);
  fault.slow_factor = conf.get_double(kDiskSlowFactor, 1.0);
  if (fault.full_duration < 0) {
    return Status::InvalidArgument(std::string(kDiskFullDurationSec) +
                                   " must be >= 0");
  }
  if (fault.slow_factor <= 0) {
    return Status::InvalidArgument(std::string(kDiskSlowFactor) +
                                   " must be > 0");
  }
  auto hosts = parse_host_list(conf.get(kDiskFaultHosts).value());
  if (!hosts.ok()) return hosts.status();
  for (int host : hosts.value()) out[host] = fault;
  return out;
}

FaultPlan::ResponseFate FaultPlan::response_fate(int host_id,
                                                 double* stall_seconds) {
  auto it = response_faults_.find(host_id);
  if (it == response_faults_.end()) return ResponseFate::kDeliver;
  const ResponseFault& fault = it->second;
  if (fault.drop_prob > 0.0 && rng_.chance(fault.drop_prob)) {
    return ResponseFate::kDrop;
  }
  if (fault.stall_prob > 0.0 && rng_.chance(fault.stall_prob)) {
    if (stall_seconds != nullptr) *stall_seconds = fault.stall_seconds;
    return ResponseFate::kStall;
  }
  return ResponseFate::kDeliver;
}

}  // namespace hmr::sim
