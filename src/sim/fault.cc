#include "sim/fault.h"

namespace hmr::sim {

FaultPlan::ResponseFate FaultPlan::response_fate(int host_id,
                                                 double* stall_seconds) {
  auto it = response_faults_.find(host_id);
  if (it == response_faults_.end()) return ResponseFate::kDeliver;
  const ResponseFault& fault = it->second;
  if (fault.drop_prob > 0.0 && rng_.chance(fault.drop_prob)) {
    return ResponseFate::kDrop;
  }
  if (fault.stall_prob > 0.0 && rng_.chance(fault.stall_prob)) {
    if (stall_seconds != nullptr) *stall_seconds = fault.stall_seconds;
    return ResponseFate::kStall;
  }
  return ResponseFate::kDeliver;
}

}  // namespace hmr::sim
