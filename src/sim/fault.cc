#include "sim/fault.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>

namespace hmr::sim {

namespace {

// Every key the disk fault-plan parser understands.
const std::set<std::string, std::less<>> kKnownDiskFaultKeys = {
    kDiskFaultHosts,        kDiskIoErrorProb,     kDiskReadCorruptProb,
    kDiskWriteCorruptProb,  kDiskCacheCorruptProb, kDiskFullAtSec,
    kDiskFullDurationSec,   kDiskSlowAtSec,       kDiskSlowFactor,
};

// Every key the compute fault-plan parser understands. Together with
// the disk set these form the whole `sim.fault.` universe: each parser
// skips the other family's keys and rejects anything outside the union,
// so a typo'd key fails loudly no matter which parser sees it first.
const std::set<std::string, std::less<>> kKnownComputeFaultKeys = {
    kCpuFaultHosts,   kCpuFaultAtSec,   kCpuFaultFactor,
    kCpuFaultDurationSec, kTaskHangHosts, kTaskHangAtSec,
    kTaskHangDurationSec, kTaskSlowHosts, kTaskSlowAtSec,
    kTaskSlowDurationSec, kTaskSlowFactor,
};

Result<std::vector<int>> parse_host_list(const char* key,
                                         const std::string& value) {
  std::vector<int> hosts;
  size_t start = 0;
  while (start <= value.size()) {
    auto end = value.find(',', start);
    if (end == std::string::npos) end = value.size();
    const std::string piece = value.substr(start, end - start);
    start = end + 1;
    if (piece.empty()) continue;
    char* tail = nullptr;
    const long host = std::strtol(piece.c_str(), &tail, 10);
    if (tail == piece.c_str() || *tail != '\0' || host < 0) {
      return Status::InvalidArgument(
          std::string(key) + ": bad host id \"" + piece +
          "\" (want a comma-separated list of non-negative host ids)");
    }
    hosts.push_back(int(host));
    if (end == value.size()) break;
  }
  if (hosts.empty()) {
    return Status::InvalidArgument(std::string(key) + ": empty host list");
  }
  return hosts;
}

Status reject_unknown_fault_keys(const Conf& conf) {
  for (const auto& [key, value] : conf.items()) {
    if (!key.starts_with("sim.fault.")) continue;
    if (kKnownDiskFaultKeys.contains(key)) continue;
    if (kKnownComputeFaultKeys.contains(key)) continue;
    (void)value;
    return Status::InvalidArgument(
        "unknown fault key `" + key +
        "` (known sim.fault.* keys are listed in docs/CONFIG.md; "
        "a misspelled key would silently inject nothing)");
  }
  return Status::Ok();
}

Status check_prob(const Conf& conf, const char* key) {
  const double p = conf.get_double(key, 0.0);
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(std::string(key) +
                                   " must be a probability in [0, 1]");
  }
  return Status::Ok();
}

}  // namespace

Result<std::map<int, DiskFault>> FaultPlan::disk_faults_from_conf(
    const Conf& conf) {
  HMR_RETURN_IF_ERROR(reject_unknown_fault_keys(conf));
  bool any_disk_key = false;
  for (const auto& [key, value] : conf.items()) {
    if (!key.starts_with("sim.fault.")) continue;
    if (kKnownDiskFaultKeys.contains(key)) any_disk_key = true;
    (void)value;
  }
  std::map<int, DiskFault> out;
  if (!any_disk_key) return out;
  if (!conf.contains(kDiskFaultHosts)) {
    return Status::InvalidArgument(
        std::string(kDiskFaultHosts) +
        " is required when any sim.fault.disk.* key is set");
  }
  for (const char* key : {kDiskIoErrorProb, kDiskReadCorruptProb,
                          kDiskWriteCorruptProb, kDiskCacheCorruptProb}) {
    HMR_RETURN_IF_ERROR(check_prob(conf, key));
  }
  DiskFault fault;
  fault.io_error_prob = conf.get_double(kDiskIoErrorProb, 0.0);
  fault.read_corrupt_prob = conf.get_double(kDiskReadCorruptProb, 0.0);
  fault.write_corrupt_prob = conf.get_double(kDiskWriteCorruptProb, 0.0);
  fault.cache_corrupt_prob = conf.get_double(kDiskCacheCorruptProb, 0.0);
  fault.full_at = conf.get_double(kDiskFullAtSec, -1.0);
  fault.full_duration = conf.get_double(kDiskFullDurationSec, 0.0);
  fault.slow_at = conf.get_double(kDiskSlowAtSec, -1.0);
  fault.slow_factor = conf.get_double(kDiskSlowFactor, 1.0);
  if (fault.full_duration < 0) {
    return Status::InvalidArgument(std::string(kDiskFullDurationSec) +
                                   " must be >= 0");
  }
  if (fault.slow_factor <= 0) {
    return Status::InvalidArgument(std::string(kDiskSlowFactor) +
                                   " must be > 0");
  }
  auto hosts = parse_host_list(kDiskFaultHosts, conf.get(kDiskFaultHosts).value());
  if (!hosts.ok()) return hosts.status();
  for (int host : hosts.value()) out[host] = fault;
  return out;
}

void ComputeFaults::merge(const ComputeFaults& other) {
  cpu.insert(cpu.end(), other.cpu.begin(), other.cpu.end());
  task.insert(task.end(), other.task.begin(), other.task.end());
}

double ComputeFaults::hang_until(int host_id, double now) const {
  double until = 0.0;
  for (const auto& fault : task) {
    if (fault.kind != TaskFault::Kind::kHang || fault.host_id != host_id) {
      continue;
    }
    if (now >= fault.at && now < fault.at + fault.duration) {
      until = std::max(until, fault.at + fault.duration);
    }
  }
  return until;
}

double ComputeFaults::slow_factor(int host_id, double now) const {
  double factor = 1.0;
  for (const auto& fault : task) {
    if (fault.kind != TaskFault::Kind::kSlow || fault.host_id != host_id) {
      continue;
    }
    const bool active = now >= fault.at &&
                        (fault.duration <= 0 || now < fault.at + fault.duration);
    if (active) factor *= fault.factor;
  }
  return factor;
}

Result<ComputeFaults> ComputeFaults::from_conf(const Conf& conf) {
  HMR_RETURN_IF_ERROR(reject_unknown_fault_keys(conf));
  ComputeFaults out;

  // cpu.degrade: host compute-speed window.
  bool any_cpu = false;
  for (const char* key : {kCpuFaultHosts, kCpuFaultAtSec, kCpuFaultFactor,
                          kCpuFaultDurationSec}) {
    if (conf.contains(key)) any_cpu = true;
  }
  if (any_cpu) {
    if (!conf.contains(kCpuFaultHosts)) {
      return Status::InvalidArgument(
          std::string(kCpuFaultHosts) +
          " is required when any sim.fault.cpu.* key is set");
    }
    const double at = conf.get_double(kCpuFaultAtSec, 0.0);
    const double factor = conf.get_double(kCpuFaultFactor, 1.0);
    const double duration = conf.get_double(kCpuFaultDurationSec, 0.0);
    if (at < 0) {
      return Status::InvalidArgument(std::string(kCpuFaultAtSec) +
                                     " must be >= 0");
    }
    if (factor <= 0) {
      return Status::InvalidArgument(std::string(kCpuFaultFactor) +
                                     " must be > 0");
    }
    if (duration < 0) {
      return Status::InvalidArgument(std::string(kCpuFaultDurationSec) +
                                     " must be >= 0 (0 = permanent)");
    }
    auto hosts = parse_host_list(kCpuFaultHosts,
                                 conf.get(kCpuFaultHosts).value());
    if (!hosts.ok()) return hosts.status();
    for (int host : hosts.value()) {
      out.cpu.push_back(CpuDegrade{host, at, factor, duration});
    }
  }

  // task.hang: bounded progress freeze.
  bool any_hang = false;
  for (const char* key : {kTaskHangHosts, kTaskHangAtSec,
                          kTaskHangDurationSec}) {
    if (conf.contains(key)) any_hang = true;
  }
  if (any_hang) {
    if (!conf.contains(kTaskHangHosts)) {
      return Status::InvalidArgument(
          std::string(kTaskHangHosts) +
          " is required when any sim.fault.task.hang.* key is set");
    }
    const double at = conf.get_double(kTaskHangAtSec, 0.0);
    const double duration = conf.get_double(kTaskHangDurationSec, 0.0);
    if (at < 0) {
      return Status::InvalidArgument(std::string(kTaskHangAtSec) +
                                     " must be >= 0");
    }
    if (duration <= 0) {
      return Status::InvalidArgument(
          std::string(kTaskHangDurationSec) +
          " must be > 0 (a permanent hang would never complete)");
    }
    auto hosts = parse_host_list(kTaskHangHosts,
                                 conf.get(kTaskHangHosts).value());
    if (!hosts.ok()) return hosts.status();
    for (int host : hosts.value()) {
      out.task.push_back(
          TaskFault{TaskFault::Kind::kHang, host, at, duration, 1.0});
    }
  }

  // task.slow_progress: task compute-bandwidth window.
  bool any_slow = false;
  for (const char* key : {kTaskSlowHosts, kTaskSlowAtSec,
                          kTaskSlowDurationSec, kTaskSlowFactor}) {
    if (conf.contains(key)) any_slow = true;
  }
  if (any_slow) {
    if (!conf.contains(kTaskSlowHosts)) {
      return Status::InvalidArgument(
          std::string(kTaskSlowHosts) +
          " is required when any sim.fault.task.slow.* key is set");
    }
    const double at = conf.get_double(kTaskSlowAtSec, 0.0);
    const double duration = conf.get_double(kTaskSlowDurationSec, 0.0);
    const double factor = conf.get_double(kTaskSlowFactor, 1.0);
    if (at < 0) {
      return Status::InvalidArgument(std::string(kTaskSlowAtSec) +
                                     " must be >= 0");
    }
    if (duration < 0) {
      return Status::InvalidArgument(std::string(kTaskSlowDurationSec) +
                                     " must be >= 0 (0 = permanent)");
    }
    if (factor <= 0) {
      return Status::InvalidArgument(std::string(kTaskSlowFactor) +
                                     " must be > 0");
    }
    auto hosts = parse_host_list(kTaskSlowHosts,
                                 conf.get(kTaskSlowHosts).value());
    if (!hosts.ok()) return hosts.status();
    for (int host : hosts.value()) {
      out.task.push_back(
          TaskFault{TaskFault::Kind::kSlow, host, at, duration, factor});
    }
  }
  return out;
}

FaultPlan::ResponseFate FaultPlan::response_fate(int host_id,
                                                 double* stall_seconds) {
  auto it = response_faults_.find(host_id);
  if (it == response_faults_.end()) return ResponseFate::kDeliver;
  const ResponseFault& fault = it->second;
  if (fault.drop_prob > 0.0 && rng_.chance(fault.drop_prob)) {
    return ResponseFate::kDrop;
  }
  if (fault.stall_prob > 0.0 && rng_.chance(fault.stall_prob)) {
    if (stall_seconds != nullptr) *stall_seconds = fault.stall_seconds;
    return ResponseFate::kStall;
  }
  return ResponseFate::kDeliver;
}

}  // namespace hmr::sim
