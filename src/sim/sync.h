// Synchronization primitives for sim tasks.
//
// All wakeups are routed through Engine::schedule_now so same-time
// resumption order is deterministic and recursion depth stays bounded.
// These types are not thread-safe by design — the engine is
// single-threaded (see sim/engine.h).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/engine.h"

namespace hmr::sim {

// One-shot (or manually reset) event. set() wakes every current waiter.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }
  void set();
  void reset() { set_ = false; }

  auto wait() {
    struct Awaiter {
      Event& event;
      bool await_ready() const noexcept { return event.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  Engine& engine() { return engine_; }

 private:
  Engine& engine_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counted resource with FIFO admission (no starvation: a queued large
// request blocks later small ones). Models CPU cores, disk queue slots,
// memory budgets, thread-pool slots.
class Resource {
 public:
  Resource(Engine& engine, std::int64_t capacity, std::string name = {});
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::int64_t capacity() const { return capacity_; }
  std::int64_t available() const { return available_; }
  std::int64_t queued() const { return std::int64_t(waiters_.size()); }
  const std::string& name() const { return name_; }

  // Awaitable; resumes once `amount` units have been granted. Fast path
  // debits in await_resume; parked waiters are debited at grant time (in
  // grant_waiters) so units cannot be double-booked while the wakeup sits
  // in the engine queue.
  auto acquire(std::int64_t amount = 1) {
    struct Awaiter {
      Resource& resource;
      std::int64_t amount;
      bool parked = false;
      bool await_ready() const noexcept {
        return resource.waiters_.empty() && resource.available_ >= amount;
      }
      void await_suspend(std::coroutine_handle<> h) {
        parked = true;
        resource.waiters_.push_back({h, amount});
      }
      void await_resume() const noexcept {
        if (!parked) resource.available_ -= amount;
      }
    };
    HMR_CHECK_MSG(amount >= 0 && amount <= capacity_,
                  "acquire amount exceeds resource capacity: " + name_);
    return Awaiter{*this, amount};
  }
  void release(std::int64_t amount = 1);

  // Non-blocking acquire: true (and debited) only when no one is queued
  // and enough units are free.
  bool try_acquire(std::int64_t amount = 1) {
    if (!waiters_.empty() || available_ < amount) return false;
    available_ -= amount;
    return true;
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t amount;
  };
  void grant_waiters();

  Engine& engine_;
  std::int64_t capacity_;
  std::int64_t available_;
  std::string name_;
  std::deque<Waiter> waiters_;
};

// RAII hold on a Resource. Obtain via `co_await hold(resource, n)`.
class ResourceHold {
 public:
  ResourceHold() = default;
  ResourceHold(Resource& resource, std::int64_t amount)
      : resource_(&resource), amount_(amount) {}
  ResourceHold(ResourceHold&& other) noexcept
      : resource_(std::exchange(other.resource_, nullptr)),
        amount_(other.amount_) {}
  ResourceHold& operator=(ResourceHold&& other) noexcept {
    if (this != &other) {
      release();
      resource_ = std::exchange(other.resource_, nullptr);
      amount_ = other.amount_;
    }
    return *this;
  }
  ResourceHold(const ResourceHold&) = delete;
  ResourceHold& operator=(const ResourceHold&) = delete;
  ~ResourceHold() { release(); }

  void release() {
    if (resource_ != nullptr) {
      resource_->release(amount_);
      resource_ = nullptr;
    }
  }

 private:
  Resource* resource_ = nullptr;
  std::int64_t amount_ = 0;
};

// Acquires `amount` units and returns an RAII hold.
Task<ResourceHold> hold(Resource& resource, std::int64_t amount = 1);

// Go-style wait group: add() work, done() it, wait() for zero.
class WaitGroup {
 public:
  explicit WaitGroup(Engine& engine) : zero_(engine) { zero_.set(); }

  void add(std::int64_t n = 1) {
    count_ += n;
    HMR_CHECK(count_ >= 0);
    if (count_ > 0) zero_.reset();
    if (count_ == 0) zero_.set();
  }
  void done() { add(-1); }
  auto wait() { return zero_.wait(); }
  std::int64_t count() const { return count_; }

 private:
  std::int64_t count_ = 0;
  Event zero_;
};

}  // namespace hmr::sim
