// Hadoop-A (Wang et al., SC'11 "Hadoop Acceleration through Network
// Levitated Merge") — the paper's closest comparator, reconstructed from
// its published description (§III-C):
//
//  * native-verbs shuffle and a priority-queue merge over remote
//    segments (shared with the OSU-IB engine),
//  * a fixed number of key-value pairs per packet regardless of their
//    size — the behaviour §IV-C blames for its Sort-benchmark losses,
//  * no TaskTracker-side prefetch/cache: every responder request reads
//    the map output from disk (its DataEngine "doesn't provide data
//    caching to decrease the disk access"),
//  * fewer tuning knobs (the kv count is its only packet control).
#pragma once

#include "rdmashuffle/engine.h"

namespace hmr::hadoopa {

class HadoopAEngine final : public rdmashuffle::RdmaShuffleEngine {
 public:
  explicit HadoopAEngine(const Conf& conf)
      : RdmaShuffleEngine("hadoop-a",
                          rdmashuffle::RdmaShuffleOptions::hadoop_a(conf)) {}
};

}  // namespace hmr::hadoopa
