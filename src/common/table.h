// Tabular output for the benchmark harness: aligned ASCII tables (the
// rows the paper's figures plot) plus CSV export for replotting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hmr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);

  std::string to_ascii() const;
  std::string to_csv() const;
  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hmr
