#include "common/logging.h"

#include <cstdio>

namespace hmr {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const char* tag, const char* fmt, ...) {
  char body[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);
  if (now_) {
    std::fprintf(stderr, "[%-5s t=%.6fs %s] %s\n", level_name(level), now_(),
                 tag, body);
  } else {
    std::fprintf(stderr, "[%-5s %s] %s\n", level_name(level), tag, body);
  }
}

}  // namespace hmr
