// Lightweight error-handling primitives.
//
// The library distinguishes programmer errors (checked with HMR_CHECK,
// which aborts) from expected runtime failures (file not found, cache
// miss, connection refused) which are reported through Status/Result<T>.
// GCC 12 lacks std::expected, so Result<T> is a minimal local equivalent.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hmr {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kAborted,
  kInternal,
};

std::string_view to_string(StatusCode code);

// Value-semantic status: either OK or a code plus a human-readable message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status OutOfRange(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status Aborted(std::string m) {
    return {StatusCode::kAborted, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string to_string() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Either a T or a non-OK Status. Access to value() on error aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    check_ok();
    return std::get<T>(rep_);
  }
  T& value() & {
    check_ok();
    return std::get<T>(rep_);
  }
  T&& value() && {
    check_ok();
    return std::get<T>(std::move(rep_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }
  T value_or(T fallback) const& { return ok() ? std::get<T>(rep_) : fallback; }

 private:
  void check_ok() const {
    if (!ok()) {
      std::fprintf(stderr, "Result accessed with error: %s\n",
                   std::get<Status>(rep_).to_string().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> rep_;
};

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& extra = {});

}  // namespace hmr

#define HMR_CHECK(expr)                                   \
  do {                                                    \
    if (!(expr)) [[unlikely]] {                           \
      ::hmr::check_failed(__FILE__, __LINE__, #expr);     \
    }                                                     \
  } while (0)

#define HMR_CHECK_MSG(expr, msg)                             \
  do {                                                       \
    if (!(expr)) [[unlikely]] {                              \
      ::hmr::check_failed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                        \
  } while (0)

#define HMR_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::hmr::Status hmr_status_ = (expr);      \
    if (!hmr_status_.ok()) return hmr_status_; \
  } while (0)
