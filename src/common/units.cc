#include "common/units.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hmr {

Result<std::uint64_t> parse_bytes(std::string_view text) {
  size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t start = i;
  bool seen_dot = false;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) ||
          (text[i] == '.' && !seen_dot))) {
    seen_dot = seen_dot || text[i] == '.';
    ++i;
  }
  if (i == start) {
    return Status::InvalidArgument("no digits in size: '" + std::string(text) +
                                   "'");
  }
  double value = 0.0;
  const std::string digits(text.substr(start, i - start));
  if (std::sscanf(digits.c_str(), "%lf", &value) != 1) {
    return Status::InvalidArgument("bad number in size: '" +
                                   std::string(text) + "'");
  }
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::uint64_t mult = 1;
  if (i < text.size()) {
    switch (std::tolower(static_cast<unsigned char>(text[i]))) {
      case 'k': mult = kKiB; ++i; break;
      case 'm': mult = kMiB; ++i; break;
      case 'g': mult = kGiB; ++i; break;
      case 't': mult = kTiB; ++i; break;
      case 'b': break;
      default:
        return Status::InvalidArgument("bad unit in size: '" +
                                       std::string(text) + "'");
    }
    if (i < text.size() &&
        std::tolower(static_cast<unsigned char>(text[i])) == 'b') {
      ++i;
    }
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i != text.size()) {
      return Status::InvalidArgument("trailing junk in size: '" +
                                     std::string(text) + "'");
    }
  }
  return static_cast<std::uint64_t>(std::llround(value * double(mult)));
}

std::string format_bytes(std::uint64_t bytes) {
  struct Unit {
    std::uint64_t scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {kTiB, "TB"}, {kGiB, "GB"}, {kMiB, "MB"}, {kKiB, "KB"}};
  char buf[64];
  for (const auto& u : kUnits) {
    if (bytes >= u.scale) {
      if (bytes % u.scale == 0) {
        std::snprintf(buf, sizeof buf, "%llu%s",
                      static_cast<unsigned long long>(bytes / u.scale),
                      u.suffix);
      } else {
        std::snprintf(buf, sizeof buf, "%.2f%s", double(bytes) / double(u.scale),
                      u.suffix);
      }
      return buf;
    }
  }
  std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else {
    const auto whole = static_cast<long long>(seconds);
    std::snprintf(buf, sizeof buf, "%lldm%02llds", whole / 60, whole % 60);
  }
  return buf;
}

}  // namespace hmr
