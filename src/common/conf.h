// Hadoop-style string key/value configuration with typed accessors.
//
// Mirrors org.apache.hadoop.conf.Configuration: every tunable in the
// paper (mapred.rdma.enabled, mapred.local.caching.enabled, packet
// sizes, slot counts, ...) is carried through a Conf so engines stay
// swappable via configuration alone.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hmr {

class Conf {
 public:
  Conf() = default;

  void set(std::string_view key, std::string_view value);
  void set_int(std::string_view key, std::int64_t value);
  void set_double(std::string_view key, double value);
  void set_bool(std::string_view key, bool value);
  void set_bytes(std::string_view key, std::uint64_t bytes);

  bool contains(std::string_view key) const;
  std::optional<std::string> get(std::string_view key) const;

  std::string get_string(std::string_view key, std::string_view dflt) const;
  std::int64_t get_int(std::string_view key, std::int64_t dflt) const;
  double get_double(std::string_view key, double dflt) const;
  bool get_bool(std::string_view key, bool dflt) const;
  // Accepts unit suffixes: "64MB", "4K", plain byte counts.
  std::uint64_t get_bytes(std::string_view key, std::uint64_t dflt) const;

  // Merges other into *this; other wins on conflicts.
  void merge(const Conf& other);

  std::vector<std::pair<std::string, std::string>> items() const;
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace hmr
