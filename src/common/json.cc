#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hmr {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN
    out += "null";
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    auto value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.status();
        return Json(std::move(s.value()));
      }
      case 't':
        if (literal("true")) return Json(true);
        return error("invalid literal");
      case 'f':
        if (literal("false")) return Json(false);
        return error("invalid literal");
      case 'n':
        if (literal("null")) return Json();
        return error("invalid literal");
      default: return parse_number();
    }
  }

  Result<Json> parse_object(int depth) {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key");
      }
      auto key = parse_string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      obj.set(std::move(key.value()), std::move(value.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      return error("expected ',' or '}'");
    }
  }

  Result<Json> parse_array(int depth) {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      arr.push_back(std::move(value.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      return error("expected ',' or ']'");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return error("bad escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + size_t(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return error("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the basic-plane code point (surrogate pairs
            // are passed through as two 3-byte sequences — good enough
            // for the ASCII-heavy bench files).
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xC0 | (code >> 6));
              out += char(0x80 | (code & 0x3F));
            } else {
              out += char(0xE0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3F));
              out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return error("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character in string");
      }
      out += c;
      ++pos_;
    }
    return error("unterminated string");
  }

  Result<Json> parse_number() {
    const size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return error("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return error("invalid number");
    return Json(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

void Json::set(std::string key, Json value) {
  HMR_CHECK_MSG(is_object() || is_null(), "Json::set on non-object");
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      out += '[';
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out += ',';
        out += elements_[i].dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, k);
        out += ':';
        out += v.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace hmr
