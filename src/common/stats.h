// Counters and histograms for instrumenting the simulated cluster
// (bytes shuffled, cache hits/misses, disk seeks, merge rounds, ...).
// A MetricRegistry groups metrics per run so experiments can diff them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hmr {

class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

// Streaming summary: count/sum/min/max/mean plus log2-bucketed counts
// for cheap percentile estimates.
class Histogram {
 public:
  void record(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  // Estimated quantile from bucket boundaries; q in [0,1].
  double quantile(double q) const;
  void reset();

 private:
  static constexpr int kBuckets = 64;
  static int bucket_for(double v);
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::int64_t counter_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::string report() const;
  void reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace hmr
