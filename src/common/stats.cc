#include "common/stats.h"

#include <cmath>
#include <cstdio>

namespace hmr {

int Histogram::bucket_for(double v) {
  if (v <= 0.0) return 0;
  const int b = 1 + std::ilogb(v) + 32;  // center tiny values near bucket 32
  return std::clamp(b, 0, kBuckets - 1);
}

void Histogram::record(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  ++buckets_[bucket_for(v)];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * double(count_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      // Bucket b holds values in [2^(b-33), 2^(b-32)); report the midpoint,
      // clamped to the observed range.
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 33);
      const double hi = std::ldexp(1.0, b - 32);
      return std::clamp((lo + hi) / 2.0, min_, max_);
    }
  }
  return max_;
}

void Histogram::reset() { *this = Histogram{}; }

Counter& MetricRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

std::int64_t MetricRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Histogram* MetricRegistry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, std::int64_t>> MetricRegistry::counters()
    const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

std::string MetricRegistry::report() const {
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof line, "%-48s %lld\n", name.c_str(),
                  static_cast<long long>(c.value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof line,
                  "%-48s n=%llu mean=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  h.mean(), h.min(), h.quantile(0.5), h.quantile(0.99),
                  h.max());
    out += line;
  }
  return out;
}

void MetricRegistry::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

}  // namespace hmr
