#include "common/crc32.h"

#include <array>

namespace hmr {
namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  const auto& t = table();
  for (std::uint8_t byte : data) {
    crc = (crc >> 8) ^ t[(crc ^ byte) & 0xff];
  }
  return ~crc;
}

std::uint32_t crc32c(std::string_view data, std::uint32_t seed) {
  return crc32c(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(data.data()), data.size()),
      seed);
}

}  // namespace hmr
