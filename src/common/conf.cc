#include "common/conf.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/units.h"

namespace hmr {
namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

void Conf::set(std::string_view key, std::string_view value) {
  entries_.insert_or_assign(std::string(key), std::string(value));
}

void Conf::set_int(std::string_view key, std::int64_t value) {
  set(key, std::to_string(value));
}

void Conf::set_double(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  set(key, buf);
}

void Conf::set_bool(std::string_view key, bool value) {
  set(key, value ? "true" : "false");
}

void Conf::set_bytes(std::string_view key, std::uint64_t bytes) {
  set(key, std::to_string(bytes));
}

bool Conf::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> Conf::get(std::string_view key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Conf::get_string(std::string_view key,
                             std::string_view dflt) const {
  auto v = get(key);
  return v ? *v : std::string(dflt);
}

std::int64_t Conf::get_int(std::string_view key, std::int64_t dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  try {
    return std::stoll(*v);
  } catch (...) {
    return dflt;
  }
}

double Conf::get_double(std::string_view key, double dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  try {
    return std::stod(*v);
  } catch (...) {
    return dflt;
  }
}

bool Conf::get_bool(std::string_view key, bool dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  const std::string s = lower(*v);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  return dflt;
}

std::uint64_t Conf::get_bytes(std::string_view key,
                              std::uint64_t dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  auto parsed = parse_bytes(*v);
  return parsed.ok() ? parsed.value() : dflt;
}

void Conf::merge(const Conf& other) {
  for (const auto& [k, v] : other.entries_) entries_.insert_or_assign(k, v);
}

std::vector<std::pair<std::string, std::string>> Conf::items() const {
  return {entries_.begin(), entries_.end()};
}

}  // namespace hmr
