// CRC-32C (Castagnoli), software table implementation. Used by
// TeraValidate-style output checking and HDFS-lite block checksums.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace hmr {

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);
std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0);

}  // namespace hmr
