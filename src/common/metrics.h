// Job-level observability: one queryable registry of named counters,
// gauges, and histograms for instrumenting the simulated cluster
// (bytes shuffled, cache hits/misses, shuffle RTTs, responder queue
// waits, merge refill stalls, ...).
//
// Every sim::Engine owns a MetricsRegistry; components (net::Cluster,
// dataplane::PrefetchCache, the shuffle engines, mapred recovery)
// register into it instead of keeping ad-hoc per-struct counters, so a
// JobResult can snapshot the whole cluster's state at job end and the
// benchmark pipeline can emit it as machine-readable JSON.
//
// Two histogram flavors:
//  - Histogram: streaming log2-bucketed summary, good for arbitrary
//    magnitudes (byte counts, pair counts).
//  - FixedHistogram: explicit bucket upper bounds fixed at registration.
//    latency_histogram() hands out one with a standard simulated-time
//    latency layout (1us .. 1024s), so per-phase latency distributions
//    (shuffle request RTT, responder queue wait, merge refill stalls)
//    are comparable across runs and engines.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hmr {

// Counters and gauges are genuinely thread-safe: parallel work events
// (sim/parallel.h) may stage updates that callbacks apply while guard
// code on other threads reads values, and TSan runs the whole suite.
// Relaxed ordering is enough — metric values are never used to
// synchronize anything; deterministic totals come from the engine
// draining staged effects in (timestamp, seq) order, not from memory
// ordering. Registry entries are node-stable (std::map), so handles
// stay valid; the atomics make them non-copyable, which the registry
// never needs.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A point-in-time level (cache bytes resident, live connections, ...).
// Tracks the high-water mark so a snapshot preserves the peak even when
// the gauge drained back to zero by job end. The high-water update is a
// CAS loop, so concurrent writers can only ever raise it to the true
// maximum — never clobber it with a stale read (the pre-parallel code
// did an unguarded read-modify-write).
class Gauge {
 public:
  void set(double v) {
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(double delta) {
    double prev = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(prev, prev + delta,
                                         std::memory_order_relaxed)) {
    }
    raise_max(prev + delta);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  double max_value() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  void raise_max(double v) {
    double prev = max_.load(std::memory_order_relaxed);
    while (prev < v && !max_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

// Streaming summary: count/sum/min/max/mean plus log2-bucketed counts
// for cheap percentile estimates.
class Histogram {
 public:
  void record(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  // Estimated quantile from bucket boundaries; q in [0,1].
  double quantile(double q) const;
  void reset();

 private:
  static constexpr int kBuckets = 64;
  static int bucket_for(double v);
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t buckets_[kBuckets] = {};
};

// Histogram over explicit bucket upper bounds, fixed at construction.
// A value lands in the first bucket whose upper bound is >= v; values
// above the last bound land in the implicit overflow bucket.
class FixedHistogram {
 public:
  explicit FixedHistogram(std::vector<double> upper_bounds);

  void record(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  // Estimated quantile by linear interpolation inside the bucket.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  // counts()[i] pairs with bounds()[i]; the final element is overflow.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  void reset();

 private:
  std::vector<double> bounds_;   // ascending upper bounds
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// The standard simulated-time latency layout: 1us..1024s, x4 per bucket.
std::vector<double> latency_buckets();

// Flat snapshot of a registry, cheap to copy into a JobResult and to
// serialize. Histograms are summarized, not bucket-by-bucket.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  // High-water marks, keyed like `gauges`: the peak matters for budget
  // invariants (cache used-bytes) even when the level drained by job end.
  std::map<std::string, double> gauge_maxima;
  std::map<std::string, HistogramSummary> histograms;

  std::int64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  double gauge_max(const std::string& name) const {
    auto it = gauge_maxima.find(name);
    return it == gauge_maxima.end() ? 0.0 : it->second;
  }
  // Compact JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  // Fixed-bucket histogram; `upper_bounds` is consulted only on first
  // registration of `name`.
  FixedHistogram& fixed_histogram(std::string_view name,
                                  const std::vector<double>& upper_bounds);
  // Fixed-bucket histogram with the standard latency layout.
  FixedHistogram& latency_histogram(std::string_view name) {
    return fixed_histogram(name, latency_buckets());
  }

  std::int64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;
  const FixedHistogram* find_fixed_histogram(std::string_view name) const;

  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  MetricsSnapshot snapshot() const;
  std::string report() const;
  void reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, FixedHistogram, std::less<>> fixed_;
};

}  // namespace hmr
