#include "common/bytes.h"

namespace hmr {

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_varint_signed(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::put_string(std::string_view s) {
  put_varint(s.size());
  buf().insert(buf().end(), s.begin(), s.end());
}

void ByteWriter::put_length_prefixed(std::span<const std::uint8_t> data) {
  put_varint(data.size());
  put_bytes(data);
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return Status::OutOfRange("short read of u8");
  return data_[pos_++];
}

Result<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v.ok()) return v.status();
  return static_cast<std::int64_t>(v.value());
}

Result<double> ByteReader::f64() {
  auto v = u64();
  if (!v.ok()) return v.status();
  double d;
  const std::uint64_t bits = v.value();
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

Result<std::uint64_t> ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) return Status::OutOfRange("truncated varint");
    if (shift >= 64) return Status::OutOfRange("varint too long");
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<std::int64_t> ByteReader::varint_signed() {
  auto v = varint();
  if (!v.ok()) return v.status();
  const std::uint64_t u = v.value();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Result<std::span<const std::uint8_t>> ByteReader::bytes(size_t n) {
  if (remaining() < n) return Status::OutOfRange("short read of bytes");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Result<std::string> ByteReader::string() {
  auto len = varint();
  if (!len.ok()) return len.status();
  auto body = bytes(len.value());
  if (!body.ok()) return body.status();
  return std::string(reinterpret_cast<const char*>(body.value().data()),
                     body.value().size());
}

Result<std::span<const std::uint8_t>> ByteReader::length_prefixed() {
  auto len = varint();
  if (!len.ok()) return len.status();
  return bytes(len.value());
}

}  // namespace hmr
