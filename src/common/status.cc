#include "common/status.h"

namespace hmr {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out{hmr::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void check_failed(const char* file, int line, const char* expr,
                  const std::string& extra) {
  std::fprintf(stderr, "HMR_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace hmr
