// Slab/bump arena for the dataplane's per-record byte churn.
//
// The map-side sort and merge ingest used to heap-allocate two `Bytes`
// vectors per record (key + value), dominating the profile at terasort
// scale. An Arena hands out raw byte spans from large slabs with a
// pointer bump and frees them all at once.
//
// Ownership rules (DESIGN.md §"Arena ownership"): spans returned by
// allocate()/copy() are valid until reset() or destruction of the arena
// that produced them — never individually freed. A structure holding
// arena-backed views (e.g. `dataplane::KvView`) must not outlive its
// arena; the owner of the arena is always the owner of the views'
// lifetime. Arenas are single-threaded, like everything else in the
// simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

namespace hmr {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = std::size_t{64} << 10;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes == 0 ? kDefaultSlabBytes : slab_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized storage, valid until reset()/destruction. n == 0
  // returns an empty span without touching the slabs.
  std::span<std::uint8_t> allocate(std::size_t n) {
    if (n == 0) return {};
    if (n > avail_) refill(n);
    std::uint8_t* out = cursor_;
    cursor_ += n;
    avail_ -= n;
    allocated_ += n;
    return {out, n};
  }

  // Copies `data` into the arena and returns the stable view.
  std::span<const std::uint8_t> copy(std::span<const std::uint8_t> data) {
    auto dst = allocate(data.size());
    if (!data.empty()) std::memcpy(dst.data(), data.data(), data.size());
    return dst;
  }

  // Invalidates every span handed out so far. Slabs are retained for
  // reuse, so a steady-state caller (one spill per map task) stops
  // touching the system allocator entirely after warmup.
  void reset() {
    cursor_ = slabs_.empty() ? nullptr : slabs_.front().get();
    avail_ = slabs_.empty() ? 0 : slab_sizes_.front();
    next_slab_ = slabs_.empty() ? 0 : 1;
    allocated_ = 0;
  }

  // Total bytes handed out since the last reset (diagnostics/tests).
  std::size_t allocated_bytes() const { return allocated_; }
  std::size_t slab_count() const { return slabs_.size(); }

 private:
  void refill(std::size_t n) {
    // Reuse a retained slab when it fits; otherwise grow. Oversize
    // requests get a dedicated slab so the common slabs stay uniform.
    while (next_slab_ < slabs_.size()) {
      const std::size_t idx = next_slab_++;
      if (slab_sizes_[idx] >= n) {
        cursor_ = slabs_[idx].get();
        avail_ = slab_sizes_[idx];
        return;
      }
    }
    const std::size_t size = n > slab_bytes_ ? n : slab_bytes_;
    slabs_.push_back(std::make_unique<std::uint8_t[]>(size));
    slab_sizes_.push_back(size);
    next_slab_ = slabs_.size();
    cursor_ = slabs_.back().get();
    avail_ = size;
  }

  std::size_t slab_bytes_;
  std::vector<std::unique_ptr<std::uint8_t[]>> slabs_;
  std::vector<std::size_t> slab_sizes_;
  std::size_t next_slab_ = 0;  // first retained slab not yet in use
  std::uint8_t* cursor_ = nullptr;
  std::size_t avail_ = 0;
  std::size_t allocated_ = 0;
};

}  // namespace hmr
