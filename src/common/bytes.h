// Byte-buffer utilities: append-only writer and bounds-checked reader
// with fixed-width little-endian integers, LEB128 varints, and
// length-prefixed byte strings. Used by the IFile segment format and
// the shuffle wire protocol.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hmr {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes* out) : external_(out) {}

  void put_u8(std::uint8_t v) { buf().push_back(v); }
  void put_u16(std::uint16_t v) { put_fixed(v); }
  void put_u32(std::uint32_t v) { put_fixed(v); }
  void put_u64(std::uint64_t v) { put_fixed(v); }
  void put_i64(std::int64_t v) { put_fixed(static_cast<std::uint64_t>(v)); }
  void put_double(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_fixed(bits);
  }
  // Unsigned LEB128.
  void put_varint(std::uint64_t v);
  // ZigZag-encoded signed varint.
  void put_varint_signed(std::int64_t v);
  void put_bytes(std::span<const std::uint8_t> data) {
    buf().insert(buf().end(), data.begin(), data.end());
  }
  void put_string(std::string_view s);  // varint length + bytes
  void put_length_prefixed(std::span<const std::uint8_t> data);

  size_t size() const { return buf().size(); }
  const Bytes& data() const { return buf(); }
  Bytes take() { return std::move(owned_); }

 private:
  template <typename T>
  void put_fixed(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf().push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes& buf() { return external_ ? *external_ : owned_; }
  const Bytes& buf() const { return external_ ? *external_ : owned_; }

  Bytes owned_;
  Bytes* external_ = nullptr;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16() { return fixed<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return fixed<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return fixed<std::uint64_t>(); }
  Result<std::int64_t> i64();
  Result<double> f64();
  Result<std::uint64_t> varint();
  Result<std::int64_t> varint_signed();
  Result<std::span<const std::uint8_t>> bytes(size_t n);
  Result<std::string> string();  // varint length + bytes
  Result<std::span<const std::uint8_t>> length_prefixed();

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> fixed() {
    if (remaining() < sizeof(T)) {
      return Status::OutOfRange("short read of fixed integer");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace hmr
