// Minimal dependency-free JSON tree: build + dump for the machine-
// readable bench pipeline (BENCH_*.json), parse for tools/bench_check
// and for round-trip tests. Not a general-purpose library: numbers are
// doubles, object key order is preserved as inserted, and parse errors
// report a byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hmr {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double n) : type_(Type::kNumber), num_(n) {}
  explicit Json(std::int64_t n) : type_(Type::kNumber), num_(double(n)) {}
  explicit Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Json(std::string_view s) : Json(std::string(s)) {}
  explicit Json(const char* s) : Json(std::string(s)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool dflt = false) const {
    return is_bool() ? bool_ : dflt;
  }
  double as_double(double dflt = 0.0) const {
    return is_number() ? num_ : dflt;
  }
  std::int64_t as_int(std::int64_t dflt = 0) const {
    return is_number() ? std::int64_t(num_) : dflt;
  }
  const std::string& as_string() const { return str_; }

  // --- object ---
  void set(std::string key, Json value);
  // nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& items() const {
    return members_;
  }

  // --- array ---
  void push_back(Json value) { elements_.push_back(std::move(value)); }
  size_t size() const {
    return is_object() ? members_.size() : elements_.size();
  }
  const Json& at(size_t i) const { return elements_.at(i); }
  const std::vector<Json>& elements() const { return elements_; }

  // Compact serialization (no whitespace).
  std::string dump() const;

  static Result<Json> parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> elements_;                          // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

}  // namespace hmr
