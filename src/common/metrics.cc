#include "common/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/json.h"
#include "common/status.h"

namespace hmr {

int Histogram::bucket_for(double v) {
  if (v <= 0.0) return 0;
  const int b = 1 + std::ilogb(v) + 32;  // center tiny values near bucket 32
  return std::clamp(b, 0, kBuckets - 1);
}

void Histogram::record(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  ++buckets_[bucket_for(v)];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * double(count_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      // Bucket b holds values in [2^(b-33), 2^(b-32)); report the midpoint,
      // clamped to the observed range.
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 33);
      const double hi = std::ldexp(1.0, b - 32);
      return std::clamp((lo + hi) / 2.0, min_, max_);
    }
  }
  return max_;
}

void Histogram::reset() { *this = Histogram{}; }

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  HMR_CHECK_MSG(!bounds_.empty(), "FixedHistogram needs at least one bound");
  HMR_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "FixedHistogram bounds must be ascending");
}

void FixedHistogram::record(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[size_t(it - bounds_.begin())];
}

double FixedHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * double(count_ - 1));
  std::uint64_t seen = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    if (seen + counts_[b] > target) {
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      const double hi = b < bounds_.size() ? bounds_[b] : max_;
      // Linear interpolation of the target's position inside the bucket.
      const double frac =
          double(target - seen) / double(counts_[b]);
      return std::clamp(lo + (hi - lo) * frac, min_, max_);
    }
    seen += counts_[b];
  }
  return max_;
}

void FixedHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::vector<double> latency_buckets() {
  // 1us, 4us, 16us, ... x4 up to 1024s: 16 buckets spanning every
  // simulated latency the shuffle path produces.
  std::vector<double> bounds;
  for (double b = 1e-6; b <= 1100.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

FixedHistogram& MetricsRegistry::fixed_histogram(
    std::string_view name, const std::vector<double>& upper_bounds) {
  auto it = fixed_.find(name);
  if (it == fixed_.end()) {
    it = fixed_.emplace(std::string(name), FixedHistogram(upper_bounds))
             .first;
  }
  return it->second;
}

std::int64_t MetricsRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const FixedHistogram* MetricsRegistry::find_fixed_histogram(
    std::string_view name) const {
  auto it = fixed_.find(name);
  return it == fixed_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::counters()
    const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

namespace {

template <typename H>
HistogramSummary summarize(const H& h) {
  HistogramSummary s;
  s.count = h.count();
  s.sum = h.sum();
  s.mean = h.mean();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.quantile(0.5);
  s.p99 = h.quantile(0.99);
  return s;
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g.value();
    snap.gauge_maxima[name] = g.max_value();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = summarize(h);
  }
  for (const auto& [name, h] : fixed_) snap.histograms[name] = summarize(h);
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  Json root = Json::object();
  Json jc = Json::object();
  for (const auto& [name, v] : counters) jc.set(name, Json(double(v)));
  root.set("counters", std::move(jc));
  Json jg = Json::object();
  for (const auto& [name, v] : gauges) jg.set(name, Json(v));
  root.set("gauges", std::move(jg));
  Json jm = Json::object();
  for (const auto& [name, v] : gauge_maxima) jm.set(name, Json(v));
  root.set("gauge_maxima", std::move(jm));
  Json jh = Json::object();
  for (const auto& [name, s] : histograms) {
    Json one = Json::object();
    one.set("count", Json(double(s.count)));
    one.set("sum", Json(s.sum));
    one.set("mean", Json(s.mean));
    one.set("min", Json(s.min));
    one.set("max", Json(s.max));
    one.set("p50", Json(s.p50));
    one.set("p99", Json(s.p99));
    jh.set(name, std::move(one));
  }
  root.set("histograms", std::move(jh));
  return root.dump();
}

std::string MetricsRegistry::report() const {
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof line, "%-48s %lld\n", name.c_str(),
                  static_cast<long long>(c.value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof line, "%-48s %.6g (max %.6g)\n", name.c_str(),
                  g.value(), g.max_value());
    out += line;
  }
  const auto histogram_line = [&](const std::string& name, const auto& h) {
    std::snprintf(line, sizeof line,
                  "%-48s n=%llu mean=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  h.mean(), h.min(), h.quantile(0.5), h.quantile(0.99),
                  h.max());
    out += line;
  };
  for (const auto& [name, h] : histograms_) histogram_line(name, h);
  for (const auto& [name, h] : fixed_) histogram_line(name, h);
  return out;
}

void MetricsRegistry::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, g] : gauges_) g.reset();
  for (auto& [_, h] : histograms_) h.reset();
  for (auto& [_, h] : fixed_) h.reset();
}

}  // namespace hmr
