// Minimal leveled logger with printf formatting and an injectable
// time source so log lines carry *simulated* time inside the DES.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace hmr {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  // When set, each line is prefixed with "t=<now()>s"; used by sim::Engine.
  void set_time_source(std::function<double()> now) { now_ = std::move(now); }
  void clear_time_source() { now_ = nullptr; }

  void log(LogLevel level, const char* tag, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<double()> now_;
};

}  // namespace hmr

#define HMR_LOG(level, tag, ...)                                    \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::hmr::Logger::instance().level())) {      \
      ::hmr::Logger::instance().log((level), (tag), __VA_ARGS__);   \
    }                                                               \
  } while (0)

#define HMR_TRACE(tag, ...) HMR_LOG(::hmr::LogLevel::kTrace, tag, __VA_ARGS__)
#define HMR_DEBUG(tag, ...) HMR_LOG(::hmr::LogLevel::kDebug, tag, __VA_ARGS__)
#define HMR_INFO(tag, ...) HMR_LOG(::hmr::LogLevel::kInfo, tag, __VA_ARGS__)
#define HMR_WARN(tag, ...) HMR_LOG(::hmr::LogLevel::kWarn, tag, __VA_ARGS__)
#define HMR_ERROR(tag, ...) HMR_LOG(::hmr::LogLevel::kError, tag, __VA_ARGS__)
