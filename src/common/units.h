// Byte-size and time-unit parsing/formatting ("256MB", "4KB", "1.5GB").
// Sizes use binary units (1 KB = 1024 B) to match Hadoop conventions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hmr {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

// Parses "64", "64K", "64KB", "256MB", "1.5GB", "2TB" (case-insensitive,
// optional trailing 'b'/'B'). Returns bytes.
Result<std::uint64_t> parse_bytes(std::string_view text);

// "1536" -> "1.50KB"; exact multiples print without decimals ("256MB").
std::string format_bytes(std::uint64_t bytes);

// Seconds to "1234.5s" / "12m34s" style human string.
std::string format_duration(double seconds);

}  // namespace hmr
