#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/status.h"

namespace hmr {

void Table::add_row(std::vector<std::string> cells) {
  HMR_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::to_ascii() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += "+";
    sep.append(widths[c] + 2, '-');
  }
  sep += "+\n";

  std::string out = sep + emit_row(headers_) + sep;
  for (const auto& row : rows_) out += emit_row(row);
  out += sep;
  return out;
}

std::string Table::to_csv() const {
  auto emit = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) line += ",";
      line += row[c];
    }
    line += "\n";
    return line;
  };
  std::string out = emit(headers_);
  for (const auto& row : rows_) out += emit(row);
  return out;
}

}  // namespace hmr
