// Deterministic random number generation for the simulator and the
// workload generators (TeraGen, RandomWriter).
//
// xoshiro256** seeded via splitmix64; every simulated component derives
// its own stream from (seed, component-id) so runs are reproducible and
// insensitive to scheduling order.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace hmr {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// FNV-1a, used to fold component names into seed material.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// splitmix64 finalizer as a pure function: full-avalanche 64-bit mixing.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Stream derivation: sequential mixing, not a bare XOR. Folding the
// name hash in with `seed ^ fnv1a(stream)` lets distinct (seed, stream)
// pairs alias whenever the XORs coincide — e.g. seed2 = seed1 ^ h(a) ^
// h(b) replays stream `a`'s values on stream `b`. Mixing the seed to
// full avalanche *before* adding the hash, then mixing again, leaves no
// such linear structure.
constexpr std::uint64_t derive_stream_seed(std::uint64_t seed,
                                           std::string_view stream) {
  return mix64(mix64(seed + 0x9e3779b97f4a7c15ull) + fnv1a(stream));
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }
  Rng(std::uint64_t seed, std::string_view stream)
      : Rng(derive_stream_seed(seed, stream)) {}

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method, bias-free.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi], inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform() { return double(next() >> 11) * 0x1.0p-53; }

  // Exponential with the given mean (service-time jitter in the models).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace hmr
