// The fuzz loop: seed -> Scenario::generate -> check_scenario -> on
// failure, greedy shrink + FUZZ_<seed>.json repro record.
//
// Records are written in two stages for crash safety: the scenario goes
// to disk (status "running") *before* the first engine run, so even a
// scenario that trips an HMR_CHECK abort leaves a replayable record
// behind; passing seeds remove the file, failing seeds rewrite it with
// the verdict and the shrunk scenario. Replaying is just re-running:
// generation is a pure function of the seed, and scenario JSON
// round-trips, so `--replay <seed>` and `--replay-file <record>`
// reproduce the identical verdict.
#pragma once

#include <cstdint>
#include <string>

#include "simfuzz/oracle.h"
#include "simfuzz/scenario.h"

namespace hmr::simfuzz {

struct FuzzOptions {
  std::string out_dir = ".";  // FUZZ_<seed>.json destination
  bool shrink = true;
  int max_shrink_checks = 24;  // full-battery runs spent shrinking
  bool verbose = false;
  // Guarantee at least one storage-fault site per scenario
  // (Scenario::generate_with_disk_faults): the CI disk-fault sweep.
  bool force_disk_faults = false;
};

struct FuzzReport {
  Scenario scenario;
  Verdict verdict;
  // Simplest scenario still failing (== scenario when shrinking is off
  // or found nothing simpler), and its verdict.
  Scenario shrunk;
  Verdict shrunk_verdict;
  std::string record_path;  // written repro record; empty for passing runs

  bool ok() const { return verdict.ok(); }
};

// Schema "hmr-simfuzz-v1" repro record for a (possibly still running)
// report.
Json repro_record(const FuzzReport& report, const std::string& status);

// Checks `scenario`, shrinking and writing the repro record on failure.
FuzzReport check_and_report(const Scenario& scenario,
                            const FuzzOptions& options);

// One seed end to end. Replaying a seed is calling this again.
FuzzReport fuzz_one(std::uint64_t seed, const FuzzOptions& options);

// Seeds [base, base + count); returns the number of failing seeds.
int fuzz_range(std::uint64_t base, int count, const FuzzOptions& options);

// Loads a scenario from either a bare scenario JSON file (the committed
// corpus) or a FUZZ_*.json repro record (prefers the shrunk scenario).
Result<Scenario> load_scenario_file(const std::string& path);

// Greedy shrink: repeatedly takes the first shrink_candidate that still
// fails, spending at most `max_checks` full oracle batteries. Returns
// the simplest failing scenario found (possibly `failing` itself) and
// stores its verdict in *verdict.
Scenario shrink(const Scenario& failing, const Verdict& failing_verdict,
                int max_checks, Verdict* verdict, bool verbose);

}  // namespace hmr::simfuzz
