#include "simfuzz/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/units.h"
#include "net/profile.h"
#include "sim/fault.h"
#include "workloads/testbed.h"

namespace hmr::simfuzz {
namespace {

constexpr const char* kEngines[] = {"vanilla", "osu-ib", "hadoop-a"};

// The OSU-IB per-tracker cache default (rdmashuffle::RdmaShuffleOptions).
constexpr std::uint64_t kDefaultCacheBytes = 12ull * kGiB;

net::NetProfile vanilla_profile(const std::string& name) {
  if (name == "1gige") return net::NetProfile::one_gige();
  if (name == "10gige") return net::NetProfile::ten_gige();
  return net::NetProfile::ipoib_qdr();
}

std::string fmt(const char* format, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, format, args...);
  return buf;
}

void add(Verdict* verdict, std::string oracle, std::string engine,
         std::string detail) {
  verdict->violations.push_back(
      Violation{std::move(oracle), std::move(engine), std::move(detail)});
}

// Deterministic deployment recipe shared by the single-job runner and
// the multi-job oracle, so both execute byte-identical workloads.
struct ScenarioSetup {
  workloads::TestbedSpec bed_spec;
  workloads::DataGenSpec gen;
  Conf conf;  // base_conf + engine selection + workload scaling
  bool terasort = true;
};

ScenarioSetup scenario_setup(const Scenario& scenario,
                             const std::string& engine) {
  ScenarioSetup setup;
  setup.terasort = scenario.workload == "terasort";
  setup.bed_spec.nodes = scenario.nodes;
  setup.bed_spec.disks_per_node = scenario.disks;
  setup.bed_spec.ssd = scenario.ssd;
  setup.bed_spec.profile = engine == "vanilla"
                               ? vanilla_profile(scenario.vanilla_profile)
                               : net::NetProfile::verbs_qdr();
  setup.bed_spec.hdfs.block_size = scenario.block_bytes;
  setup.bed_spec.seed = scenario.seed;
  setup.bed_spec.parallel_workers = scenario.parallel_workers;

  const double scale =
      std::max(1.0, double(scenario.modeled_bytes) /
                        double(scenario.target_real_bytes));
  setup.gen.dir = "/fuzz/in";
  setup.gen.modeled_total = scenario.modeled_bytes;
  setup.gen.part_modeled = scenario.block_bytes;
  setup.gen.scale = scale;
  setup.gen.seed = scenario.seed;
  if (!setup.terasort) setup.gen.record_inflation = std::max(1.0, scale / 32.0);

  setup.conf = scenario.base_conf();
  setup.conf.set(mapred::kShuffleEngine, engine);
  setup.conf.set_double(mapred::kKvInflation,
                        setup.terasort ? scale : setup.gen.record_inflation);
  setup.conf.set_bytes(
      mapred::kMaxRecordBytes,
      setup.terasort ? std::uint64_t(102.0 * scale)
                     : std::uint64_t(20010.0 * setup.gen.record_inflation));
  return setup;
}

mapred::JobSpec make_job(const ScenarioSetup& setup, workloads::Testbed& bed,
                         const std::string& output_dir) {
  return setup.terasort
             ? workloads::terasort_job(bed.dfs(), setup.gen.dir, output_dir,
                                       setup.conf)
             : workloads::sort_job(bed.dfs(), setup.gen.dir, output_dir,
                                   setup.conf);
}

}  // namespace

Json Violation::to_json() const {
  Json j = Json::object();
  j.set("oracle", Json(oracle));
  j.set("engine", Json(engine));
  j.set("detail", Json(detail));
  return j;
}

Json Verdict::to_json() const {
  Json j = Json::array();
  for (const auto& violation : violations) j.push_back(violation.to_json());
  return j;
}

std::string Verdict::summary() const {
  if (ok()) return "ok";
  std::string out = std::to_string(violations.size()) + " violations: ";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out += ", ";
    out += violations[i].oracle;
    if (!violations[i].engine.empty()) out += "[" + violations[i].engine + "]";
  }
  return out;
}

std::string job_result_json(const mapred::JobResult& job) {
  Json j = Json::object();
  j.set("submit_time", Json(job.submit_time));
  j.set("maps_done_time", Json(job.maps_done_time));
  j.set("shuffle_start_time", Json(job.shuffle_start_time));
  j.set("shuffle_done_time", Json(job.shuffle_done_time));
  j.set("reduce_start_time", Json(job.reduce_start_time));
  j.set("finish_time", Json(job.finish_time));
  j.set("num_maps", Json(std::int64_t(job.num_maps)));
  j.set("num_reduces", Json(std::int64_t(job.num_reduces)));
  j.set("input_modeled_bytes", Json(std::int64_t(job.input_modeled_bytes)));
  j.set("shuffled_modeled_bytes",
        Json(std::int64_t(job.shuffled_modeled_bytes)));
  j.set("output_modeled_bytes", Json(std::int64_t(job.output_modeled_bytes)));
  j.set("output_records", Json(std::int64_t(job.output_records)));
  j.set("cache_hits", Json(std::int64_t(job.cache_hits)));
  j.set("cache_misses", Json(std::int64_t(job.cache_misses)));
  j.set("spills", Json(std::int64_t(job.spills)));
  j.set("failed_map_attempts", Json(std::int64_t(job.failed_map_attempts)));
  j.set("speculative_attempts", Json(std::int64_t(job.speculative_attempts)));
  j.set("speculative_wins", Json(std::int64_t(job.speculative_wins)));
  j.set("speculative_kills", Json(std::int64_t(job.speculative_kills)));
  j.set("speculative_cap_deferrals",
        Json(std::int64_t(job.speculative_cap_deferrals)));
  j.set("fetch_timeouts", Json(std::int64_t(job.fetch_timeouts)));
  j.set("fetch_retries", Json(std::int64_t(job.fetch_retries)));
  j.set("trackers_blacklisted", Json(std::int64_t(job.trackers_blacklisted)));
  j.set("map_refetch_reruns", Json(std::int64_t(job.map_refetch_reruns)));
  j.set("refetched_modeled_bytes",
        Json(std::int64_t(job.refetched_modeled_bytes)));
  j.set("checksum_mismatches", Json(std::int64_t(job.checksum_mismatches)));
  j.set("storage_io_retries", Json(std::int64_t(job.storage_io_retries)));
  j.set("spill_rewrites", Json(std::int64_t(job.spill_rewrites)));
  j.set("disk_full_events", Json(std::int64_t(job.disk_full_events)));
  j.set("cache_integrity_evictions",
        Json(std::int64_t(job.cache_integrity_evictions)));
  Json counters = Json::object();
  for (const auto& [name, value] : job.counters) {
    counters.set(name, Json(value));
  }
  j.set("counters", std::move(counters));
  auto metrics = Json::parse(job.metrics.to_json());
  HMR_CHECK(metrics.ok());
  j.set("metrics", std::move(*metrics));
  return j.dump();
}

EngineRun run_engine(const Scenario& scenario, const std::string& engine,
                     sim::EventQueue::Impl queue_impl, int parallel_workers) {
  EngineRun run;
  run.engine = engine;

  ScenarioSetup setup = scenario_setup(scenario, engine);
  setup.bed_spec.queue_impl = queue_impl;
  if (parallel_workers >= 1) {
    setup.bed_spec.parallel_workers = parallel_workers;
  }
  workloads::Testbed bed(setup.bed_spec);
  auto digest = bed.generate(setup.terasort ? "teragen" : "randomwriter",
                             setup.gen);
  HMR_CHECK_MSG(digest.ok(), "simfuzz: input generation failed");
  run.input_digest = *digest;

  mapred::JobSpec job = make_job(setup, bed, "/fuzz/out");

  sim::FaultPlan plan = scenario.build_fault_plan();
  if (!scenario.faults.empty()) {
    bed.cluster().inject_faults(plan);
    job.faults = &plan;
  }
  run.job = bed.run_job(std::move(job));
  // After run_job the engine has run dry: every in-flight transmit
  // completed, so conservation laws are checkable on this snapshot.
  run.end_metrics = bed.engine().metrics().snapshot();

  auto report = workloads::validate_output(bed.dfs(), "/fuzz/out");
  run.output_present = report.ok();
  if (report.ok()) run.validation = *report;
  run.result_json = job_result_json(run.job);
  return run;
}

void check_engine_run(const Scenario& scenario, const EngineRun& run,
                      Verdict* verdict) {
  const std::string& e = run.engine;
  const mapred::JobResult& job = run.job;
  const MetricsSnapshot& m = run.end_metrics;

  // --- output correctness -----------------------------------------------
  if (!run.output_present) {
    add(verdict, "output.missing", e, "no part files under /fuzz/out");
  } else {
    if (!run.validation.per_part_sorted) {
      add(verdict, "output.part_order", e, "a part file is out of order");
    }
    if (scenario.workload == "terasort" && !run.validation.globally_sorted) {
      add(verdict, "output.global_order", e,
          "terasort part files do not concatenate sorted");
    }
    if (run.validation.digest != run.input_digest) {
      add(verdict, "output.digest", e,
          fmt("records %llu -> %llu, checksum %016llx -> %016llx",
              (unsigned long long)run.input_digest.records,
              (unsigned long long)run.validation.digest.records,
              (unsigned long long)run.input_digest.checksum,
              (unsigned long long)run.validation.digest.checksum));
    }
  }

  // --- job shape --------------------------------------------------------
  if (job.num_maps != scenario.num_maps()) {
    add(verdict, "shape.num_maps", e,
        fmt("expected %d map tasks, job ran %d", scenario.num_maps(),
            job.num_maps));
  }
  if (job.num_reduces <= 0) {
    add(verdict, "shape.num_reduces", e,
        fmt("job ran %d reduce tasks", job.num_reduces));
  }

  // --- phase-time sanity ------------------------------------------------
  // Timestamps are checked raw: PhaseTimes clamps, so a negative span
  // would otherwise hide there.
  if (!(job.elapsed() > 0)) {
    add(verdict, "phase.elapsed", e, fmt("elapsed %g", job.elapsed()));
  }
  if (job.maps_done_time < job.submit_time ||
      job.maps_done_time > job.finish_time) {
    add(verdict, "phase.map_span", e,
        fmt("maps done at %g outside job [%g, %g]", job.maps_done_time,
            job.submit_time, job.finish_time));
  }
  if (job.shuffle_start_time >= 0 &&
      (job.shuffle_start_time < job.submit_time ||
       job.shuffle_done_time > job.finish_time ||
       job.shuffle_done_time < job.shuffle_start_time)) {
    add(verdict, "phase.shuffle_span", e,
        fmt("shuffle [%g, %g] outside job [%g, %g]", job.shuffle_start_time,
            job.shuffle_done_time, job.submit_time, job.finish_time));
  }
  const double overlap = job.overlap_fraction();
  if (std::isnan(overlap) || overlap < 0.0 || overlap > 1.0) {
    add(verdict, "phase.overlap_fraction", e, fmt("overlap %g", overlap));
  }

  // --- conservation laws ------------------------------------------------
  const auto counter = [&m](const char* name) { return m.counter(name); };
  if (counter("net.bytes") != counter("net.bytes_received")) {
    add(verdict, "conservation.net_bytes", e,
        fmt("sent %lld != received %lld",
            (long long)counter("net.bytes"),
            (long long)counter("net.bytes_received")));
  }
  if (counter("net.messages") != counter("net.messages_received")) {
    add(verdict, "conservation.net_messages", e,
        fmt("sent %lld != received %lld",
            (long long)counter("net.messages"),
            (long long)counter("net.messages_received")));
  }
  const auto requests = counter("shuffle.fetch.requests");
  const auto timeouts = counter("shuffle.fetch.timeouts");
  const auto retries = counter("shuffle.fetch.retries");
  if (!(retries <= timeouts && timeouts <= requests)) {
    add(verdict, "conservation.fetch_ladder", e,
        fmt("retries %lld <= timeouts %lld <= requests %lld violated",
            (long long)retries, (long long)timeouts, (long long)requests));
  }
  // JobResult recovery counters and their metric twins are incremented in
  // tandem; divergence means one path lost an increment.
  const auto twin = [&](const char* field, std::uint64_t result_value,
                        const char* metric) {
    if (std::int64_t(result_value) != counter(metric)) {
      add(verdict, std::string("conservation.twin.") + field, e,
          fmt("JobResult %llu != metric %lld",
              (unsigned long long)result_value, (long long)counter(metric)));
    }
  };
  twin("fetch_timeouts", job.fetch_timeouts, "shuffle.fetch.timeouts");
  twin("fetch_retries", job.fetch_retries, "shuffle.fetch.retries");
  twin("trackers_blacklisted", job.trackers_blacklisted,
       "shuffle.trackers.blacklisted");
  twin("map_refetch_reruns", job.map_refetch_reruns,
       "shuffle.refetch.reruns");
  twin("checksum_mismatches", job.checksum_mismatches,
       "integrity.checksum.mismatches");
  twin("storage_io_retries", job.storage_io_retries, "storage.io.retries");
  twin("spill_rewrites", job.spill_rewrites, "storage.spill.rewrites");
  twin("disk_full_events", job.disk_full_events, "storage.disk_full.events");
  twin("cache_integrity_evictions", job.cache_integrity_evictions,
       "cache.integrity.evictions");
  twin("speculative_attempts", job.speculative_attempts,
       "speculation.attempts");
  twin("speculative_wins", job.speculative_wins, "speculation.wins");
  twin("speculative_kills", job.speculative_kills, "speculation.kills");
  twin("speculative_cap_deferrals", job.speculative_cap_deferrals,
       "speculation.cap_deferrals");
  // Speculation conservation (DESIGN.md §6.2/§6.5): every backup launch
  // creates a race that exactly one attempt loses, so kills == attempts
  // (the winner may be the original or the backup, never both), and
  // wins — backups that committed — can never exceed launches.
  if (job.speculative_kills != job.speculative_attempts) {
    add(verdict, "conservation.speculation_kills", e,
        fmt("%llu backups launched but %llu attempts killed",
            (unsigned long long)job.speculative_attempts,
            (unsigned long long)job.speculative_kills));
  }
  if (job.speculative_wins > job.speculative_attempts) {
    add(verdict, "conservation.speculation_wins", e,
        fmt("%llu wins from %llu backups",
            (unsigned long long)job.speculative_wins,
            (unsigned long long)job.speculative_attempts));
  }
  if (!scenario.speculative &&
      (job.speculative_attempts != 0 || job.speculative_wins != 0 ||
       job.speculative_kills != 0 || job.speculative_cap_deferrals != 0)) {
    add(verdict, "conservation.speculation_disabled", e,
        fmt("speculation off but attempts=%llu wins=%llu kills=%llu "
            "deferrals=%llu",
            (unsigned long long)job.speculative_attempts,
            (unsigned long long)job.speculative_wins,
            (unsigned long long)job.speculative_kills,
            (unsigned long long)job.speculative_cap_deferrals));
  }
  // Every checksum mismatch must be accounted for by exactly one recovery
  // (or terminal-failure) action: a run cannot detect corruption and then
  // silently do nothing about it.
  const auto mismatches = counter("integrity.checksum.mismatches");
  const auto handled = counter("storage.corrupt.rereads") +
                       counter("storage.corrupt.read_failures") +
                       counter("storage.spill.rewrites") +
                       counter("storage.write.failures") +
                       counter("cache.integrity.evictions");
  if (mismatches != handled) {
    add(verdict, "conservation.integrity", e,
        fmt("%lld checksum mismatches but %lld recovery actions",
            (long long)mismatches, (long long)handled));
  }
  // Integrity is on by default in every fuzz scenario; at minimum each
  // map task's final output spill must have been written verified.
  if (counter("integrity.verified_segments") < std::int64_t(job.num_maps)) {
    add(verdict, "conservation.unverified_output", e,
        fmt("%lld verified segments for %d map tasks",
            (long long)counter("integrity.verified_segments"), job.num_maps));
  }
  if (counter("shuffle.malformed_msgs") != 0) {
    add(verdict, "conservation.malformed", e,
        fmt("%lld malformed shuffle messages",
            (long long)counter("shuffle.malformed_msgs")));
  }
  if (e == "osu-ib" && scenario.caching) {
    const std::uint64_t budget =
        scenario.cache_bytes > 0 ? scenario.cache_bytes : kDefaultCacheBytes;
    const double peak = m.gauge_max("cache.used_bytes");
    if (peak > double(budget)) {
      add(verdict, "conservation.cache_budget", e,
          fmt("cache used-bytes peaked at %.0f over budget %llu", peak,
              (unsigned long long)budget));
    }
  }
  if (!scenario.has_shuffle_faults()) {
    // A healthy fabric must look healthy: any nonzero fault counter means
    // an engine misattributed ordinary traffic to the fault machinery.
    for (const char* name :
         {"shuffle.fault.dropped_requests", "shuffle.fault.dropped_responses",
          "shuffle.fault.stalled_responses"}) {
      if (counter(name) != 0) {
        add(verdict, "conservation.healthy_fabric", e,
            fmt("%s = %lld with no faults injected", name,
                (long long)counter(name)));
      }
    }
  }
  if (!scenario.has_shuffle_faults() && !scenario.has_disk_faults()) {
    // The fetch-recovery ladder can legitimately fire under disk faults
    // too (an unreadable map output is dropped and re-fetched), so its
    // zero-check needs both fault classes absent.
    for (const char* name :
         {"shuffle.fetch.timeouts", "shuffle.trackers.blacklisted",
          "shuffle.refetch.reruns"}) {
      if (counter(name) != 0) {
        add(verdict, "conservation.healthy_fabric", e,
            fmt("%s = %lld with no faults injected", name,
                (long long)counter(name)));
      }
    }
  }
  if (!scenario.has_disk_faults()) {
    // Healthy disks must look healthy: the integrity machinery may only
    // act when storage faults are actually injected.
    for (const char* name :
         {"storage.io.errors", "storage.io.corrupt_reads",
          "storage.io.corrupt_writes", "storage.io.full_rejections",
          "storage.io.retries", "storage.corrupt.rereads",
          "storage.spill.rewrites", "storage.disk_full.events",
          "storage.mapout.unserved", "integrity.checksum.mismatches",
          "cache.integrity.evictions", "cache.pressure.evictions",
          "hdfs.replica.failovers", "hdfs.read.checksum_mismatches"}) {
      if (counter(name) != 0) {
        add(verdict, "conservation.healthy_disks", e,
            fmt("%s = %lld with no disk faults injected", name,
                (long long)counter(name)));
      }
    }
  }
}

void check_cross_engine(const std::vector<EngineRun>& runs,
                        Verdict* verdict) {
  if (runs.size() < 2) return;
  const EngineRun& ref = runs.front();
  for (size_t i = 1; i < runs.size(); ++i) {
    const EngineRun& other = runs[i];
    const std::string pair = ref.engine + " vs " + other.engine;
    if (other.input_digest != ref.input_digest) {
      add(verdict, "cross.input_digest", "",
          pair + ": engines consumed different inputs");
    }
    if (ref.output_present && other.output_present &&
        other.validation.digest != ref.validation.digest) {
      add(verdict, "cross.output_digest", "",
          fmt("%s: records %llu vs %llu, checksum %016llx vs %016llx",
              pair.c_str(),
              (unsigned long long)ref.validation.digest.records,
              (unsigned long long)other.validation.digest.records,
              (unsigned long long)ref.validation.digest.checksum,
              (unsigned long long)other.validation.digest.checksum));
    }
    if (other.job.output_records != ref.job.output_records) {
      add(verdict, "cross.output_records", "",
          fmt("%s: %llu vs %llu", pair.c_str(),
              (unsigned long long)ref.job.output_records,
              (unsigned long long)other.job.output_records));
    }
    if (other.job.num_maps != ref.job.num_maps ||
        other.job.num_reduces != ref.job.num_reduces) {
      add(verdict, "cross.task_counts", "",
          fmt("%s: %dx%d vs %dx%d tasks", pair.c_str(), ref.job.num_maps,
              ref.job.num_reduces, other.job.num_maps,
              other.job.num_reduces));
    }
  }
}

void check_multi_job(const Scenario& scenario, Verdict* verdict) {
  if (scenario.concurrent_jobs < 2) return;
  const std::string engine = "osu-ib";
  const int jobs = scenario.concurrent_jobs;
  const auto out_dir = [](int j) { return "/fuzz/out" + std::to_string(j); };

  // Concurrent leg: every job submitted through the JobTracker at time
  // zero, contending for the shared trackers under the fault plan.
  ScenarioSetup setup = scenario_setup(scenario, engine);
  workloads::Testbed bed(setup.bed_spec);
  auto digest = bed.generate(setup.terasort ? "teragen" : "randomwriter",
                             setup.gen);
  HMR_CHECK_MSG(digest.ok(), "simfuzz: multi-job input generation failed");
  sim::FaultPlan plan = scenario.build_fault_plan();
  if (!scenario.faults.empty()) bed.cluster().inject_faults(plan);
  std::vector<std::shared_ptr<mapred::SubmittedJob>> handles;
  for (int j = 1; j <= jobs; ++j) {
    mapred::JobSpec job = make_job(setup, bed, out_dir(j));
    job.name = "fuzz-" + std::to_string(j);
    if (!scenario.faults.empty()) job.faults = &plan;
    handles.push_back(bed.tracker().submit(std::move(job)));
  }
  bed.engine().run();

  // Starvation-freedom: every submitted job completed, and the scheduler
  // books agree (submitted == dispatched == completed, queue drained).
  for (int j = 1; j <= jobs; ++j) {
    if (!handles[size_t(j - 1)]->completed) {
      add(verdict, "multijob.starved", engine,
          fmt("job %d of %d never completed", j, jobs));
    }
  }
  const MetricsSnapshot end = bed.engine().metrics().snapshot();
  if (end.counter("scheduler.jobs.submitted") != jobs ||
      end.counter("scheduler.jobs.dispatched") != jobs ||
      end.counter("scheduler.jobs.completed") != jobs) {
    add(verdict, "multijob.scheduler_conservation", engine,
        fmt("submitted %lld dispatched %lld completed %lld for %d jobs",
            (long long)end.counter("scheduler.jobs.submitted"),
            (long long)end.counter("scheduler.jobs.dispatched"),
            (long long)end.counter("scheduler.jobs.completed"), jobs));
  }

  // Serial leg: a twin testbed (same seed, same fault plan) runs the
  // identical job list one at a time.
  workloads::Testbed serial_bed(setup.bed_spec);
  auto serial_digest = serial_bed.generate(
      setup.terasort ? "teragen" : "randomwriter", setup.gen);
  HMR_CHECK_MSG(serial_digest.ok(),
                "simfuzz: multi-job serial input generation failed");
  sim::FaultPlan serial_plan = scenario.build_fault_plan();
  if (!scenario.faults.empty()) serial_bed.cluster().inject_faults(serial_plan);
  for (int j = 1; j <= jobs; ++j) {
    mapred::JobSpec job = make_job(setup, serial_bed, out_dir(j));
    job.name = "fuzz-" + std::to_string(j);
    if (!scenario.faults.empty()) job.faults = &serial_plan;
    (void)serial_bed.run_job(std::move(job));
  }

  // Per-job byte-identity: each concurrent output matches the input
  // digest (nothing lost or duplicated under contention) and is
  // content-identical to its serial twin.
  for (int j = 1; j <= jobs; ++j) {
    auto concurrent = workloads::validate_output(bed.dfs(), out_dir(j));
    auto serial = workloads::validate_output(serial_bed.dfs(), out_dir(j));
    if (!concurrent.ok() || !serial.ok()) {
      add(verdict, "multijob.output_missing", engine,
          fmt("job %d: concurrent %s, serial %s", j,
              concurrent.ok() ? "present" : "missing",
              serial.ok() ? "present" : "missing"));
      continue;
    }
    if (concurrent->digest != *digest) {
      add(verdict, "multijob.output_digest", engine,
          fmt("job %d: records %llu -> %llu under contention", j,
              (unsigned long long)digest->records,
              (unsigned long long)concurrent->digest.records));
    }
    if (!concurrent->per_part_sorted ||
        (setup.terasort && !concurrent->globally_sorted)) {
      add(verdict, "multijob.output_order", engine,
          fmt("job %d output lost sort order under contention", j));
    }
    if (concurrent->digest != serial->digest) {
      add(verdict, "multijob.serial_identity", engine,
          fmt("job %d: concurrent checksum %016llx != serial %016llx", j,
              (unsigned long long)concurrent->digest.checksum,
              (unsigned long long)serial->digest.checksum));
    }
  }
}

void check_queue_equivalence(const Scenario& scenario, const EngineRun& ref,
                             Verdict* verdict) {
  const EngineRun legacy = run_engine(
      scenario, ref.engine, sim::EventQueue::Impl::kLegacyBinaryHeap);
  if (legacy.result_json != ref.result_json) {
    add(verdict, "queue.result_identity", ref.engine,
        "legacy binary-heap replay produced a different serialized "
        "JobResult than the 4-ary queue");
  }
}

void check_speculation_identity(const Scenario& scenario,
                                const EngineRun& ref, Verdict* verdict) {
  if (!scenario.speculative) return;
  // Same seed, same fault plan, same conf except the two speculation
  // switches: the replay's FaultPlan RNG stream is untouched by
  // speculation (compute faults are pure (host, time) queries), so the
  // two runs see identical injected faults.
  Scenario twin = scenario;
  twin.speculative = false;
  const EngineRun off = run_engine(twin, ref.engine);
  if (off.output_present != ref.output_present) {
    add(verdict, "speculation.result_identity", ref.engine,
        fmt("output %s with speculation, %s without",
            ref.output_present ? "present" : "missing",
            off.output_present ? "present" : "missing"));
    return;
  }
  if (!ref.output_present) return;
  if (off.validation.digest != ref.validation.digest) {
    add(verdict, "speculation.result_identity", ref.engine,
        fmt("records %llu/checksum %016llx with speculation vs "
            "%llu/%016llx without",
            (unsigned long long)ref.validation.digest.records,
            (unsigned long long)ref.validation.digest.checksum,
            (unsigned long long)off.validation.digest.records,
            (unsigned long long)off.validation.digest.checksum));
  }
  if (off.validation.per_part_sorted != ref.validation.per_part_sorted ||
      off.validation.globally_sorted != ref.validation.globally_sorted) {
    add(verdict, "speculation.result_identity", ref.engine,
        "sort-order validation diverged between speculation on and off");
  }
  if (off.job.output_records != ref.job.output_records) {
    add(verdict, "speculation.result_identity", ref.engine,
        fmt("JobResult output_records %llu with speculation vs %llu without",
            (unsigned long long)ref.job.output_records,
            (unsigned long long)off.job.output_records));
  }
}

void check_parallel_identity(const Scenario& scenario, const EngineRun& ref,
                             Verdict* verdict) {
  // Replay at the opposite pool width: a parallel scenario gets a serial
  // twin (the reference semantics), a serial scenario gets a 2-worker
  // twin — so EVERY scenario compares real worker threads against the
  // serial engine. Any divergence means a parallel fn broke the
  // host-independence contract (sim/parallel.h) or the staging drain
  // reordered effects.
  const int twin_workers = scenario.parallel_workers > 1 ? 1 : 2;
  const EngineRun twin = run_engine(
      scenario, ref.engine, sim::EventQueue::Impl::kFourAry, twin_workers);
  if (twin.result_json != ref.result_json) {
    add(verdict, "engine.parallel_identity", ref.engine,
        fmt("replay at sim.parallel.workers=%d produced a different "
            "serialized JobResult than workers=%d",
            twin_workers, scenario.parallel_workers));
  }
}

Verdict check_scenario(const Scenario& scenario) {
  Verdict verdict;
  std::vector<EngineRun> runs;
  for (const char* engine : kEngines) {
    runs.push_back(run_engine(scenario, engine));
    check_engine_run(scenario, runs.back(), &verdict);
  }
  check_cross_engine(runs, &verdict);
  check_multi_job(scenario, &verdict);
  // Old-vs-new event queue on the paper's engine: the serial dispatch
  // order is part of the determinism contract, so the whole serialized
  // JobResult (timestamps, counters, metrics) must be byte-identical.
  check_queue_equivalence(scenario, runs[1], &verdict);
  // Serial-vs-parallel on the paper's engine, always on: worker threads
  // may change where fn bodies run, never the simulated outcome.
  check_parallel_identity(scenario, runs[1], &verdict);
  // Speculation-on vs -off on the paper's engine (no-op unless the
  // scenario speculates): backups may change when tasks finish, never
  // the bytes the job writes.
  check_speculation_identity(scenario, runs[1], &verdict);
  if (scenario.check_determinism) {
    const EngineRun rerun = run_engine(scenario, "osu-ib");
    if (rerun.result_json != runs[1].result_json) {
      add(&verdict, "determinism.job_result", "osu-ib",
          "re-run produced a different serialized JobResult");
    }
  }
  return verdict;
}

}  // namespace hmr::simfuzz
