// The fuzzer's oracle battery. A Scenario is run through each shuffle
// engine by a non-aborting twin of workloads::run_experiment (validation
// failures become recorded Violations instead of HMR_CHECK aborts, so
// the fuzz loop can shrink and report), then checked against:
//
//  * per-engine: output present, sorted (globally for terasort), and
//    checksum-identical to the input digest; phase timestamps sane
//    (shuffle span inside the job span, overlap fraction in [0, 1]);
//    conservation laws over the engine's metrics registry (bytes sent ==
//    bytes received, retries <= timeouts <= requests, JobResult recovery
//    counters == their metric twins, cache used-bytes peak within
//    budget, zero fault/malformed counters on a healthy fabric).
//  * cross-engine: all engines consumed the identical input and produced
//    checksum-identical output with the same record count and task
//    counts — the paper's claim that the RDMA designs change *when*
//    bytes move, never *what* the job computes.
//  * sampled determinism: re-running one engine reproduces a
//    byte-identical serialized JobResult.
#pragma once

#include <string>
#include <vector>

#include "common/metrics.h"
#include "mapred/types.h"
#include "sim/event_queue.h"
#include "simfuzz/scenario.h"
#include "workloads/jobs.h"

namespace hmr::simfuzz {

// Everything one engine run exposes to the oracles.
struct EngineRun {
  std::string engine;  // "vanilla" | "osu-ib" | "hadoop-a"
  mapred::JobResult job;
  workloads::DatasetDigest input_digest;
  bool output_present = false;
  workloads::ValidationReport validation;
  // The engine registry AFTER run_job returned (the engine has run dry,
  // so in-flight transfers that straddled the job-end snapshot in
  // job.metrics have finished) — conservation laws hold only here.
  MetricsSnapshot end_metrics;
  // Canonical serialization for the golden-determinism oracle.
  std::string result_json;
};

struct Violation {
  std::string oracle;  // dotted id, e.g. "conservation.net_bytes"
  std::string engine;  // empty for cross-engine oracles
  std::string detail;

  Json to_json() const;
};

struct Verdict {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  Json to_json() const;
  // "ok" or "3 violations: conservation.net_bytes[osu-ib], ..."
  std::string summary() const;
};

// Canonical JobResult serialization: every timestamp, counter, and the
// metrics snapshot, insertion-ordered. Byte-equal strings <=> equal runs.
std::string job_result_json(const mapred::JobResult& job);

// Builds a fresh Testbed, generates input, runs the job under this
// scenario's fault plan, and collects the oracle inputs. Never aborts on
// wrong *output*; it still HMR_CHECKs on harness bugs (generation
// failure), and scenarios whose faults make completion impossible abort
// in the runtime by design (the generator never emits those).
// `queue_impl` selects the engine's event-queue implementation; the
// queue-equivalence oracle replays with the legacy binary heap.
// `parallel_workers` >= 1 overrides the scenario's worker-pool width
// (the parallel-identity oracle and the parallel stress suite replay
// the same scenario at several widths); -1 keeps the scenario's value.
EngineRun run_engine(
    const Scenario& scenario, const std::string& engine,
    sim::EventQueue::Impl queue_impl = sim::EventQueue::Impl::kFourAry,
    int parallel_workers = -1);

// Appends per-engine violations for one run.
void check_engine_run(const Scenario& scenario, const EngineRun& run,
                      Verdict* verdict);
// Appends cross-engine equivalence violations over all runs.
void check_cross_engine(const std::vector<EngineRun>& runs, Verdict* verdict);
// Multi-tenant oracle (no-op when scenario.concurrent_jobs < 2): runs
// the job list concurrently through a JobTracker and serially on a twin
// testbed, then demands every job completed (starvation-freedom), the
// scheduler's books balance, and each job's output is byte-identical to
// both the input digest and its serial twin.
void check_multi_job(const Scenario& scenario, Verdict* verdict);

// Event-queue equivalence oracle: replays one engine with the legacy
// binary-heap event queue and demands a byte-identical serialized
// JobResult. Both queues implement the same (timestamp, seq) total
// order, so ANY divergence is a queue bug, not a modeling change.
void check_queue_equivalence(const Scenario& scenario, const EngineRun& ref,
                             Verdict* verdict);

// Speculation byte-identity oracle (always on; no-op when the scenario
// runs without speculation): replays one engine with speculative
// execution disabled and demands the same output digest, record count,
// and sort order. Speculation is a scheduling optimization — first
// commit wins and the loser's output is discarded — so it may change
// *when* a task finishes, never *what* the job writes. Timings and
// counters legitimately differ, so only output-content fields are
// compared, not the serialized JobResult.
void check_speculation_identity(const Scenario& scenario,
                                const EngineRun& ref, Verdict* verdict);

// Serial-vs-parallel identity oracle (always on): replays one engine at
// the opposite worker-pool width (serial scenarios get workers=2,
// parallel scenarios get workers=1) and demands a byte-identical
// serialized JobResult. Divergence means a parallel fn violated the
// host-independence contract of sim/parallel.h.
void check_parallel_identity(const Scenario& scenario, const EngineRun& ref,
                             Verdict* verdict);

// The full battery: all three engines, per-engine + cross-engine checks,
// the old-vs-new event-queue replay, the serial-vs-parallel replay, plus
// the sampled determinism re-run when the scenario asks for it.
Verdict check_scenario(const Scenario& scenario);

}  // namespace hmr::simfuzz
