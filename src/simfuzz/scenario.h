// Deterministic simulation fuzzing (FoundationDB-style): a Scenario is
// one fully-specified randomized deployment — cluster shape, workload
// mix, engine knobs, and a sim::FaultPlan — drawn entirely from
// Rng(seed, stream) streams, so `Scenario::generate(seed)` is a pure
// function and any failure replays from its seed alone.
//
// Scenarios serialize to JSON (repro records, the committed corpus under
// tests/fuzz_corpus/) and shrink greedily: each candidate removes one
// source of complexity (fewer nodes, fewer maps, one fault site less)
// while `generate`'s invariants — at least one fault-free tracker,
// recovery knobs armed whenever faults exist — keep every candidate
// completable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/conf.h"
#include "common/json.h"
#include "common/status.h"
#include "sim/fault.h"

namespace hmr::simfuzz {

// One injected fault, as declarative data (FaultPlan is rebuilt from
// these on every run so replays see an identical plan and RNG stream).
struct FaultSite {
  // Network/service faults plus the storage fault classes of
  // sim::DiskFault (DESIGN.md §6.2); disk kinds reuse the same scalar
  // fields (prob = per-op probability, at/seconds = disk-full window,
  // at/factor = slow-disk degrade). Compute kinds (the straggler
  // injection of sim::ComputeFaults, DESIGN.md §6.5) reuse them too:
  // at = arm time, seconds = window length (0 = permanent for
  // cpu_degrade/task_slow; task_hang windows must be bounded), factor =
  // speed multiplier.
  enum class Kind { kKillTracker, kDropResponses, kStallResponses,
                    kDegradeNic, kDiskIoErrors, kDiskCorrupt,
                    kDiskCacheCorrupt, kDiskFull, kDiskSlow,
                    kCpuDegrade, kTaskHang, kTaskSlow };
  Kind kind = Kind::kDropResponses;
  int host = 1;          // compute hosts are 1..nodes (0 is the master)
  double at = 0.0;       // kill/degrade/full/slow arm time, seconds
  double prob = 0.0;     // drop/stall/io-error/corrupt probability
  double seconds = 0.0;  // stall duration / disk-full window length
  double factor = 1.0;   // NIC or disk bandwidth multiplier

  bool operator==(const FaultSite&) const = default;
};

const char* fault_kind_name(FaultSite::Kind kind);

struct Scenario {
  std::uint64_t seed = 1;

  // Cluster shape.
  int nodes = 3;
  int disks = 1;
  bool ssd = false;

  // Workload mix.
  std::string workload = "terasort";  // "terasort" | "sort"
  std::uint64_t modeled_bytes = 256ull * 1024 * 1024;
  std::uint64_t block_bytes = 32ull * 1024 * 1024;
  std::uint64_t target_real_bytes = 1ull * 1024 * 1024;

  // Fabric for the vanilla engine ("1gige" | "10gige" | "ipoib"); the
  // RDMA engines always run on verbs.
  std::string vanilla_profile = "ipoib";

  // Engine knobs.
  bool caching = true;
  std::uint64_t cache_bytes = 0;  // 0 = engine default
  std::uint64_t packet_bytes = 0;  // 0 = engine default
  int responder_threads = 0;       // 0 = engine default
  bool overlap_reduce = true;

  // Task-level fault knobs (map re-execution / speculation paths).
  double map_failure_prob = 0.0;
  double straggler_prob = 0.0;
  bool speculative = false;

  // Multi-tenant dimension: when > 1, the oracle additionally runs this
  // many copies of the job concurrently through a JobTracker and demands
  // per-job byte-identity against a serial execution of the same
  // scenario (scheduling may change *when* bytes move, never *what*
  // each job computes).
  int concurrent_jobs = 1;

  // Parallel-engine dimension (sim.parallel.workers): the worker-pool
  // width every engine run of this scenario uses. The always-on
  // engine.parallel_identity oracle replays one engine serially and
  // demands a byte-identical JobResult, so any fuzzed value > 1
  // exercises real worker threads against the serial reference.
  int parallel_workers = 1;

  // Fault plan (network and disk sites together); empty = healthy run.
  std::vector<FaultSite> faults;

  // When set, the harness re-runs one engine and demands a byte-identical
  // serialized JobResult (the golden-determinism oracle, sampled so the
  // fuzz loop stays within budget).
  bool check_determinism = false;

  // Pure function of the seed: every field is drawn from its own
  // Rng(seed, "simfuzz.<field>") stream, so adding fields later does not
  // perturb the values existing seeds generate.
  static Scenario generate(std::uint64_t seed);

  // generate(seed), then guarantees at least one disk-fault site (drawn
  // from its own stream, so the rest of the scenario is unchanged).
  // Single-node scenarios are widened to two nodes so HDFS recovery has
  // a peer replica to fail over to.
  static Scenario generate_with_disk_faults(std::uint64_t seed);

  // Rebuilds the seeded fault plan this scenario describes.
  sim::FaultPlan build_fault_plan() const;
  bool has_shuffle_faults() const;  // any kill/drop/stall/degrade-NIC site
  bool has_disk_faults() const;     // any kDisk* site
  bool has_compute_faults() const;  // any cpu-degrade/task-hang/-slow site

  // Conf shared by every engine run of this scenario (engine selection
  // is layered on top by the runner).
  Conf base_conf() const;

  int num_maps() const {
    return int((modeled_bytes + block_bytes - 1) / block_bytes);
  }

  Json to_json() const;
  static Result<Scenario> from_json(const Json& json);

  // Greedy shrink steps, most-aggressive first. Every candidate is a
  // valid, completable scenario strictly simpler than *this.
  std::vector<Scenario> shrink_candidates() const;

  // One-line description for logs: "seed=7 terasort 3n 256MiB 2 faults".
  std::string summary() const;

  bool operator==(const Scenario&) const = default;
};

}  // namespace hmr::simfuzz
