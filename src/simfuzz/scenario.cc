#include "simfuzz/scenario.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <map>

#include "common/rng.h"
#include "common/units.h"
#include "mapred/types.h"

namespace hmr::simfuzz {
namespace {

// Each field draws from its own stream so the generated value of one
// field never depends on how many draws another field consumed.
Rng field_rng(std::uint64_t seed, const char* field) {
  return Rng(seed, std::string("simfuzz.") + field);
}

std::uint64_t pick(Rng& rng, std::initializer_list<std::uint64_t> choices) {
  auto it = choices.begin();
  std::advance(it, rng.below(choices.size()));
  return *it;
}

bool is_disk_kind(FaultSite::Kind kind) {
  switch (kind) {
    case FaultSite::Kind::kDiskIoErrors:
    case FaultSite::Kind::kDiskCorrupt:
    case FaultSite::Kind::kDiskCacheCorrupt:
    case FaultSite::Kind::kDiskFull:
    case FaultSite::Kind::kDiskSlow:
      return true;
    default:
      return false;
  }
}

bool is_compute_kind(FaultSite::Kind kind) {
  return kind == FaultSite::Kind::kCpuDegrade ||
         kind == FaultSite::Kind::kTaskHang ||
         kind == FaultSite::Kind::kTaskSlow;
}

// One random compute-fault (straggler) site. Values stay in the ranges
// sim::ComputeFaults accepts — bounded hang windows, positive speed
// factors — so every scenario completes and its speculation-disabled
// replay (the speculation.result_identity oracle) terminates too.
FaultSite random_compute_site(Rng& rng, int nodes) {
  FaultSite fault;
  fault.host = int(rng.range(1, nodes));
  fault.at = 20.0 * rng.uniform();
  const std::uint64_t roll = rng.below(100);
  if (roll < 40) {
    fault.kind = FaultSite::Kind::kCpuDegrade;
    fault.factor = 0.25 + 0.5 * rng.uniform();  // 4x .. 1.3x slower
    fault.seconds = rng.chance(0.5) ? 5.0 + 15.0 * rng.uniform() : 0.0;
  } else if (roll < 70) {
    fault.kind = FaultSite::Kind::kTaskHang;
    fault.seconds = 1.0 + 7.0 * rng.uniform();  // hangs must be bounded
  } else {
    fault.kind = FaultSite::Kind::kTaskSlow;
    fault.factor = 0.3 + 0.5 * rng.uniform();
    fault.seconds = rng.chance(0.5) ? 5.0 + 15.0 * rng.uniform() : 0.0;
  }
  return fault;
}

// Faults that take the host's shuffle service out of rotation. NIC and
// disk degradation only slow a host down, and disk corruption/errors are
// recovered per-operation, so neither disqualifies a tracker.
bool is_service_fault(FaultSite::Kind kind) {
  return kind == FaultSite::Kind::kKillTracker ||
         kind == FaultSite::Kind::kDropResponses ||
         kind == FaultSite::Kind::kStallResponses;
}

// Ensure at least one compute host carries no kill/drop/stall fault, so
// shuffle recovery always has a healthy tracker to re-execute maps on
// (runtime aborts by design when every tracker is blacklisted).
bool has_clean_tracker(int nodes, const std::vector<FaultSite>& faults) {
  for (int host = 1; host <= nodes; ++host) {
    bool clean = true;
    for (const auto& fault : faults) {
      if (fault.host == host && is_service_fault(fault.kind)) {
        clean = false;
        break;
      }
    }
    if (clean) return true;
  }
  return nodes > 0;  // vacuously true only for a degenerate empty cluster
}

// One random disk-fault site on a host other than `protected_host`, so
// at least one node's storage stays pristine (mirrors the clean-tracker
// invariant: recovery always has a healthy copy to fall back on).
// Probabilities are kept modest — the point is exercising the recovery
// ladders, not overwhelming their retry budgets.
FaultSite random_disk_site(Rng& rng, int nodes, int protected_host) {
  FaultSite fault;
  int host = int(rng.range(1, std::max(1, nodes - 1)));
  if (nodes > 1 && host >= protected_host) ++host;  // skip the protected host
  fault.host = host;
  const std::uint64_t roll = rng.below(100);
  if (roll < 30) {
    fault.kind = FaultSite::Kind::kDiskIoErrors;
    fault.prob = 0.02 + 0.18 * rng.uniform();
  } else if (roll < 55) {
    fault.kind = FaultSite::Kind::kDiskCorrupt;
    fault.prob = 0.02 + 0.10 * rng.uniform();
  } else if (roll < 75) {
    fault.kind = FaultSite::Kind::kDiskCacheCorrupt;
    fault.prob = 0.05 + 0.30 * rng.uniform();
  } else if (roll < 90) {
    fault.kind = FaultSite::Kind::kDiskFull;
    fault.at = 5.0 + 15.0 * rng.uniform();
    fault.seconds = 2.0 + 8.0 * rng.uniform();
  } else {
    fault.kind = FaultSite::Kind::kDiskSlow;
    fault.at = 20.0 * rng.uniform();
    fault.factor = 0.3 + 0.5 * rng.uniform();
  }
  return fault;
}

}  // namespace

const char* fault_kind_name(FaultSite::Kind kind) {
  switch (kind) {
    case FaultSite::Kind::kKillTracker: return "kill_tracker";
    case FaultSite::Kind::kDropResponses: return "drop_responses";
    case FaultSite::Kind::kStallResponses: return "stall_responses";
    case FaultSite::Kind::kDegradeNic: return "degrade_nic";
    case FaultSite::Kind::kDiskIoErrors: return "disk_io_errors";
    case FaultSite::Kind::kDiskCorrupt: return "disk_corrupt";
    case FaultSite::Kind::kDiskCacheCorrupt: return "disk_cache_corrupt";
    case FaultSite::Kind::kDiskFull: return "disk_full";
    case FaultSite::Kind::kDiskSlow: return "disk_slow";
    case FaultSite::Kind::kCpuDegrade: return "cpu_degrade";
    case FaultSite::Kind::kTaskHang: return "task_hang";
    case FaultSite::Kind::kTaskSlow: return "task_slow";
  }
  return "?";
}

Scenario Scenario::generate(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;

  {
    auto rng = field_rng(seed, "nodes");
    // Weighted toward small clusters: failures shrink better there.
    const std::uint64_t roll = rng.below(10);
    s.nodes = roll < 3 ? 2 : roll < 6 ? 3 : roll < 8 ? 4 : int(rng.range(5, 6));
    if (rng.chance(0.08)) s.nodes = 1;
  }
  {
    auto rng = field_rng(seed, "disks");
    s.disks = int(rng.range(1, 2));
    s.ssd = rng.chance(0.25);
  }
  {
    auto rng = field_rng(seed, "workload");
    s.workload = rng.chance(0.6) ? "terasort" : "sort";
  }
  {
    auto rng = field_rng(seed, "sizes");
    s.modeled_bytes = pick(rng, {64 * kMiB, 128 * kMiB, 256 * kMiB,
                                 512 * kMiB});
    s.block_bytes = pick(rng, {8 * kMiB, 16 * kMiB, 32 * kMiB, 64 * kMiB});
    s.block_bytes = std::min(s.block_bytes, s.modeled_bytes);
    // Keep the map count simulable: a fuzz scenario is one of hundreds.
    while (s.modeled_bytes / s.block_bytes > 32) s.block_bytes *= 2;
    s.target_real_bytes = pick(rng, {256 * kKiB, 512 * kKiB, 1 * kMiB});
  }
  {
    auto rng = field_rng(seed, "fabric");
    const std::uint64_t roll = rng.below(20);
    s.vanilla_profile = roll < 12 ? "ipoib" : roll < 17 ? "10gige" : "1gige";
  }
  {
    auto rng = field_rng(seed, "engine.knobs");
    s.caching = rng.chance(0.75);
    if (rng.chance(0.4)) {
      // Undersized budgets exercise eviction/recache churn (cache-thrash).
      s.cache_bytes = pick(rng, {1 * kMiB, 4 * kMiB, 16 * kMiB, 64 * kMiB});
    }
    if (rng.chance(0.5)) {
      s.packet_bytes = pick(rng, {64 * kKiB, 128 * kKiB, 256 * kKiB, 1 * kMiB});
    }
    if (rng.chance(0.5)) s.responder_threads = int(rng.range(1, 4));
    s.overlap_reduce = rng.chance(0.85);
  }
  {
    auto rng = field_rng(seed, "task.faults");
    if (rng.chance(0.3)) s.map_failure_prob = 0.02 + 0.13 * rng.uniform();
    if (rng.chance(0.3)) s.straggler_prob = 0.05 + 0.15 * rng.uniform();
    s.speculative = rng.chance(0.5);
  }
  if (s.nodes >= 2) {
    auto rng = field_rng(seed, "shuffle.faults");
    if (rng.chance(0.5)) {
      const int sites = int(rng.range(1, std::min(3, s.nodes - 1)));
      // One host is protected from service-level faults so recovery
      // always has somewhere to land.
      const int protected_host = int(rng.range(1, s.nodes));
      for (int i = 0; i < sites; ++i) {
        FaultSite fault;
        const std::uint64_t roll = rng.below(100);
        fault.kind = roll < 25   ? FaultSite::Kind::kKillTracker
                     : roll < 55 ? FaultSite::Kind::kDropResponses
                     : roll < 85 ? FaultSite::Kind::kStallResponses
                                 : FaultSite::Kind::kDegradeNic;
        if (fault.kind == FaultSite::Kind::kDegradeNic) {
          fault.host = int(rng.range(1, s.nodes));
          fault.at = 20.0 * rng.uniform();
          fault.factor = 0.2 + 0.7 * rng.uniform();
        } else {
          int host = int(rng.range(1, s.nodes - 1));
          if (host >= protected_host) ++host;  // skip the protected host
          fault.host = host;
          switch (fault.kind) {
            case FaultSite::Kind::kKillTracker:
              fault.at = 20.0 * rng.uniform();
              break;
            case FaultSite::Kind::kDropResponses:
              fault.prob = 0.05 + 0.35 * rng.uniform();
              break;
            case FaultSite::Kind::kStallResponses:
              fault.prob = 0.05 + 0.35 * rng.uniform();
              fault.seconds = 1.0 + 7.0 * rng.uniform();
              break;
            default:
              break;
          }
        }
        s.faults.push_back(fault);
      }
    }
  }
  if (s.nodes >= 2) {
    // Disk faults need a peer with clean storage (HDFS failover source,
    // re-execution target), so single-node scenarios stay disk-healthy.
    auto rng = field_rng(seed, "disk.faults");
    if (rng.chance(0.35)) {
      const int sites = int(rng.range(1, 2));
      const int protected_host = int(rng.range(1, s.nodes));
      for (int i = 0; i < sites; ++i) {
        s.faults.push_back(random_disk_site(rng, s.nodes, protected_host));
      }
    }
  }
  {
    // Straggler injection (compute faults): slow or frozen hosts are the
    // scenarios speculative execution exists for, so pair the two —
    // a scenario that draws compute faults also forces speculation on
    // half the time beyond the independent `speculative` draw.
    auto rng = field_rng(seed, "compute.faults");
    if (s.nodes >= 2 && rng.chance(0.3)) {
      const int sites = int(rng.range(1, 2));
      for (int i = 0; i < sites; ++i) {
        s.faults.push_back(random_compute_site(rng, s.nodes));
      }
      if (rng.chance(0.5)) s.speculative = true;
    }
  }
  {
    // Kept rare: each multi-job scenario costs a concurrent run plus a
    // serial comparator on top of the three per-engine runs.
    auto rng = field_rng(seed, "multijob");
    if (rng.chance(0.15)) s.concurrent_jobs = int(rng.range(2, 3));
  }
  {
    auto rng = field_rng(seed, "determinism");
    s.check_determinism = rng.chance(0.125);
  }
  {
    // Half the corpus runs with a real worker pool so the serial-vs-
    // parallel identity oracle (and TSan underneath it) sees constant
    // traffic; widths beyond the host count are deliberately possible.
    auto rng = field_rng(seed, "parallel");
    if (rng.chance(0.5)) {
      const int widths[] = {2, 4, 8};
      s.parallel_workers = widths[std::size_t(rng.range(0, 2))];
    }
  }
  return s;
}

Scenario Scenario::generate_with_disk_faults(std::uint64_t seed) {
  Scenario s = generate(seed);
  if (s.has_disk_faults()) return s;
  if (s.nodes < 2) s.nodes = 2;  // a 1-node scenario carries no faults
  auto rng = field_rng(seed, "disk.faults.forced");
  const int protected_host = int(rng.range(1, s.nodes));
  s.faults.push_back(random_disk_site(rng, s.nodes, protected_host));
  return s;
}

sim::FaultPlan Scenario::build_fault_plan() const {
  sim::FaultPlan plan(seed);
  std::map<int, sim::DiskFault> disk;
  for (const auto& fault : faults) {
    switch (fault.kind) {
      case FaultSite::Kind::kKillTracker:
        plan.kill_tracker(fault.host, fault.at);
        break;
      case FaultSite::Kind::kDropResponses:
        plan.drop_responses(fault.host, fault.prob);
        break;
      case FaultSite::Kind::kStallResponses:
        plan.stall_responses(fault.host, fault.prob, fault.seconds);
        break;
      case FaultSite::Kind::kDegradeNic:
        plan.degrade_nic(fault.host, fault.at, fault.factor);
        break;
      case FaultSite::Kind::kDiskIoErrors:
        disk[fault.host].io_error_prob = fault.prob;
        break;
      case FaultSite::Kind::kDiskCorrupt:
        // One knob drives both directions: reads return flipped bytes,
        // writes silently land corrupt (caught by write-verify).
        disk[fault.host].read_corrupt_prob = fault.prob;
        disk[fault.host].write_corrupt_prob = fault.prob;
        break;
      case FaultSite::Kind::kDiskCacheCorrupt:
        disk[fault.host].cache_corrupt_prob = fault.prob;
        break;
      case FaultSite::Kind::kDiskFull:
        disk[fault.host].full_at = fault.at;
        disk[fault.host].full_duration = fault.seconds;
        break;
      case FaultSite::Kind::kDiskSlow:
        disk[fault.host].slow_at = fault.at;
        disk[fault.host].slow_factor = fault.factor;
        break;
      case FaultSite::Kind::kCpuDegrade:
        plan.degrade_cpu(fault.host, fault.at, fault.factor, fault.seconds);
        break;
      case FaultSite::Kind::kTaskHang:
        plan.hang_tasks(fault.host, fault.at, fault.seconds);
        break;
      case FaultSite::Kind::kTaskSlow:
        plan.slow_tasks(fault.host, fault.at, fault.seconds, fault.factor);
        break;
    }
  }
  for (const auto& [host, fault] : disk) plan.disk_fault(host, fault);
  return plan;
}

bool Scenario::has_shuffle_faults() const {
  return std::any_of(faults.begin(), faults.end(), [](const FaultSite& f) {
    return !is_disk_kind(f.kind) && !is_compute_kind(f.kind);
  });
}

bool Scenario::has_disk_faults() const {
  return std::any_of(faults.begin(), faults.end(), [](const FaultSite& f) {
    return is_disk_kind(f.kind);
  });
}

bool Scenario::has_compute_faults() const {
  return std::any_of(faults.begin(), faults.end(), [](const FaultSite& f) {
    return is_compute_kind(f.kind);
  });
}

Conf Scenario::base_conf() const {
  Conf conf;
  conf.set_bool(mapred::kCachingEnabled, caching);
  if (cache_bytes > 0) conf.set_bytes(mapred::kCacheBytes, cache_bytes);
  if (packet_bytes > 0) conf.set_bytes(mapred::kRdmaPacketBytes, packet_bytes);
  if (responder_threads > 0) {
    conf.set_int(mapred::kResponderThreads, responder_threads);
  }
  conf.set_bool(mapred::kOverlapReduce, overlap_reduce);
  if (map_failure_prob > 0) {
    conf.set_double(mapred::kMapFailureProb, map_failure_prob);
    // Generous budget: aborting the job on an unlucky attempt streak
    // would be a harness false positive, not an engine bug.
    conf.set_int(mapred::kMaxTaskAttempts, 50);
  }
  if (straggler_prob > 0) {
    conf.set_double(mapred::kStragglerProb, straggler_prob);
  }
  conf.set_bool(mapred::kSpeculativeExecution, speculative);
  conf.set_bool(mapred::kReduceSpeculativeExecution, speculative);
  if (has_shuffle_faults() || has_disk_faults() || has_compute_faults()) {
    // Compute faults are included: a 4x-degraded host serves fetches
    // slowly enough that a watchdog could fire, and recovery must be
    // armed wherever a timeout is possible.
    // Recovery must be armed or a killed tracker hangs the job (and an
    // unreadable map output, dropped by the responder, needs the fetch
    // watchdog to trigger re-execution). The timeout is far above any
    // healthy fetch (even 1GigE under incast) so only injected faults
    // ever trip it.
    conf.set_double(mapred::kFetchTimeoutSec, 20.0);
    conf.set_double(mapred::kFetchBackoffBaseSec, 0.1);
    conf.set_double(mapred::kFetchBackoffMaxSec, 1.0);
    conf.set_int(mapred::kBlacklistFailures, 2);
    conf.set_int(mapred::kFetchMaxRetries, 200);
  }
  return conf;
}

Json Scenario::to_json() const {
  Json j = Json::object();
  j.set("seed", Json(std::int64_t(seed)));
  j.set("nodes", Json(std::int64_t(nodes)));
  j.set("disks", Json(std::int64_t(disks)));
  j.set("ssd", Json(ssd));
  j.set("workload", Json(workload));
  j.set("modeled_bytes", Json(std::int64_t(modeled_bytes)));
  j.set("block_bytes", Json(std::int64_t(block_bytes)));
  j.set("target_real_bytes", Json(std::int64_t(target_real_bytes)));
  j.set("vanilla_profile", Json(vanilla_profile));
  j.set("caching", Json(caching));
  j.set("cache_bytes", Json(std::int64_t(cache_bytes)));
  j.set("packet_bytes", Json(std::int64_t(packet_bytes)));
  j.set("responder_threads", Json(std::int64_t(responder_threads)));
  j.set("overlap_reduce", Json(overlap_reduce));
  j.set("map_failure_prob", Json(map_failure_prob));
  j.set("straggler_prob", Json(straggler_prob));
  j.set("speculative", Json(speculative));
  j.set("concurrent_jobs", Json(std::int64_t(concurrent_jobs)));
  j.set("parallel_workers", Json(std::int64_t(parallel_workers)));
  j.set("check_determinism", Json(check_determinism));
  Json sites = Json::array();
  for (const auto& fault : faults) {
    Json site = Json::object();
    site.set("kind", Json(fault_kind_name(fault.kind)));
    site.set("host", Json(std::int64_t(fault.host)));
    site.set("at", Json(fault.at));
    site.set("prob", Json(fault.prob));
    site.set("seconds", Json(fault.seconds));
    site.set("factor", Json(fault.factor));
    sites.push_back(std::move(site));
  }
  j.set("faults", std::move(sites));
  return j;
}

Result<Scenario> Scenario::from_json(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("scenario: not a JSON object");
  }
  const auto num = [&](const char* key, double dflt) {
    const Json* v = json.find(key);
    return v != nullptr && v->is_number() ? v->as_double() : dflt;
  };
  const auto boolean = [&](const char* key, bool dflt) {
    const Json* v = json.find(key);
    return v != nullptr && v->is_bool() ? v->as_bool() : dflt;
  };
  const auto str = [&](const char* key, const std::string& dflt) {
    const Json* v = json.find(key);
    return v != nullptr && v->is_string() ? v->as_string() : dflt;
  };

  Scenario s;
  s.seed = std::uint64_t(num("seed", 1));
  s.nodes = int(num("nodes", 3));
  s.disks = int(num("disks", 1));
  s.ssd = boolean("ssd", false);
  s.workload = str("workload", "terasort");
  s.modeled_bytes = std::uint64_t(num("modeled_bytes", double(256 * kMiB)));
  s.block_bytes = std::uint64_t(num("block_bytes", double(32 * kMiB)));
  s.target_real_bytes =
      std::uint64_t(num("target_real_bytes", double(1 * kMiB)));
  s.vanilla_profile = str("vanilla_profile", "ipoib");
  s.caching = boolean("caching", true);
  s.cache_bytes = std::uint64_t(num("cache_bytes", 0));
  s.packet_bytes = std::uint64_t(num("packet_bytes", 0));
  s.responder_threads = int(num("responder_threads", 0));
  s.overlap_reduce = boolean("overlap_reduce", true);
  s.map_failure_prob = num("map_failure_prob", 0.0);
  s.straggler_prob = num("straggler_prob", 0.0);
  s.speculative = boolean("speculative", false);
  // Default 1 keeps every pre-multitenant corpus file loadable.
  s.concurrent_jobs = int(num("concurrent_jobs", 1));
  // Default 1 (serial) keeps every pre-parallel corpus file loadable.
  s.parallel_workers = int(num("parallel_workers", 1));
  s.check_determinism = boolean("check_determinism", false);

  if (s.nodes < 1) return Status::InvalidArgument("scenario: nodes < 1");
  if (s.disks < 1 || s.disks > 2) {
    return Status::InvalidArgument("scenario: disks outside [1, 2]");
  }
  if (s.workload != "terasort" && s.workload != "sort") {
    return Status::InvalidArgument("scenario: unknown workload " + s.workload);
  }
  if (s.block_bytes == 0 || s.modeled_bytes == 0) {
    return Status::InvalidArgument("scenario: zero workload size");
  }
  if (s.concurrent_jobs < 1 || s.concurrent_jobs > 8) {
    return Status::InvalidArgument("scenario: concurrent_jobs outside [1, 8]");
  }
  if (s.parallel_workers < 1 || s.parallel_workers > 16) {
    return Status::InvalidArgument(
        "scenario: parallel_workers outside [1, 16]");
  }
  if (s.vanilla_profile != "ipoib" && s.vanilla_profile != "10gige" &&
      s.vanilla_profile != "1gige") {
    return Status::InvalidArgument("scenario: unknown vanilla profile " +
                                   s.vanilla_profile);
  }

  if (const Json* sites = json.find("faults");
      sites != nullptr && sites->is_array()) {
    for (const Json& site : sites->elements()) {
      FaultSite fault;
      const std::string kind = site.find("kind") != nullptr
                                   ? site.find("kind")->as_string()
                                   : "";
      if (kind == "kill_tracker") {
        fault.kind = FaultSite::Kind::kKillTracker;
      } else if (kind == "drop_responses") {
        fault.kind = FaultSite::Kind::kDropResponses;
      } else if (kind == "stall_responses") {
        fault.kind = FaultSite::Kind::kStallResponses;
      } else if (kind == "degrade_nic") {
        fault.kind = FaultSite::Kind::kDegradeNic;
      } else if (kind == "disk_io_errors") {
        fault.kind = FaultSite::Kind::kDiskIoErrors;
      } else if (kind == "disk_corrupt") {
        fault.kind = FaultSite::Kind::kDiskCorrupt;
      } else if (kind == "disk_cache_corrupt") {
        fault.kind = FaultSite::Kind::kDiskCacheCorrupt;
      } else if (kind == "disk_full") {
        fault.kind = FaultSite::Kind::kDiskFull;
      } else if (kind == "disk_slow") {
        fault.kind = FaultSite::Kind::kDiskSlow;
      } else if (kind == "cpu_degrade") {
        fault.kind = FaultSite::Kind::kCpuDegrade;
      } else if (kind == "task_hang") {
        fault.kind = FaultSite::Kind::kTaskHang;
      } else if (kind == "task_slow") {
        fault.kind = FaultSite::Kind::kTaskSlow;
      } else {
        return Status::InvalidArgument("scenario: unknown fault kind " + kind);
      }
      const auto site_num = [&](const char* key, double dflt) {
        const Json* v = site.find(key);
        return v != nullptr && v->is_number() ? v->as_double() : dflt;
      };
      fault.host = int(site_num("host", 1));
      fault.at = site_num("at", 0.0);
      fault.prob = site_num("prob", 0.0);
      fault.seconds = site_num("seconds", 0.0);
      fault.factor = site_num("factor", 1.0);
      if (fault.host < 1 || fault.host > s.nodes) {
        return Status::InvalidArgument("scenario: fault host outside cluster");
      }
      if (fault.prob < 0.0 || fault.prob > 1.0) {
        return Status::InvalidArgument("scenario: fault prob outside [0, 1]");
      }
      if (fault.seconds < 0.0) {
        return Status::InvalidArgument("scenario: fault seconds < 0");
      }
      if (fault.factor <= 0.0) {
        return Status::InvalidArgument("scenario: fault factor <= 0");
      }
      if (fault.kind == FaultSite::Kind::kTaskHang && fault.seconds <= 0.0) {
        // A permanent hang would never complete; ComputeFaults rejects it
        // too, but fail at load time with the file named.
        return Status::InvalidArgument(
            "scenario: task_hang requires seconds > 0");
      }
      s.faults.push_back(fault);
    }
  }
  return s;
}

std::vector<Scenario> Scenario::shrink_candidates() const {
  std::vector<Scenario> out;
  const auto add = [&](Scenario candidate) {
    if (candidate == *this) return;
    if (!has_clean_tracker(candidate.nodes, candidate.faults)) return;
    out.push_back(std::move(candidate));
  };

  // Remove one fault site at a time (most informative shrink first).
  for (size_t i = 0; i < faults.size(); ++i) {
    Scenario candidate = *this;
    candidate.faults.erase(candidate.faults.begin() + long(i));
    add(std::move(candidate));
  }
  // Fewer nodes; faults referencing removed hosts go with them.
  if (nodes > 1) {
    Scenario candidate = *this;
    candidate.nodes = nodes - 1;
    std::erase_if(candidate.faults, [&](const FaultSite& fault) {
      return fault.host > candidate.nodes;
    });
    add(std::move(candidate));
  }
  // Fewer maps: smaller workload, then coarser blocks.
  if (modeled_bytes / block_bytes > 1) {
    Scenario candidate = *this;
    candidate.modeled_bytes = std::max<std::uint64_t>(
        candidate.block_bytes, candidate.modeled_bytes / 2);
    add(std::move(candidate));
    candidate = *this;
    candidate.block_bytes =
        std::min(candidate.modeled_bytes, candidate.block_bytes * 2);
    add(std::move(candidate));
  }
  if (target_real_bytes > 128 * kKiB) {
    Scenario candidate = *this;
    candidate.target_real_bytes /= 2;
    add(std::move(candidate));
  }
  // Strip secondary sources of complexity one at a time.
  if (disks > 1 || ssd) {
    Scenario candidate = *this;
    candidate.disks = 1;
    candidate.ssd = false;
    add(std::move(candidate));
  }
  if (map_failure_prob > 0 || straggler_prob > 0 || speculative) {
    Scenario candidate = *this;
    candidate.map_failure_prob = 0;
    candidate.straggler_prob = 0;
    candidate.speculative = false;
    add(std::move(candidate));
  }
  if (cache_bytes != 0 || packet_bytes != 0 || responder_threads != 0) {
    Scenario candidate = *this;
    candidate.cache_bytes = 0;
    candidate.packet_bytes = 0;
    candidate.responder_threads = 0;
    add(std::move(candidate));
  }
  if (!overlap_reduce) {
    Scenario candidate = *this;
    candidate.overlap_reduce = true;
    add(std::move(candidate));
  }
  if (vanilla_profile != "ipoib") {
    Scenario candidate = *this;
    candidate.vanilla_profile = "ipoib";
    add(std::move(candidate));
  }
  if (concurrent_jobs > 1) {
    Scenario candidate = *this;
    candidate.concurrent_jobs = 1;
    add(std::move(candidate));
    if (concurrent_jobs > 2) {
      candidate = *this;
      candidate.concurrent_jobs = concurrent_jobs - 1;
      add(std::move(candidate));
    }
  }
  if (parallel_workers > 1) {
    // Back to the serial engine first (removes worker threads entirely),
    // then a narrower pool.
    Scenario candidate = *this;
    candidate.parallel_workers = 1;
    add(std::move(candidate));
    if (parallel_workers > 2) {
      candidate = *this;
      candidate.parallel_workers = 2;
      add(std::move(candidate));
    }
  }
  if (check_determinism) {
    Scenario candidate = *this;
    candidate.check_determinism = false;
    add(std::move(candidate));
  }
  return out;
}

std::string Scenario::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "seed=%llu %s %dn %lluMiB blocks=%lluMiB faults=%zu%s%s%s",
                static_cast<unsigned long long>(seed), workload.c_str(), nodes,
                static_cast<unsigned long long>(modeled_bytes / kMiB),
                static_cast<unsigned long long>(block_bytes / kMiB),
                faults.size(),
                concurrent_jobs > 1
                    ? (" x" + std::to_string(concurrent_jobs) + "jobs").c_str()
                    : "",
                parallel_workers > 1
                    ? (" w" + std::to_string(parallel_workers)).c_str()
                    : "",
                check_determinism ? " +determinism" : "");
  return buf;
}

}  // namespace hmr::simfuzz
