#include "simfuzz/fuzzer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hmr::simfuzz {
namespace {

std::string record_path(const FuzzOptions& options, std::uint64_t seed) {
  return options.out_dir + "/FUZZ_" + std::to_string(seed) + ".json";
}

bool write_file(const std::string& path, const std::string& body) {
  std::error_code ec;  // best-effort; the open below reports real failures
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << body << "\n";
  return bool(out);
}

}  // namespace

Json repro_record(const FuzzReport& report, const std::string& status) {
  Json j = Json::object();
  j.set("schema", Json("hmr-simfuzz-v1"));
  j.set("status", Json(status));
  j.set("seed", Json(std::int64_t(report.scenario.seed)));
  j.set("scenario", report.scenario.to_json());
  j.set("violations", report.verdict.to_json());
  if (!(report.shrunk == report.scenario)) {
    j.set("shrunk", report.shrunk.to_json());
    j.set("shrunk_violations", report.shrunk_verdict.to_json());
  }
  return j;
}

Scenario shrink(const Scenario& failing, const Verdict& failing_verdict,
                int max_checks, Verdict* verdict, bool verbose) {
  Scenario current = failing;
  *verdict = failing_verdict;
  int checks = 0;
  bool progressed = true;
  while (progressed && checks < max_checks) {
    progressed = false;
    for (const Scenario& candidate : current.shrink_candidates()) {
      if (checks >= max_checks) break;
      ++checks;
      Verdict v = check_scenario(candidate);
      if (!v.ok()) {
        if (verbose) {
          std::fprintf(stderr, "simfuzz: shrunk to %s (%s)\n",
                       candidate.summary().c_str(), v.summary().c_str());
        }
        current = candidate;
        *verdict = std::move(v);
        progressed = true;
        break;
      }
    }
  }
  return current;
}

FuzzReport check_and_report(const Scenario& scenario,
                            const FuzzOptions& options) {
  FuzzReport report;
  report.scenario = scenario;
  report.shrunk = scenario;

  // Crash safety: the scenario hits disk before the first engine run, so
  // an aborting scenario (an HMR_CHECK tripped mid-simulation) still
  // leaves a replayable record with status "running".
  const std::string path = record_path(options, scenario.seed);
  if (!write_file(path, repro_record(report, "running").dump())) {
    std::fprintf(stderr, "simfuzz: could not write %s\n", path.c_str());
  }

  report.verdict = check_scenario(scenario);
  if (report.verdict.ok()) {
    std::remove(path.c_str());
    return report;
  }
  report.shrunk_verdict = report.verdict;
  if (options.shrink) {
    report.shrunk = shrink(scenario, report.verdict,
                           options.max_shrink_checks,
                           &report.shrunk_verdict, options.verbose);
  }
  report.record_path = path;
  if (!write_file(path, repro_record(report, "failed").dump())) {
    std::fprintf(stderr, "simfuzz: could not write %s\n", path.c_str());
  }
  return report;
}

namespace {

Scenario generate_scenario(std::uint64_t seed, const FuzzOptions& options) {
  return options.force_disk_faults ? Scenario::generate_with_disk_faults(seed)
                                   : Scenario::generate(seed);
}

}  // namespace

FuzzReport fuzz_one(std::uint64_t seed, const FuzzOptions& options) {
  return check_and_report(generate_scenario(seed, options), options);
}

int fuzz_range(std::uint64_t base, int count, const FuzzOptions& options) {
  int failures = 0;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base + std::uint64_t(i);
    const Scenario scenario = generate_scenario(seed, options);
    if (options.verbose) {
      std::fprintf(stderr, "simfuzz: [%d/%d] %s\n", i + 1, count,
                   scenario.summary().c_str());
    }
    const FuzzReport report = check_and_report(scenario, options);
    if (!report.ok()) {
      ++failures;
      std::fprintf(stderr, "simfuzz: seed %llu FAILED (%s) -> %s\n",
                   static_cast<unsigned long long>(seed),
                   report.verdict.summary().c_str(),
                   report.record_path.c_str());
    }
  }
  return failures;
}

Result<Scenario> load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream body;
  body << in.rdbuf();
  auto parsed = Json::parse(body.str());
  if (!parsed.ok()) return parsed.status();
  const Json& root = *parsed;
  // A repro record wraps the scenario; prefer its shrunk form.
  if (const Json* schema = root.find("schema");
      schema != nullptr && schema->as_string() == "hmr-simfuzz-v1") {
    if (const Json* shrunk = root.find("shrunk")) {
      return Scenario::from_json(*shrunk);
    }
    if (const Json* scenario = root.find("scenario")) {
      return Scenario::from_json(*scenario);
    }
    return Status::InvalidArgument(path + ": record has no scenario");
  }
  return Scenario::from_json(root);
}

}  // namespace hmr::simfuzz
