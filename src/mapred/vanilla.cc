#include "mapred/vanilla.h"

#include <algorithm>

#include "common/crc32.h"
#include "dataplane/merger.h"
#include "mapred/integrity.h"
#include "sim/fault.h"
#include "sim/trace.h"

namespace hmr::mapred {
namespace {

constexpr std::uint64_t kTagRequest = 1;
constexpr std::uint64_t kTagResponse = 2;
constexpr std::uint64_t kRequestWireBytes = 150;  // HTTP GET + headers
// Responses echo {map_id, reduce_id, body_crc} ahead of the body: the
// ids let copiers match responses to requests and discard stale
// duplicates of timed-out fetches (stall faults can answer a request
// long after its retry); the CRC-32C carries the spill-time checksum
// end-to-end so the copier verifies what the mapper wrote.
constexpr std::uint64_t kResponsePrefixBytes = 12;

Bytes encode_request(int map_id, int reduce_id) {
  ByteWriter w;
  w.put_u32(std::uint32_t(map_id));
  w.put_u32(std::uint32_t(reduce_id));
  return w.take();
}

// A request is exactly {map_id, reduce_id}; anything truncated or with
// trailing bytes is malformed and must not crash the servlet.
Result<std::pair<int, int>> decode_request(const Bytes& data) {
  ByteReader r(data);
  const auto map_id = r.u32();
  if (!map_id.ok()) return map_id.status();
  const auto reduce_id = r.u32();
  if (!reduce_id.ok()) return reduce_id.status();
  if (!r.at_end()) {
    return Status::InvalidArgument("trailing bytes after shuffle request");
  }
  return std::pair<int, int>{int(*map_id), int(*reduce_id)};
}

}  // namespace

// Per-reduce shuffle state shared by the copier pool.
struct VanillaShuffleEngine::ReduceShuffleState {
  ReduceShuffleState(JobRuntime& job, int reduce_id, Host& host)
      : engine(job.engine),
        reduce_id(reduce_id),
        host(host),
        ready(job.engine, std::max<size_t>(1, job.maps.size())),
        merge_lock(job.engine, 1, "inmem.merge"),
        dial_lock(job.engine, 1, "copier.dial"),
        budget(job.spec.conf.get_bytes(kShuffleBufferBytes,
                                       kDefaultShuffleBufferBytes)) {}

  sim::Engine& engine;
  int reduce_id;
  Host& host;
  // The reduce attempt this shuffle serves (nullable). When its kill is
  // requested, copiers stop issuing fetches, merges are skipped, and the
  // engine unwinds straight to cleanup.
  TaskAttempt* attempt = nullptr;
  bool cancelled() const {
    return attempt != nullptr && attempt->kill_requested;
  }
  sim::Channel<int> ready;  // map ids in completion order

  // One keep-alive connection per tracker host. Shared-owned: the pump
  // coroutine and pending watchdog timers may outlive the reducer's
  // fetch phase. `lock` serializes request/response exchange — HTTP
  // keep-alive connections are not multiplexed — so only the lock
  // holder ever reads `events`.
  struct ConnState {
    explicit ConnState(sim::Engine& engine)
        : events(engine, 64), lock(engine, 1, "copier.conn") {}
    std::unique_ptr<net::Socket> sock;
    sim::Channel<FetchEvent> events;  // responses + watchdog expiries
    sim::Resource lock;
    std::uint64_t timer_seq = 0;
  };
  std::map<int, std::shared_ptr<ConnState>> conns;  // by host id

  sim::Resource merge_lock;
  // Serializes connection setup per tracker host.
  sim::Resource dial_lock;

  std::uint64_t budget;
  std::uint64_t in_mem_modeled = 0;
  std::vector<Segment> in_mem;
  std::vector<Segment> on_disk;
  int spill_seq = 0;
};

sim::Task<> VanillaShuffleEngine::start(JobRuntime& job) {
  fetch_rtt_ = &job.engine.metrics().latency_histogram("vanilla.fetch.rtt");
  daemons_ = std::make_unique<sim::WaitGroup>(job.engine);
  for (auto& tracker : job.trackers) {
    const int host_id = tracker->host->id();
    auto listener =
        std::make_unique<net::Listener>(job.network, *tracker->host);
    daemons_->add();
    job.engine.spawn(servlet_accept_loop(job, *listener, host_id));
    listeners_.emplace(host_id, std::move(listener));
  }
  co_return;
}

sim::Task<> VanillaShuffleEngine::stop(JobRuntime& job) {
  (void)job;
  for (auto& [_, listener] : listeners_) listener->close();
  co_await daemons_->wait();
}

sim::Task<> VanillaShuffleEngine::servlet_accept_loop(JobRuntime& job,
                                                      net::Listener& listener,
                                                      int host_id) {
  while (auto sock = co_await listener.accept()) {
    daemons_->add();
    job.engine.spawn(servlet_conn_loop(job, std::move(sock), host_id));
  }
  daemons_->done();
}

sim::Task<> VanillaShuffleEngine::servlet_conn_loop(
    JobRuntime& job, std::unique_ptr<net::Socket> sock, int host_id) {
  const std::uint64_t http_overhead =
      job.spec.conf.get_bytes(kHttpOverheadBytes, 300);
  TaskTrackerState& tracker = job.tracker_for_host(host_id);
  while (auto request = co_await sock->recv()) {
    HMR_CHECK(request->tag == kTagRequest && request->payload != nullptr);
    const auto decoded = decode_request(*request->payload);
    if (!decoded.ok()) {
      // Malformed frame: drop it rather than crash the servlet; the
      // copier's watchdog re-issues the request.
      job.metric.malformed_msgs.add();
      continue;
    }
    const auto [map_id, reduce_id] = *decoded;
    // Injected faults (sim/fault.h): a dead tracker's servlet stops
    // answering; a faulty one drops or stalls individual responses.
    // Copiers recover via timeout/retry/blacklist.
    if (job.spec.faults != nullptr) {
      sim::FaultPlan& faults = *job.spec.faults;
      if (faults.tracker_dead(host_id, job.engine.now())) {
        job.metric.fault_dropped_requests.add();
        continue;
      }
      double stall_seconds = 0;
      bool drop = false;
      switch (faults.response_fate(host_id, &stall_seconds)) {
        case sim::FaultPlan::ResponseFate::kDrop:
          job.metric.fault_dropped_responses.add();
          drop = true;
          break;
        case sim::FaultPlan::ResponseFate::kStall:
          job.metric.fault_stalled_responses.add();
          co_await job.engine.delay(stall_seconds);
          break;
        case sim::FaultPlan::ResponseFate::kDeliver:
          break;
      }
      if (drop) continue;
    }
    auto it = tracker.map_outputs.find({job.job_id, map_id});
    HMR_CHECK_MSG(it != tracker.map_outputs.end(),
                  "servlet asked for unknown map output");
    const MapOutputInfo& info = it->second;
    const auto& entry = info.output->index.at(reduce_id);

    // The servlet reads the partition from local disk for every request —
    // this is the I/O the paper's PrefetchCache removes in the RDMA design.
    auto view = co_await read_range_verified(job, *tracker.host,
                                             info.local_path, entry.offset,
                                             entry.length);
    if (!view.ok()) {
      // The on-disk map output is unreadable past bounded recovery.
      // Drop the request: the copier's watchdog times out, blacklists
      // this tracker, and re-executes the map (mapred/recovery.h).
      job.metric.mapout_unserved.add();
      continue;
    }

    auto slice = info.output->partition_bytes(reduce_id);
    // The checksum scan is a real CPU kernel: run it as a parallel work
    // event (byte-identical to serial; see sim/parallel.h).
    std::uint32_t slice_crc = 0;
    co_await job.engine.parallel(
        tracker.host->id(), [&](sim::ParallelEffects& effects) {
          slice_crc = crc32c(slice);
          effects.instant(tracker.host->name(), "crc",
                          "servlet_crc_m" + std::to_string(map_id));
        });
    ByteWriter prefix;
    prefix.put_u32(std::uint32_t(map_id));
    prefix.put_u32(std::uint32_t(reduce_id));
    prefix.put_u32(slice_crc);
    Bytes body = prefix.take();
    body.insert(body.end(), slice.begin(), slice.end());
    const auto modeled = info.modeled_partition_bytes(reduce_id);
    net::Message response = net::Message::data(std::move(body), 1.0,
                                               kTagResponse);
    response.modeled_bytes = modeled + http_overhead;
    co_await sock->send(std::move(response));
  }
  daemons_->done();
}

sim::Task<> VanillaShuffleEngine::in_memory_merge(JobRuntime& job,
                                                  ReduceShuffleState& state) {
  auto lock = co_await sim::hold(state.merge_lock);
  if (state.in_mem.empty()) co_return;
  std::vector<Segment> segments = std::move(state.in_mem);
  state.in_mem.clear();
  std::uint64_t modeled = state.in_mem_modeled;
  state.in_mem_modeled = 0;

  // Merge in memory, then spill the merged run to local disk.
  std::vector<std::unique_ptr<dataplane::KvSource>> sources;
  Bytes merged;
  for (auto& segment : segments) {
    sources.push_back(std::make_unique<dataplane::BytesSource>(segment.data));
  }
  dataplane::StreamMerger merger(std::move(sources));
  ByteWriter writer(&merged);
  // The k-way merge drain is a parallel work event: it only touches the
  // merger, the local writer, and work-local views.
  co_await job.engine.parallel(
      state.host.id(), [&](sim::ParallelEffects& effects) {
        dataplane::KvView kv;
        while (merger.next_view(&kv)) dataplane::encode_kv(kv, writer);
        effects.instant(state.host.name(), "merge",
                        "in_mem_merge_r" + std::to_string(state.reduce_id));
      });

  co_await job.charge_cpu(state.host, modeled, job.cost.merge_cpu_bw);
  const std::string path = "shuffle/" + job.spec.name + "/r" +
                           std::to_string(state.reduce_id) + "/spill" +
                           std::to_string(state.spill_seq++);
  const Status written = co_await write_file_verified(
      job, state.host, path, std::move(merged), job.data_scale);
  HMR_CHECK_MSG(written.ok(),
                "reduce-side spill failed: " + written.to_string());
  state.on_disk.push_back(Segment{nullptr, path, modeled});
}

sim::Task<> VanillaShuffleEngine::copier_loop(JobRuntime& job,
                                              ReduceShuffleState& state,
                                              int copier_id) {
  auto rng = job.engine.make_rng("vanilla.retry.r" +
                                 std::to_string(state.reduce_id) + ".c" +
                                 std::to_string(copier_id));
  while (auto map_id = co_await state.ready.recv()) {
    // A killed attempt drains the ready channel without fetching, so the
    // completion fetcher and sibling copiers wind down normally.
    if (state.cancelled()) continue;
    co_await fetch_one(job, state, *map_id, rng);
  }
}

sim::Task<> VanillaShuffleEngine::fetch_one(JobRuntime& job,
                                            ReduceShuffleState& state,
                                            int map_id, Rng& rng) {
  using ConnState = ReduceShuffleState::ConnState;
  if (job.tracker_blacklisted(job.maps.at(map_id).ran_on)) {
    // The serving tracker was blacklisted before this fetch started:
    // wait for (or trigger) re-execution on a healthy tracker.
    co_await job.ensure_fetchable(map_id);
  }
  int attempt = 0;
  bool refetching = false;
  while (true) {
    // Abandon between exchanges once the reduce attempt is killed; an
    // in-flight request/response is bounded by the watchdog, so the
    // loser never parks past one fetch timeout here.
    if (state.cancelled()) co_return;
    const int server_host = job.maps.at(map_id).ran_on;

    // Dial once per tracker; the pump turns socket deliveries into fetch
    // events so a watchdog timer can race them.
    std::shared_ptr<ConnState> conn;
    {
      auto dialing = co_await sim::hold(state.dial_lock);
      auto it = state.conns.find(server_host);
      if (it != state.conns.end()) {
        conn = it->second;
      } else {
        auto fresh = std::make_shared<ConnState>(state.engine);
        fresh->sock = co_await net::connect(job.network, state.host,
                                            *listeners_.at(server_host));
        job.engine.spawn([](std::shared_ptr<ConnState> conn) -> sim::Task<> {
          while (auto msg = co_await conn->sock->recv()) {
            FetchEvent event;
            event.msg = std::move(*msg);
            // Sized so delivery never parks the pump: one outstanding
            // request per connection plus bounded stale duplicates.
            (void)conn->events.try_send(std::move(event));
          }
        }(fresh));
        state.conns.emplace(server_host, fresh);
        conn = std::move(fresh);
      }
    }

    // One request/response in flight per connection: only the lock
    // holder reads the event channel.
    auto exchange = co_await sim::hold(conn->lock);
    const double sent_at = job.engine.now();
    net::Message request = net::Message::data(
        encode_request(map_id, state.reduce_id), 1.0, kTagRequest);
    request.modeled_bytes = kRequestWireBytes;
    job.metric.fetch_requests.add();
    co_await conn->sock->send(std::move(request));
    const std::uint64_t timer_id = ++conn->timer_seq;
    if (job.retry.fetch_timeout > 0) {
      job.engine.spawn(fetch_watchdog(job.engine, conn, conn->events,
                                      job.retry.fetch_timeout, timer_id));
    }
    std::optional<net::Message> response;
    while (true) {
      auto event = co_await conn->events.recv();
      HMR_CHECK(event.has_value());  // the events channel is never closed
      if (event->msg.has_value()) {
        HMR_CHECK(event->msg->tag == kTagResponse &&
                  event->msg->payload != nullptr);
        ByteReader r(*event->msg->payload);
        const auto got_map = r.u32();
        const auto got_reduce = r.u32();
        if (!got_map.ok() || !got_reduce.ok()) {
          // Response too short to even carry its match prefix: drop it
          // like a stale duplicate; the watchdog covers the re-fetch.
          job.metric.malformed_msgs.add();
          continue;
        }
        if (int(*got_map) == map_id && int(*got_reduce) == state.reduce_id) {
          const auto body_crc = r.u32();
          if (!body_crc.ok()) {
            job.metric.malformed_msgs.add();
            continue;
          }
          if (job.integrity.enabled) {
            // End-to-end check against the spill-time checksum; a frame
            // that rotted in flight is dropped like any malformed
            // message and the watchdog/retry path re-fetches it.
            ByteReader body = r;
            const auto rest = body.bytes(body.remaining());
            HMR_CHECK(rest.ok());
            co_await charge_verify_cpu(job, state.host,
                                       event->msg->modeled_bytes);
            std::uint32_t got_crc = 0;
            co_await job.engine.parallel(
                state.host.id(), [&](sim::ParallelEffects& effects) {
                  got_crc = crc32c(*rest);
                  effects.instant(state.host.name(), "crc",
                                  "verify_crc_m" + std::to_string(map_id));
                });
            if (got_crc != *body_crc) {
              job.metric.malformed_msgs.add();
              continue;
            }
          }
          response = std::move(event->msg);
          break;
        }
        // Stale duplicate of a fetch some copier already retried.
        job.metric.fetch_stale_dropped.add();
        continue;
      }
      if (event->timer_id == timer_id) break;  // our watchdog fired
      // Watchdog of an already-answered request: ignore.
    }
    exchange.release();

    if (!response.has_value()) {
      ++attempt;
      ++job.result.fetch_timeouts;
      job.metric.fetch_timeouts.add();
      if (auto* tracer = job.engine.tracer()) {
        tracer->instant(state.host.name(), "fault",
                        "fetch_timeout map_" + std::to_string(map_id));
      }
      HMR_CHECK_MSG(attempt <= job.retry.max_retries,
                    "fetch of map " + std::to_string(map_id) + " exceeded " +
                        kFetchMaxRetries);
      (void)job.report_fetch_failure(server_host);
      if (job.tracker_blacklisted(server_host)) {
        co_await job.ensure_fetchable(map_id);
        if (job.maps.at(map_id).ran_on != server_host) refetching = true;
      } else {
        co_await job.engine.delay(job.retry.backoff(attempt, rng));
      }
      ++job.result.fetch_retries;
      job.metric.fetch_retries.add();
      continue;
    }

    job.report_fetch_success(server_host);
    fetch_rtt_->record(job.engine.now() - sent_at);
    const std::uint64_t modeled = response->modeled_bytes;
    job.result.shuffled_modeled_bytes += modeled;
    if (refetching) job.result.refetched_modeled_bytes += modeled;
    Segment segment;
    // Strip the {map_id, reduce_id} match prefix: merge sources must see
    // clean kv data.
    segment.data = std::make_shared<const Bytes>(
        response->payload->begin() + kResponsePrefixBytes,
        response->payload->end());
    segment.modeled = modeled;

    if (modeled > state.budget / 4) {
      // Too big for the in-memory buffer: straight to disk (Copier
      // behaviour for oversized map outputs).
      const std::string path = "shuffle/" + job.spec.name + "/r" +
                               std::to_string(state.reduce_id) + "/big" +
                               std::to_string(state.spill_seq++);
      Bytes body(*segment.data);
      const Status written = co_await write_file_verified(
          job, state.host, path, std::move(body), job.data_scale);
      HMR_CHECK_MSG(written.ok(),
                    "oversized-segment spill failed: " + written.to_string());
      segment.data = nullptr;
      segment.disk_path = path;
      state.on_disk.push_back(std::move(segment));
      co_return;
    }

    state.in_mem.push_back(std::move(segment));
    state.in_mem_modeled += modeled;
    if (state.in_mem_modeled > (state.budget * 2) / 3) {
      co_await in_memory_merge(job, state);
    }
    co_return;
  }
}

sim::Task<> VanillaShuffleEngine::fetch_and_merge(JobRuntime& job,
                                                  int reduce_id, Host& host,
                                                  KvSink& sink,
                                                  TaskAttempt* attempt) {
  ReduceShuffleState state(job, reduce_id, host);
  state.attempt = attempt;

  // Kill watcher: a killed attempt's completion fetcher may be parked on
  // completion_pulse with no map about to finish, so pulse it awake (a
  // spurious pulse is benign — every waiter re-checks its own state).
  // The watcher always completes: `wake` is also set on the terminal
  // transition, and it touches only job-level state.
  if (attempt != nullptr) {
    job.engine.spawn([](JobRuntime& job, TaskAttempt& attempt) -> sim::Task<> {
      co_await attempt.wake.wait();
      if (attempt.kill_requested) {
        job.completion_pulse.set();
        job.completion_pulse.reset();
      }
    }(job, *attempt));
  }

  // Map Completion Fetcher: feed map ids to the copiers in completion
  // order. `ready` is sized for every map, so send never parks; on a
  // kill the fetcher exits at the next pulse (the watcher guarantees
  // one) or when the last map completes.
  sim::WaitGroup fetch_done(job.engine);
  fetch_done.add();
  job.engine.spawn([](JobRuntime& job, ReduceShuffleState& state,
                      sim::WaitGroup& done) -> sim::Task<> {
    size_t seen = 0;
    while (seen < job.maps.size() && !state.cancelled()) {
      while (seen < job.completion_log.size()) {
        co_await state.ready.send(int(job.completion_log[seen++]));
      }
      if (seen < job.maps.size()) co_await job.completion_pulse.wait();
    }
    state.ready.close();
    done.done();
  }(job, state, fetch_done));

  const int copies =
      int(job.spec.conf.get_int(kParallelCopies, 5));
  sim::WaitGroup copiers(job.engine);
  for (int c = 0; c < copies; ++c) {
    copiers.add();
    job.engine.spawn([](VanillaShuffleEngine& self, JobRuntime& job,
                        ReduceShuffleState& state, int copier_id,
                        sim::WaitGroup& done) -> sim::Task<> {
      co_await self.copier_loop(job, state, copier_id);
      done.done();
    }(*this, job, state, c, copiers));
  }
  co_await fetch_done.wait();
  co_await copiers.wait();
  // A speculation loser may unwind its fetches after the job's last
  // reduce committed (the commit and the kill request are issued without
  // suspension, so kill_requested is an exact "past finish_time" test);
  // its bookkeeping must not push shuffle_done_time past finish_time.
  if (attempt == nullptr || !attempt->kill_requested) {
    job.result.shuffle_done_time = job.engine.now();
  }

  // --- merge phase: reduce starts only after this setup completes ------
  // Local-FS merge passes keep at most io.sort.factor disk segments.
  // A killed attempt skips the merges entirely and falls through to
  // cleanup (spill removal, connection close, sink close).
  const int factor = int(job.spec.conf.get_int(kIoSortFactor, 10));
  while (!state.cancelled() && int(state.on_disk.size()) > factor) {
    std::vector<Segment> group(state.on_disk.begin(),
                               state.on_disk.begin() + factor);
    state.on_disk.erase(state.on_disk.begin(),
                        state.on_disk.begin() + factor);
    std::vector<std::unique_ptr<dataplane::KvSource>> sources;
    std::uint64_t modeled = 0;
    for (const auto& segment : group) {
      // Spills were write-verified at creation; this absorbs injected
      // transient read errors on the way back into the merge.
      auto view = co_await read_file_verified(job, host, segment.disk_path);
      HMR_CHECK_MSG(view.ok(), "merge-pass read failed: " +
                                   view.status().to_string());
      sources.push_back(std::make_unique<dataplane::BytesSource>(view->data));
      modeled += segment.modeled;
    }
    dataplane::StreamMerger merger(std::move(sources));
    Bytes merged;
    ByteWriter writer(&merged);
    // Merge-pass drain as a parallel work event, like in_memory_merge.
    co_await job.engine.parallel(
        host.id(), [&](sim::ParallelEffects& effects) {
          dataplane::KvView kv;
          while (merger.next_view(&kv)) dataplane::encode_kv(kv, writer);
          effects.instant(host.name(), "merge",
                          "merge_pass_r" + std::to_string(reduce_id));
        });
    co_await job.charge_cpu(host, modeled, job.cost.merge_cpu_bw);
    const std::string path = "shuffle/" + job.spec.name + "/r" +
                             std::to_string(reduce_id) + "/pass" +
                             std::to_string(state.spill_seq++);
    const Status written = co_await write_file_verified(
        job, host, path, std::move(merged), job.data_scale);
    HMR_CHECK_MSG(written.ok(),
                  "merge-pass spill failed: " + written.to_string());
    for (const auto& segment : group) {
      HMR_CHECK(host.fs().remove(segment.disk_path).ok());
    }
    state.on_disk.push_back(Segment{nullptr, path, modeled});
  }

  // Final merge: disk segments (read back) + memory remainder, streamed
  // into the reduce sink. A killed attempt feeds the merger nothing.
  std::vector<std::unique_ptr<dataplane::KvSource>> sources;
  if (!state.cancelled()) {
    for (const auto& segment : state.on_disk) {
      auto view = co_await read_file_verified(job, host, segment.disk_path);
      HMR_CHECK_MSG(view.ok(), "final-merge read failed: " +
                                   view.status().to_string());
      sources.push_back(std::make_unique<dataplane::BytesSource>(view->data));
    }
    for (const auto& segment : state.in_mem) {
      sources.push_back(std::make_unique<dataplane::BytesSource>(segment.data));
    }
  }
  dataplane::StreamMerger merger(std::move(sources));

  constexpr size_t kBatchPairs = 256;
  KvBatch batch;
  batch.reserve(kBatchPairs);
  KvPair pair;
  std::uint64_t batch_real = 0;
  while (!state.cancelled() && merger.next(&pair)) {
    batch_real += pair.serialized_size();
    batch.push_back(std::move(pair));
    if (batch.size() >= kBatchPairs) {
      co_await job.charge_cpu(
          host,
          static_cast<std::uint64_t>(double(batch_real) * job.data_scale),
          job.cost.merge_cpu_bw);
      co_await sink.send(std::move(batch));
      batch = KvBatch{};
      batch.reserve(kBatchPairs);
      batch_real = 0;
    }
  }
  if (!batch.empty() && !state.cancelled()) {
    co_await job.charge_cpu(
        host, static_cast<std::uint64_t>(double(batch_real) * job.data_scale),
        job.cost.merge_cpu_bw);
    co_await sink.send(std::move(batch));
  }

  // Clean up shuffle spill files and close connections. Closing our
  // outgoing half makes the servlet exit; its socket teardown then ends
  // the pump for this connection.
  for (const auto& segment : state.on_disk) {
    // lint:ignore(status-discipline): best-effort spill cleanup; a re-fetched segment may already be gone
    (void)host.fs().remove(segment.disk_path);
  }
  for (auto& [_, conn] : state.conns) conn->sock->close();
  sink.close();
}

}  // namespace hmr::mapred
