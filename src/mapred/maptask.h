// MapTask execution (§II-A / §III): read the split from HDFS, run the
// user map function, sort & spill through MapOutputBuffer semantics, and
// publish the final partitioned output file to the TaskTracker.
#pragma once

#include "mapred/runtime.h"

namespace hmr::mapred {

// Runs map task `map_id` on `tracker`'s host. Charges split read,
// map+sort CPU, spill and merge disk traffic; registers the output via
// JobRuntime::record_map_output.
// `slowdown` > 1 models a straggling attempt (degraded node): its CPU
// work runs that many times slower.
// With `attempt` (nullable), the run reports progress at checkpoints,
// serves task.hang windows, honors kill requests (unwinding without
// committing), and drives the attempt to a terminal state itself.
sim::Task<> run_map_task(JobRuntime& job, int map_id,
                         TaskTrackerState& tracker, double slowdown = 1.0,
                         TaskAttempt* attempt = nullptr);

// A failed attempt: the task dies after `progress` (0..1) of its work —
// the JVM crash / node fault path. Charges the wasted startup, split
// read and CPU, registers nothing.
sim::Task<> run_failed_map_attempt(JobRuntime& job, int map_id,
                                   TaskTrackerState& tracker,
                                   double progress);

}  // namespace hmr::mapred
