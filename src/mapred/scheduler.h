// Scheduling policies for the multi-tenant JobTracker (docs/SCHEDULER.md).
//
// A SchedulerConfig is the resolved form of the sched.* conf keys: which
// policy orders the job queue, how many jobs may run at once, and the
// per-pool weights/quotas the fair-share and capacity policies consult.
// Parsing is strict — a misspelled policy name or a malformed pool list
// aborts submission naming the offender, mirroring the disk-fault conf
// path (tests exercise the Status-returning parser directly).
#pragma once

#include <map>
#include <string>

#include "common/conf.h"
#include "common/status.h"

namespace hmr::mapred {

// --- configuration keys (documented in docs/CONFIG.md) -------------------
inline constexpr const char* kSchedPolicy = "sched.policy";
//   values: "fifo" (arrival order), "fair" (weighted deficit across
//   pools), "capacity" (FIFO that skips pools at their quota)
inline constexpr const char* kSchedMaxRunningJobs = "sched.max.running.jobs";
inline constexpr const char* kSchedPoolWeights = "sched.pool.weights";
inline constexpr const char* kSchedPoolQuotas = "sched.pool.quotas";
inline constexpr const char* kSchedPoolDefaultQuota =
    "sched.pool.default.quota";
inline constexpr const char* kSchedArrivalJobsPerMin =
    "sched.arrival.jobs.per.min";

enum class SchedPolicy { kFifo, kFair, kCapacity };

const char* sched_policy_name(SchedPolicy policy);

// Per-pool scheduling parameters. A pool defaults to weight 1 and the
// cluster-wide default quota; both are overridable per pool.
struct PoolConfig {
  double weight = 1.0;  // fair-share weight (kFair)
  int quota = 0;        // max concurrently running jobs; 0 = unlimited
};

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  // Cluster-wide cap on concurrently dispatched jobs. 0 = unlimited
  // (jobs then contend only for TaskTracker slots, the pre-scheduler
  // behaviour of Testbed::run_jobs).
  int max_running_jobs = 0;
  int default_pool_quota = 0;  // quota for pools absent from the list
  // Offered load of the Poisson arrival helper (workloads::multitenant);
  // 0 means the caller drives submissions itself.
  double arrival_jobs_per_min = 0.0;
  std::map<std::string, PoolConfig> pools;

  // Strict decode of the sched.* keys. Unknown policy names, malformed
  // `pool=value` lists, non-positive weights, or negative quotas/caps
  // are errors naming the offending key and token.
  static Result<SchedulerConfig> from_conf(const Conf& conf);

  // Pool parameters with defaults applied (never fails).
  PoolConfig pool(const std::string& name) const;
};

}  // namespace hmr::mapred
