// Task-attempt lifecycle (the JobTracker's view of one try at a task).
//
// Every execution of a map or reduce task — the original assignment, a
// failure-injected retry, a recovery re-execution, or a speculative
// backup — is a TaskAttempt with a job-wide id, the host it runs on,
// and a progress fraction reported at task checkpoints. Attempts move
// RUNNING -> SUCCEEDED | KILLED | FAILED exactly once:
//
//   SUCCEEDED  the attempt's output was committed (maps: registered by
//              record_map_output; reduces: won the commit race and
//              renamed its attempt file over the final part file).
//   KILLED     the attempt lost a speculation race. The winner requests
//              the kill; the loser observes it at its next checkpoint
//              (or when its commit is refused), unwinds — cancelling
//              in-flight shuffle fetches and releasing spill/arena
//              resources by scope exit — and is counted in
//              `speculation.kills`.
//   FAILED     fault injection killed the attempt partway
//              (mapred.fault.map.failure.prob); the JobTracker
//              reschedules the task.
//
// Speculative execution (LATE, Zaharia et al. OSDI'08): idle worker
// slots poll JobRuntime::try_claim_backup, which estimates each running
// original attempt's total duration from its progress rate, flags
// attempts projected to run `mapred.speculative.slow.factor` times
// longer than the reference (mean completed-task duration, or the mean
// running estimate before anything completes), and claims the flagged
// task with the *longest estimated time to completion* for a backup on
// a different host. Whichever attempt finishes first commits; output is
// byte-identical to a no-speculation run by construction, because only
// one attempt's output is ever committed (the simfuzz
// speculation.result_identity oracle replays with speculation disabled
// and compares digests).
#pragma once

#include <algorithm>
#include <string>

#include "mapred/types.h"
#include "sim/sync.h"

namespace hmr::mapred {

enum class TaskKind { kMap, kReduce };
enum class AttemptState { kRunning, kSucceeded, kKilled, kFailed };

struct TaskAttempt {
  explicit TaskAttempt(sim::Engine& engine) : wake(engine) {}
  TaskAttempt(const TaskAttempt&) = delete;
  TaskAttempt& operator=(const TaskAttempt&) = delete;

  int attempt_id = 0;  // job-wide, assignment order
  TaskKind kind = TaskKind::kMap;
  int task_id = -1;  // map_id or reduce_id
  int host_id = -1;
  bool speculative = false;  // backup launched by try_claim_backup
  bool rerun = false;        // ensure_fetchable recovery re-execution
  AttemptState state = AttemptState::kRunning;
  double started_at = 0.0;
  double progress = 0.0;     // [0, 1], monotone per attempt
  double progress_at = 0.0;  // sim time of the last report
  bool kill_requested = false;
  // Set on the kill request and again on the terminal transition (and
  // never reset), so a watcher parked on it always wakes: engines use
  // this to unblock fetch coroutines parked on demand/completion events.
  sim::Event wake;

  bool running() const { return state == AttemptState::kRunning; }

  // "m3/2": task m3, third attempt overall would be attempt_id 2.
  std::string name() const {
    return (kind == TaskKind::kMap ? "m" : "r") + std::to_string(task_id) +
           "/" + std::to_string(attempt_id);
  }
};

// Resolved mapred.speculative.* knobs, one decode per job.
struct SpeculationPolicy {
  bool maps = false;     // mapred.map.tasks.speculative.execution
  bool reduces = false;  // mapred.reduce.tasks.speculative.execution
  // Lifetime budget: backups per kind capped at cap * tasks-of-kind
  // (at least 1 when speculation is on).
  double cap = 0.25;
  // Concurrency budget: live backups per job, charged to the tenant's
  // fair-share by the JobTracker at completion.
  int slots = 2;
  double interval = 0.5;     // idle-slot poll cadence, seconds
  double min_runtime = 3.0;  // attempt age before it can be flagged
  // An attempt is slow when its estimated total duration exceeds
  // slow_factor times the reference duration.
  double slow_factor = 1.5;

  int cap_count(int tasks) const {
    return std::max(1, static_cast<int>(cap * double(tasks)));
  }

  static SpeculationPolicy from_conf(const Conf& conf) {
    SpeculationPolicy p;
    p.maps = conf.get_bool(kSpeculativeExecution, p.maps);
    p.reduces = conf.get_bool(kReduceSpeculativeExecution, p.reduces);
    p.cap = conf.get_double(kSpeculativeCap, p.cap);
    p.slots = int(conf.get_int(kSpeculativeSlots, p.slots));
    p.interval = conf.get_double(kSpeculativeIntervalSec, p.interval);
    p.min_runtime = conf.get_double(kSpeculativeMinRuntimeSec, p.min_runtime);
    p.slow_factor = conf.get_double(kSpeculativeSlowFactor, p.slow_factor);
    HMR_CHECK_MSG(p.cap > 0 && p.cap <= 1.0,
                  "mapred.speculative.cap out of (0, 1]");
    HMR_CHECK_MSG(p.slots >= 1, "mapred.speculative.slots must be >= 1");
    HMR_CHECK_MSG(p.interval > 0, "mapred.speculative.interval.sec must be > 0");
    HMR_CHECK_MSG(p.slow_factor >= 1.0,
                  "mapred.speculative.slow.factor must be >= 1");
    return p;
  }
};

}  // namespace hmr::mapred
