// ReduceTask execution: drives the engine's fetch/merge into the
// DataToReduceQueue, groups keys, applies the user reduce function, and
// streams the output into HDFS.
#pragma once

#include "mapred/runtime.h"

namespace hmr::mapred {

// Runs reduce task `reduce_id` on `tracker`'s host, using
// job.shuffle->fetch_and_merge for the shuffle/merge phases.
// With `attempt` (nullable), the reducer writes to a per-attempt temp
// file and commits via JobRuntime::try_commit_reduce + NameNode rename
// (first-commit-wins); a killed or race-losing attempt drains its sink,
// removes its temp file, and finishes KILLED.
sim::Task<> run_reduce_task(JobRuntime& job, int reduce_id,
                            TaskTrackerState& tracker,
                            TaskAttempt* attempt = nullptr);

// Output file name for a reduce (Hadoop's part-00000 convention).
std::string reduce_output_path(const JobSpec& spec, int reduce_id);

}  // namespace hmr::mapred
