#include "mapred/maptask.h"

#include <algorithm>

#include "mapred/integrity.h"
#include "sim/trace.h"
#include "storage/localfs.h"

namespace hmr::mapred {

namespace {

// A killed attempt unwinds here: drop any intermediate spill file it may
// have left (best effort — the disk may be faulted) and reach the
// terminal state. The final output file is never written by a killed
// attempt, so nothing else needs undoing.
void abandon_map_attempt(JobRuntime& job, TaskAttempt& attempt, Host& host,
                         const std::string& path) {
  const Status removed = host.fs().remove(path + ".spills");
  (void)removed;
  job.finish_attempt(attempt, AttemptState::kKilled);
}

}  // namespace

sim::Task<> run_map_task(JobRuntime& job, int map_id,
                         TaskTrackerState& tracker, double slowdown,
                         TaskAttempt* attempt) {
  MapTaskInfo& task = job.maps.at(map_id);
  Host& host = *tracker.host;
  auto span = sim::maybe_span(job.engine.tracer(), host.name(), "map",
                              "map_" + std::to_string(map_id));
  const std::string path = "mapout/" + job.spec.name + "/map_" +
                           std::to_string(map_id) + "_h" +
                           std::to_string(host.id());

  // Task JVM launch / localization.
  co_await host.compute(job.cost.task_startup);
  if (!co_await job.attempt_checkpoint(attempt, host, 0.05)) {
    abandon_map_attempt(job, *attempt, host, path);
    co_return;
  }

  // Read the split. Input part files are written block-sized, so this is
  // one block in practice; locality decides whether it touches the
  // network. HDFS handles replica failover internally; this outer loop
  // only absorbs fully transient windows (every replica's disk erroring
  // at once).
  auto split = co_await job.dfs.read(host, task.input_file);
  for (int attempt = 0;
       !split.ok() && split.status().code() == StatusCode::kUnavailable &&
       attempt < job.integrity.max_retries;
       ++attempt) {
    ++job.result.storage_io_retries;
    job.metric.io_retries.add();
    co_await job.engine.delay(job.integrity.disk_full_backoff);
    split = co_await job.dfs.read(host, task.input_file);
  }
  HMR_CHECK_MSG(split.ok(), "map input read failed: " + split.status().to_string());
  if (!co_await job.attempt_checkpoint(attempt, host, 0.2)) {
    abandon_map_attempt(job, *attempt, host, path);
    co_return;
  }

  // Decode records and run the user map function into the sort buffer.
  // This is pure compute over the split bytes and the task-local builder
  // (whose arena is owned by this frame), so it runs as a parallel work
  // event: same-timestamp map computes on *other* hosts may execute
  // concurrently. Everything shared — job counters, result fields — is
  // written after the await, on the engine thread; map_fn must be
  // re-entrant (all bundled workload fns are stateless).
  dataplane::MapOutputBuilder builder(job.num_reduces, *job.spec.partitioner);
  std::uint64_t input_records = 0;
  bool decode_ok = false;
  co_await job.engine.parallel(
      host.id(), [&](sim::ParallelEffects& effects) {
        auto records = dataplane::decode_run(*split);
        if (!records.ok()) return;
        decode_ok = true;
        input_records = records->size();
        const Emit emit = [&builder](KvPair pair) {
          builder.add(std::move(pair));
        };
        if (job.spec.map_fn) {
          for (const auto& record : *records) job.spec.map_fn(record, emit);
        } else {
          for (auto& record : *records) emit(std::move(record));
        }
        effects.instant(host.name(), "map",
                        "map_compute_" + std::to_string(map_id));
      });
  HMR_CHECK_MSG(decode_ok, "corrupt input split: " + task.input_file);
  job.result.counters["MAP_INPUT_RECORDS"] += std::int64_t(input_records);
  job.result.counters["MAP_OUTPUT_RECORDS"] +=
      std::int64_t(builder.pending_records());
  job.result.counters["MAP_OUTPUT_BYTES"] += static_cast<std::int64_t>(
      double(builder.pending_bytes()) * job.data_scale);
  if (!co_await job.attempt_checkpoint(attempt, host, 0.4)) {
    abandon_map_attempt(job, *attempt, host, path);
    co_return;
  }

  // CPU: record parsing + map function + in-memory sort. Any active
  // task.slow window scales the attempt's effective throughput down
  // (slow < 1), composing with the straggler slowdown.
  const double slow =
      job.compute_faults.slow_factor(host.id(), job.engine.now());
  const auto output_real = builder.pending_bytes();
  const auto output_modeled =
      static_cast<std::uint64_t>(double(output_real) * job.data_scale);
  co_await job.charge_cpu(host, task.modeled_bytes + output_modeled,
                          job.cost.map_cpu_bw * slow / slowdown);
  if (!co_await job.attempt_checkpoint(attempt, host, 0.6)) {
    abandon_map_attempt(job, *attempt, host, path);
    co_return;
  }

  dataplane::CombineFn combiner;
  if (job.spec.combine_fn) {
    combiner = [&job](const Bytes& key, const std::vector<Bytes>& values,
                      const std::function<void(KvPair)>& emit) {
      job.spec.combine_fn(key, values, emit);
    };
  }
  // Sort + combine + serialize, the other pure-compute half; combine_fn
  // is confined to the builder's records, so it parallelizes under the
  // same contract as map_fn above.
  const auto combine_in = builder.pending_records();
  dataplane::MapOutput output;
  co_await job.engine.parallel(host.id(), [&](sim::ParallelEffects&) {
    output = builder.build(job.spec.combine_fn ? &combiner : nullptr);
  });
  if (job.spec.combine_fn) {
    std::uint64_t combine_out = 0;
    for (const auto& entry : output.index) combine_out += entry.kv_count;
    job.result.counters["COMBINE_INPUT_RECORDS"] += std::int64_t(combine_in);
    job.result.counters["COMBINE_OUTPUT_RECORDS"] +=
        std::int64_t(combine_out);
  }
  if (!co_await job.attempt_checkpoint(attempt, host, 0.75)) {
    abandon_map_attempt(job, *attempt, host, path);
    co_return;
  }

  // Spill accounting: every spill writes the full buffer once; more than
  // one spill adds a read-merge-write pass over the whole output.
  const std::uint64_t sort_mb =
      job.spec.conf.get_bytes(kIoSortMb, 100 * 1024 * 1024);
  const auto spills = std::max<std::uint64_t>(
      1, (output_modeled + sort_mb - 1) / std::max<std::uint64_t>(1, sort_mb));
  job.result.spills += spills;
  job.result.counters["SPILLED_RECORDS"] +=
      std::int64_t(double(input_records) * double(spills));

  if (spills > 1) {
    // Intermediate spill files + merge pass, checksum-verified: an
    // injected IO error retries, a corrupt spill is rewritten, a full
    // disk evicts shuffle cache and backs off (mapred/integrity.h).
    const auto spill_stream = storage::next_stream_id();
    const Status spilled = co_await write_file_verified(
        job, host, path + ".spills", Bytes(1), double(output_modeled));
    HMR_CHECK_MSG(spilled.ok(),
                  "map spill failed: " + spilled.to_string());
    (void)spill_stream;
    const auto merged =
        co_await read_file_verified(job, host, path + ".spills");
    HMR_CHECK_MSG(merged.ok(),
                  "map spill merge read failed: " + merged.status().to_string());
    co_await job.charge_cpu(host, output_modeled, job.cost.merge_cpu_bw);
    HMR_CHECK(host.fs().remove(path + ".spills").ok());
  }
  if (!co_await job.attempt_checkpoint(attempt, host, 0.9)) {
    abandon_map_attempt(job, *attempt, host, path);
    co_return;
  }

  // Final partitioned output file; the served MapOutput shares the
  // buffer the LocalFS stores. The verified write guarantees the
  // published file is clean at creation — at-rest rot discovered later
  // is recovered by the fetch path (drop -> blacklist -> re-execute).
  const Status written = co_await write_file_verified(
      job, host, path, Bytes(*output.data), job.data_scale);
  HMR_CHECK_MSG(written.ok(),
                "map output write failed: " + written.to_string());
  const auto stored = host.fs().peek(path);
  HMR_CHECK(stored.ok());
  output.data = stored.value().data;

  MapOutputInfo info;
  info.map_id = map_id;
  info.host_id = host.id();
  info.local_path = path;
  info.created_at = job.engine.now();
  info.output = std::make_shared<const dataplane::MapOutput>(std::move(output));
  info.scale = job.data_scale;
  const bool committed = job.record_map_output(std::move(info));
  if (attempt != nullptr) {
    if (committed) {
      if (attempt->speculative) {
        ++job.result.speculative_wins;
        job.metric.speculation_wins.add();
      }
      job.finish_attempt(*attempt, AttemptState::kSucceeded);
      job.kill_siblings(TaskKind::kMap, map_id, attempt);
    } else {
      // Lost the commit race at the wire: record_map_output unlinked the
      // duplicate file; this attempt dies KILLED like any other loser.
      job.finish_attempt(*attempt, AttemptState::kKilled);
    }
  }
}

sim::Task<> run_failed_map_attempt(JobRuntime& job, int map_id,
                                   TaskTrackerState& tracker,
                                   double progress) {
  MapTaskInfo& task = job.maps.at(map_id);
  Host& host = *tracker.host;
  co_await host.compute(job.cost.task_startup);
  // The attempt reads and processes `progress` of the split, then dies.
  // read() of the partial split is approximated by a ranged read charge.
  auto info = job.dfs.stat(task.input_file);
  HMR_CHECK(info.ok());
  const auto real_len = static_cast<std::uint64_t>(
      double(info->real_size) * progress);
  if (real_len > 0) {
    const auto partial = co_await job.dfs.read_block(host, task.input_file, 0);
    HMR_CHECK(partial.ok());
    co_await job.charge_cpu(
        host,
        static_cast<std::uint64_t>(double(task.modeled_bytes) * progress),
        job.cost.map_cpu_bw);
  }
  ++job.result.failed_map_attempts;
}

}  // namespace hmr::mapred
