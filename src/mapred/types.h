// Job definition and result types, plus the configuration keys the
// framework understands (the paper's tunables included).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/conf.h"
#include "common/metrics.h"
#include "dataplane/kv.h"
#include "dataplane/partitioner.h"

namespace hmr::sim {
class FaultPlan;
}

namespace hmr::mapred {

// --- configuration keys -------------------------------------------------
// Engine selection (§III: mapred.rdma.enabled picks the RDMA design; the
// string key below also distinguishes the Hadoop-A comparator).
inline constexpr const char* kRdmaEnabled = "mapred.rdma.enabled";
inline constexpr const char* kShuffleEngine = "mapred.shuffle.engine";
//   values: "vanilla" (socket/HTTP), "osu-ib" (this paper), "hadoop-a"
inline constexpr const char* kCachingEnabled =
    "mapred.local.caching.enabled";                       // §III-B3
inline constexpr const char* kCacheBytes = "mapred.local.caching.bytes";
inline constexpr const char* kRdmaPacketBytes = "mapred.rdma.packet.bytes";
inline constexpr const char* kRdmaKvPerPacket = "mapred.rdma.kv.per.packet";
inline constexpr const char* kResponderThreads =
    "mapred.rdma.responder.threads";
inline constexpr const char* kOverlapReduce = "mapred.shuffle.overlap.reduce";
// UCR large-message protocol: "read" (receiver RDMA-READs, default) or
// "write" (receiver advertises, sender RDMA-WRITEs).
inline constexpr const char* kRdmaRendezvous = "mapred.rdma.rendezvous";
// Modeled-record inflation of the workload (see workloads::DataGenSpec);
// engines divide real-world kv-count budgets by it. Defaults to the data
// scale (records carried at their real-world size, TeraGen style).
inline constexpr const char* kKvInflation = "mapred.workload.kv.inflation";
// Largest modeled record of the workload (engines provision fixed-count
// receive buffers from it).
inline constexpr const char* kMaxRecordBytes =
    "mapred.workload.max.record.bytes";

// Framework knobs (Hadoop 0.20-era names where they exist).
inline constexpr const char* kNumReduces = "mapred.reduce.tasks";
inline constexpr const char* kMapSlots = "mapred.tasktracker.map.tasks.maximum";
inline constexpr const char* kReduceSlots =
    "mapred.tasktracker.reduce.tasks.maximum";
inline constexpr const char* kIoSortMb = "io.sort.mb";
inline constexpr const char* kIoSortFactor = "io.sort.factor";
inline constexpr const char* kParallelCopies = "mapred.reduce.parallel.copies";
inline constexpr const char* kShuffleBufferBytes =
    "mapred.job.shuffle.input.buffer.bytes";
inline constexpr std::uint64_t kDefaultShuffleBufferBytes =
    700ull * 1024 * 1024;  // ~70% of a 1 GB reduce-task heap
inline constexpr const char* kSlowstart =
    "mapred.reduce.slowstart.completed.maps";
inline constexpr const char* kOutputReplication = "mapred.output.replication";
inline constexpr const char* kTaskStartupSec = "mapred.task.startup.sec";
inline constexpr const char* kHttpOverheadBytes = "mapred.http.overhead.bytes";

// Fault injection & recovery (the paper's §VI future work: "extend our
// design to handle faster recovery in case of task failures").
inline constexpr const char* kMapFailureProb = "mapred.fault.map.failure.prob";
inline constexpr const char* kMaxTaskAttempts = "mapred.map.max.attempts";
// Straggler injection + speculative execution (Hadoop's backup tasks).
inline constexpr const char* kStragglerProb = "mapred.fault.straggler.prob";
inline constexpr const char* kStragglerSlowdown =
    "mapred.fault.straggler.slowdown";
inline constexpr const char* kSpeculativeExecution =
    "mapred.map.tasks.speculative.execution";
inline constexpr const char* kReduceSpeculativeExecution =
    "mapred.reduce.tasks.speculative.execution";
// LATE-style backup-attempt policy (mapred/attempt.h): lifetime cap as
// a fraction of tasks per kind, concurrent-backup slots per job,
// idle-slot poll cadence, minimum attempt age before flagging, and the
// estimated-duration outlier threshold.
inline constexpr const char* kSpeculativeCap = "mapred.speculative.cap";
inline constexpr const char* kSpeculativeSlots = "mapred.speculative.slots";
inline constexpr const char* kSpeculativeIntervalSec =
    "mapred.speculative.interval.sec";
inline constexpr const char* kSpeculativeMinRuntimeSec =
    "mapred.speculative.min.runtime.sec";
inline constexpr const char* kSpeculativeSlowFactor =
    "mapred.speculative.slow.factor";

// Shuffle-fetch recovery (both engines; see mapred/recovery.h and
// docs/CONFIG.md). A fetch with no response within the timeout is
// retried with capped exponential backoff; after N consecutive failures
// the serving tracker is blacklisted and its map outputs are re-executed
// on a healthy tracker.
inline constexpr const char* kFetchTimeoutSec =
    "mapred.shuffle.fetch.timeout.sec";  // 0 disables timeouts
inline constexpr const char* kFetchMaxRetries =
    "mapred.shuffle.fetch.max.retries";
inline constexpr const char* kFetchBackoffBaseSec =
    "mapred.shuffle.fetch.backoff.base.sec";
inline constexpr const char* kFetchBackoffMaxSec =
    "mapred.shuffle.fetch.backoff.max.sec";
inline constexpr const char* kFetchBackoffJitter =
    "mapred.shuffle.fetch.backoff.jitter";
inline constexpr const char* kBlacklistFailures =
    "mapred.shuffle.tracker.blacklist.failures";
// RDMA responder-side hardening: a request that sat in the
// DataRequestQueue longer than this is orphaned (its copier already
// timed out) and is evicted instead of served. 0 disables.
inline constexpr const char* kResponderDeadlineSec =
    "mapred.rdma.responder.deadline.sec";

// End-to-end data integrity (DESIGN.md §6.2). Spills carry per-partition
// CRC32 checksums verified on every read boundary (cache fill, RDMA
// responder, vanilla servlet, merge ingest); verification CPU is charged
// at kIntegrityCpuBw. Injected IO errors and verify failures are retried
// up to kIntegrityMaxRetries times; a spill rejected by a full disk
// evicts shuffle-cache memory and backs off kDiskFullBackoffSec between
// attempts (at most kDiskFullMaxRetries of them).
inline constexpr const char* kIntegrityEnabled = "mapred.integrity.enabled";
inline constexpr const char* kIntegrityCpuBw =
    "mapred.integrity.cpu.bytes_per_sec";
inline constexpr const char* kIntegrityMaxRetries =
    "mapred.integrity.max.retries";
inline constexpr const char* kDiskFullBackoffSec =
    "mapred.storage.disk.full.backoff.sec";
inline constexpr const char* kDiskFullMaxRetries =
    "mapred.storage.disk.full.max.retries";

// Observability. kMetricsSnapshot controls whether JobRunner copies the
// engine's metrics registry into JobResult::metrics at job end (on by
// default; large sweeps can turn it off). kTraceMaxEvents caps the
// Chrome-trace event buffer when tracing is enabled; events past the cap
// are dropped and counted. 0 means unbounded.
inline constexpr const char* kMetricsSnapshot = "mapred.metrics.snapshot";
inline constexpr const char* kTraceMaxEvents = "sim.trace.max.events";
// Worker-pool width for parallel work events (sim/parallel.h); 1 = the
// serial engine. Applied to the job's engine at submission, so the last
// submitted job wins when concurrent jobs disagree. Results are
// byte-identical at every value by construction.
inline constexpr const char* kParallelWorkers = "sim.parallel.workers";

// Compute-cost model (modeled bytes per second per core).
inline constexpr const char* kMapCpuBw = "mapred.cpu.map.bytes_per_sec";
inline constexpr const char* kReduceCpuBw = "mapred.cpu.reduce.bytes_per_sec";
inline constexpr const char* kMergeCpuBw = "mapred.cpu.merge.bytes_per_sec";

// --- user functions ------------------------------------------------------
using Emit = std::function<void(dataplane::KvPair)>;
// Map: input record -> emitted records. Identity when null.
using MapFn = std::function<void(const dataplane::KvPair&, const Emit&)>;
// Reduce: (key, all values for the key) -> emitted records. Identity
// (re-emit each pair) when null.
using ReduceFn = std::function<void(const Bytes& key,
                                    const std::vector<Bytes>& values,
                                    const Emit&)>;

struct JobSpec {
  std::string name = "job";
  std::vector<std::string> input_files;  // HDFS paths, one split per file
  std::string output_dir;                // HDFS prefix for part-<r> files
  Conf conf;
  MapFn map_fn;          // null = identity
  ReduceFn reduce_fn;    // null = identity
  ReduceFn combine_fn;   // optional map-side combiner
  std::shared_ptr<const dataplane::Partitioner> partitioner =
      std::make_shared<dataplane::HashPartitioner>();
  // Optional fault injection (not owned; must outlive the run). Shuffle
  // responders/servlets consult it per request — see sim/fault.h.
  sim::FaultPlan* faults = nullptr;
};

// Wall-clock phase decomposition of a job (seconds). Phases overlap in
// real time — shuffle starts while maps still run — so their sum can
// exceed the job's elapsed time; JobResult::overlap_fraction()
// quantifies how much.
struct PhaseTimes {
  double map = 0;
  double shuffle = 0;
  double merge = 0;
  double reduce = 0;
  double sum() const { return map + shuffle + merge + reduce; }
};

struct JobResult {
  double submit_time = 0;
  double maps_done_time = 0;    // last map finished
  double shuffle_start_time = -1;  // first reducer began fetching; <0 = never
  double shuffle_done_time = 0; // last reducer finished fetching
  double reduce_start_time = -1;  // first reduce batch consumed; <0 = never
  double finish_time = 0;

  int num_maps = 0;
  int num_reduces = 0;
  std::uint64_t input_modeled_bytes = 0;
  std::uint64_t shuffled_modeled_bytes = 0;
  std::uint64_t output_modeled_bytes = 0;
  std::uint64_t output_records = 0;

  // Paper-facing counters.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t spills = 0;
  std::uint64_t failed_map_attempts = 0;
  // Speculation counters (mapred/attempt.h). Each has a metric twin
  // (`speculation.*`); the simfuzz oracle checks they agree and that
  // every backup race produced exactly one killed loser
  // (speculative_kills == speculative_attempts once the job drains).
  std::uint64_t speculative_attempts = 0;  // backup attempts launched
  std::uint64_t speculative_wins = 0;   // backup committed before original
  std::uint64_t speculative_kills = 0;  // race losers killed
  std::uint64_t speculative_cap_deferrals = 0;  // picks blocked by cap/slots

  // Shuffle recovery counters (mapred/recovery.h).
  std::uint64_t fetch_timeouts = 0;    // requests with no response in time
  std::uint64_t fetch_retries = 0;     // re-issued requests
  std::uint64_t trackers_blacklisted = 0;
  std::uint64_t map_refetch_reruns = 0;  // maps re-executed for fetching
  std::uint64_t refetched_modeled_bytes = 0;  // served by re-executed maps

  // Storage-fault recovery counters (mapred/integrity.h). Each has a
  // metric twin; the simfuzz oracle checks they agree and that
  // checksum_mismatches is conserved against the recovery actions.
  std::uint64_t checksum_mismatches = 0;  // verify failures, all boundaries
  std::uint64_t storage_io_retries = 0;   // ops re-issued after an IO error
  std::uint64_t spill_rewrites = 0;       // spills rewritten after verify
  std::uint64_t disk_full_events = 0;     // spill attempts hit a full disk
  std::uint64_t cache_integrity_evictions = 0;  // rotted cache entries

  // Classic Hadoop job counters (MAP_INPUT_RECORDS, SPILLED_RECORDS, ...).
  std::map<std::string, std::int64_t> counters;
  std::int64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  // Snapshot of the engine's metrics registry at job end (empty when
  // mapred.metrics.snapshot is off).
  MetricsSnapshot metrics;

  double elapsed() const { return finish_time - submit_time; }

  // Each phase is clamped to [0, elapsed()], so consumers (bench JSON
  // validation included) can rely on phase <= wall-clock even for jobs
  // that never reached a phase (sentinel timestamps stay negative).
  PhaseTimes phases() const {
    const double wall = std::max(0.0, elapsed());
    const auto span = [wall](double begin, double end) {
      if (begin < 0 || end < 0) return 0.0;
      return std::clamp(end - begin, 0.0, wall);
    };
    PhaseTimes p;
    p.map = span(submit_time, maps_done_time);
    p.shuffle = span(shuffle_start_time, shuffle_done_time);
    p.merge = span(shuffle_done_time, reduce_start_time);
    p.reduce = span(reduce_start_time, finish_time);
    return p;
  }

  // Fraction of phase time hidden by pipelining: 0 when phases ran
  // strictly back-to-back, approaching 1 as they fully overlap.
  double overlap_fraction() const {
    const double total = phases().sum();
    if (total <= 0) return 0.0;
    return std::clamp(1.0 - std::max(0.0, elapsed()) / total, 0.0, 1.0);
  }

  double cache_hit_rate() const {
    const auto lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : double(cache_hits) / double(lookups);
  }
};

// Resolved integrity/storage-recovery knobs, one decode per job.
struct IntegrityPolicy {
  bool enabled = true;       // verify checksums at read/write boundaries
  double crc_bw = 2.0e9;     // modeled bytes/sec of CRC32 CPU per core
  int max_retries = 16;      // bounded re-reads / rewrites / IO retries
  double disk_full_backoff = 0.5;  // seconds between disk-full attempts
  int disk_full_max_retries = 240;

  static IntegrityPolicy from_conf(const Conf& conf) {
    IntegrityPolicy p;
    p.enabled = conf.get_bool(kIntegrityEnabled, p.enabled);
    p.crc_bw = conf.get_double(kIntegrityCpuBw, p.crc_bw);
    p.max_retries = int(conf.get_int(kIntegrityMaxRetries, p.max_retries));
    p.disk_full_backoff =
        conf.get_double(kDiskFullBackoffSec, p.disk_full_backoff);
    p.disk_full_max_retries =
        int(conf.get_int(kDiskFullMaxRetries, p.disk_full_max_retries));
    return p;
  }
};

// Resolved numeric knobs, one decode of the Conf per job.
struct CostModel {
  // Era-realistic Hadoop 0.20 throughputs: the Java map path (record
  // reader + map + sort + spill serialization) moves well under 100 MB/s
  // per core, which is why socket-stack CPU contention shows up in the
  // paper's interconnect comparisons.
  double map_cpu_bw = 60e6;
  double reduce_cpu_bw = 90e6;
  double merge_cpu_bw = 150e6;
  double task_startup = 1.0;

  static CostModel from_conf(const Conf& conf) {
    CostModel m;
    m.map_cpu_bw = conf.get_double(kMapCpuBw, m.map_cpu_bw);
    m.reduce_cpu_bw = conf.get_double(kReduceCpuBw, m.reduce_cpu_bw);
    m.merge_cpu_bw = conf.get_double(kMergeCpuBw, m.merge_cpu_bw);
    m.task_startup = conf.get_double(kTaskStartupSec, m.task_startup);
    return m;
  }
};

}  // namespace hmr::mapred
