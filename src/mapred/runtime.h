// Shared per-job runtime state and the pluggable shuffle-engine
// interface. One JobRuntime exists per running job; TaskTracker state is
// per compute host. Shuffle engines (vanilla HTTP, OSU-IB RDMA,
// Hadoop-A) plug in through ShuffleEngine without the framework knowing
// their transport.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dataplane/segment.h"
#include "hdfs/hdfs.h"
#include "mapred/attempt.h"
#include "mapred/recovery.h"
#include "mapred/types.h"
#include "net/cluster.h"
#include "net/network.h"
#include "sim/channel.h"
#include "sim/sync.h"

namespace hmr::mapred {

using dataplane::KvPair;
using dataplane::MapOutput;
using net::Cluster;
using net::Host;
using net::Network;

// Batches keep per-record channel overhead off the hot path.
using KvBatch = std::vector<KvPair>;
// The reducer's input stream: sorted batches, closed at end of merge.
using KvSink = sim::Channel<KvBatch>;

// A finished map task's output as the TaskTracker serves it: the real
// MapOutput (backed by the same buffer as the local file) plus where it
// lives.
struct MapOutputInfo {
  int map_id = -1;
  int host_id = -1;
  std::string local_path;  // file in the host's LocalFS
  std::shared_ptr<const MapOutput> output;
  double scale = 1.0;
  double created_at = 0.0;  // sim time the file hit the local disk

  std::uint64_t modeled_partition_bytes(int reduce) const {
    return static_cast<std::uint64_t>(
        double(output->index.at(reduce).length) * scale);
  }
};

// A TaskTracker persists across jobs: its slot resources are the
// cluster-wide contention point when several jobs run concurrently, and
// its served outputs are keyed by (job_id, map_id).
struct TaskTrackerState {
  TaskTrackerState(sim::Engine& engine, Host& host, int map_slots,
                   int reduce_slots)
      : host(&host),
        map_slots(engine, map_slots, host.name() + ".mapslots"),
        reduce_slots(engine, reduce_slots, host.name() + ".redslots") {}

  Host* host;
  sim::Resource map_slots;
  sim::Resource reduce_slots;
  // (job_id, map_id) -> output served from this tracker.
  std::map<std::pair<int, int>, MapOutputInfo> map_outputs;
};

struct MapTaskInfo {
  int map_id = -1;
  std::string input_file;
  std::uint64_t modeled_bytes = 0;
  std::vector<int> replica_hosts;  // candidate local hosts
  int ran_on = -1;
  bool done = false;
  // Attempt bookkeeping (mapred/attempt.h): the original attempt and
  // its speculative backup, when live. Recovery reruns are not linked
  // here (the task is already done).
  TaskAttempt* running = nullptr;
  TaskAttempt* backup = nullptr;
  int attempts_running = 0;
  double first_started_at = -1.0;
  bool straggling = false;  // fault injection marked an attempt slow
};

struct ReduceTaskInfo {
  int reduce_id = -1;
  // First-commit-wins gate: set by JobRuntime::try_commit_reduce for
  // exactly one attempt; the loser unlinks its attempt output file.
  bool committed = false;
  TaskAttempt* running = nullptr;
  TaskAttempt* backup = nullptr;
};

class ShuffleEngine;

// Cached handles into the engine's MetricsRegistry for every counter
// the shuffle/storage hot paths touch per request, per retry, or per
// fault event. Registered once per job (references are stable for the
// registry's lifetime — std::map nodes never move), so call sites pay a
// plain pointer add instead of a string-keyed map lookup per event.
// Same idiom as net::Network's message metrics and PrefetchCache's
// attach_metrics.
struct ShuffleMetrics {
  explicit ShuffleMetrics(MetricsRegistry& registry)
      : fetch_requests(registry.counter("shuffle.fetch.requests")),
        fetch_timeouts(registry.counter("shuffle.fetch.timeouts")),
        fetch_retries(registry.counter("shuffle.fetch.retries")),
        fetch_stale_dropped(registry.counter("shuffle.fetch.stale_dropped")),
        malformed_msgs(registry.counter("shuffle.malformed_msgs")),
        fault_dropped_requests(
            registry.counter("shuffle.fault.dropped_requests")),
        fault_dropped_responses(
            registry.counter("shuffle.fault.dropped_responses")),
        fault_stalled_responses(
            registry.counter("shuffle.fault.stalled_responses")),
        mapout_unserved(registry.counter("storage.mapout.unserved")),
        io_retries(registry.counter("storage.io.retries")),
        checksum_mismatches(
            registry.counter("integrity.checksum.mismatches")),
        speculation_attempts(registry.counter("speculation.attempts")),
        speculation_wins(registry.counter("speculation.wins")),
        speculation_kills(registry.counter("speculation.kills")),
        speculation_cap_deferrals(
            registry.counter("speculation.cap_deferrals")) {}

  Counter& fetch_requests;
  Counter& fetch_timeouts;
  Counter& fetch_retries;
  Counter& fetch_stale_dropped;
  Counter& malformed_msgs;
  Counter& fault_dropped_requests;
  Counter& fault_dropped_responses;
  Counter& fault_stalled_responses;
  Counter& mapout_unserved;
  Counter& io_retries;
  Counter& checksum_mismatches;
  Counter& speculation_attempts;
  Counter& speculation_wins;
  Counter& speculation_kills;
  Counter& speculation_cap_deferrals;
};

// Everything a task or engine needs to reach the simulated world.
struct JobRuntime {
  JobRuntime(Cluster& cluster, Network& network, hdfs::MiniDfs& dfs,
             JobSpec spec, std::vector<TaskTrackerState*> trackers,
             int job_id);

  sim::Engine& engine;
  Cluster& cluster;
  Network& network;
  hdfs::MiniDfs& dfs;
  JobSpec spec;
  CostModel cost;
  IntegrityPolicy integrity;
  int job_id = 0;
  double data_scale = 1.0;  // from the input files
  // Hot-path metric handles (see ShuffleMetrics); `metric.x.add()`
  // replaces `engine.metrics().counter("x").add()` in per-event code.
  ShuffleMetrics metric;

  std::vector<MapTaskInfo> maps;
  std::vector<ReduceTaskInfo> reduces;
  int num_reduces = 0;
  // Owned by the JobRunner; shared with concurrently running jobs.
  std::vector<TaskTrackerState*> trackers;
  ShuffleEngine* shuffle = nullptr;  // set by the JobRunner

  // Map-completion plumbing (the Map Completion Fetcher reads these).
  int maps_completed = 0;
  std::vector<std::unique_ptr<sim::Event>> map_done;
  // Map ids in completion order; completion_pulse fires on every append.
  std::vector<int> completion_log;
  sim::Event completion_pulse;
  sim::Event all_maps_done;
  sim::Event slowstart_reached;

  JobResult result;

  // Shuffle-fetch recovery (mapred/recovery.h): resolved policy,
  // per-tracker consecutive-failure streaks, and the blacklist.
  FetchRetryPolicy retry;
  std::map<int, int> fetch_failure_streak;  // tracker host id -> streak
  std::set<int> blacklisted_trackers;
  // Maps currently being re-executed for re-fetch, so re-registration in
  // record_map_output is distinguishable from a losing speculative
  // attempt; `reruns` dedupes concurrent ensure_fetchable callers.
  std::set<int> rerunning_maps;
  std::map<int, std::unique_ptr<sim::Event>> reruns;

  // --- task-attempt lifecycle (mapred/attempt.h) ------------------------
  SpeculationPolicy speculation;
  // Merged compute faults: conf keys (sim.fault.cpu/task.*, parsed by
  // the JobRunner) plus the spec's FaultPlan. Task hang/slow windows are
  // consulted at attempt checkpoints; cpu windows are timer-armed on
  // the cluster.
  sim::ComputeFaults compute_faults;
  // Stable storage for every attempt of this job; raw pointers into it
  // (MapTaskInfo/ReduceTaskInfo links, engine cancel watchers) stay
  // valid for the job's lifetime.
  std::vector<std::unique_ptr<TaskAttempt>> attempts;
  int speculative_running = 0;  // live backups, vs speculation.slots
  int map_backups_launched = 0;
  int reduce_backups_launched = 0;
  int reduces_committed = 0;
  // Sim time the last reduce committed; this is the job's finish_time.
  // The speculation backup pollers may take up to one poll interval to
  // notice completion and exit, and that bookkeeping tail must not
  // inflate the reported job latency.
  double reduces_done_time = 0;
  // Completed-duration stats per kind (reruns excluded): the LATE
  // reference once at least one task of the kind has finished.
  double map_duration_sum = 0;
  int map_durations = 0;
  double reduce_duration_sum = 0;
  int reduce_durations = 0;
  // Modeled bytes expected by each reduce from committed map outputs;
  // grows as maps finish. The reduce progress estimator's denominator.
  std::vector<std::uint64_t> reduce_expected_modeled;

  // Registers a new RUNNING attempt and links it to its task (unless
  // `rerun`). Speculative attempts count against the slot budget.
  TaskAttempt& start_attempt(TaskKind kind, int task_id, int host_id,
                             bool speculative, bool rerun);
  // Moves a RUNNING attempt to a terminal state, unlinks it, updates
  // duration stats / speculation counters, and wakes watchers.
  // Idempotent for already-terminal attempts.
  void finish_attempt(TaskAttempt& attempt, AttemptState state);
  // Asks a RUNNING attempt to die; it observes the flag at its next
  // checkpoint (engines also watch `attempt.wake`).
  void request_kill(TaskAttempt& attempt);
  // Kills whichever of the task's linked attempts is not `winner`.
  void kill_siblings(TaskKind kind, int task_id, const TaskAttempt* winner);
  // LATE: claims a backup for the slowest-estimated-finish straggling
  // task of `kind` eligible to run on `on_host_id`, creating and
  // returning its attempt; nullptr when nothing qualifies (cap- or
  // slot-blocked picks count speculation.cap_deferrals).
  TaskAttempt* try_claim_backup(TaskKind kind, int on_host_id);
  // First-commit-wins gate for reduce output; true for exactly one
  // caller per reduce.
  bool try_commit_reduce(int reduce_id);
  bool all_reduces_committed() const {
    return reduces_committed >= num_reduces;
  }
  // Task checkpoint: serves any active task.hang window on `host`,
  // reports `progress`, and returns false when the attempt should
  // abandon (kill requested). Null attempt: always true, no-op.
  sim::Task<bool> attempt_checkpoint(TaskAttempt* attempt, Host& host,
                                     double progress);

  TaskTrackerState& tracker_for_host(int host_id);
  TaskTrackerState& tracker_of_map(int map_id);
  // Registers a finished map's output and fires completion events.
  // Returns true when the output was committed (first attempt to finish,
  // or a recovery rerun re-homing the served copy); false for a
  // speculative loser, whose output file is unlinked.
  bool record_map_output(MapOutputInfo info);

  bool tracker_blacklisted(int host_id) const {
    return blacklisted_trackers.contains(host_id);
  }
  // A fetch from `host_id` timed out. Returns true when this crossed the
  // blacklist threshold (the tracker is newly blacklisted).
  bool report_fetch_failure(int host_id);
  // A fetch from `host_id` succeeded: resets its failure streak.
  void report_fetch_success(int host_id);
  // Guarantees maps[map_id].ran_on points at a non-blacklisted tracker,
  // re-executing the map on a healthy tracker if necessary. Concurrent
  // callers for the same map share one re-execution.
  sim::Task<> ensure_fetchable(int map_id);
  // Charges `modeled_bytes` of CPU at the given per-core throughput on
  // `host` (holds one core).
  sim::Task<> charge_cpu(Host& host, std::uint64_t modeled_bytes, double bw);

  std::uint64_t real_from_modeled(std::uint64_t modeled) const {
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(double(modeled) / data_scale));
  }
};

// TaskTracker- and ReduceTask-side halves of a shuffle implementation.
class ShuffleEngine {
 public:
  virtual ~ShuffleEngine() = default;
  virtual std::string name() const = 0;

  // Called once before any task runs: start listeners/daemons.
  virtual sim::Task<> start(JobRuntime& job) = 0;
  // A map finished on `host_id` (prefetcher hook, §III-B3).
  virtual void on_map_finished(JobRuntime& job, int map_id, int host_id) {
    (void)job, (void)map_id, (void)host_id;
  }
  // A spill on `host_id` was rejected by a full disk: shed whatever
  // storage-adjacent memory the engine holds there (the RDMA engine
  // drops its prefetch cache) before the writer backs off and retries.
  virtual void on_disk_pressure(JobRuntime& job, int host_id) {
    (void)job, (void)host_id;
  }
  // Reduce-side: fetch every map's partition `reduce_id`, merge to sorted
  // order, and deliver batches into `sink` (closing it at the end).
  // `attempt` (nullable) is the reduce attempt this fetch serves; when it
  // is killed mid-shuffle the engine must abandon in-flight fetches,
  // release its buffers, and still close `sink`.
  virtual sim::Task<> fetch_and_merge(JobRuntime& job, int reduce_id,
                                      Host& host, KvSink& sink,
                                      TaskAttempt* attempt = nullptr) = 0;
  // True when the engine pipelines merged output into a concurrently
  // running reduce (§III-B4); false enforces the vanilla barrier.
  virtual bool overlaps_reduce(const JobRuntime& job) const = 0;
  // Called after the job completes: shut down and *join* every daemon the
  // engine spawned, so destroying the engine afterwards is safe.
  virtual sim::Task<> stop(JobRuntime& job) {
    (void)job;
    co_return;
  }
};

}  // namespace hmr::mapred
