// Shared per-job runtime state and the pluggable shuffle-engine
// interface. One JobRuntime exists per running job; TaskTracker state is
// per compute host. Shuffle engines (vanilla HTTP, OSU-IB RDMA,
// Hadoop-A) plug in through ShuffleEngine without the framework knowing
// their transport.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dataplane/segment.h"
#include "hdfs/hdfs.h"
#include "mapred/recovery.h"
#include "mapred/types.h"
#include "net/cluster.h"
#include "net/network.h"
#include "sim/channel.h"
#include "sim/sync.h"

namespace hmr::mapred {

using dataplane::KvPair;
using dataplane::MapOutput;
using net::Cluster;
using net::Host;
using net::Network;

// Batches keep per-record channel overhead off the hot path.
using KvBatch = std::vector<KvPair>;
// The reducer's input stream: sorted batches, closed at end of merge.
using KvSink = sim::Channel<KvBatch>;

// A finished map task's output as the TaskTracker serves it: the real
// MapOutput (backed by the same buffer as the local file) plus where it
// lives.
struct MapOutputInfo {
  int map_id = -1;
  int host_id = -1;
  std::string local_path;  // file in the host's LocalFS
  std::shared_ptr<const MapOutput> output;
  double scale = 1.0;
  double created_at = 0.0;  // sim time the file hit the local disk

  std::uint64_t modeled_partition_bytes(int reduce) const {
    return static_cast<std::uint64_t>(
        double(output->index.at(reduce).length) * scale);
  }
};

// A TaskTracker persists across jobs: its slot resources are the
// cluster-wide contention point when several jobs run concurrently, and
// its served outputs are keyed by (job_id, map_id).
struct TaskTrackerState {
  TaskTrackerState(sim::Engine& engine, Host& host, int map_slots,
                   int reduce_slots)
      : host(&host),
        map_slots(engine, map_slots, host.name() + ".mapslots"),
        reduce_slots(engine, reduce_slots, host.name() + ".redslots") {}

  Host* host;
  sim::Resource map_slots;
  sim::Resource reduce_slots;
  // (job_id, map_id) -> output served from this tracker.
  std::map<std::pair<int, int>, MapOutputInfo> map_outputs;
};

struct MapTaskInfo {
  int map_id = -1;
  std::string input_file;
  std::uint64_t modeled_bytes = 0;
  std::vector<int> replica_hosts;  // candidate local hosts
  int ran_on = -1;
  bool done = false;
  // Speculation bookkeeping.
  int attempts_running = 0;
  double first_started_at = -1.0;
  bool straggling = false;  // fault injection marked an attempt slow
};

class ShuffleEngine;

// Cached handles into the engine's MetricsRegistry for every counter
// the shuffle/storage hot paths touch per request, per retry, or per
// fault event. Registered once per job (references are stable for the
// registry's lifetime — std::map nodes never move), so call sites pay a
// plain pointer add instead of a string-keyed map lookup per event.
// Same idiom as net::Network's message metrics and PrefetchCache's
// attach_metrics.
struct ShuffleMetrics {
  explicit ShuffleMetrics(MetricsRegistry& registry)
      : fetch_requests(registry.counter("shuffle.fetch.requests")),
        fetch_timeouts(registry.counter("shuffle.fetch.timeouts")),
        fetch_retries(registry.counter("shuffle.fetch.retries")),
        fetch_stale_dropped(registry.counter("shuffle.fetch.stale_dropped")),
        malformed_msgs(registry.counter("shuffle.malformed_msgs")),
        fault_dropped_requests(
            registry.counter("shuffle.fault.dropped_requests")),
        fault_dropped_responses(
            registry.counter("shuffle.fault.dropped_responses")),
        fault_stalled_responses(
            registry.counter("shuffle.fault.stalled_responses")),
        mapout_unserved(registry.counter("storage.mapout.unserved")),
        io_retries(registry.counter("storage.io.retries")),
        checksum_mismatches(
            registry.counter("integrity.checksum.mismatches")) {}

  Counter& fetch_requests;
  Counter& fetch_timeouts;
  Counter& fetch_retries;
  Counter& fetch_stale_dropped;
  Counter& malformed_msgs;
  Counter& fault_dropped_requests;
  Counter& fault_dropped_responses;
  Counter& fault_stalled_responses;
  Counter& mapout_unserved;
  Counter& io_retries;
  Counter& checksum_mismatches;
};

// Everything a task or engine needs to reach the simulated world.
struct JobRuntime {
  JobRuntime(Cluster& cluster, Network& network, hdfs::MiniDfs& dfs,
             JobSpec spec, std::vector<TaskTrackerState*> trackers,
             int job_id);

  sim::Engine& engine;
  Cluster& cluster;
  Network& network;
  hdfs::MiniDfs& dfs;
  JobSpec spec;
  CostModel cost;
  IntegrityPolicy integrity;
  int job_id = 0;
  double data_scale = 1.0;  // from the input files
  // Hot-path metric handles (see ShuffleMetrics); `metric.x.add()`
  // replaces `engine.metrics().counter("x").add()` in per-event code.
  ShuffleMetrics metric;

  std::vector<MapTaskInfo> maps;
  int num_reduces = 0;
  // Owned by the JobRunner; shared with concurrently running jobs.
  std::vector<TaskTrackerState*> trackers;
  ShuffleEngine* shuffle = nullptr;  // set by the JobRunner

  // Map-completion plumbing (the Map Completion Fetcher reads these).
  int maps_completed = 0;
  std::vector<std::unique_ptr<sim::Event>> map_done;
  // Map ids in completion order; completion_pulse fires on every append.
  std::vector<int> completion_log;
  sim::Event completion_pulse;
  sim::Event all_maps_done;
  sim::Event slowstart_reached;

  JobResult result;

  // Shuffle-fetch recovery (mapred/recovery.h): resolved policy,
  // per-tracker consecutive-failure streaks, and the blacklist.
  FetchRetryPolicy retry;
  std::map<int, int> fetch_failure_streak;  // tracker host id -> streak
  std::set<int> blacklisted_trackers;
  // Maps currently being re-executed for re-fetch, so re-registration in
  // record_map_output is distinguishable from a losing speculative
  // attempt; `reruns` dedupes concurrent ensure_fetchable callers.
  std::set<int> rerunning_maps;
  std::map<int, std::unique_ptr<sim::Event>> reruns;

  TaskTrackerState& tracker_for_host(int host_id);
  TaskTrackerState& tracker_of_map(int map_id);
  // Registers a finished map's output and fires completion events.
  void record_map_output(MapOutputInfo info);

  bool tracker_blacklisted(int host_id) const {
    return blacklisted_trackers.contains(host_id);
  }
  // A fetch from `host_id` timed out. Returns true when this crossed the
  // blacklist threshold (the tracker is newly blacklisted).
  bool report_fetch_failure(int host_id);
  // A fetch from `host_id` succeeded: resets its failure streak.
  void report_fetch_success(int host_id);
  // Guarantees maps[map_id].ran_on points at a non-blacklisted tracker,
  // re-executing the map on a healthy tracker if necessary. Concurrent
  // callers for the same map share one re-execution.
  sim::Task<> ensure_fetchable(int map_id);
  // Charges `modeled_bytes` of CPU at the given per-core throughput on
  // `host` (holds one core).
  sim::Task<> charge_cpu(Host& host, std::uint64_t modeled_bytes, double bw);

  std::uint64_t real_from_modeled(std::uint64_t modeled) const {
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(double(modeled) / data_scale));
  }
};

// TaskTracker- and ReduceTask-side halves of a shuffle implementation.
class ShuffleEngine {
 public:
  virtual ~ShuffleEngine() = default;
  virtual std::string name() const = 0;

  // Called once before any task runs: start listeners/daemons.
  virtual sim::Task<> start(JobRuntime& job) = 0;
  // A map finished on `host_id` (prefetcher hook, §III-B3).
  virtual void on_map_finished(JobRuntime& job, int map_id, int host_id) {
    (void)job, (void)map_id, (void)host_id;
  }
  // A spill on `host_id` was rejected by a full disk: shed whatever
  // storage-adjacent memory the engine holds there (the RDMA engine
  // drops its prefetch cache) before the writer backs off and retries.
  virtual void on_disk_pressure(JobRuntime& job, int host_id) {
    (void)job, (void)host_id;
  }
  // Reduce-side: fetch every map's partition `reduce_id`, merge to sorted
  // order, and deliver batches into `sink` (closing it at the end).
  virtual sim::Task<> fetch_and_merge(JobRuntime& job, int reduce_id,
                                      Host& host, KvSink& sink) = 0;
  // True when the engine pipelines merged output into a concurrently
  // running reduce (§III-B4); false enforces the vanilla barrier.
  virtual bool overlaps_reduce(const JobRuntime& job) const = 0;
  // Called after the job completes: shut down and *join* every daemon the
  // engine spawned, so destroying the engine afterwards is safe.
  virtual sim::Task<> stop(JobRuntime& job) {
    (void)job;
    co_return;
  }
};

}  // namespace hmr::mapred
