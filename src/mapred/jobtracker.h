// JobTracker: the long-lived, multi-tenant front door of the cluster.
//
// Where JobRunner::run() executes exactly one job, the JobTracker owns a
// submission *queue*: clients call submit(spec, user) at any simulated
// time, and a pluggable policy (mapred/scheduler.h) decides which queued
// job is dispatched next onto the shared persistent TaskTrackers. All of
// the runner's machinery — locality-aware split scheduling, slowstart,
// speculative execution, shuffle-fetch recovery, storage-fault retries —
// is reused unchanged per job; the tracker only decides *when* each job
// starts and accounts for per-tenant usage.
//
// Lifecycle (see docs/SCHEDULER.md for the full model):
//   1. submit() timestamps the job, assigns it to its user's pool, and
//      appends it to the queue (arrival order is the FIFO tiebreak).
//   2. maybe_dispatch() runs synchronously after every submission and
//      every job completion. It launches jobs while the cluster-wide
//      running cap has headroom and the policy can name an eligible job:
//        - fifo:     strict arrival order; pools and quotas are ignored.
//        - capacity: arrival order, but jobs whose pool is at its
//                    concurrent-running-job quota are passed over.
//        - fair:     weighted deficit — among pools with an eligible
//                    queued job, pick the pool with the smallest
//                    charged-cost / weight ratio (ties: lexicographic
//                    pool name), then that pool's oldest job.
//   3. A dispatched job runs to completion on the shared trackers;
//      scheduling is preemption-free — slots are reclaimed only when
//      tasks finish, never revoked (no kill-and-requeue).
//   4. Completion wakes the job's `done` event, folds latency into the
//      per-tenant aggregates, and re-enters maybe_dispatch().
//
// Because dispatch happens inline (no polling daemon), an Engine::run()
// drains naturally once every submitted job has completed — and every
// submitted job *does* complete: the queue is serviced whenever capacity
// frees, and the fair policy charges pools only for dispatched work, so
// no pool can starve another forever (starvation-freedom is tested).
//
// Determinism: the tracker introduces no randomness of its own. Given
// the same submissions at the same simulated times, dispatch order is a
// pure function of the policy state; arrival processes that feed it
// (workloads/multitenant.h) derive from the engine seed, never from
// wall clock.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mapred/jobrunner.h"
#include "mapred/scheduler.h"
#include "sim/sync.h"

namespace hmr::mapred {

// One submission's lifetime record. Queue/dispatch timestamps live here,
// not in JobResult, so per-job results stay byte-identical between a
// scheduled run and a standalone JobRunner::run() of the same spec.
struct SubmittedJob {
  SubmittedJob(sim::Engine& engine, int id, std::string user, JobSpec spec)
      : id(id), user(std::move(user)), spec(std::move(spec)), done(engine) {}

  int id = 0;            // submission order, 1-based
  std::string user;      // pool the job is charged to
  JobSpec spec;          // consumed at dispatch
  double cost = 1.0;     // fair-share charge (map-count proxy)
  double submitted_at = 0;
  double dispatched_at = -1;  // <0 while queued
  double finished_at = -1;    // <0 until completed
  bool completed = false;
  JobResult result;      // valid once completed
  sim::Event done;       // set on completion

  double queue_wait() const {
    return dispatched_at < 0 ? -1 : dispatched_at - submitted_at;
  }
  double latency() const {
    return finished_at < 0 ? -1 : finished_at - submitted_at;
  }
};

// Per-pool usage rollup, updated as jobs complete.
struct TenantStats {
  int submitted = 0;
  int completed = 0;
  double total_queue_wait = 0;  // seconds, dispatched jobs
  double total_latency = 0;     // seconds, completed jobs
  double charged_cost = 0;      // fair-share charge accumulated
  // Speculative-execution rollup: backup slots a pool's jobs burned are
  // charged to its fair share at completion (one split-equivalent per
  // backup attempt), so a speculation-heavy tenant cannot starve others.
  std::uint64_t speculative_attempts = 0;
  std::uint64_t speculative_wins = 0;
  std::uint64_t speculative_kills = 0;
};

class JobTracker {
 public:
  JobTracker(sim::Engine& engine, JobRunner& runner, SchedulerConfig config);

  // Enqueues the job under `user`'s pool and dispatches immediately if
  // the policy allows. The returned handle outlives the tracker's queue;
  // `co_await handle->done.wait()` blocks until completion.
  std::shared_ptr<SubmittedJob> submit(JobSpec spec,
                                       std::string user = "default");

  // Every submission ever made, in submission order (completed included).
  const std::vector<std::shared_ptr<SubmittedJob>>& jobs() const {
    return jobs_;
  }
  const std::map<std::string, TenantStats>& tenant_stats() const {
    return tenants_;
  }
  const SchedulerConfig& config() const { return config_; }
  int running() const { return running_; }
  int queued() const { return static_cast<int>(queue_.size()); }

 private:
  void maybe_dispatch();
  // Index into queue_ of the next job to dispatch, -1 if none eligible.
  int pick_next();
  bool pool_at_quota(const std::string& user) const;
  sim::Task<> run_job(std::shared_ptr<SubmittedJob> job);

  sim::Engine& engine_;
  JobRunner& runner_;
  SchedulerConfig config_;
  std::vector<std::shared_ptr<SubmittedJob>> jobs_;   // all submissions
  std::vector<std::shared_ptr<SubmittedJob>> queue_;  // awaiting dispatch
  std::map<std::string, int> pool_running_;   // live jobs per pool
  std::map<std::string, double> charged_;     // fair-share charge per pool
  std::map<std::string, TenantStats> tenants_;
  int running_ = 0;
};

}  // namespace hmr::mapred
