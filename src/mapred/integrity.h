// Checksum-verified storage IO with bounded recovery (DESIGN.md §6.2).
//
// Every durable artifact of a job — map-output spills, reduce-side merge
// spills, the final output blocks — flows through these helpers. Reads
// verify the payload's checksum (charging CRC CPU at the integrity
// bandwidth) and re-read on a mismatch or injected IO error; writes
// verify the stored bytes and rewrite silently corrupted spills; a write
// rejected by a full disk sheds shuffle-cache memory via
// ShuffleEngine::on_disk_pressure and backs off until the disk drains.
//
// Counter discipline: every verify failure increments
// `integrity.checksum.mismatches` exactly once, paired with exactly one
// recovery-action counter (`storage.corrupt.rereads`,
// `storage.spill.rewrites`, `storage.corrupt.read_failures`,
// `storage.write.failures`, or — at the cache boundary, counted by the
// caller — `cache.integrity.evictions`). The simfuzz integrity oracle
// checks this conservation law exactly.
#pragma once

#include "mapred/runtime.h"
#include "storage/localfs.h"

namespace hmr::mapred {

// Counts one checksum mismatch (metric + JobResult twin). Exposed for
// the boundaries that recover outside these helpers (cache eviction).
void count_checksum_mismatch(JobRuntime& job);

// Charges CRC32 verification CPU on `host` for `modeled` bytes. No-op
// when integrity verification is disabled.
sim::Task<> charge_verify_cpu(JobRuntime& job, Host& host,
                              std::uint64_t modeled);

// Timed whole-file read with verification: injected IO errors are
// retried (`storage.io.retries`), corrupt payloads re-read
// (`storage.corrupt.rereads`), both bounded by the integrity policy.
// Exhausted retries surface the last error — the caller picks the
// fallback (drop the fetch request so the reducer's watchdog re-executes
// the map, fail over to another HDFS replica, ...).
sim::Task<Result<storage::FileView>> read_file_verified(
    JobRuntime& job, Host& host, const std::string& path);

// Ranged variant; charges verification over real_len * scale.
sim::Task<Result<storage::FileView>> read_range_verified(
    JobRuntime& job, Host& host, const std::string& path,
    std::uint64_t real_offset, std::uint64_t real_len);

// Durable write with read-back verification and the disk-full ladder.
// Returns OK only when the stored payload verified clean (or integrity
// verification is off).
sim::Task<Status> write_file_verified(JobRuntime& job, Host& host,
                                      std::string path, Bytes data,
                                      double scale);

}  // namespace hmr::mapred
