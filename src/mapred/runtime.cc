#include "mapred/runtime.h"

#include <algorithm>

#include "mapred/maptask.h"
#include "sim/trace.h"

namespace hmr::mapred {

JobRuntime::JobRuntime(Cluster& cluster, Network& network,
                       hdfs::MiniDfs& dfs, JobSpec spec_in,
                       std::vector<TaskTrackerState*> trackers_in,
                       int job_id_in)
    : engine(cluster.engine()),
      cluster(cluster),
      network(network),
      dfs(dfs),
      spec(std::move(spec_in)),
      cost(CostModel::from_conf(spec.conf)),
      integrity(IntegrityPolicy::from_conf(spec.conf)),
      job_id(job_id_in),
      metric(engine.metrics()),
      trackers(std::move(trackers_in)),
      completion_pulse(engine),
      all_maps_done(engine),
      slowstart_reached(engine),
      retry(FetchRetryPolicy::from_conf(spec.conf)) {

  // One split per input file (workload writers emit block-sized parts).
  int map_id = 0;
  for (const auto& path : spec.input_files) {
    auto info = dfs.stat(path);
    HMR_CHECK_MSG(info.ok(), "missing input file: " + path);
    MapTaskInfo task;
    task.map_id = map_id++;
    task.input_file = path;
    task.modeled_bytes = info->modeled_size();
    data_scale = info->scale;
    for (const auto& block : info->blocks) {
      for (int replica : block.replicas) {
        if (std::find(task.replica_hosts.begin(), task.replica_hosts.end(),
                      replica) == task.replica_hosts.end()) {
          task.replica_hosts.push_back(replica);
        }
      }
    }
    result.input_modeled_bytes += task.modeled_bytes;
    maps.push_back(std::move(task));
  }
  map_done.reserve(maps.size());
  for (size_t i = 0; i < maps.size(); ++i) {
    map_done.push_back(std::make_unique<sim::Event>(engine));
  }

  num_reduces = int(spec.conf.get_int(
      kNumReduces,
      std::int64_t(trackers.size()) * spec.conf.get_int(kReduceSlots, 4)));
  HMR_CHECK_MSG(num_reduces > 0, "job needs at least one reduce");
  result.num_maps = int(maps.size());
  result.num_reduces = num_reduces;

  speculation = SpeculationPolicy::from_conf(spec.conf);
  reduces.resize(size_t(num_reduces));
  for (int r = 0; r < num_reduces; ++r) reduces[size_t(r)].reduce_id = r;
  reduce_expected_modeled.assign(size_t(num_reduces), 0);
}

TaskAttempt& JobRuntime::start_attempt(TaskKind kind, int task_id, int host_id,
                                       bool speculative, bool rerun) {
  auto owned = std::make_unique<TaskAttempt>(engine);
  TaskAttempt& attempt = *owned;
  attempt.attempt_id = int(attempts.size());
  attempt.kind = kind;
  attempt.task_id = task_id;
  attempt.host_id = host_id;
  attempt.speculative = speculative;
  attempt.rerun = rerun;
  attempt.started_at = engine.now();
  attempt.progress_at = engine.now();
  attempts.push_back(std::move(owned));
  if (speculative) {
    ++speculative_running;
    ++result.speculative_attempts;
    metric.speculation_attempts.add();
  }
  if (!rerun) {
    if (kind == TaskKind::kMap) {
      auto& task = maps.at(size_t(task_id));
      ++task.attempts_running;
      if (task.first_started_at < 0) task.first_started_at = engine.now();
      (speculative ? task.backup : task.running) = &attempt;
    } else {
      auto& task = reduces.at(size_t(task_id));
      (speculative ? task.backup : task.running) = &attempt;
    }
  }
  if (auto* tracer = engine.tracer()) {
    tracer->instant(cluster.host(size_t(host_id)).name(), "attempt",
                    "start " + attempt.name() +
                        (speculative ? " (speculative)" : ""));
  }
  return attempt;
}

void JobRuntime::finish_attempt(TaskAttempt& attempt, AttemptState state) {
  if (!attempt.running()) return;
  HMR_CHECK_MSG(state != AttemptState::kRunning,
                "finish_attempt needs a terminal state");
  attempt.state = state;
  if (state == AttemptState::kSucceeded) {
    attempt.progress = 1.0;
    attempt.progress_at = engine.now();
    if (!attempt.rerun) {
      const double duration = engine.now() - attempt.started_at;
      if (attempt.kind == TaskKind::kMap) {
        map_duration_sum += duration;
        ++map_durations;
      } else {
        reduce_duration_sum += duration;
        ++reduce_durations;
      }
    }
  } else if (state == AttemptState::kKilled) {
    ++result.speculative_kills;
    metric.speculation_kills.add();
  }
  if (attempt.speculative) --speculative_running;
  if (!attempt.rerun) {
    if (attempt.kind == TaskKind::kMap) {
      auto& task = maps.at(size_t(attempt.task_id));
      --task.attempts_running;
      if (task.running == &attempt) task.running = nullptr;
      if (task.backup == &attempt) task.backup = nullptr;
    } else {
      auto& task = reduces.at(size_t(attempt.task_id));
      if (task.running == &attempt) task.running = nullptr;
      if (task.backup == &attempt) task.backup = nullptr;
    }
  }
  attempt.wake.set();  // never reset: late watchers must still wake
}

void JobRuntime::request_kill(TaskAttempt& attempt) {
  if (!attempt.running() || attempt.kill_requested) return;
  attempt.kill_requested = true;
  attempt.wake.set();
}

void JobRuntime::kill_siblings(TaskKind kind, int task_id,
                               const TaskAttempt* winner) {
  TaskAttempt* linked[2] = {nullptr, nullptr};
  if (kind == TaskKind::kMap) {
    linked[0] = maps.at(size_t(task_id)).running;
    linked[1] = maps.at(size_t(task_id)).backup;
  } else {
    linked[0] = reduces.at(size_t(task_id)).running;
    linked[1] = reduces.at(size_t(task_id)).backup;
  }
  for (TaskAttempt* attempt : linked) {
    if (attempt != nullptr && attempt != winner) request_kill(*attempt);
  }
}

TaskAttempt* JobRuntime::try_claim_backup(TaskKind kind, int on_host_id) {
  const bool enabled =
      kind == TaskKind::kMap ? speculation.maps : speculation.reduces;
  if (!enabled) return nullptr;
  const double now = engine.now();

  // Running original attempts of this kind whose task has neither
  // finished nor already has a backup, and which would land on a
  // different host.
  struct Candidate {
    TaskAttempt* attempt;
    double est_total;
  };
  std::vector<Candidate> candidates;
  double running_est_sum = 0;
  int running_est_count = 0;
  auto consider = [&](TaskAttempt* original, TaskAttempt* backup,
                      bool task_done) {
    if (original == nullptr || !original->running()) return;
    const double age = now - original->started_at;
    // est_total = age / progress, with progress floored so a stuck
    // attempt (progress ~ 0) yields a large finite estimate.
    const double est_total = age / std::max(original->progress, 0.05);
    running_est_sum += est_total;
    ++running_est_count;
    if (task_done || backup != nullptr) return;
    if (original->host_id == on_host_id) return;
    if (age < speculation.min_runtime) return;
    candidates.push_back({original, est_total});
  };
  if (kind == TaskKind::kMap) {
    for (auto& task : maps) consider(task.running, task.backup, task.done);
  } else {
    for (auto& task : reduces) {
      consider(task.running, task.backup, task.committed);
    }
  }
  if (candidates.empty()) return nullptr;

  // LATE reference: mean completed duration of the kind; before anything
  // completes, the mean running estimate.
  const int completed =
      kind == TaskKind::kMap ? map_durations : reduce_durations;
  const double completed_sum =
      kind == TaskKind::kMap ? map_duration_sum : reduce_duration_sum;
  const double reference = completed > 0
                               ? completed_sum / double(completed)
                               : running_est_sum / double(running_est_count);

  // Flag outliers and pick the one with the most estimated work left
  // (id-order tiebreak keeps the choice deterministic).
  TaskAttempt* pick = nullptr;
  double pick_remaining = -1;
  for (const auto& candidate : candidates) {
    if (candidate.est_total <= speculation.slow_factor * reference) continue;
    const double remaining =
        candidate.est_total - (now - candidate.attempt->started_at);
    if (remaining > pick_remaining) {
      pick = candidate.attempt;
      pick_remaining = remaining;
    }
  }
  if (pick == nullptr) return nullptr;

  // Budget checks after the pick so a blocked claim is visible as a
  // deferral rather than silently never considered.
  const int launched =
      kind == TaskKind::kMap ? map_backups_launched : reduce_backups_launched;
  const int tasks = kind == TaskKind::kMap ? int(maps.size()) : num_reduces;
  if (launched >= speculation.cap_count(tasks) ||
      speculative_running >= speculation.slots) {
    ++result.speculative_cap_deferrals;
    metric.speculation_cap_deferrals.add();
    return nullptr;
  }
  ++(kind == TaskKind::kMap ? map_backups_launched : reduce_backups_launched);
  // No suspension between the pick and the link (start_attempt sets
  // task.backup synchronously), so concurrent claimers cannot double-
  // launch a backup for the same task.
  return &start_attempt(kind, pick->task_id, on_host_id,
                        /*speculative=*/true, /*rerun=*/false);
}

bool JobRuntime::try_commit_reduce(int reduce_id) {
  auto& task = reduces.at(size_t(reduce_id));
  if (task.committed) return false;
  task.committed = true;
  ++reduces_committed;
  if (reduces_committed >= num_reduces) reduces_done_time = engine.now();
  return true;
}

sim::Task<bool> JobRuntime::attempt_checkpoint(TaskAttempt* attempt,
                                               Host& host, double progress) {
  if (attempt == nullptr) co_return true;
  if (attempt->kill_requested) co_return false;
  // Serve any active task.hang window: the attempt stays alive but
  // stops progressing until the window closes (or it gets killed).
  for (;;) {
    const double until = compute_faults.hang_until(host.id(), engine.now());
    if (until <= engine.now()) break;
    co_await engine.delay(until - engine.now());
    if (attempt->kill_requested) co_return false;
  }
  if (progress > attempt->progress) {
    attempt->progress = progress;
    attempt->progress_at = engine.now();
  }
  co_return !attempt->kill_requested;
}

TaskTrackerState& JobRuntime::tracker_for_host(int host_id) {
  for (auto& tracker : trackers) {
    if (tracker->host->id() == host_id) return *tracker;
  }
  HMR_CHECK_MSG(false, "no TaskTracker on host " + std::to_string(host_id));
  __builtin_unreachable();
}

TaskTrackerState& JobRuntime::tracker_of_map(int map_id) {
  return tracker_for_host(maps.at(map_id).ran_on);
}

bool JobRuntime::record_map_output(MapOutputInfo info) {
  const int map_id = info.map_id;
  const int host_id = info.host_id;
  if (maps.at(map_id).done) {
    if (rerunning_maps.erase(map_id) > 0) {
      // Recovery re-execution (ensure_fetchable): re-home the served
      // output on the healthy host. Completion events already fired for
      // the original attempt; only the serving location changes.
      tracker_for_host(host_id).map_outputs.insert_or_assign(
          std::pair{job_id, map_id}, std::move(info));
      maps.at(map_id).ran_on = host_id;
      if (shuffle != nullptr) shuffle->on_map_finished(*this, map_id, host_id);
      return true;
    }
    // A speculative duplicate lost the race; its output file is
    // unlinked (best effort — the disk may be faulted) so the loser
    // releases its spill space.
    const Status removed =
        tracker_for_host(host_id).host->fs().remove(info.local_path);
    (void)removed;
    return false;
  }
  // First to finish wins: the committed output fixes which partition
  // bytes every reduce will fetch, so accumulate the reduce progress
  // denominators from it before handing the info over.
  for (int r = 0; r < num_reduces; ++r) {
    reduce_expected_modeled.at(size_t(r)) += info.modeled_partition_bytes(r);
  }
  tracker_for_host(host_id).map_outputs.emplace(
      std::pair{job_id, map_id}, std::move(info));
  maps.at(map_id).done = true;
  maps.at(map_id).ran_on = host_id;  // the attempt that won serves the data
  ++maps_completed;
  completion_log.push_back(map_id);
  map_done.at(map_id)->set();
  completion_pulse.set();
  completion_pulse.reset();
  if (shuffle != nullptr) shuffle->on_map_finished(*this, map_id, host_id);

  const double slowstart = spec.conf.get_double(kSlowstart, 0.05);
  if (maps_completed >= int(std::max(1.0, slowstart * double(maps.size())))) {
    slowstart_reached.set();
  }
  if (maps_completed == int(maps.size())) {
    result.maps_done_time = engine.now();
    all_maps_done.set();
  }
  return true;
}

sim::Task<> JobRuntime::charge_cpu(Host& host, std::uint64_t modeled_bytes,
                                   double bw) {
  co_await host.compute(double(modeled_bytes) / bw);
}

bool JobRuntime::report_fetch_failure(int host_id) {
  if (blacklisted_trackers.contains(host_id)) return false;
  const int streak = ++fetch_failure_streak[host_id];
  if (streak < retry.blacklist_threshold) return false;
  blacklisted_trackers.insert(host_id);
  ++result.trackers_blacklisted;
  engine.metrics().counter("shuffle.trackers.blacklisted").add();
  if (auto* tracer = engine.tracer()) {
    tracer->instant(tracker_for_host(host_id).host->name(), "fault",
                    "tracker_blacklisted");
  }
  return true;
}

void JobRuntime::report_fetch_success(int host_id) {
  fetch_failure_streak[host_id] = 0;
}

sim::Task<> JobRuntime::ensure_fetchable(int map_id) {
  while (maps.at(map_id).ran_on < 0 ||
         tracker_blacklisted(maps.at(map_id).ran_on)) {
    auto inflight = reruns.find(map_id);
    if (inflight != reruns.end()) {
      // Another copier already kicked off the re-execution: share it.
      co_await inflight->second->wait();
      continue;
    }
    auto event = std::make_unique<sim::Event>(engine);
    sim::Event& rerun_done = *event;
    reruns.emplace(map_id, std::move(event));
    TaskTrackerState* target = nullptr;
    for (auto* tracker : trackers) {
      if (!tracker_blacklisted(tracker->host->id())) {
        target = tracker;
        break;
      }
    }
    HMR_CHECK_MSG(target != nullptr,
                  "every TaskTracker is blacklisted; map output for map " +
                      std::to_string(map_id) + " is unfetchable");
    ++result.map_refetch_reruns;
    engine.metrics().counter("shuffle.refetch.reruns").add();
    if (auto* tracer = engine.tracer()) {
      tracer->instant(target->host->name(), "fault",
                      "refetch_rerun map_" + std::to_string(map_id));
    }
    rerunning_maps.insert(map_id);
    {
      auto slot = co_await sim::hold(target->map_slots);
      TaskAttempt& attempt =
          start_attempt(TaskKind::kMap, map_id, target->host->id(),
                        /*speculative=*/false, /*rerun=*/true);
      co_await run_map_task(*this, map_id, *target, 1.0, &attempt);
      if (attempt.running()) finish_attempt(attempt, AttemptState::kSucceeded);
    }
    rerun_done.set();
    reruns.erase(map_id);
  }
}

}  // namespace hmr::mapred
