#include "mapred/runtime.h"

#include <algorithm>

#include "mapred/maptask.h"
#include "sim/trace.h"

namespace hmr::mapred {

JobRuntime::JobRuntime(Cluster& cluster, Network& network,
                       hdfs::MiniDfs& dfs, JobSpec spec_in,
                       std::vector<TaskTrackerState*> trackers_in,
                       int job_id_in)
    : engine(cluster.engine()),
      cluster(cluster),
      network(network),
      dfs(dfs),
      spec(std::move(spec_in)),
      cost(CostModel::from_conf(spec.conf)),
      integrity(IntegrityPolicy::from_conf(spec.conf)),
      job_id(job_id_in),
      metric(engine.metrics()),
      trackers(std::move(trackers_in)),
      completion_pulse(engine),
      all_maps_done(engine),
      slowstart_reached(engine),
      retry(FetchRetryPolicy::from_conf(spec.conf)) {

  // One split per input file (workload writers emit block-sized parts).
  int map_id = 0;
  for (const auto& path : spec.input_files) {
    auto info = dfs.stat(path);
    HMR_CHECK_MSG(info.ok(), "missing input file: " + path);
    MapTaskInfo task;
    task.map_id = map_id++;
    task.input_file = path;
    task.modeled_bytes = info->modeled_size();
    data_scale = info->scale;
    for (const auto& block : info->blocks) {
      for (int replica : block.replicas) {
        if (std::find(task.replica_hosts.begin(), task.replica_hosts.end(),
                      replica) == task.replica_hosts.end()) {
          task.replica_hosts.push_back(replica);
        }
      }
    }
    result.input_modeled_bytes += task.modeled_bytes;
    maps.push_back(std::move(task));
  }
  map_done.reserve(maps.size());
  for (size_t i = 0; i < maps.size(); ++i) {
    map_done.push_back(std::make_unique<sim::Event>(engine));
  }

  num_reduces = int(spec.conf.get_int(
      kNumReduces,
      std::int64_t(trackers.size()) * spec.conf.get_int(kReduceSlots, 4)));
  HMR_CHECK_MSG(num_reduces > 0, "job needs at least one reduce");
  result.num_maps = int(maps.size());
  result.num_reduces = num_reduces;
}

TaskTrackerState& JobRuntime::tracker_for_host(int host_id) {
  for (auto& tracker : trackers) {
    if (tracker->host->id() == host_id) return *tracker;
  }
  HMR_CHECK_MSG(false, "no TaskTracker on host " + std::to_string(host_id));
  __builtin_unreachable();
}

TaskTrackerState& JobRuntime::tracker_of_map(int map_id) {
  return tracker_for_host(maps.at(map_id).ran_on);
}

void JobRuntime::record_map_output(MapOutputInfo info) {
  const int map_id = info.map_id;
  const int host_id = info.host_id;
  if (maps.at(map_id).done) {
    if (rerunning_maps.erase(map_id) > 0) {
      // Recovery re-execution (ensure_fetchable): re-home the served
      // output on the healthy host. Completion events already fired for
      // the original attempt; only the serving location changes.
      tracker_for_host(host_id).map_outputs.insert_or_assign(
          std::pair{job_id, map_id}, std::move(info));
      maps.at(map_id).ran_on = host_id;
      if (shuffle != nullptr) shuffle->on_map_finished(*this, map_id, host_id);
      return;
    }
    // A speculative duplicate lost the race; its output is discarded
    // (the JobTracker kills the slower attempt in real Hadoop).
    return;
  }
  tracker_for_host(host_id).map_outputs.emplace(
      std::pair{job_id, map_id}, std::move(info));
  maps.at(map_id).done = true;
  maps.at(map_id).ran_on = host_id;  // the attempt that won serves the data
  ++maps_completed;
  completion_log.push_back(map_id);
  map_done.at(map_id)->set();
  completion_pulse.set();
  completion_pulse.reset();
  if (shuffle != nullptr) shuffle->on_map_finished(*this, map_id, host_id);

  const double slowstart = spec.conf.get_double(kSlowstart, 0.05);
  if (maps_completed >= int(std::max(1.0, slowstart * double(maps.size())))) {
    slowstart_reached.set();
  }
  if (maps_completed == int(maps.size())) {
    result.maps_done_time = engine.now();
    all_maps_done.set();
  }
}

sim::Task<> JobRuntime::charge_cpu(Host& host, std::uint64_t modeled_bytes,
                                   double bw) {
  co_await host.compute(double(modeled_bytes) / bw);
}

bool JobRuntime::report_fetch_failure(int host_id) {
  if (blacklisted_trackers.contains(host_id)) return false;
  const int streak = ++fetch_failure_streak[host_id];
  if (streak < retry.blacklist_threshold) return false;
  blacklisted_trackers.insert(host_id);
  ++result.trackers_blacklisted;
  engine.metrics().counter("shuffle.trackers.blacklisted").add();
  if (auto* tracer = engine.tracer()) {
    tracer->instant(tracker_for_host(host_id).host->name(), "fault",
                    "tracker_blacklisted");
  }
  return true;
}

void JobRuntime::report_fetch_success(int host_id) {
  fetch_failure_streak[host_id] = 0;
}

sim::Task<> JobRuntime::ensure_fetchable(int map_id) {
  while (maps.at(map_id).ran_on < 0 ||
         tracker_blacklisted(maps.at(map_id).ran_on)) {
    auto inflight = reruns.find(map_id);
    if (inflight != reruns.end()) {
      // Another copier already kicked off the re-execution: share it.
      co_await inflight->second->wait();
      continue;
    }
    auto event = std::make_unique<sim::Event>(engine);
    sim::Event& rerun_done = *event;
    reruns.emplace(map_id, std::move(event));
    TaskTrackerState* target = nullptr;
    for (auto* tracker : trackers) {
      if (!tracker_blacklisted(tracker->host->id())) {
        target = tracker;
        break;
      }
    }
    HMR_CHECK_MSG(target != nullptr,
                  "every TaskTracker is blacklisted; map output for map " +
                      std::to_string(map_id) + " is unfetchable");
    ++result.map_refetch_reruns;
    engine.metrics().counter("shuffle.refetch.reruns").add();
    if (auto* tracer = engine.tracer()) {
      tracer->instant(target->host->name(), "fault",
                      "refetch_rerun map_" + std::to_string(map_id));
    }
    rerunning_maps.insert(map_id);
    {
      auto slot = co_await sim::hold(target->map_slots);
      co_await run_map_task(*this, map_id, *target);
    }
    rerun_done.set();
    reruns.erase(map_id);
  }
}

}  // namespace hmr::mapred
