#include "mapred/integrity.h"

namespace hmr::mapred {

namespace {

// Records the time an op spent recovering (rereads, rewrites, backoff)
// when any recovery happened at all.
void record_recovery_delay(JobRuntime& job, double started, bool recovered) {
  if (!recovered) return;
  job.engine.metrics()
      .latency_histogram("storage.recovery.delay")
      .record(job.engine.now() - started);
}

void count_io_retry(JobRuntime& job) {
  ++job.result.storage_io_retries;
  job.metric.io_retries.add();
}

}  // namespace

void count_checksum_mismatch(JobRuntime& job) {
  ++job.result.checksum_mismatches;
  job.metric.checksum_mismatches.add();
}

sim::Task<> charge_verify_cpu(JobRuntime& job, Host& host,
                              std::uint64_t modeled) {
  if (!job.integrity.enabled || modeled == 0) co_return;
  co_await job.charge_cpu(host, modeled, job.integrity.crc_bw);
}

namespace {

// Shared read skeleton: `read` issues one timed attempt, `modeled` is
// the verification charge per attempt.
sim::Task<Result<storage::FileView>> read_verified_impl(
    JobRuntime& job, Host& host, const std::string& path,
    std::uint64_t modeled,
    std::function<sim::Task<Result<storage::FileView>>()> read) {
  auto& metrics = job.engine.metrics();
  const double started = job.engine.now();
  bool recovered = false;
  for (int attempt = 0;; ++attempt) {
    auto view = co_await read();
    if (!view.ok()) {
      if (view.status().code() == StatusCode::kUnavailable &&
          attempt < job.integrity.max_retries) {
        count_io_retry(job);
        recovered = true;
        continue;
      }
      co_return view;  // NotFound/OutOfRange, or IO retries exhausted
    }
    if (!job.integrity.enabled) co_return view;
    co_await charge_verify_cpu(job, host, modeled);
    if (view->corrupted) {
      count_checksum_mismatch(job);
      if (attempt < job.integrity.max_retries) {
        metrics.counter("storage.corrupt.rereads").add();
        recovered = true;
        continue;
      }
      metrics.counter("storage.corrupt.read_failures").add();
      co_return Result<storage::FileView>(
          Status::Internal("checksum mismatch after " +
                           std::to_string(attempt + 1) + " reads: " + path));
    }
    metrics.counter("integrity.verified_segments").add();
    record_recovery_delay(job, started, recovered);
    co_return view;
  }
}

}  // namespace

sim::Task<Result<storage::FileView>> read_file_verified(
    JobRuntime& job, Host& host, const std::string& path) {
  const auto modeled = host.fs().modeled_size(path);
  co_return co_await read_verified_impl(
      job, host, path, modeled.ok() ? modeled.value() : 0,
      [&]() -> sim::Task<Result<storage::FileView>> {
        co_return co_await host.fs().read_file(path);
      });
}

sim::Task<Result<storage::FileView>> read_range_verified(
    JobRuntime& job, Host& host, const std::string& path,
    std::uint64_t real_offset, std::uint64_t real_len) {
  const auto file = host.fs().peek(path);
  const double scale = file.ok() ? file->scale : 1.0;
  const auto modeled =
      static_cast<std::uint64_t>(double(real_len) * scale);
  co_return co_await read_verified_impl(
      job, host, path, modeled,
      [&]() -> sim::Task<Result<storage::FileView>> {
        co_return co_await host.fs().read_range(path, real_offset, real_len);
      });
}

sim::Task<Status> write_file_verified(JobRuntime& job, Host& host,
                                      std::string path, Bytes data,
                                      double scale) {
  auto& metrics = job.engine.metrics();
  const double started = job.engine.now();
  const auto modeled =
      static_cast<std::uint64_t>(double(data.size()) * scale);
  bool recovered = false;
  int io_attempts = 0;
  int full_attempts = 0;
  for (int verify_attempts = 0;;) {
    Status written = co_await host.fs().write_file(path, Bytes(data), scale);
    if (written.code() == StatusCode::kResourceExhausted) {
      // Disk-full ladder: count it, let the shuffle engine evict cache
      // on this host, back off, retry. The window is finite by
      // construction; the bound only guards against runaway plans.
      ++job.result.disk_full_events;
      metrics.counter("storage.disk_full.events").add();
      HMR_CHECK_MSG(++full_attempts <= job.integrity.disk_full_max_retries,
                    "disk-full window outlasted spill retries: " + path);
      if (job.shuffle != nullptr) job.shuffle->on_disk_pressure(job, host.id());
      recovered = true;
      co_await job.engine.delay(job.integrity.disk_full_backoff);
      continue;
    }
    if (!written.ok()) {  // injected transient write error
      if (io_attempts++ < job.integrity.max_retries) {
        count_io_retry(job);
        recovered = true;
        continue;
      }
      co_return written;
    }
    if (!job.integrity.enabled) co_return Status::Ok();
    // Read-back verification rides the page cache (the bytes were just
    // written): charge CRC CPU only, then check what actually landed.
    co_await charge_verify_cpu(job, host, modeled);
    const auto stored = host.fs().peek(path);
    HMR_CHECK(stored.ok());
    if (!stored->corrupted) {
      metrics.counter("integrity.verified_segments").add();
      record_recovery_delay(job, started, recovered);
      co_return Status::Ok();
    }
    count_checksum_mismatch(job);
    if (verify_attempts++ >= job.integrity.max_retries) {
      metrics.counter("storage.write.failures").add();
      co_return Status::Internal("verified write failed: " + path);
    }
    ++job.result.spill_rewrites;
    metrics.counter("storage.spill.rewrites").add();
    recovered = true;
  }
}

}  // namespace hmr::mapred
