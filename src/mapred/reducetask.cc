#include "mapred/reducetask.h"

#include <cstdio>

#include "hdfs/hdfs.h"
#include "sim/trace.h"

namespace hmr::mapred {

std::string reduce_output_path(const JobSpec& spec, int reduce_id) {
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, "part-%05d", reduce_id);
  return spec.output_dir + "/" + suffix;
}

namespace {

// Applies the user reduce function over a sorted stream with
// group-by-key semantics, carrying groups across batch boundaries.
class ReduceDriver {
 public:
  ReduceDriver(JobRuntime& job, hdfs::MiniDfs::Writer& out)
      : job_(job), out_(out) {}

  sim::Task<> consume(KvBatch batch) {
    ByteWriter encoded;
    const Emit emit = [this, &encoded](KvPair pair) {
      dataplane::encode_kv(pair, encoded);
      ++records_out_;
    };
    for (auto& pair : batch) {
      if (!job_.spec.reduce_fn) {
        emit(std::move(pair));
        continue;
      }
      if (!has_group_ || pair.key != group_key_) {
        flush_group(emit);
        group_key_ = pair.key;
        has_group_ = true;
      }
      group_values_.push_back(std::move(pair.value));
    }
    if (encoded.size() > 0) {
      co_await out_.append(encoded.data());
    }
  }

  sim::Task<> finish() {
    ByteWriter encoded;
    const Emit emit = [this, &encoded](KvPair pair) {
      dataplane::encode_kv(pair, encoded);
      ++records_out_;
    };
    flush_group(emit);
    if (encoded.size() > 0) {
      co_await out_.append(encoded.data());
    }
  }

  std::uint64_t records_out() const { return records_out_; }

 private:
  void flush_group(const Emit& emit) {
    if (!has_group_) return;
    job_.spec.reduce_fn(group_key_, group_values_, emit);
    group_values_.clear();
    has_group_ = false;
  }

  JobRuntime& job_;
  hdfs::MiniDfs::Writer& out_;
  bool has_group_ = false;
  Bytes group_key_;
  std::vector<Bytes> group_values_;
  std::uint64_t records_out_ = 0;
};

}  // namespace

sim::Task<> run_reduce_task(JobRuntime& job, int reduce_id,
                            TaskTrackerState& tracker) {
  Host& host = *tracker.host;
  auto span = sim::maybe_span(job.engine.tracer(), host.name(), "reduce",
                              "reduce_" + std::to_string(reduce_id));
  co_await host.compute(job.cost.task_startup);

  KvSink sink(job.engine, /*capacity=*/16);
  sim::WaitGroup fetch_done(job.engine);
  fetch_done.add();
  // Phase bookkeeping: the first reducer to spawn its fetcher opens the
  // shuffle phase (engine-agnostic — both socket and verbs paths funnel
  // through fetch_and_merge).
  if (job.result.shuffle_start_time < 0) {
    job.result.shuffle_start_time = job.engine.now();
  }
  job.engine.spawn([](JobRuntime& job, int reduce_id, Host& host,
                      KvSink& sink, sim::WaitGroup& done) -> sim::Task<> {
    co_await job.shuffle->fetch_and_merge(job, reduce_id, host, sink);
    done.done();
  }(job, reduce_id, host, sink, fetch_done));

  const int output_replication =
      int(job.spec.conf.get_int(kOutputReplication, 1));
  hdfs::MiniDfs::Writer out(job.dfs, host,
                            reduce_output_path(job.spec, reduce_id),
                            job.data_scale, output_replication);
  ReduceDriver driver(job, out);

  std::uint64_t consumed_real = 0;
  std::uint64_t input_records = 0;
  while (auto batch = co_await sink.recv()) {
    if (job.result.reduce_start_time < 0) {
      job.result.reduce_start_time = job.engine.now();
    }
    std::uint64_t batch_real = 0;
    for (const auto& pair : *batch) batch_real += pair.serialized_size();
    consumed_real += batch_real;
    input_records += batch->size();
    // Reduce-function CPU over this batch.
    co_await job.charge_cpu(
        host, static_cast<std::uint64_t>(double(batch_real) * job.data_scale),
        job.cost.reduce_cpu_bw);
    co_await driver.consume(std::move(*batch));
  }
  co_await driver.finish();
  co_await fetch_done.wait();

  const Status closed = co_await out.close();
  HMR_CHECK_MSG(closed.ok(), "reduce output write failed: " +
                                 closed.to_string());
  job.result.output_modeled_bytes +=
      static_cast<std::uint64_t>(double(out.real_written()) * job.data_scale);
  job.result.output_records += driver.records_out();
  job.result.counters["REDUCE_INPUT_RECORDS"] += std::int64_t(input_records);
  job.result.counters["REDUCE_OUTPUT_RECORDS"] +=
      std::int64_t(driver.records_out());
}

}  // namespace hmr::mapred
