#include "mapred/reducetask.h"

#include <algorithm>
#include <cstdio>

#include "hdfs/hdfs.h"
#include "sim/trace.h"

namespace hmr::mapred {

std::string reduce_output_path(const JobSpec& spec, int reduce_id) {
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, "part-%05d", reduce_id);
  return spec.output_dir + "/" + suffix;
}

namespace {

// Applies the user reduce function over a sorted stream with
// group-by-key semantics, carrying groups across batch boundaries.
class ReduceDriver {
 public:
  ReduceDriver(JobRuntime& job, hdfs::MiniDfs::Writer& out)
      : job_(job), out_(out) {}

  sim::Task<> consume(KvBatch batch) {
    ByteWriter encoded;
    const Emit emit = [this, &encoded](KvPair pair) {
      dataplane::encode_kv(pair, encoded);
      ++records_out_;
    };
    for (auto& pair : batch) {
      if (!job_.spec.reduce_fn) {
        emit(std::move(pair));
        continue;
      }
      if (!has_group_ || pair.key != group_key_) {
        flush_group(emit);
        group_key_ = pair.key;
        has_group_ = true;
      }
      group_values_.push_back(std::move(pair.value));
    }
    if (encoded.size() > 0) {
      co_await out_.append(encoded.data());
    }
  }

  sim::Task<> finish() {
    ByteWriter encoded;
    const Emit emit = [this, &encoded](KvPair pair) {
      dataplane::encode_kv(pair, encoded);
      ++records_out_;
    };
    flush_group(emit);
    if (encoded.size() > 0) {
      co_await out_.append(encoded.data());
    }
  }

  std::uint64_t records_out() const { return records_out_; }

 private:
  void flush_group(const Emit& emit) {
    if (!has_group_) return;
    job_.spec.reduce_fn(group_key_, group_values_, emit);
    group_values_.clear();
    has_group_ = false;
  }

  JobRuntime& job_;
  hdfs::MiniDfs::Writer& out_;
  bool has_group_ = false;
  Bytes group_key_;
  std::vector<Bytes> group_values_;
  std::uint64_t records_out_ = 0;
};

}  // namespace

sim::Task<> run_reduce_task(JobRuntime& job, int reduce_id,
                            TaskTrackerState& tracker, TaskAttempt* attempt) {
  Host& host = *tracker.host;
  auto span = sim::maybe_span(job.engine.tracer(), host.name(), "reduce",
                              "reduce_" + std::to_string(reduce_id));
  const std::string final_path = reduce_output_path(job.spec, reduce_id);
  // Attempt-aware runs write to a per-attempt temp file and rename it
  // over the final path at commit, so two racing attempts never collide
  // and the committed output is byte-identical to a single-attempt run.
  const std::string write_path =
      attempt == nullptr
          ? final_path
          : final_path + ".attempt-" + std::to_string(attempt->attempt_id);

  co_await host.compute(job.cost.task_startup);
  bool killed = !co_await job.attempt_checkpoint(attempt, host, 0.05);

  KvSink sink(job.engine, /*capacity=*/16);
  sim::WaitGroup fetch_done(job.engine);
  fetch_done.add();
  // Phase bookkeeping: the first reducer to spawn its fetcher opens the
  // shuffle phase (engine-agnostic — both socket and verbs paths funnel
  // through fetch_and_merge).
  if (job.result.shuffle_start_time < 0) {
    job.result.shuffle_start_time = job.engine.now();
  }
  job.engine.spawn([](JobRuntime& job, int reduce_id, Host& host,
                      KvSink& sink, sim::WaitGroup& done,
                      TaskAttempt* attempt) -> sim::Task<> {
    co_await job.shuffle->fetch_and_merge(job, reduce_id, host, sink, attempt);
    done.done();
  }(job, reduce_id, host, sink, fetch_done, attempt));

  const int output_replication =
      int(job.spec.conf.get_int(kOutputReplication, 1));
  hdfs::MiniDfs::Writer out(job.dfs, host, write_path, job.data_scale,
                            output_replication);
  ReduceDriver driver(job, out);

  std::uint64_t consumed_real = 0;
  std::uint64_t input_records = 0;
  while (auto batch = co_await sink.recv()) {
    if (killed) continue;  // drain so the fetcher can finish unwinding
    if (job.result.reduce_start_time < 0) {
      job.result.reduce_start_time = job.engine.now();
    }
    std::uint64_t batch_real = 0;
    for (const auto& pair : *batch) batch_real += pair.serialized_size();
    consumed_real += batch_real;
    input_records += batch->size();
    // Reduce-function CPU over this batch; an active task.slow window
    // scales the effective throughput down (slow < 1).
    co_await job.charge_cpu(
        host, static_cast<std::uint64_t>(double(batch_real) * job.data_scale),
        job.cost.reduce_cpu_bw *
            job.compute_faults.slow_factor(host.id(), job.engine.now()));
    co_await driver.consume(std::move(*batch));
    // Progress from consumed shuffle bytes against the bytes committed
    // maps will send this reduce (the denominator grows as maps finish;
    // the estimate is conservative early and exact once all maps are in).
    const double consumed_modeled = double(consumed_real) * job.data_scale;
    const double expected = double(std::max<std::uint64_t>(
        1, job.reduce_expected_modeled.at(size_t(reduce_id))));
    const double progress =
        0.05 + 0.9 * std::min(1.0, consumed_modeled / expected);
    if (!co_await job.attempt_checkpoint(attempt, host, progress)) {
      killed = true;
    }
  }
  if (!killed) co_await driver.finish();
  co_await fetch_done.wait();

  if (killed) {
    // Loser unwinding before commit: flush+register the partial temp
    // file (best effort — the disk may be faulted) so it can be removed,
    // then reach the terminal state.
    const Status closed = co_await out.close();
    if (closed.ok()) {
      const Status removed = job.dfs.remove(write_path);
      (void)removed;
    }
    job.finish_attempt(*attempt, AttemptState::kKilled);
    co_return;
  }

  const Status closed = co_await out.close();
  HMR_CHECK_MSG(closed.ok(), "reduce output write failed: " +
                                 closed.to_string());
  if (attempt != nullptr) {
    if (!job.try_commit_reduce(reduce_id)) {
      // Lost the commit race at the wire: some sibling already renamed
      // its output over the final path.
      const Status removed = job.dfs.remove(write_path);
      (void)removed;
      job.finish_attempt(*attempt, AttemptState::kKilled);
      co_return;
    }
    const Status renamed = job.dfs.rename(write_path, final_path);
    HMR_CHECK_MSG(renamed.ok(),
                  "reduce commit rename failed: " + renamed.to_string());
  }
  job.result.output_modeled_bytes +=
      static_cast<std::uint64_t>(double(out.real_written()) * job.data_scale);
  job.result.output_records += driver.records_out();
  job.result.counters["REDUCE_INPUT_RECORDS"] += std::int64_t(input_records);
  job.result.counters["REDUCE_OUTPUT_RECORDS"] +=
      std::int64_t(driver.records_out());
  if (attempt != nullptr) {
    if (attempt->speculative) {
      ++job.result.speculative_wins;
      job.metric.speculation_wins.add();
    }
    job.finish_attempt(*attempt, AttemptState::kSucceeded);
    job.kill_siblings(TaskKind::kReduce, reduce_id, attempt);
  }
}

}  // namespace hmr::mapred
