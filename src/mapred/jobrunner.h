// JobRunner: the per-job execution engine of the simulated cluster.
//
// Plans splits, schedules map tasks with replica locality, gates
// reducers on the slowstart fraction, and runs the configured shuffle
// engine. Engines register through a factory so the framework does not
// depend on the RDMA modules (they depend on it).
//
// run() executes exactly one job; multi-job queueing, scheduling
// policies, and per-tenant accounting live in the JobTracker
// (mapred/jobtracker.h), which calls run() once per dispatched job.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mapred/runtime.h"

namespace hmr::mapred {

class JobRunner {
 public:
  using EngineFactory =
      std::function<std::unique_ptr<ShuffleEngine>(const Conf&)>;

  // `tracker_hosts`: host ids that run a TaskTracker (normally the
  // DataNode hosts). Registers the "vanilla" engine automatically.
  JobRunner(Cluster& cluster, Network& network, hdfs::MiniDfs& dfs,
            std::vector<int> tracker_hosts);

  void register_engine(std::string name, EngineFactory factory);
  // "vanilla" unless mapred.shuffle.engine / mapred.rdma.enabled says
  // otherwise.
  static std::string engine_name(const Conf& conf);

  // Runs the job to completion; deterministic given the engine seed.
  sim::Task<JobResult> run(JobSpec spec);

 private:
  sim::Task<> map_worker(JobRuntime& job, TaskTrackerState& tracker, int slot,
                         std::vector<bool>& assigned, sim::WaitGroup& done);
  sim::Task<> reduce_worker(JobRuntime& job, TaskTrackerState& tracker,
                            std::deque<int>& pending, sim::WaitGroup& done);
  sim::Task<> jt_rpc(Host& from);

  Cluster& cluster_;
  Network& network_;
  hdfs::MiniDfs& dfs_;
  std::vector<int> tracker_hosts_;
  std::map<std::string, EngineFactory> factories_;
  // TaskTrackers persist across jobs: every run() — including the
  // concurrent runs a JobTracker dispatches — contends for the same
  // slot Resources. Created lazily on the first run() from that job's
  // slot conf.
  std::vector<std::unique_ptr<TaskTrackerState>> trackers_;
  int next_job_id_ = 1;
  // Conf-driven cpu.degrade timers are armed once per runner: they mutate
  // Host speed, and every job a JobTracker dispatches shares the conf.
  bool cpu_faults_armed_ = false;
};

}  // namespace hmr::mapred
