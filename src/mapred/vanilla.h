// The default Hadoop shuffle (§III-A): HTTP servlets on every
// TaskTracker serve whole map-output partitions over the socket
// transport; reducer-side parallel copiers buffer them in memory or on
// disk, with the two-level (in-memory + local-FS) merge and the implicit
// reduce barrier. This is the engine behind the 1GigE / 10GigE / IPoIB
// series in every figure.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "mapred/runtime.h"
#include "net/socket.h"

namespace hmr::mapred {

class VanillaShuffleEngine final : public ShuffleEngine {
 public:
  std::string name() const override { return "vanilla"; }

  sim::Task<> start(JobRuntime& job) override;
  sim::Task<> fetch_and_merge(JobRuntime& job, int reduce_id, Host& host,
                              KvSink& sink,
                              TaskAttempt* attempt = nullptr) override;
  bool overlaps_reduce(const JobRuntime& job) const override {
    (void)job;
    return false;  // reduce starts only after all merges complete
  }
  sim::Task<> stop(JobRuntime& job) override;

 private:
  // One fetched partition, either memory-resident or spilled.
  struct Segment {
    std::shared_ptr<const Bytes> data;  // set when in memory
    std::string disk_path;              // set when spilled
    std::uint64_t modeled = 0;
  };
  struct ReduceShuffleState;

  sim::Task<> servlet_accept_loop(JobRuntime& job, net::Listener& listener,
                                  int host_id);
  sim::Task<> servlet_conn_loop(JobRuntime& job,
                                std::unique_ptr<net::Socket> sock,
                                int host_id);
  sim::Task<> copier_loop(JobRuntime& job, ReduceShuffleState& state,
                          int copier_id);
  // Fetches one map's partition with timeout/retry/blacklist recovery
  // (mapred/recovery.h) and stores it in memory or on disk.
  sim::Task<> fetch_one(JobRuntime& job, ReduceShuffleState& state,
                        int map_id, Rng& rng);
  sim::Task<> in_memory_merge(JobRuntime& job, ReduceShuffleState& state);

  std::map<int, std::unique_ptr<net::Listener>> listeners_;  // by host id
  std::unique_ptr<sim::WaitGroup> daemons_;  // accept + connection loops
  // Cached per-fetch handle, rebound in start() (same idiom as
  // ShuffleMetrics: registry references are stable for its lifetime).
  FixedHistogram* fetch_rtt_ = nullptr;
};

}  // namespace hmr::mapred
