#include "mapred/jobtracker.h"

#include <algorithm>
#include <limits>

namespace hmr::mapred {

JobTracker::JobTracker(sim::Engine& engine, JobRunner& runner,
                       SchedulerConfig config)
    : engine_(engine), runner_(runner), config_(std::move(config)) {
  // Register every scheduler metric up front so snapshots carry zeros
  // (and the docs cross-check sees one canonical call site per name).
  auto& m = engine_.metrics();
  m.counter("scheduler.jobs.submitted");
  m.counter("scheduler.jobs.dispatched");
  m.counter("scheduler.jobs.completed");
  m.counter("scheduler.quota.deferrals");
  m.gauge("scheduler.queue.depth");
  m.gauge("scheduler.jobs.running");
  m.latency_histogram("scheduler.queue.wait");
  m.latency_histogram("scheduler.job.latency");
}

std::shared_ptr<SubmittedJob> JobTracker::submit(JobSpec spec,
                                                 std::string user) {
  const int id = static_cast<int>(jobs_.size()) + 1;
  auto job =
      std::make_shared<SubmittedJob>(engine_, id, std::move(user), std::move(spec));
  job->submitted_at = engine_.now();
  // Fair-share charge proxy: splits to schedule (one per input file).
  job->cost = std::max<double>(1.0, double(job->spec.input_files.size()));

  // A pool's deficit counter starts at the current cluster minimum (scaled
  // by its weight) rather than zero: a tenant that sat idle for an hour
  // should not monopolize the cluster to "catch up" on time it never used.
  if (charged_.find(job->user) == charged_.end()) {
    double min_normalized = std::numeric_limits<double>::infinity();
    for (const auto& [pool, charge] : charged_) {
      min_normalized = std::min(min_normalized,
                                charge / config_.pool(pool).weight);
    }
    if (min_normalized == std::numeric_limits<double>::infinity()) {
      min_normalized = 0;
    }
    charged_[job->user] = min_normalized * config_.pool(job->user).weight;
  }

  jobs_.push_back(job);
  queue_.push_back(job);
  tenants_[job->user].submitted += 1;
  engine_.metrics().counter("scheduler.jobs.submitted").add();
  maybe_dispatch();
  return job;
}

bool JobTracker::pool_at_quota(const std::string& user) const {
  const PoolConfig pool = config_.pool(user);
  if (pool.quota <= 0) return false;
  auto it = pool_running_.find(user);
  return it != pool_running_.end() && it->second >= pool.quota;
}

int JobTracker::pick_next() {
  if (queue_.empty()) return -1;
  auto& metrics = engine_.metrics();
  switch (config_.policy) {
    case SchedPolicy::kFifo:
      // Strict arrival order; pools and quotas are ignored.
      return 0;
    case SchedPolicy::kCapacity:
      // Arrival order, skipping jobs whose pool is at its quota.
      for (size_t i = 0; i < queue_.size(); ++i) {
        if (!pool_at_quota(queue_[i]->user)) return static_cast<int>(i);
        metrics.counter("scheduler.quota.deferrals").add();
      }
      return -1;
    case SchedPolicy::kFair: {
      // Weighted deficit: each pool's candidate is its oldest queued job;
      // among pools under quota, take the smallest charged/weight ratio
      // (ties broken by pool name, then arrival order within the pool).
      int best = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      std::string best_pool;
      std::map<std::string, bool> seen;  // only head-of-pool competes
      for (size_t i = 0; i < queue_.size(); ++i) {
        const std::string& pool = queue_[i]->user;
        if (seen[pool]) continue;
        seen[pool] = true;
        if (pool_at_quota(pool)) {
          metrics.counter("scheduler.quota.deferrals").add();
          continue;
        }
        const double ratio = charged_[pool] / config_.pool(pool).weight;
        if (best < 0 || ratio < best_ratio ||
            (ratio == best_ratio && pool < best_pool)) {
          best = static_cast<int>(i);
          best_ratio = ratio;
          best_pool = pool;
        }
      }
      return best;
    }
  }
  return -1;
}

void JobTracker::maybe_dispatch() {
  auto& metrics = engine_.metrics();
  while (!queue_.empty() && (config_.max_running_jobs == 0 ||
                             running_ < config_.max_running_jobs)) {
    const int idx = pick_next();
    if (idx < 0) break;
    auto job = queue_[idx];
    queue_.erase(queue_.begin() + idx);

    job->dispatched_at = engine_.now();
    running_ += 1;
    pool_running_[job->user] += 1;
    charged_[job->user] += job->cost;
    auto& tenant = tenants_[job->user];
    tenant.total_queue_wait += job->queue_wait();
    tenant.charged_cost += job->cost;
    metrics.counter("scheduler.jobs.dispatched").add();
    metrics.latency_histogram("scheduler.queue.wait")
        .record(job->queue_wait());
    metrics.gauge("scheduler.jobs.running").set(double(running_));
    engine_.spawn(run_job(job));
  }
  metrics.gauge("scheduler.queue.depth").set(double(queue_.size()));
}

sim::Task<> JobTracker::run_job(std::shared_ptr<SubmittedJob> job) {
  job->result = co_await runner_.run(std::move(job->spec));
  job->finished_at = engine_.now();
  job->completed = true;

  running_ -= 1;
  pool_running_[job->user] -= 1;
  auto& tenant = tenants_[job->user];
  tenant.completed += 1;
  tenant.total_latency += job->latency();
  // Speculative backups consumed slots beyond the dispatch-time charge;
  // bill them post-hoc at one split-equivalent each so the fair-share
  // deficit reflects what the pool actually used.
  const double speculative_charge = double(job->result.speculative_attempts);
  if (speculative_charge > 0) {
    charged_[job->user] += speculative_charge;
    tenant.charged_cost += speculative_charge;
  }
  tenant.speculative_attempts += job->result.speculative_attempts;
  tenant.speculative_wins += job->result.speculative_wins;
  tenant.speculative_kills += job->result.speculative_kills;
  auto& metrics = engine_.metrics();
  metrics.counter("scheduler.jobs.completed").add();
  metrics.latency_histogram("scheduler.job.latency").record(job->latency());
  metrics.gauge("scheduler.jobs.running").set(double(running_));

  job->done.set();
  maybe_dispatch();
}

}  // namespace hmr::mapred
