// Shuffle-fetch recovery policy shared by the RDMA copier and the
// vanilla HTTP copier: per-request timeouts, capped exponential backoff
// with jitter, and the tracker-blacklist threshold. The paper's design
// (§III-B) assumes a healthy fabric and names fault handling as §VI
// future work; this is that extension.
#pragma once

#include <cstdint>
#include <optional>

#include "common/conf.h"
#include "common/rng.h"
#include "mapred/types.h"
#include "net/message.h"
#include "sim/channel.h"
#include "sim/engine.h"

namespace hmr::mapred {

// Resolved once per job from the Conf (see mapred/types.h for the keys
// and docs/CONFIG.md for the rationale).
struct FetchRetryPolicy {
  double fetch_timeout = 60.0;   // seconds; 0 disables timeouts
  int max_retries = 10;          // per request, before the job aborts
  double backoff_base = 0.2;     // first retry delay, seconds
  double backoff_max = 5.0;      // exponential growth cap, seconds
  double backoff_jitter = 0.25;  // +[0, jitter) randomized fraction
  int blacklist_threshold = 3;   // consecutive failures per tracker

  static FetchRetryPolicy from_conf(const Conf& conf);

  // Delay before retry number `attempt` (1-based): capped exponential
  // with multiplicative jitter. Deterministic given the rng stream.
  double backoff(int attempt, Rng& rng) const;
};

// What a copier's response wait wakes up on: either a transport message
// or a watchdog timer firing. `timer_id` identifies which request's
// watchdog expired so stale timers from already-answered requests are
// ignored.
struct FetchEvent {
  std::optional<net::Message> msg;
  std::uint64_t timer_id = 0;
};

// Watchdog: after `timeout` simulated seconds, posts a timer event into
// `events` (dropped if the waiter is long gone and the buffer is full).
// `keep_alive` pins the owner of `events` so a timer pending after the
// copier finished cannot dangle.
sim::Task<> fetch_watchdog(sim::Engine& engine,
                           std::shared_ptr<void> keep_alive,
                           sim::Channel<FetchEvent>& events, double timeout,
                           std::uint64_t timer_id);

}  // namespace hmr::mapred
