#include "mapred/jobrunner.h"

#include <algorithm>

#include "mapred/maptask.h"
#include "mapred/reducetask.h"
#include "mapred/vanilla.h"
#include "sim/fault.h"

namespace hmr::mapred {

JobRunner::JobRunner(Cluster& cluster, Network& network, hdfs::MiniDfs& dfs,
                     std::vector<int> tracker_hosts)
    : cluster_(cluster),
      network_(network),
      dfs_(dfs),
      tracker_hosts_(std::move(tracker_hosts)) {
  register_engine("vanilla", [](const Conf&) {
    return std::make_unique<VanillaShuffleEngine>();
  });
}

void JobRunner::register_engine(std::string name, EngineFactory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::string JobRunner::engine_name(const Conf& conf) {
  if (auto name = conf.get(kShuffleEngine)) return *name;
  return conf.get_bool(kRdmaEnabled, false) ? "osu-ib" : "vanilla";
}

sim::Task<> JobRunner::jt_rpc(Host& from) {
  co_await network_.transmit(from, dfs_.master(), 256);
  co_await network_.transmit(dfs_.master(), from, 256);
}

sim::Task<> JobRunner::map_worker(JobRuntime& job,
                                  TaskTrackerState& tracker, int slot,
                                  std::vector<bool>& assigned,
                                  sim::WaitGroup& done) {
  const double failure_prob =
      job.spec.conf.get_double(kMapFailureProb, 0.0);
  const int max_attempts = int(job.spec.conf.get_int(kMaxTaskAttempts, 4));
  const double straggler_prob =
      job.spec.conf.get_double(kStragglerProb, 0.0);
  const double straggler_slowdown =
      job.spec.conf.get_double(kStragglerSlowdown, 4.0);
  const bool speculative =
      job.spec.conf.get_bool(kSpeculativeExecution, false);
  // One stream per worker slot: the four slots on a host would otherwise
  // share a stream name and draw identical failure/straggler sequences.
  auto rng = job.engine.make_rng("map.fault." +
                                 std::to_string(tracker.host->id()) + "." +
                                 std::to_string(slot));
  while (true) {
    // Locality-aware pick: prefer a split with a replica on this host,
    // otherwise steal the lowest-id remote split.
    int pick = -1;
    for (const auto& map : job.maps) {
      if (assigned[map.map_id]) continue;
      if (std::find(map.replica_hosts.begin(), map.replica_hosts.end(),
                    tracker.host->id()) != map.replica_hosts.end()) {
        pick = map.map_id;
        break;
      }
      if (pick < 0) pick = map.map_id;
    }
    if (pick < 0) break;
    assigned[pick] = true;
    // Concurrent jobs share the tracker: a task occupies a slot.
    auto slot = co_await sim::hold(tracker.map_slots);
    co_await jt_rpc(*tracker.host);  // heartbeat + task assignment
    // Fault injection (§VI future work): an attempt may die partway;
    // the JobTracker reschedules it, up to mapred.map.max.attempts.
    int attempt = 1;
    while (failure_prob > 0.0 && rng.chance(failure_prob) &&
           attempt < max_attempts) {
      co_await run_failed_map_attempt(job, pick, tracker, rng.uniform());
      co_await jt_rpc(*tracker.host);  // report failure, get re-assignment
      ++attempt;
    }
    HMR_CHECK_MSG(attempt <= max_attempts,
                  "map task exceeded mapred.map.max.attempts");
    double slowdown = 1.0;
    if (straggler_prob > 0.0 && rng.chance(straggler_prob)) {
      slowdown = straggler_slowdown;
      job.maps.at(pick).straggling = true;
    }
    job.maps.at(pick).attempts_running = 1;
    job.maps.at(pick).first_started_at = job.engine.now();
    co_await run_map_task(job, pick, tracker, slowdown);
    job.maps.at(pick).attempts_running = 0;
  }

  // Speculative execution: idle slots launch backup attempts for the
  // longest-running unfinished maps (Hadoop's backup tasks); the first
  // attempt to finish wins, the other is discarded.
  while (speculative) {
    int candidate = -1;
    double earliest = 0;
    for (const auto& map : job.maps) {
      if (map.done || map.attempts_running != 1) continue;
      if (map.first_started_at < 0) continue;
      if (candidate < 0 || map.first_started_at < earliest) {
        candidate = map.map_id;
        earliest = map.first_started_at;
      }
    }
    if (candidate < 0) break;
    ++job.maps.at(candidate).attempts_running;
    ++job.result.speculative_attempts;
    auto slot = co_await sim::hold(tracker.map_slots);
    co_await jt_rpc(*tracker.host);
    co_await run_map_task(job, candidate, tracker);
    --job.maps.at(candidate).attempts_running;
    if (job.maps.at(candidate).ran_on == tracker.host->id()) {
      ++job.result.speculative_wins;
    }
  }
  done.done();
}

sim::Task<> JobRunner::reduce_worker(JobRuntime& job,
                                     TaskTrackerState& tracker,
                                     std::deque<int>& pending,
                                     sim::WaitGroup& done) {
  co_await job.slowstart_reached.wait();
  while (!pending.empty()) {
    const int reduce_id = pending.front();
    pending.pop_front();
    auto slot = co_await sim::hold(tracker.reduce_slots);
    co_await jt_rpc(*tracker.host);
    co_await run_reduce_task(job, reduce_id, tracker);
  }
  done.done();
}

sim::Task<JobResult> JobRunner::run(JobSpec spec) {
  if (trackers_.empty()) {
    const int map_slots = int(spec.conf.get_int(kMapSlots, 4));
    const int reduce_slots = int(spec.conf.get_int(kReduceSlots, 4));
    for (int host_id : tracker_hosts_) {
      trackers_.push_back(std::make_unique<TaskTrackerState>(
          cluster_.engine(), cluster_.host(host_id), map_slots,
          reduce_slots));
    }
  }
  std::vector<TaskTrackerState*> trackers;
  trackers.reserve(trackers_.size());
  for (auto& tracker : trackers_) trackers.push_back(tracker.get());
  auto job = std::make_unique<JobRuntime>(cluster_, network_, dfs_,
                                          std::move(spec), std::move(trackers),
                                          next_job_id_++);
  const std::string engine = engine_name(job->spec.conf);
  auto factory = factories_.find(engine);
  HMR_CHECK_MSG(factory != factories_.end(),
                "unknown shuffle engine: " + engine);
  auto shuffle = factory->second(job->spec.conf);
  job->shuffle = shuffle.get();

  // Conf-driven disk-fault plans (sim.fault.disk.*): strict validation —
  // a misspelled key would silently inject nothing, so it aborts the run
  // with the offending key named (tests call disk_faults_from_conf
  // directly for the Status path).
  auto disk_faults = sim::FaultPlan::disk_faults_from_conf(job->spec.conf);
  HMR_CHECK_MSG(disk_faults.ok(), disk_faults.status().to_string());
  if (!disk_faults->empty()) cluster_.arm_disk_faults(*disk_faults);

  // Worker-pool width for parallel work events. Defaults to whatever the
  // engine already runs (the testbed may have set it), so only jobs that
  // carry the key change it.
  const std::int64_t parallel_workers = job->spec.conf.get_int(
      kParallelWorkers, job->engine.parallel_workers());
  HMR_CHECK_MSG(parallel_workers >= 1 && parallel_workers <= 256,
                "sim.parallel.workers out of [1, 256]");
  job->engine.set_parallel_workers(int(parallel_workers));

  job->result.submit_time = job->engine.now();
  co_await shuffle->start(*job);

  std::vector<bool> assigned(job->maps.size(), false);
  std::deque<int> pending_reduces;
  for (int r = 0; r < job->num_reduces; ++r) pending_reduces.push_back(r);

  sim::WaitGroup workers(job->engine);
  const int map_slots = int(job->spec.conf.get_int(kMapSlots, 4));
  const int reduce_slots = int(job->spec.conf.get_int(kReduceSlots, 4));
  for (auto& tracker : job->trackers) {
    for (int s = 0; s < map_slots; ++s) {
      workers.add();
      job->engine.spawn(map_worker(*job, *tracker, s, assigned, workers));
    }
    for (int s = 0; s < reduce_slots; ++s) {
      workers.add();
      job->engine.spawn(
          reduce_worker(*job, *tracker, pending_reduces, workers));
    }
  }
  co_await workers.wait();
  job->result.finish_time = job->engine.now();
  co_await shuffle->stop(*job);
  if (job->spec.conf.get_bool(kMetricsSnapshot, true)) {
    // After stop(): engines fold their cache stats into the result and
    // the registry has every shuffle/net/cache series for the run.
    job->result.metrics = job->engine.metrics().snapshot();
  }
  co_return job->result;
}

}  // namespace hmr::mapred
