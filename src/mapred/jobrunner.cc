#include "mapred/jobrunner.h"

#include <algorithm>

#include "mapred/maptask.h"
#include "mapred/reducetask.h"
#include "mapred/vanilla.h"
#include "sim/fault.h"

namespace hmr::mapred {

JobRunner::JobRunner(Cluster& cluster, Network& network, hdfs::MiniDfs& dfs,
                     std::vector<int> tracker_hosts)
    : cluster_(cluster),
      network_(network),
      dfs_(dfs),
      tracker_hosts_(std::move(tracker_hosts)) {
  register_engine("vanilla", [](const Conf&) {
    return std::make_unique<VanillaShuffleEngine>();
  });
}

void JobRunner::register_engine(std::string name, EngineFactory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::string JobRunner::engine_name(const Conf& conf) {
  if (auto name = conf.get(kShuffleEngine)) return *name;
  return conf.get_bool(kRdmaEnabled, false) ? "osu-ib" : "vanilla";
}

sim::Task<> JobRunner::jt_rpc(Host& from) {
  co_await network_.transmit(from, dfs_.master(), 256);
  co_await network_.transmit(dfs_.master(), from, 256);
}

sim::Task<> JobRunner::map_worker(JobRuntime& job,
                                  TaskTrackerState& tracker, int slot,
                                  std::vector<bool>& assigned,
                                  sim::WaitGroup& done) {
  const double failure_prob =
      job.spec.conf.get_double(kMapFailureProb, 0.0);
  const int max_attempts = int(job.spec.conf.get_int(kMaxTaskAttempts, 4));
  const double straggler_prob =
      job.spec.conf.get_double(kStragglerProb, 0.0);
  const double straggler_slowdown =
      job.spec.conf.get_double(kStragglerSlowdown, 4.0);
  // One stream per worker slot: the four slots on a host would otherwise
  // share a stream name and draw identical failure/straggler sequences.
  auto rng = job.engine.make_rng("map.fault." +
                                 std::to_string(tracker.host->id()) + "." +
                                 std::to_string(slot));
  while (true) {
    // Locality-aware pick: prefer a split with a replica on this host,
    // otherwise steal the lowest-id remote split.
    int pick = -1;
    for (const auto& map : job.maps) {
      if (assigned[map.map_id]) continue;
      if (std::find(map.replica_hosts.begin(), map.replica_hosts.end(),
                    tracker.host->id()) != map.replica_hosts.end()) {
        pick = map.map_id;
        break;
      }
      if (pick < 0) pick = map.map_id;
    }
    if (pick < 0) break;
    assigned[pick] = true;
    // Concurrent jobs share the tracker: a task occupies a slot.
    auto slot = co_await sim::hold(tracker.map_slots);
    co_await jt_rpc(*tracker.host);  // heartbeat + task assignment
    // Fault injection (§VI future work): an attempt may die partway;
    // the JobTracker reschedules it, up to mapred.map.max.attempts.
    int attempt_no = 1;
    while (failure_prob > 0.0 && rng.chance(failure_prob) &&
           attempt_no < max_attempts) {
      TaskAttempt& failed = job.start_attempt(
          TaskKind::kMap, pick, tracker.host->id(),
          /*speculative=*/false, /*rerun=*/false);
      co_await run_failed_map_attempt(job, pick, tracker, rng.uniform());
      job.finish_attempt(failed, AttemptState::kFailed);
      co_await jt_rpc(*tracker.host);  // report failure, get re-assignment
      ++attempt_no;
    }
    HMR_CHECK_MSG(attempt_no <= max_attempts,
                  "map task exceeded mapred.map.max.attempts");
    // A speculative backup may have committed the task while this
    // worker's failed attempts burned the failure window.
    if (job.maps.at(pick).done) continue;
    double slowdown = 1.0;
    if (straggler_prob > 0.0 && rng.chance(straggler_prob)) {
      slowdown = straggler_slowdown;
      job.maps.at(pick).straggling = true;
    }
    TaskAttempt& attempt = job.start_attempt(
        TaskKind::kMap, pick, tracker.host->id(),
        /*speculative=*/false, /*rerun=*/false);
    co_await run_map_task(job, pick, tracker, slowdown, &attempt);
  }

  // LATE speculative execution (mapred/attempt.h): once this slot runs
  // out of fresh splits it polls for straggling originals and runs at
  // most one backup per claim; the first attempt to commit wins and the
  // loser is killed.
  while (job.speculation.maps && job.maps_completed < int(job.maps.size())) {
    TaskAttempt* backup =
        job.try_claim_backup(TaskKind::kMap, tracker.host->id());
    if (backup == nullptr) {
      co_await job.engine.delay(job.speculation.interval);
      continue;
    }
    auto slot = co_await sim::hold(tracker.map_slots);
    co_await jt_rpc(*tracker.host);
    if (job.maps.at(backup->task_id).done) {
      // The original finished while this backup waited for its slot.
      job.finish_attempt(*backup, AttemptState::kKilled);
      continue;
    }
    co_await run_map_task(job, backup->task_id, tracker, 1.0, backup);
  }
  done.done();
}

sim::Task<> JobRunner::reduce_worker(JobRuntime& job,
                                     TaskTrackerState& tracker,
                                     std::deque<int>& pending,
                                     sim::WaitGroup& done) {
  co_await job.slowstart_reached.wait();
  while (!pending.empty()) {
    const int reduce_id = pending.front();
    pending.pop_front();
    auto slot = co_await sim::hold(tracker.reduce_slots);
    co_await jt_rpc(*tracker.host);
    TaskAttempt& attempt = job.start_attempt(
        TaskKind::kReduce, reduce_id, tracker.host->id(),
        /*speculative=*/false, /*rerun=*/false);
    co_await run_reduce_task(job, reduce_id, tracker, &attempt);
  }

  // LATE backups for straggling reducers; same shape as the map loop,
  // gated on the commit count (first-commit-wins via try_commit_reduce).
  while (job.speculation.reduces && !job.all_reduces_committed()) {
    TaskAttempt* backup =
        job.try_claim_backup(TaskKind::kReduce, tracker.host->id());
    if (backup == nullptr) {
      co_await job.engine.delay(job.speculation.interval);
      continue;
    }
    auto slot = co_await sim::hold(tracker.reduce_slots);
    co_await jt_rpc(*tracker.host);
    if (job.reduces.at(size_t(backup->task_id)).committed) {
      job.finish_attempt(*backup, AttemptState::kKilled);
      continue;
    }
    co_await run_reduce_task(job, backup->task_id, tracker, backup);
  }
  done.done();
}

sim::Task<JobResult> JobRunner::run(JobSpec spec) {
  if (trackers_.empty()) {
    const int map_slots = int(spec.conf.get_int(kMapSlots, 4));
    const int reduce_slots = int(spec.conf.get_int(kReduceSlots, 4));
    for (int host_id : tracker_hosts_) {
      trackers_.push_back(std::make_unique<TaskTrackerState>(
          cluster_.engine(), cluster_.host(host_id), map_slots,
          reduce_slots));
    }
  }
  std::vector<TaskTrackerState*> trackers;
  trackers.reserve(trackers_.size());
  for (auto& tracker : trackers_) trackers.push_back(tracker.get());
  auto job = std::make_unique<JobRuntime>(cluster_, network_, dfs_,
                                          std::move(spec), std::move(trackers),
                                          next_job_id_++);
  const std::string engine = engine_name(job->spec.conf);
  auto factory = factories_.find(engine);
  HMR_CHECK_MSG(factory != factories_.end(),
                "unknown shuffle engine: " + engine);
  auto shuffle = factory->second(job->spec.conf);
  job->shuffle = shuffle.get();

  // Conf-driven disk-fault plans (sim.fault.disk.*): strict validation —
  // a misspelled key would silently inject nothing, so it aborts the run
  // with the offending key named (tests call disk_faults_from_conf
  // directly for the Status path).
  auto disk_faults = sim::FaultPlan::disk_faults_from_conf(job->spec.conf);
  HMR_CHECK_MSG(disk_faults.ok(), disk_faults.status().to_string());
  if (!disk_faults->empty()) cluster_.arm_disk_faults(*disk_faults);

  // Conf-driven compute-fault plans (sim.fault.cpu.* / sim.fault.task.*),
  // same strict validation. cpu.degrade alters host state, so it is armed
  // on the cluster once per runner (a multi-job run would otherwise stack
  // the degrade per job); task hang/slow windows are pure (host, time)
  // queries consulted at attempt checkpoints through job->compute_faults.
  auto compute_faults = sim::ComputeFaults::from_conf(job->spec.conf);
  HMR_CHECK_MSG(compute_faults.ok(), compute_faults.status().to_string());
  if (!compute_faults->cpu.empty() && !cpu_faults_armed_) {
    cpu_faults_armed_ = true;
    cluster_.arm_cpu_degrades(compute_faults->cpu);
  }
  job->compute_faults = std::move(*compute_faults);
  if (job->spec.faults != nullptr) {
    job->compute_faults.merge(job->spec.faults->compute_faults());
  }

  // Worker-pool width for parallel work events. Defaults to whatever the
  // engine already runs (the testbed may have set it), so only jobs that
  // carry the key change it.
  const std::int64_t parallel_workers = job->spec.conf.get_int(
      kParallelWorkers, job->engine.parallel_workers());
  HMR_CHECK_MSG(parallel_workers >= 1 && parallel_workers <= 256,
                "sim.parallel.workers out of [1, 256]");
  job->engine.set_parallel_workers(int(parallel_workers));

  job->result.submit_time = job->engine.now();
  co_await shuffle->start(*job);

  std::vector<bool> assigned(job->maps.size(), false);
  std::deque<int> pending_reduces;
  for (int r = 0; r < job->num_reduces; ++r) pending_reduces.push_back(r);

  sim::WaitGroup workers(job->engine);
  const int map_slots = int(job->spec.conf.get_int(kMapSlots, 4));
  const int reduce_slots = int(job->spec.conf.get_int(kReduceSlots, 4));
  for (auto& tracker : job->trackers) {
    for (int s = 0; s < map_slots; ++s) {
      workers.add();
      job->engine.spawn(map_worker(*job, *tracker, s, assigned, workers));
    }
    for (int s = 0; s < reduce_slots; ++s) {
      workers.add();
      job->engine.spawn(
          reduce_worker(*job, *tracker, pending_reduces, workers));
    }
  }
  co_await workers.wait();
  // The job is finished when its last reduce committed, not when the
  // speculation pollers noticed and unwound (they sleep up to one poll
  // interval past the final commit).
  job->result.finish_time = job->reduces_done_time > 0
                                ? job->reduces_done_time
                                : job->engine.now();
  co_await shuffle->stop(*job);
  if (job->spec.conf.get_bool(kMetricsSnapshot, true)) {
    // After stop(): engines fold their cache stats into the result and
    // the registry has every shuffle/net/cache series for the run.
    job->result.metrics = job->engine.metrics().snapshot();
  }
  co_return job->result;
}

}  // namespace hmr::mapred
