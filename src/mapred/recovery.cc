#include "mapred/recovery.h"

#include <algorithm>
#include <cmath>

namespace hmr::mapred {

FetchRetryPolicy FetchRetryPolicy::from_conf(const Conf& conf) {
  FetchRetryPolicy policy;
  policy.fetch_timeout =
      conf.get_double(kFetchTimeoutSec, policy.fetch_timeout);
  policy.max_retries =
      int(conf.get_int(kFetchMaxRetries, policy.max_retries));
  policy.backoff_base =
      conf.get_double(kFetchBackoffBaseSec, policy.backoff_base);
  policy.backoff_max =
      conf.get_double(kFetchBackoffMaxSec, policy.backoff_max);
  policy.backoff_jitter =
      conf.get_double(kFetchBackoffJitter, policy.backoff_jitter);
  policy.blacklist_threshold =
      int(conf.get_int(kBlacklistFailures, policy.blacklist_threshold));
  return policy;
}

double FetchRetryPolicy::backoff(int attempt, Rng& rng) const {
  const double exponential =
      backoff_base * std::pow(2.0, double(std::max(0, attempt - 1)));
  const double capped = std::min(exponential, backoff_max);
  return capped * (1.0 + backoff_jitter * rng.uniform());
}

sim::Task<> fetch_watchdog(sim::Engine& engine,
                           std::shared_ptr<void> keep_alive,
                           sim::Channel<FetchEvent>& events, double timeout,
                           std::uint64_t timer_id) {
  co_await engine.delay(timeout);
  FetchEvent expired;
  expired.timer_id = timer_id;
  (void)events.try_send(std::move(expired));
  (void)keep_alive;
}

}  // namespace hmr::mapred
