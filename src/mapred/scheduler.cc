#include "mapred/scheduler.h"

#include <cstdlib>

namespace hmr::mapred {
namespace {

// Splits "alice=3,bob=1" into (pool, value-token) pairs. Empty input is
// an empty list; empty segments ("a=1,,b=2") and missing '=' are errors.
Result<std::vector<std::pair<std::string, std::string>>> parse_pool_list(
    const char* key, const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  if (text.empty()) return out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const size_t eq = item.find('=');
    if (item.empty() || eq == std::string::npos || eq == 0 ||
        eq + 1 == item.size()) {
      return Status::InvalidArgument(std::string(key) + ": malformed entry '" +
                                     item + "' (want pool=value)");
    }
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    start = comma + 1;
  }
  return out;
}

Result<double> parse_number(const char* key, const std::string& pool,
                            const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == token.c_str()) {
    return Status::InvalidArgument(std::string(key) + ": pool '" + pool +
                                   "' has non-numeric value '" + token + "'");
  }
  return value;
}

}  // namespace

const char* sched_policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kFair:
      return "fair";
    case SchedPolicy::kCapacity:
      return "capacity";
  }
  return "?";
}

Result<SchedulerConfig> SchedulerConfig::from_conf(const Conf& conf) {
  SchedulerConfig out;

  const std::string policy = conf.get_string(kSchedPolicy, "fifo");
  if (policy == "fifo") {
    out.policy = SchedPolicy::kFifo;
  } else if (policy == "fair") {
    out.policy = SchedPolicy::kFair;
  } else if (policy == "capacity") {
    out.policy = SchedPolicy::kCapacity;
  } else {
    return Status::InvalidArgument(std::string(kSchedPolicy) +
                                   ": unknown policy '" + policy +
                                   "' (want fifo|fair|capacity)");
  }

  out.max_running_jobs =
      static_cast<int>(conf.get_int(kSchedMaxRunningJobs, 0));
  if (out.max_running_jobs < 0) {
    return Status::InvalidArgument(std::string(kSchedMaxRunningJobs) +
                                   ": must be >= 0 (0 = unlimited)");
  }
  out.default_pool_quota =
      static_cast<int>(conf.get_int(kSchedPoolDefaultQuota, 0));
  if (out.default_pool_quota < 0) {
    return Status::InvalidArgument(std::string(kSchedPoolDefaultQuota) +
                                   ": must be >= 0 (0 = unlimited)");
  }
  out.arrival_jobs_per_min = conf.get_double(kSchedArrivalJobsPerMin, 0.0);
  if (out.arrival_jobs_per_min < 0) {
    return Status::InvalidArgument(std::string(kSchedArrivalJobsPerMin) +
                                   ": must be >= 0");
  }

  auto weights =
      parse_pool_list(kSchedPoolWeights, conf.get_string(kSchedPoolWeights, ""));
  if (!weights.ok()) return weights.status();
  for (const auto& [pool, token] : *weights) {
    auto value = parse_number(kSchedPoolWeights, pool, token);
    if (!value.ok()) return value.status();
    if (*value <= 0) {
      return Status::InvalidArgument(std::string(kSchedPoolWeights) +
                                     ": pool '" + pool +
                                     "' weight must be > 0");
    }
    out.pools[pool].weight = *value;
  }

  auto quotas =
      parse_pool_list(kSchedPoolQuotas, conf.get_string(kSchedPoolQuotas, ""));
  if (!quotas.ok()) return quotas.status();
  for (const auto& [pool, token] : *quotas) {
    auto value = parse_number(kSchedPoolQuotas, pool, token);
    if (!value.ok()) return value.status();
    const int quota = static_cast<int>(*value);
    if (*value < 0 || static_cast<double>(quota) != *value) {
      return Status::InvalidArgument(std::string(kSchedPoolQuotas) +
                                     ": pool '" + pool +
                                     "' quota must be a non-negative integer");
    }
    out.pools[pool].quota = quota;
  }
  // Pools named only in the weight list still fall back to the default
  // quota; apply it to every pool that did not set one explicitly.
  for (auto& [pool, cfg] : out.pools) {
    const bool quoted = [&] {
      for (const auto& [name, token] : *quotas) {
        if (name == pool) return true;
      }
      return false;
    }();
    if (!quoted) cfg.quota = out.default_pool_quota;
  }
  return out;
}

PoolConfig SchedulerConfig::pool(const std::string& name) const {
  auto it = pools.find(name);
  if (it != pools.end()) return it->second;
  PoolConfig fallback;
  fallback.quota = default_pool_quota;
  return fallback;
}

}  // namespace hmr::mapred
