#include "storage/disk.h"

#include <algorithm>

namespace hmr::storage {

DiskSpec DiskSpec::hdd(std::string name) {
  DiskSpec spec;
  spec.name = std::move(name);
  return spec;  // defaults are the HDD profile
}

DiskSpec DiskSpec::ssd(std::string name) {
  DiskSpec spec;
  spec.name = std::move(name);
  // Bandwidth is per queue slot; aggregate = read_bw * queue_depth
  // (4 x 70 MB/s = 280 MB/s read, 4 x 50 = 200 MB/s write — a 2012-era
  // SATA-II SSD as deployed in the paper's storage nodes).
  spec.read_bw = 70.0e6;
  spec.write_bw = 50.0e6;
  spec.seek_time = 0.05e-3;  // flash lookup, negligible vs HDD
  spec.queue_depth = 4;
  spec.chunk_bytes = 1 * 1024 * 1024;
  return spec;
}

Disk::Disk(sim::Engine& engine, DiskSpec spec)
    : engine_(engine),
      spec_(std::move(spec)),
      queue_(engine, spec_.queue_depth, spec_.name) {}

sim::Task<> Disk::read(std::uint64_t bytes, std::uint64_t stream_id) {
  co_await transfer(bytes, stream_id, /*is_write=*/false);
}

sim::Task<> Disk::write(std::uint64_t bytes, std::uint64_t stream_id) {
  co_await transfer(bytes, stream_id, /*is_write=*/true);
}

void Disk::degrade(double factor) {
  spec_.read_bw = std::max(1.0, spec_.read_bw * factor);
  spec_.write_bw = std::max(1.0, spec_.write_bw * factor);
}

sim::Task<> Disk::transfer(std::uint64_t bytes, std::uint64_t stream_id,
                           bool is_write) {
  std::uint64_t left = bytes;
  // Zero-byte ops still pay one queue pass (metadata touch).
  do {
    const std::uint64_t chunk = std::min(left, spec_.chunk_bytes);
    co_await queue_.acquire();
    // Bandwidth is re-read per chunk so a mid-transfer degrade() bites.
    const double bw = is_write ? spec_.write_bw : spec_.read_bw;
    double cost = double(chunk) / bw;
    if (last_stream_ != stream_id) {
      cost += spec_.seek_time;
      ++seeks_;
      last_stream_ = stream_id;
    }
    busy_seconds_ += cost;
    co_await engine_.delay(cost);
    queue_.release();
    left -= chunk;
  } while (left > 0);
  if (is_write) {
    bytes_written_ += bytes;
  } else {
    bytes_read_ += bytes;
  }
}

std::uint64_t next_stream_id() {
  static std::uint64_t next = 1;
  return next++;
}

}  // namespace hmr::storage
