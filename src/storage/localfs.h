// In-memory local filesystem with simulated disk timing.
//
// Files carry *real* payload bytes plus a `scale` factor: timing is
// charged for `real_bytes * scale` so a benchmark can model a 100 GB job
// while physically moving ~100 MB (data_scale knob in DESIGN.md §2).
// Correctness tests run at scale 1 where real == modeled.
//
// Multiple disks form a JBOD: each new file is assigned a disk
// round-robin, mirroring Hadoop's mapred.local.dir striping — this is
// what the paper's "multiple HDD per node" experiments vary.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/fault.h"
#include "storage/disk.h"

namespace hmr::storage {

// Immutable view of a stored file's payload; holds shared ownership so a
// reader survives concurrent deletion (as an OS fd would).
//
// `corrupted` models silent bit-flips: the payload buffer is shared with
// the authoritative in-memory copy (map outputs alias it), so injected
// corruption never mutates the bytes — it sets this flag instead, and a
// checksum verify over a flagged view "fails" exactly as a real CRC over
// flipped bits would (DESIGN.md §6.2).
struct FileView {
  std::shared_ptr<const Bytes> data;
  double scale = 1.0;
  bool corrupted = false;

  std::uint64_t real_size() const { return data ? data->size() : 0; }
  std::uint64_t modeled_size() const {
    return static_cast<std::uint64_t>(double(real_size()) * scale);
  }
};

class LocalFS {
 public:
  // Modeled bytes each sequential scan prefetches per disk touch.
  static constexpr std::uint64_t kReadaheadModeled = 2 * 1024 * 1024;

  LocalFS(sim::Engine& engine, std::vector<std::unique_ptr<Disk>> disks);
  LocalFS(const LocalFS&) = delete;
  LocalFS& operator=(const LocalFS&) = delete;

  // --- timed operations (sim tasks) ---

  // Creates or replaces `path`, charging a sequential write of
  // data.size()*scale bytes to the file's disk.
  sim::Task<Status> write_file(std::string path, Bytes data,
                               double scale = 1.0);
  // Appends, charging a sequential write of data_len*scale.
  sim::Task<Status> append(std::string path, std::span<const std::uint8_t> data);

  // Reads the whole file (sequential charge).
  sim::Task<Result<FileView>> read_file(std::string path);
  // Reads [real_offset, real_offset+real_len); charges real_len*scale plus
  // the disk's positioning cost. The returned view still exposes the whole
  // payload; callers slice by [real_offset, real_len).
  sim::Task<Result<FileView>> read_range(std::string path,
                                         std::uint64_t real_offset,
                                         std::uint64_t real_len);

  // --- untimed metadata operations ---
  bool exists(const std::string& path) const;
  Result<std::uint64_t> real_size(const std::string& path) const;
  Result<std::uint64_t> modeled_size(const std::string& path) const;
  Status remove(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  std::vector<std::string> list(const std::string& prefix) const;
  // Zero-copy peek for code that needs the payload without timing (e.g.
  // validation at the end of a run).
  Result<FileView> peek(const std::string& path) const;

  size_t disk_count() const { return disks_.size(); }
  Disk& disk(size_t i) { return *disks_[i]; }
  std::uint64_t total_modeled_bytes() const;

  // --- fault injection (sim::DiskFault, armed by Cluster) ---

  // Arms per-operation fault rolls on this filesystem. `rng` must be a
  // host-unique stream so concurrent hosts' faults decorrelate.
  void arm_fault(const sim::DiskFault& fault, Rng rng);
  const sim::DiskFault* armed_fault() const {
    return fault_ ? &*fault_ : nullptr;
  }
  // Rolls the armed cache-corruption dice (a cached segment rotted while
  // resident); consulted by the shuffle cache on every hit.
  bool roll_cache_corrupt();
  // Slow-disk degrade: multiplies every disk's bandwidth by `factor`.
  void degrade_disks(double factor);
  // Marks the stored file sticky-corrupt: every read reports corruption
  // until the payload is rewritten. Deterministic at-rest bit-rot for
  // tests and targeted fault plans.
  Status mark_corrupt(const std::string& path);

 private:
  struct File {
    std::shared_ptr<Bytes> data;
    double scale = 1.0;
    size_t disk_index = 0;
    std::uint64_t stream_id = 0;
    bool sticky_corrupt = false;  // at-rest corruption until rewritten
    // Active sequential cursors into this file: a ranged read that starts
    // where a previous one ended continues that scan. Each scan reads
    // ahead in large granules (OS readahead); requests inside the
    // prefetched window are page-cache hits and touch no disk. Keyed by
    // next expected offset.
    struct Cursor {
      std::uint64_t stream_id = 0;
      std::uint64_t prefetched_until = 0;  // real offset
    };
    std::map<std::uint64_t, Cursor> range_cursors;
  };

  File* find(const std::string& path);
  const File* find(const std::string& path) const;

  // Returns the non-OK status of an injected write-path fault (disk-full
  // window or transient IO error), or OK to proceed.
  Status roll_write_fault(const std::string& path);

  sim::Engine& engine_;
  std::vector<std::unique_ptr<Disk>> disks_;
  size_t next_disk_ = 0;
  std::map<std::string, File> files_;
  std::optional<sim::DiskFault> fault_;
  std::optional<Rng> fault_rng_;
};

}  // namespace hmr::storage
