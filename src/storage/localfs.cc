#include "storage/localfs.h"

#include <algorithm>

namespace hmr::storage {

LocalFS::LocalFS(sim::Engine& engine,
                 std::vector<std::unique_ptr<Disk>> disks)
    : engine_(engine), disks_(std::move(disks)) {
  HMR_CHECK_MSG(!disks_.empty(), "LocalFS needs at least one disk");
}

LocalFS::File* LocalFS::find(const std::string& path) {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

const LocalFS::File* LocalFS::find(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

void LocalFS::arm_fault(const sim::DiskFault& fault, Rng rng) {
  fault_ = fault;
  fault_rng_ = rng;
}

bool LocalFS::roll_cache_corrupt() {
  if (!fault_ || fault_->cache_corrupt_prob <= 0) return false;
  return fault_rng_->chance(fault_->cache_corrupt_prob);
}

void LocalFS::degrade_disks(double factor) {
  for (auto& disk : disks_) disk->degrade(factor);
}

Status LocalFS::mark_corrupt(const std::string& path) {
  File* file = find(path);
  if (file == nullptr) return Status::NotFound("mark_corrupt: " + path);
  file->sticky_corrupt = true;
  return Status::Ok();
}

Status LocalFS::roll_write_fault(const std::string& path) {
  if (!fault_) return Status::Ok();
  const double now = engine_.now();
  if (fault_->full_at >= 0 && now >= fault_->full_at &&
      now < fault_->full_at + fault_->full_duration) {
    engine_.metrics().counter("storage.io.full_rejections").add();
    return Status::ResourceExhausted("disk full: " + path);
  }
  if (fault_->io_error_prob > 0 &&
      fault_rng_->chance(fault_->io_error_prob)) {
    engine_.metrics().counter("storage.io.errors").add();
    return Status::Unavailable("injected disk write error: " + path);
  }
  return Status::Ok();
}

sim::Task<Status> LocalFS::write_file(std::string path, Bytes data,
                                      double scale) {
  HMR_CHECK_MSG(scale >= 1.0, "scale must be >= 1");
  // Fault rolls precede any state change so a failed create leaves no
  // empty file behind.
  if (Status fault = roll_write_fault(path); !fault.ok()) co_return fault;
  File& file = files_[path];
  if (!file.data) {
    file.disk_index = next_disk_++ % disks_.size();
    file.stream_id = next_stream_id();
  }
  const auto modeled =
      static_cast<std::uint64_t>(double(data.size()) * scale);
  file.data = std::make_shared<Bytes>(std::move(data));
  file.scale = scale;
  // A full rewrite replaces the payload: prior at-rest corruption is
  // gone, but the write itself may silently store flipped bits.
  file.sticky_corrupt =
      fault_ && fault_->write_corrupt_prob > 0 &&
      fault_rng_->chance(fault_->write_corrupt_prob);
  if (file.sticky_corrupt) {
    engine_.metrics().counter("storage.io.corrupt_writes").add();
  }
  co_await disks_[file.disk_index]->write(modeled, file.stream_id);
  co_return Status::Ok();
}

sim::Task<Status> LocalFS::append(std::string path,
                                  std::span<const std::uint8_t> data) {
  File* file = find(path);
  if (file == nullptr) {
    co_return Status::NotFound("append: " + path);
  }
  if (Status fault = roll_write_fault(path); !fault.ok()) co_return fault;
  if (file->data.use_count() > 1) {
    // Copy-on-write: readers holding views keep the old payload.
    file->data = std::make_shared<Bytes>(*file->data);
  }
  file->data->insert(file->data->end(), data.begin(), data.end());
  if (!file->sticky_corrupt && fault_ && fault_->write_corrupt_prob > 0 &&
      fault_rng_->chance(fault_->write_corrupt_prob)) {
    file->sticky_corrupt = true;
    engine_.metrics().counter("storage.io.corrupt_writes").add();
  }
  const auto modeled =
      static_cast<std::uint64_t>(double(data.size()) * file->scale);
  co_await disks_[file->disk_index]->write(modeled, file->stream_id);
  co_return Status::Ok();
}

sim::Task<Result<FileView>> LocalFS::read_file(std::string path) {
  File* file = find(path);
  if (file == nullptr) {
    co_return Result<FileView>(Status::NotFound("read: " + path));
  }
  if (fault_ && fault_->io_error_prob > 0 &&
      fault_rng_->chance(fault_->io_error_prob)) {
    engine_.metrics().counter("storage.io.errors").add();
    co_return Result<FileView>(
        Status::Unavailable("injected disk read error: " + path));
  }
  FileView view{file->data, file->scale};
  view.corrupted = file->sticky_corrupt ||
                   (fault_ && fault_->read_corrupt_prob > 0 &&
                    fault_rng_->chance(fault_->read_corrupt_prob));
  if (view.corrupted) {
    engine_.metrics().counter("storage.io.corrupt_reads").add();
  }
  co_await disks_[file->disk_index]->read(view.modeled_size(),
                                          file->stream_id);
  co_return view;
}

sim::Task<Result<FileView>> LocalFS::read_range(std::string path,
                                                std::uint64_t real_offset,
                                                std::uint64_t real_len) {
  File* file = find(path);
  if (file == nullptr) {
    co_return Result<FileView>(Status::NotFound("read_range: " + path));
  }
  if (real_offset + real_len > file->data->size()) {
    co_return Result<FileView>(
        Status::OutOfRange("read_range past EOF: " + path));
  }
  if (fault_ && fault_->io_error_prob > 0 &&
      fault_rng_->chance(fault_->io_error_prob)) {
    engine_.metrics().counter("storage.io.errors").add();
    co_return Result<FileView>(
        Status::Unavailable("injected disk read error: " + path));
  }
  FileView view{file->data, file->scale};
  view.corrupted = file->sticky_corrupt ||
                   (fault_ && fault_->read_corrupt_prob > 0 &&
                    fault_rng_->chance(fault_->read_corrupt_prob));
  if (view.corrupted) {
    engine_.metrics().counter("storage.io.corrupt_reads").add();
  }
  const auto modeled =
      static_cast<std::uint64_t>(double(real_len) * file->scale);
  // Sequential-scan detection with readahead: a read continuing a
  // previous range rides the same scan; reads inside the scan's
  // prefetched window are page-cache hits (no disk). Fresh offsets pay
  // the positioning cost and pull a whole readahead granule.
  (void)modeled;
  File::Cursor cursor;
  if (auto it = file->range_cursors.find(real_offset);
      it != file->range_cursors.end()) {
    cursor = it->second;
    file->range_cursors.erase(it);
  } else {
    cursor.stream_id = next_stream_id();
    cursor.prefetched_until = real_offset;
    if (file->range_cursors.size() >= 128) {
      file->range_cursors.erase(file->range_cursors.begin());
    }
  }
  const std::uint64_t end = real_offset + real_len;
  if (end > cursor.prefetched_until) {
    const auto readahead_real = std::max<std::uint64_t>(
        real_len, std::max<std::uint64_t>(
                      1, static_cast<std::uint64_t>(
                             double(kReadaheadModeled) / file->scale)));
    const std::uint64_t fetch_to = std::min<std::uint64_t>(
        file->data->size(),
        std::max(end, cursor.prefetched_until + readahead_real));
    const auto fetch_modeled = static_cast<std::uint64_t>(
        double(fetch_to - cursor.prefetched_until) * file->scale);
    cursor.prefetched_until = fetch_to;
    file->range_cursors.emplace(end, cursor);
    co_await disks_[file->disk_index]->read(fetch_modeled, cursor.stream_id);
  } else {
    file->range_cursors.emplace(end, cursor);  // page-cache hit
  }
  co_return view;
}

bool LocalFS::exists(const std::string& path) const {
  return find(path) != nullptr;
}

Result<std::uint64_t> LocalFS::real_size(const std::string& path) const {
  const File* file = find(path);
  if (file == nullptr) return Status::NotFound("size: " + path);
  return std::uint64_t(file->data->size());
}

Result<std::uint64_t> LocalFS::modeled_size(const std::string& path) const {
  const File* file = find(path);
  if (file == nullptr) return Status::NotFound("size: " + path);
  return static_cast<std::uint64_t>(double(file->data->size()) * file->scale);
}

Status LocalFS::remove(const std::string& path) {
  if (files_.erase(path) == 0) return Status::NotFound("remove: " + path);
  return Status::Ok();
}

Status LocalFS::rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("rename: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

std::vector<std::string> LocalFS::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.starts_with(prefix); ++it) {
    out.push_back(it->first);
  }
  return out;
}

Result<FileView> LocalFS::peek(const std::string& path) const {
  const File* file = find(path);
  if (file == nullptr) return Status::NotFound("peek: " + path);
  // Untimed: no fault rolls, but at-rest corruption is still visible.
  return FileView{file->data, file->scale, file->sticky_corrupt};
}

std::uint64_t LocalFS::total_modeled_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [_, file] : files_) {
    total += static_cast<std::uint64_t>(double(file.data->size()) *
                                        file.scale);
  }
  return total;
}

}  // namespace hmr::storage
