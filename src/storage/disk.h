// Disk timing models.
//
// A Disk charges simulated time for byte transfers. Transfers are split
// into chunks; each chunk acquires the disk's queue slot, so concurrent
// streams interleave at chunk granularity like a real elevator would.
// HDDs pay a seek whenever a stream regains the disk after another
// stream used it (head movement); SSDs have no seek and an internal
// channel parallelism expressed as queue depth.
//
// Specs mirror the paper's testbed: 160GB/1TB HDDs (~110-130 MB/s
// sequential) and SATA SSDs (~250-500 MB/s) on Westmere nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace hmr::storage {

struct DiskSpec {
  std::string name = "hdd0";
  // Bandwidth is *per queue slot*; aggregate device bandwidth is
  // read_bw * queue_depth (HDDs have depth 1, SSDs expose channel
  // parallelism through depth > 1).
  double read_bw = 125.0e6;    // bytes/sec, sequential
  double write_bw = 115.0e6;   // bytes/sec, sequential
  double seek_time = 8.0e-3;   // per head relocation; 0 for SSD
  std::int64_t queue_depth = 1;     // concurrent in-flight ops (SSD channels)
  std::uint64_t chunk_bytes = 4 * 1024 * 1024;  // interleave granularity

  static DiskSpec hdd(std::string name);
  static DiskSpec ssd(std::string name);
};

class Disk {
 public:
  Disk(sim::Engine& engine, DiskSpec spec);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Awaitable transfers; `stream_id` identifies the logical sequential
  // stream (file handle): a seek is charged when the disk head last served
  // a different stream.
  sim::Task<> read(std::uint64_t bytes, std::uint64_t stream_id);
  sim::Task<> write(std::uint64_t bytes, std::uint64_t stream_id);

  // Fault injection: multiplies sequential bandwidth in both directions
  // by `factor` (dying spindle, thermal throttle). Transfers in progress
  // see the new rate from their next chunk.
  void degrade(double factor);

  const DiskSpec& spec() const { return spec_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t seeks() const { return seeks_; }
  // Total busy seconds, for utilization reports.
  double busy_seconds() const { return busy_seconds_; }

 private:
  sim::Task<> transfer(std::uint64_t bytes, std::uint64_t stream_id,
                       bool is_write);

  sim::Engine& engine_;
  DiskSpec spec_;
  sim::Resource queue_;
  std::uint64_t last_stream_ = ~0ull;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t seeks_ = 0;
  double busy_seconds_ = 0.0;
};

// Allocates unique stream ids for disk access patterns.
std::uint64_t next_stream_id();

}  // namespace hmr::storage
