// UCR-lite: the Unified Communication Runtime the paper layers its
// shuffle on (§II-D). Gives Java-socket-like *endpoints* over the verbs
// layer:
//
//  * eager protocol for small messages (bounce-buffer copy + SEND/RECV),
//  * rendezvous for large ones (sender registers, sends RTS; receiver
//    RDMA-reads the payload zero-copy, then FINs),
//  * credit-based flow control (bounded outstanding sends),
//  * in-order delivery per endpoint,
//  * connection establishment through a Listener (RDMA-CM equivalent).
//
// The TaskTracker-side RDMAListener and the ReduceTask-side RDMACopier
// in src/rdmashuffle are written directly against this API.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "net/ibfab.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/channel.h"
#include "sim/sync.h"

namespace hmr::ucr {

using net::Host;
using net::Message;
using net::Network;

// Large-message protocol: the receiver pulls with RDMA READ (default,
// MVAPICH-style), or the receiver advertises a buffer and the sender
// pushes with RDMA WRITE (RTR/put-based rendezvous).
enum class RendezvousMode { kRead, kWrite };

struct UcrParams {
  std::uint64_t eager_threshold = 16 * 1024;  // modeled bytes
  std::int64_t send_window = 16;              // outstanding sends
  double copy_bw = 6.0e9;     // bounce-buffer memcpy bytes/sec
  double setup_time = 120e-6; // QP allocation + transition on connect
  RendezvousMode rendezvous = RendezvousMode::kRead;
};

class Listener;

class Endpoint {
 public:
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // Completes when the message is delivered to the peer's reorder buffer
  // (eager) or fully RDMA-read by the peer (rendezvous).
  sim::Task<> send(Message msg);
  // Next application message, or nullopt after the peer closed.
  sim::Task<std::optional<Message>> recv();
  // Sends a CLOSE control message; idempotent.
  void close();
  // True once close() ran (locally or via the symmetric close on peer
  // disconnect). Senders with delayed work — e.g. a fault-stalled
  // responder — must check before send().
  bool closed() const { return closed_; }

  Host& local_host() { return qp_->local_host(); }
  Host& remote_host() { return qp_->remote_host(); }
  const UcrParams& params() const { return params_; }
  std::uint64_t eager_sends() const { return eager_sends_; }
  std::uint64_t rendezvous_sends() const { return rendezvous_sends_; }

 private:
  friend class Listener;
  friend sim::Task<std::unique_ptr<Endpoint>> connect(Network& network,
                                                      Host& from,
                                                      Listener& listener,
                                                      UcrParams params);

  Endpoint(Network& network, Host& host, UcrParams params);
  // Wires two endpoints' QPs together and starts their daemons.
  static void establish(Endpoint& a, Endpoint& b);
  void start_daemons();

  sim::Task<> demux_loop();
  sim::Task<> recv_loop();
  sim::Task<ibv::Completion> await_wr(std::uint64_t wr_id);
  sim::Task<> handle_rts(const Message& ctrl);
  sim::Task<> handle_rtr(const Message& ctrl);
  // Connection teardown: completes every send parked on a rendezvous
  // FIN/RTR that the departed peer will never deliver (the verbs
  // analogue of an error-state QP flushing its outstanding WRs).
  void flush_pending_sends();

  Network& network_;
  UcrParams params_;
  ibv::ProtectionDomain pd_;
  ibv::CompletionQueue send_cq_;
  ibv::CompletionQueue recv_cq_;
  std::unique_ptr<ibv::QueuePair> qp_;
  sim::Resource send_window_;
  sim::Resource send_order_;  // app-level FIFO across eager/rendezvous
  sim::Channel<Message> inbox_;
  std::uint64_t next_wr_ = 1;
  std::uint64_t next_recv_wr_ = 1'000'000'000ull;

  struct PendingWr {
    explicit PendingWr(sim::Engine& engine) : done(engine) {}
    sim::Event done;
    ibv::Completion completion;
  };
  std::map<std::uint64_t, std::shared_ptr<PendingWr>> pending_;
  struct PendingFin {
    explicit PendingFin(sim::Engine& engine) : done(engine) {}
    sim::Event done;
    // Set when the transfer was flushed by connection teardown rather
    // than completed by the peer's FIN; the payload never moved.
    bool aborted = false;
  };
  std::map<std::uint64_t, std::shared_ptr<PendingFin>> awaiting_fin_;
  // Write-mode rendezvous: sender-side payloads parked until the RTR
  // arrives with the receiver's buffer rkey.
  struct PendingPut {
    std::shared_ptr<Bytes> buffer;
    std::uint64_t modeled = 0;
  };
  std::map<std::uint64_t, PendingPut> awaiting_rtr_;
  // Receiver-side advertised buffers awaiting the sender's write.
  struct PostedRecvBuffer {
    std::uint32_t rkey = 0;
    std::uint64_t app_tag = 0;
    std::uint64_t modeled = 0;
    bool has_payload = true;
  };
  std::map<std::uint64_t, PostedRecvBuffer> advertised_;
  std::uint64_t next_rzv_seq_ = 1;
  bool closed_ = false;
  // The peer's CLOSE arrived: its recv loop is gone, so no RTS posted
  // from here on will ever be answered. Sends turn into no-ops.
  bool peer_closed_ = false;
  std::uint64_t eager_sends_ = 0;
  std::uint64_t rendezvous_sends_ = 0;
};

class Listener {
 public:
  Listener(Network& network, Host& host, UcrParams params = {});

  sim::Task<std::unique_ptr<Endpoint>> accept();
  void close() { pending_.close(); }
  Host& host() { return host_; }

 private:
  friend sim::Task<std::unique_ptr<Endpoint>> connect(Network& network,
                                                      Host& from,
                                                      Listener& listener,
                                                      UcrParams params);
  struct PendingConn {
    Endpoint* client;
    sim::Event* established;
  };
  Network& network_;
  Host& host_;
  UcrParams params_;
  sim::Channel<PendingConn> pending_;
};

// Client-side connect: one control RTT plus QP setup on both ends.
sim::Task<std::unique_ptr<Endpoint>> connect(Network& network, Host& from,
                                             Listener& listener,
                                             UcrParams params = {});

}  // namespace hmr::ucr
