#include "ucr/endpoint.h"

#include "common/bytes.h"

namespace hmr::ucr {
namespace {

// UCR wire kinds, packed into the top byte of Message::tag. Application
// tags are therefore limited to 56 bits (plenty for protocol enums).
enum Kind : std::uint64_t {
  kEager = 1,
  kRts = 2,
  kFin = 3,       // read-mode: receiver -> sender, transfer complete
  kClose = 4,
  kRtr = 5,       // write-mode: receiver -> sender, buffer ready (rkey)
  kWriteFin = 6,  // write-mode: sender -> receiver, payload landed
};

constexpr std::uint64_t kAppTagMask = (1ull << 56) - 1;

std::uint64_t pack_tag(Kind kind, std::uint64_t value) {
  HMR_CHECK_MSG((value & ~kAppTagMask) == 0, "app tag exceeds 56 bits");
  return (std::uint64_t(kind) << 56) | value;
}
Kind tag_kind(std::uint64_t tag) { return Kind(tag >> 56); }
std::uint64_t tag_value(std::uint64_t tag) { return tag & kAppTagMask; }

constexpr std::uint64_t kRtsWireBytes = 64;
constexpr std::uint64_t kFinWireBytes = 16;
constexpr std::uint64_t kCloseWireBytes = 16;

struct RtsHeader {
  std::uint64_t seq = 0;
  std::uint64_t app_tag = 0;
  std::uint32_t rkey = 0;  // read mode: sender's pinned buffer; 0 in write mode
  std::uint64_t real_len = 0;
  std::uint64_t modeled_len = 0;
  bool has_payload = true;
  bool write_mode = false;

  Bytes encode() const {
    ByteWriter w;
    w.put_u64(seq);
    w.put_u64(app_tag);
    w.put_u32(rkey);
    w.put_u64(real_len);
    w.put_u64(modeled_len);
    w.put_u8(has_payload ? 1 : 0);
    w.put_u8(write_mode ? 1 : 0);
    return w.take();
  }
  static RtsHeader decode(const Bytes& data) {
    ByteReader r(data);
    const auto seq = r.u64();
    const auto app_tag = r.u64();
    const auto rkey = r.u32();
    const auto real_len = r.u64();
    const auto modeled_len = r.u64();
    const auto has_payload = r.u8();
    const auto write_mode = r.u8();
    HMR_CHECK_MSG(seq.ok() && app_tag.ok() && rkey.ok() && real_len.ok() &&
                      modeled_len.ok() && has_payload.ok() && write_mode.ok(),
                  "truncated RTS header");
    RtsHeader h;
    h.seq = seq.value();
    h.app_tag = app_tag.value();
    h.rkey = rkey.value();
    h.real_len = real_len.value();
    h.modeled_len = modeled_len.value();
    h.has_payload = has_payload.value() != 0;
    h.write_mode = write_mode.value() != 0;
    return h;
  }
};

// RTR / WriteFin control bodies: {seq, rkey}.
Bytes encode_seq_rkey(std::uint64_t seq, std::uint32_t rkey) {
  ByteWriter w;
  w.put_u64(seq);
  w.put_u32(rkey);
  return w.take();
}
std::pair<std::uint64_t, std::uint32_t> decode_seq_rkey(const Bytes& data) {
  ByteReader r(data);
  const auto seq = r.u64();
  const auto rkey = r.u32();
  HMR_CHECK_MSG(seq.ok() && rkey.ok(), "truncated seq/rkey control body");
  return {seq.value(), rkey.value()};
}

}  // namespace

Endpoint::Endpoint(Network& network, Host& host, UcrParams params)
    : network_(network),
      params_(params),
      pd_(network.engine(), host),
      send_cq_(network.engine()),
      recv_cq_(network.engine()),
      qp_(std::make_unique<ibv::QueuePair>(network, pd_, send_cq_, recv_cq_)),
      send_window_(network.engine(), params.send_window, "ucr.window"),
      send_order_(network.engine(), 1, "ucr.order"),
      inbox_(network.engine(), 1024) {}

Endpoint::~Endpoint() {
  send_cq_.shutdown();
  recv_cq_.shutdown();
}

void Endpoint::establish(Endpoint& a, Endpoint& b) {
  HMR_CHECK(ibv::QueuePair::connect(*a.qp_, *b.qp_).ok());
  a.start_daemons();
  b.start_daemons();
}

void Endpoint::start_daemons() {
  // Pre-post receive credits: enough for the peer's full send window plus
  // control traffic.
  for (std::int64_t i = 0; i < params_.send_window * 2 + 4; ++i) {
    HMR_CHECK(qp_->post_recv({next_recv_wr_++}).ok());
  }
  network_.engine().spawn(demux_loop());
  network_.engine().spawn(recv_loop());
}

sim::Task<ibv::Completion> Endpoint::await_wr(std::uint64_t wr_id) {
  auto pending = std::make_shared<PendingWr>(network_.engine());
  pending_.emplace(wr_id, pending);
  co_await pending->done.wait();
  co_return pending->completion;
}

sim::Task<> Endpoint::demux_loop() {
  while (auto wc = co_await send_cq_.wait_opt()) {
    auto it = pending_.find(wc->wr_id);
    if (it == pending_.end()) continue;  // fire-and-forget WR (CLOSE)
    it->second->completion = std::move(*wc);
    it->second->done.set();
    pending_.erase(it);
  }
}

sim::Task<> Endpoint::recv_loop() {
  while (auto wc = co_await recv_cq_.wait_opt()) {
    if (qp_->state() == ibv::QpState::kRts) {
      HMR_CHECK(qp_->post_recv({next_recv_wr_++}).ok());  // replenish credit
    }
    const Kind kind = tag_kind(wc->message.tag);
    switch (kind) {
      case kEager: {
        Message app = std::move(wc->message);
        app.tag = tag_value(app.tag);
        // Receive-side bounce-buffer copy-out.
        co_await network_.engine().delay(double(app.modeled_bytes) /
                                         params_.copy_bw);
        co_await inbox_.send(std::move(app));
        break;
      }
      case kRts:
        co_await handle_rts(wc->message);
        break;
      case kRtr:
        co_await handle_rtr(wc->message);
        break;
      case kWriteFin: {
        // Write-mode completion: the sender's RDMA WRITE has landed in the
        // buffer we advertised; deliver it.
        const auto [seq, rkey] = decode_seq_rkey(*wc->message.payload);
        auto it = advertised_.find(seq);
        HMR_CHECK_MSG(it != advertised_.end(), "WriteFin for unknown seq");
        const auto* mr = pd_.find(rkey);
        HMR_CHECK(mr != nullptr);
        Message app;
        app.tag = it->second.app_tag;
        app.modeled_bytes = it->second.modeled;
        if (it->second.has_payload) app.payload = mr->spec().buffer;
        advertised_.erase(it);
        co_await inbox_.send(std::move(app));
        HMR_CHECK(pd_.deregister(rkey).ok());
        break;
      }
      case kFin: {
        auto it = awaiting_fin_.find(tag_value(wc->message.tag));
        HMR_CHECK_MSG(it != awaiting_fin_.end(), "FIN for unknown rendezvous");
        it->second->done.set();
        awaiting_fin_.erase(it);
        break;
      }
      case kClose:
        // The peer has closed. This loop exits, so any FIN/RTR still in
        // flight toward us lands in a dead CQ — flush the senders parked
        // on them now, and refuse rendezvous from here on (send()
        // checks peer_closed_). A FIN the peer posted before its CLOSE
        // is ordered ahead of it on the RC wire, so it was already
        // handled above; only genuinely unanswerable waits remain.
        peer_closed_ = true;
        inbox_.close();
        flush_pending_sends();
        co_return;
    }
  }
}

void Endpoint::flush_pending_sends() {
  for (auto& [seq, fin] : awaiting_fin_) {
    fin->aborted = true;
    fin->done.set();
  }
  awaiting_fin_.clear();
  awaiting_rtr_.clear();
}

sim::Task<> Endpoint::handle_rts(const Message& ctrl) {
  HMR_CHECK(ctrl.payload != nullptr);
  const RtsHeader header = RtsHeader::decode(*ctrl.payload);

  if (header.write_mode) {
    // Put-based rendezvous: pin a receive buffer and tell the sender
    // where to write.
    auto buffer = std::make_shared<Bytes>(header.real_len);
    const double scale =
        double(header.modeled_len) / double(std::max<std::uint64_t>(
                                         1, header.real_len));
    ibv::MemoryRegionSpec spec{buffer, scale};
    auto* mr = co_await pd_.register_memory(std::move(spec));
    advertised_[header.seq] = PostedRecvBuffer{
        mr->rkey(), header.app_tag, header.modeled_len, header.has_payload};
    auto body = std::make_shared<const Bytes>(
        encode_seq_rkey(header.seq, mr->rkey()));
    Message rtr = Message::share(std::move(body), kFinWireBytes,
                                 pack_tag(kRtr, 0));
    HMR_CHECK(qp_->post_send({.wr_id = 0, .message = std::move(rtr)}).ok());
    co_return;
  }

  const std::uint64_t wr = next_wr_++;
  auto wait = await_wr(wr);
  HMR_CHECK(qp_->post_rdma_read({.wr_id = wr,
                                 .remote_rkey = header.rkey,
                                 .real_offset = 0,
                                 .real_len = header.real_len})
                .ok());
  auto wc = co_await std::move(wait);
  HMR_CHECK_MSG(wc.status == ibv::WcStatus::kSuccess,
                "rendezvous RDMA read failed");

  Message app;
  app.tag = header.app_tag;
  app.modeled_bytes = header.modeled_len;
  if (header.has_payload) app.payload = wc.message.payload;
  co_await inbox_.send(std::move(app));

  HMR_CHECK(
      qp_->post_send({.wr_id = 0,  // fire and forget
                      .message = Message::control(pack_tag(kFin, header.seq),
                                                  kFinWireBytes)})
          .ok());
}

sim::Task<> Endpoint::handle_rtr(const Message& ctrl) {
  const auto [seq, rkey] = decode_seq_rkey(*ctrl.payload);
  auto it = awaiting_rtr_.find(seq);
  HMR_CHECK_MSG(it != awaiting_rtr_.end(), "RTR for unknown rendezvous");
  PendingPut put = std::move(it->second);
  awaiting_rtr_.erase(it);

  const std::uint64_t wr = next_wr_++;
  auto wait = await_wr(wr);
  const double scale = double(put.modeled) /
                       double(std::max<size_t>(1, put.buffer->size()));
  Message payload = Message::share(
      std::shared_ptr<const Bytes>(put.buffer), put.modeled, 0);
  HMR_CHECK(qp_->post_rdma_write(
                  {.wr_id = wr, .remote_rkey = rkey,
                   .message = std::move(payload)})
                .ok());
  (void)scale;
  auto wc = co_await std::move(wait);
  HMR_CHECK_MSG(wc.status == ibv::WcStatus::kSuccess,
                "rendezvous RDMA write failed");
  auto body = std::make_shared<const Bytes>(encode_seq_rkey(seq, rkey));
  Message fin = Message::share(std::move(body), kFinWireBytes,
                               pack_tag(kWriteFin, 0));
  HMR_CHECK(qp_->post_send({.wr_id = 0, .message = std::move(fin)}).ok());

  // Unblock the local send().
  auto fin_it = awaiting_fin_.find(seq);
  HMR_CHECK(fin_it != awaiting_fin_.end());
  fin_it->second->done.set();
  awaiting_fin_.erase(fin_it);
}

sim::Task<> Endpoint::send(Message msg) {
  HMR_CHECK_MSG(!closed_, "send on closed UCR endpoint");
  auto order = co_await sim::hold(send_order_);
  auto window = co_await sim::hold(send_window_);
  if (closed_ || peer_closed_) {
    // The connection tore down while this send was parked behind the
    // order/window resources. Nobody is left to read the payload; drop
    // it, like a WR flushed from an error-state QP.
    co_return;
  }

  if (msg.modeled_bytes <= params_.eager_threshold) {
    ++eager_sends_;
    // Copy into a pre-registered bounce buffer.
    co_await network_.engine().delay(double(msg.modeled_bytes) /
                                     params_.copy_bw);
    const std::uint64_t wr = next_wr_++;
    Message wire = std::move(msg);
    wire.tag = pack_tag(kEager, wire.tag);
    auto wait = await_wr(wr);
    HMR_CHECK(qp_->post_send({.wr_id = wr, .message = std::move(wire)}).ok());
    (void)co_await std::move(wait);
    co_return;
  }

  ++rendezvous_sends_;
  RtsHeader header;
  header.seq = next_rzv_seq_++;
  header.app_tag = msg.tag;
  header.has_payload = msg.payload != nullptr;
  auto buffer = msg.payload
                    ? std::make_shared<Bytes>(*msg.payload)
                    : std::make_shared<Bytes>(1);

  if (params_.rendezvous == RendezvousMode::kWrite) {
    // Put-based: advertise the transfer, park the payload until the RTR
    // brings the receiver's rkey, then handle_rtr RDMA-writes it.
    header.write_mode = true;
    header.real_len = buffer->size();
    header.modeled_len = msg.modeled_bytes;
    awaiting_rtr_[header.seq] = PendingPut{buffer, msg.modeled_bytes};
    auto fin = std::make_shared<PendingFin>(network_.engine());
    awaiting_fin_.emplace(header.seq, fin);
    const std::uint64_t wr = next_wr_++;
    auto wait = await_wr(wr);
    auto rts_payload = std::make_shared<const Bytes>(header.encode());
    Message rts = Message::share(std::move(rts_payload), kRtsWireBytes,
                                 pack_tag(kRts, 0));
    HMR_CHECK(qp_->post_send({.wr_id = wr, .message = std::move(rts)}).ok());
    (void)co_await std::move(wait);
    if (peer_closed_ && !fin->aborted) {
      // The peer's CLOSE raced ahead of this RTS (flush_pending_sends
      // ran before the FIN was registered); flush this transfer by hand.
      fin->aborted = true;
      fin->done.set();
      awaiting_fin_.erase(header.seq);
      awaiting_rtr_.erase(header.seq);
    }
    co_await fin->done.wait();
    co_return;
  }

  // Get-based (default): pin the payload, advertise it, wait for the
  // peer to RDMA-read it and FIN.
  const double scale = double(msg.modeled_bytes) / double(buffer->size());
  // Named local: GCC 12 miscompiles aggregate construction inside
  // co_await operands (see net/socket.cc connect()).
  ibv::MemoryRegionSpec mr_spec{buffer, scale};
  auto* mr = co_await pd_.register_memory(std::move(mr_spec));
  header.rkey = mr->rkey();
  header.real_len = buffer->size();
  header.modeled_len = msg.modeled_bytes;

  auto fin = std::make_shared<PendingFin>(network_.engine());
  awaiting_fin_.emplace(header.seq, fin);

  const std::uint64_t wr = next_wr_++;
  auto wait = await_wr(wr);
  auto rts_payload = std::make_shared<const Bytes>(header.encode());
  Message rts = Message::share(std::move(rts_payload), kRtsWireBytes,
                               pack_tag(kRts, 0));
  HMR_CHECK(qp_->post_send({.wr_id = wr, .message = std::move(rts)}).ok());
  (void)co_await std::move(wait);
  if (peer_closed_ && !fin->aborted) {
    // The peer's CLOSE raced ahead of this RTS; flush by hand (see the
    // write-mode branch above).
    fin->aborted = true;
    fin->done.set();
    awaiting_fin_.erase(header.seq);
  }
  co_await fin->done.wait();
  // An aborted transfer skips deregistration: the peer may still be
  // mid-RDMA-read (it answers with a FIN we will never see), and
  // yanking the region under the read would fault it. The MR is
  // reclaimed with the endpoint.
  if (!fin->aborted) {
    HMR_CHECK(pd_.deregister(mr->rkey()).ok());
  }
}

sim::Task<std::optional<Message>> Endpoint::recv() {
  co_return co_await inbox_.recv();
}

void Endpoint::close() {
  if (closed_) return;
  closed_ = true;
  if (qp_->state() == ibv::QpState::kRts) {
    HMR_CHECK(qp_->post_send({.wr_id = 0,
                              .message = Message::control(
                                  pack_tag(kClose, 0), kCloseWireBytes)})
                  .ok());
  }
}

Listener::Listener(Network& network, Host& host, UcrParams params)
    : network_(network), host_(host), params_(params),
      pending_(network.engine(), 128) {}

sim::Task<std::unique_ptr<Endpoint>> Listener::accept() {
  auto conn = co_await pending_.recv();
  if (!conn) co_return nullptr;
  auto server = std::unique_ptr<Endpoint>(
      new Endpoint(network_, host_, params_));
  Endpoint::establish(*conn->client, *server);
  co_await network_.engine().delay(params_.setup_time);
  co_await network_.transmit(host_, conn->client->local_host(), 0);
  conn->established->set();
  co_return server;
}

sim::Task<std::unique_ptr<Endpoint>> connect(Network& network, Host& from,
                                             Listener& listener,
                                             UcrParams params) {
  auto client = std::unique_ptr<Endpoint>(new Endpoint(network, from, params));
  sim::Event established(network.engine());
  co_await network.transmit(from, listener.host(), 0);  // connection request
  Listener::PendingConn pending_conn{client.get(), &established};
  co_await listener.pending_.send(pending_conn);
  co_await established.wait();
  co_await network.engine().delay(params.setup_time);
  co_return client;
}

}  // namespace hmr::ucr
