// Repo-wide call graph + transitive effect analysis for hmr-lint.
//
// A pre-pass over every lexed file (alongside the FunctionRegistry
// pre-pass in rules.h) records function definitions — with their
// namespace/class scope chain, body token range, and coroutine-ness —
// and the call sites inside each body. A fixed-point propagation then
// computes per-function *effect sets* over a small lattice:
//
//   clock    wall-clock reads (steady_clock & friends)
//   rng      OS/libc randomness (rand, random_device, mt19937, ...)
//   env      host environment reads (getenv)
//   engine   sim::Engine state (now, schedule_*, spawn, delay, parallel)
//   tracer   Tracer writes (instant, complete, span)
//   metrics  MetricsRegistry handle lookups and histogram records
//   global   mutable function-local statics
//   lock     raw std:: locking or sim::Resource acquisition
//   io       blocking host I/O (fopen/fread/fstream, ...)
//
// Direct effects come from token scans and a table of intrinsic seeds
// keyed by qualified name (Engine::now, Tracer::instant, ...);
// transitive effects flow caller-ward through call edges. Resolution is
// name-based (this is a token-level linter, not a compiler): a call
// site unions the effects of every definition sharing its bare name,
// except that `std::`-qualified calls never resolve to repo functions
// and coroutine definitions are excluded at non-co_await call sites. A
// qualifier at the call site (`Disk::write(...)`) narrows resolution to
// matching qualified definitions. The propagation records, per effect
// bit, the call or token that introduced it, so findings can report the
// full offending call *path*.
//
// Three rule families run on top (see docs/LINT.md):
//   parallel-purity        — lambdas passed to engine.parallel(host, fn)
//                            and everything reachable from them may only
//                            touch ParallelEffects-staged state, atomics,
//                            and work-local data.
//   coroutine-borrow       — KvView / arena-borrowed spans must not be
//                            held live across a co_await suspension.
//   transitive-determinism — call-time determinism bans (rand, srand,
//                            getenv) fire when the call is *reachable
//                            from a sim context* (a coroutine), not
//                            merely when it appears under src/.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "lint/lexer.h"
#include "lint/rules.h"

namespace hmr::lint {

// Effect lattice bits. A function's effect set is the bitwise OR of its
// direct effects and every (resolvable) callee's set.
enum EffectBit : unsigned {
  kEffClock = 1u << 0,
  kEffRng = 1u << 1,
  kEffEnv = 1u << 2,
  kEffEngine = 1u << 3,
  kEffTracer = 1u << 4,
  kEffMetrics = 1u << 5,
  kEffGlobal = 1u << 6,
  kEffLock = 1u << 7,
  kEffIo = 1u << 8,
};
inline constexpr unsigned kEffAll = (1u << 9) - 1;
inline constexpr int kEffBits = 9;

// "clock|rng|lock" for a mask; "" for 0.
std::string effect_names(unsigned mask);

// One call site inside a function body.
struct CallSite {
  std::string name;       // bare callee name
  std::string qualifier;  // "Disk" in `Disk::write(...)`, else empty
  int line = 0;
  bool awaited = false;     // chain directly behind a co_await
  bool member = false;      // receiver call (`x.f(...)` / `x->f(...)`)
  std::string receiver;     // first ident of the chain for member calls
  std::size_t token = 0;    // index into the owning file's token stream
};

// A banned call-time determinism token (rand/srand/getenv) found in a
// body; kept separately so transitive-determinism can report the exact
// site rather than just the effect bit.
struct DetCall {
  std::string name;
  int line = 0;
};

// How an effect bit entered a function: either a direct token in its
// own body (callee < 0) or propagation from a callee definition.
struct EffectOrigin {
  int callee = -1;    // index into CallGraph::functions(), -1 = direct
  std::string token;  // offending token for direct origins
  int line = 0;
};

struct FunctionDef {
  std::string qualified;  // scope chain + name, "::"-joined (no hmr::)
  std::string name;       // bare name
  std::string file;
  int line = 0;
  bool coroutine = false;  // Task<...> return type or co_await in body
  unsigned direct = 0;     // direct effect bits
  unsigned effects = 0;    // after propagation (superset of direct)
  std::vector<CallSite> calls;
  std::vector<DetCall> det_calls;
  EffectOrigin origin[kEffBits];
  // Body token range [body_begin, body_end) into the owning lexed file;
  // used by the per-file rules, not serialized.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

class CallGraph {
 public:
  // Extracts definitions and call sites from `file`. Call once per file,
  // then finalize() exactly once.
  void add_file(const LexedFile& file);

  // Resolves every call edge and propagates effects to a fixed point;
  // also runs the sim-context reachability pass (roots = coroutines).
  void finalize();

  const std::vector<FunctionDef>& functions() const { return fns_; }

  // Indices of definitions a call may target. `for_effects` excludes
  // coroutine definitions at non-awaited sites (a Task built but not
  // awaited never runs its body); reachability resolution keeps them so
  // spawn(fn(...)) edges survive. Two further narrowings fight
  // bare-name aliasing: awaited calls prefer coroutine candidates (only
  // awaitables can follow co_await), and — when `caller_scope` (the
  // calling function's class/namespace chain) is given — unqualified
  // non-member calls prefer candidates of the caller's own scope.
  std::vector<std::size_t> resolve(const CallSite& call, bool for_effects,
                                   const std::string& caller_scope = "") const;

  // Union of post-propagation effects over resolve(call, true).
  unsigned call_effects(const CallSite& call) const;

  // "f -> g -> `getenv` (file.cc:12)" — the chain from fns_[idx] to the
  // definition that directly owns `bit`. Empty when idx lacks the bit.
  std::string explain(std::size_t idx, unsigned bit) const;

  // True when fns_[idx] is a coroutine or reachable from one.
  bool sim_reachable(std::size_t idx) const;
  // "run_map_task -> charge_cpu -> f" root-first path witnessing
  // sim_reachable; just the function's own name when it is a root.
  std::string sim_root_path(std::size_t idx) const;

  // Also records Status/Result/void-like return kinds (declarations and
  // definitions) under their qualified names into `reg`, shrinking the
  // bare-name ambiguity drop set (see FunctionRegistry).
  void fill_registry(FunctionRegistry* reg) const;

  // {"schema":"hmr-callgraph-v1","functions":[...]} for the CI artifact.
  Json to_json() const;

 private:
  friend struct CallGraphTestPeer;
  std::vector<FunctionDef> fns_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
  // Qualified-name return kinds for fill_registry.
  struct RetDecl {
    std::string qualified;
    int kind = 0;  // 0 other, 1 Status, 2 Result, 3 void-like
  };
  std::vector<RetDecl> ret_decls_;
  // Receiver typing, the defense against bare-name aliasing on member
  // calls. Declarations feed two structures: names with a
  // `std::`-qualified type (`std::priority_queue<...> heap_;`) whose
  // member calls are library methods and resolve to nothing, and a
  // name -> declared-class-name map (`PrefetchCache cache_;`) that
  // narrows `cache_.get(...)` to PrefetchCache::get. Member calls on
  // receivers declared nowhere (range-for variables, call-result
  // chains) resolve to nothing rather than union every same-named
  // method in the repo; `this->` calls use the caller's own scope.
  std::set<std::string> std_members_;
  std::map<std::string, std::set<std::string>> member_types_;
  std::vector<int> sim_parent_;  // BFS parent; -2 unreachable, -1 root
  bool finalized_ = false;
};

// Rule family: parallel-purity. Scans `file` (src/ only) for
// `.parallel(host, <lambda>)` call sites and checks the lambda body and
// everything reachable from it against the full effect lattice. Calls
// on the lambda's ParallelEffects parameter are the sanctioned staging
// channel and are exempt.
void check_parallel_purity(const LexedFile& file, const CallGraph& graph,
                           std::vector<Finding>* out);

// Rule family: transitive-determinism. Flags rand/srand/getenv calls in
// functions of `file` that are coroutines or reachable from one, with
// the witnessing root path in the message.
void check_transitive_determinism(const LexedFile& file,
                                  const CallGraph& graph,
                                  std::vector<Finding>* out);

// Rule family: coroutine-borrow. Inside co_await-containing bodies in
// `file`, flags KvView variables (and spans borrowed from an arena) that
// are used again after a co_await suspends between declaration and use.
// Name-based: keep borrow variable names unique within a function.
void check_coroutine_borrow(const LexedFile& file, const CallGraph& graph,
                            std::vector<Finding>* out);

}  // namespace hmr::lint
