// hmr-lint: repo-aware static analysis for the OSU-IB reproduction.
//
// Rule families (see docs/LINT.md for the full reference):
//   determinism            — no wall clocks, library RNG types, or
//                            unordered containers in sim-facing code
//   status-discipline      — no discarded Status/Result call results,
//                            no .value()/deref without an ok() check
//   config-registry        — every Conf key literal documented in
//                            docs/CONFIG.md, and vice versa
//   metric-registry        — every metric name literal dot-separated
//                            lowercase and documented in docs/METRICS.md
//   thread-discipline      — raw std:: threading confined to the
//                            WorkerPool (per-site waivers only)
//   parallel-purity        — engine.parallel lambdas and everything
//                            reachable from them stay effect-free
//   coroutine-borrow       — no KvView/arena borrows held across
//                            co_await
//   transitive-determinism — rand/srand/getenv flagged when reachable
//                            from a sim context (call-graph based)
//
// The last three ride on the repo-wide call graph (lint/callgraph.h).
// A stale-waiver audit reports lint:ignore suppressions that no longer
// waive anything. The library is pure (files in, findings out) so tests
// can feed it fixture sources; tools/hmr_lint.cc adds the filesystem
// walk and CLI.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "lint/rules.h"

namespace hmr::lint {

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated; decides rule scope
  std::string text;
};

struct Options {
  // Markdown contents of the registries' docs. Empty string = skip that
  // cross-check (used while bootstrapping a new doc).
  std::string config_doc;
  std::string metrics_doc;
  std::string config_doc_path = "docs/CONFIG.md";
  std::string metrics_doc_path = "docs/METRICS.md";
};

struct Report {
  std::vector<Finding> findings;          // sorted by (file, line, rule)
  std::vector<std::string> config_keys;   // sorted unique, full literals
  std::vector<std::string> metric_names;  // sorted unique, full literals
  std::vector<std::string> metric_name_suffixes;  // from concatenated names
  // {"schema":"hmr-callgraph-v1",...} — the full per-function effect
  // analysis, written by `hmr_lint --callgraph FILE` for the CI artifact.
  Json callgraph;

  bool clean() const { return findings.empty(); }
  // {"schema":"hmr-lint-v1","findings":[...],"counts":{...},...}
  Json to_json() const;
};

// Runs every rule family over `files`. The call graph is built from
// *all* files (so test coroutines count as sim roots), then rules are
// scoped by path prefix:
//   src/    every family (+ function-return collection)
//   tools/  status-discipline, config-registry
//   tests/  status-discipline (discard checks only)
// lint:ignore suppressions are applied here; malformed ones surface as
// findings under the "suppression" pseudo-rule.
Report lint_files(const std::vector<SourceFile>& files, const Options& opts);

// Loads every .h/.cc/.cpp/.hpp under repo_root/<dir> for each dir,
// skipping tests/lint_fixtures (those violate on purpose). Paths in the
// result are repo-relative.
Result<std::vector<SourceFile>> collect_tree(
    const std::string& repo_root, const std::vector<std::string>& dirs);

}  // namespace hmr::lint
