// Lightweight C++ scanner for hmr-lint.
//
// Not a compiler front end: it tokenizes just enough of C++ — comments,
// string/char literals (incl. raw strings), preprocessor lines,
// identifiers, numbers, and a handful of multi-char punctuators — for
// the token-pattern rules in rules.cc and the registry extraction in
// registry.cc to work on real code without being fooled by banned names
// appearing inside strings or comments.
//
// Comments are not emitted as tokens, but suppression comments — the
// `lint:ignore` marker with a parenthesised rule list and a trailing
// `: justification` — are collected so findings can be waived with a
// recorded justification (see docs/TESTING.md "Lint workflow").
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hmr::lint {

enum class TokKind {
  kIdent,
  kString,   // text = literal body, quotes stripped, escapes untouched
  kChar,
  kNumber,
  kPunct,    // "::", "->" kept whole; everything else single-char
  kPreproc,  // text = whole directive incl. continuation lines
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
};

// One parsed suppression comment (rule list in parens after the
// `lint:ignore` marker, justification after the closing colon). It
// waives matching findings on its own line and the line below, so it can
// sit either at the end of the offending line or on its own line above.
struct Suppression {
  int line = 1;
  std::vector<std::string> rules;
  bool justified = false;  // non-empty text after "):"
};

struct LexedFile {
  std::string path;  // repo-relative, '/'-separated
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<std::string> lines;  // raw source; line N is lines[N-1]
};

LexedFile lex(std::string_view path, std::string_view text);

}  // namespace hmr::lint
