// Rule families 1 and 2 of hmr-lint: determinism and Status/Result
// discipline. Both work on the token stream from lint/lexer.h; the
// Status rules additionally consult a repo-wide FunctionRegistry built
// in a pre-pass over every scanned file, so "calls a function returning
// Status/Result" is decided from the repo's own declarations rather
// than a hard-coded list.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace hmr::lint {

struct Finding {
  std::string rule;     // "determinism", "status-discipline", ...
  std::string file;
  int line = 0;
  std::string message;
};

// Names of functions declared anywhere in the scanned tree to return
// Status or Result<T> (directly or wrapped, e.g. sim::Task<Status>).
// The bare-name sets are name-based, so an unrelated same-named
// function aliases into them; names that are *also* declared somewhere
// with a void-like return (`void close()`, `sim::Task<> append(...)`)
// are ambiguous and dropped by finalize(), and the callers skip
// `std::`-qualified calls entirely. The qualified_* sets — filled from
// the CallGraph pre-pass (lint/callgraph.h), which knows each
// declaration's namespace/class scope chain — recover precision at
// qualified call sites (`Disk::close(...)`): a qualified match decides
// the return kind even when the bare name was dropped as ambiguous.
// Remaining collisions take a justified status-discipline suppression.
struct FunctionRegistry {
  std::set<std::string> status_fns;
  std::set<std::string> result_fns;
  std::set<std::string> void_like_fns;
  // Scope-qualified declarations ("sim::Disk::write"), "::"-joined.
  std::set<std::string> qualified_status_fns;
  std::set<std::string> qualified_result_fns;
  std::set<std::string> qualified_void_fns;

  bool is_status(const std::string& name) const {
    return status_fns.count(name) != 0;
  }
  bool is_result(const std::string& name) const {
    return result_fns.count(name) != 0;
  }
  bool is_checked(const std::string& name) const {
    return is_status(name) || is_result(name);
  }

  // Call-site lookups: `qualifier` is the written qualification
  // ("Disk" in `Disk::write(...)`), empty for unqualified calls. A
  // qualified-set suffix match wins over the bare-name fallback.
  bool is_status_call(const std::string& name,
                      const std::string& qualifier) const;
  bool is_result_call(const std::string& name,
                      const std::string& qualifier) const;
  bool is_checked_call(const std::string& name,
                       const std::string& qualifier) const {
    return is_status_call(name, qualifier) || is_result_call(name, qualifier);
  }

  // Drops ambiguous names (declared both Status/Result-returning and
  // void-like) from the bare-name checked sets, and likewise for exact
  // qualified duplicates. Call once after the pre-pass has seen every
  // file. Missing a genuine discard of the surviving overload is the
  // accepted cost of not flagging every void call of the other.
  void finalize();
};

// Pre-pass: records `Status f(...)`, `Result<T> f(...)`, and wrapped
// forms like `sim::Task<Status> f(...)` declared in `file`, plus
// void-like declarations (`void f(...)`, `sim::Task<> f(...)`) used by
// FunctionRegistry::finalize() to drop ambiguous names.
void collect_function_returns(const LexedFile& file, FunctionRegistry* reg);

// Rule family 1: bans wall clocks, library RNG types, and unordered
// containers in sim-facing code. Callers apply this only to src/ paths
// (tools and tests run on the host and may use them). The call-time
// bans (rand/srand/getenv) live in the reachability-based
// transitive-determinism family (lint/callgraph.h), which fires only
// when the call is reachable from a sim context.
void check_determinism(const LexedFile& file, std::vector<Finding>* out);

// Rule family 2: discarded Status/Result call results (including
// `(void)` launders) and `.value()` / `*r` / `r->` access on a Result
// without a visible preceding ok() check. `check_value_guard` gates the
// access checks (applied to src/ and tools/; tests assert liberally and
// an abort on a bad Result inside a test is an acceptable failure mode).
void check_status_discipline(const LexedFile& file,
                             const FunctionRegistry& reg,
                             bool check_value_guard,
                             std::vector<Finding>* out);

// Rule family 5: bans raw threading — `std::thread`/`std::jthread`,
// mutexes, condition variables, lock guards, futures/async — plus the
// `<thread>`/`<mutex>`/`<condition_variable>`/`<shared_mutex>`/
// `<future>` headers. All cross-thread state belongs to the WorkerPool
// in sim/parallel.{h,cc} (which callers exempt); everything else gets
// concurrency through `co_await engine.parallel(host, fn)` and reports
// shared-state effects via ParallelEffects. std::atomic is allowed:
// lock-free guards (Tracer::Span, metric counters) need it and it
// cannot block or reorder the drain.
void check_thread_discipline(const LexedFile& file,
                             std::vector<Finding>* out);

}  // namespace hmr::lint
