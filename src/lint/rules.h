// Rule families 1 and 2 of hmr-lint: determinism and Status/Result
// discipline. Both work on the token stream from lint/lexer.h; the
// Status rules additionally consult a repo-wide FunctionRegistry built
// in a pre-pass over every scanned file, so "calls a function returning
// Status/Result" is decided from the repo's own declarations rather
// than a hard-coded list.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace hmr::lint {

struct Finding {
  std::string rule;     // "determinism", "status-discipline", ...
  std::string file;
  int line = 0;
  std::string message;
};

// Names of functions declared anywhere in the scanned tree to return
// Status or Result<T> (directly or wrapped, e.g. sim::Task<Status>).
// Name-based, so an unrelated same-named function aliases into the set.
// Two escape hatches keep that workable: names that are *also* declared
// somewhere with a void-like return (`void close()`, `sim::Task<>
// append(...)`) are ambiguous and dropped by finalize(), and the callers
// skip `std::`-qualified calls entirely. Remaining collisions take a
// justified status-discipline suppression at the call site.
struct FunctionRegistry {
  std::set<std::string> status_fns;
  std::set<std::string> result_fns;
  std::set<std::string> void_like_fns;

  bool is_status(const std::string& name) const {
    return status_fns.count(name) != 0;
  }
  bool is_result(const std::string& name) const {
    return result_fns.count(name) != 0;
  }
  bool is_checked(const std::string& name) const {
    return is_status(name) || is_result(name);
  }

  // Drops ambiguous names (declared both Status/Result-returning and
  // void-like) from the checked sets. Call once after the pre-pass has
  // seen every file. Missing a genuine discard of the surviving overload
  // is the accepted cost of not flagging every void call of the other.
  void finalize();
};

// Pre-pass: records `Status f(...)`, `Result<T> f(...)`, and wrapped
// forms like `sim::Task<Status> f(...)` declared in `file`, plus
// void-like declarations (`void f(...)`, `sim::Task<> f(...)`) used by
// FunctionRegistry::finalize() to drop ambiguous names.
void collect_function_returns(const LexedFile& file, FunctionRegistry* reg);

// Rule family 1: bans wall clocks, OS randomness, environment reads,
// and unordered containers in sim-facing code. Callers apply this only
// to src/ paths (tools and tests run on the host and may use them).
void check_determinism(const LexedFile& file, std::vector<Finding>* out);

// Rule family 2: discarded Status/Result call results (including
// `(void)` launders) and `.value()` / `*r` / `r->` access on a Result
// without a visible preceding ok() check. `check_value_guard` gates the
// access checks (applied to src/ and tools/; tests assert liberally and
// an abort on a bad Result inside a test is an acceptable failure mode).
void check_status_discipline(const LexedFile& file,
                             const FunctionRegistry& reg,
                             bool check_value_guard,
                             std::vector<Finding>* out);

// Rule family 5: bans raw threading — `std::thread`/`std::jthread`,
// mutexes, condition variables, lock guards, futures/async — plus the
// `<thread>`/`<mutex>`/`<condition_variable>`/`<shared_mutex>`/
// `<future>` headers. All cross-thread state belongs to the WorkerPool
// in sim/parallel.{h,cc} (which callers exempt); everything else gets
// concurrency through `co_await engine.parallel(host, fn)` and reports
// shared-state effects via ParallelEffects. std::atomic is allowed:
// lock-free guards (Tracer::Span, metric counters) need it and it
// cannot block or reorder the drain.
void check_thread_discipline(const LexedFile& file,
                             std::vector<Finding>* out);

}  // namespace hmr::lint
