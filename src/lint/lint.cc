#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "lint/callgraph.h"
#include "lint/registry.h"

namespace hmr::lint {

namespace {

bool has_prefix(const std::string& path, std::string_view prefix) {
  return path.rfind(prefix, 0) == 0;
}

const std::set<std::string, std::less<>> kKnownRules = {
    "determinism",      "status-discipline",      "config-registry",
    "metric-registry",  "thread-discipline",      "parallel-purity",
    "coroutine-borrow", "transitive-determinism"};

// Drops findings waived by a justified suppression on the same line or
// the line above; reports malformed suppressions. A justified
// suppression that names only rules *active for this file* yet waives
// nothing is stale and reported (the stale-waiver audit): waivers must
// die with the finding they cover. Suppressions naming a rule the file
// is out of scope for (e.g. determinism in tests/) are left alone.
void apply_suppressions(const LexedFile& file,
                        const std::set<std::string>& active_rules,
                        std::vector<Finding>* findings,
                        std::vector<Finding>* out) {
  for (const Suppression& s : file.suppressions) {
    if (s.rules.empty()) {
      out->push_back({"suppression", file.path, s.line,
                      "lint:ignore without a rule list; write "
                      "lint:ignore(<rule>): <justification>"});
      continue;
    }
    for (const std::string& rule : s.rules) {
      if (!kKnownRules.count(rule)) {
        out->push_back({"suppression", file.path, s.line,
                        "lint:ignore names unknown rule `" + rule + "`"});
      }
    }
    if (!s.justified) {
      out->push_back({"suppression", file.path, s.line,
                      "suppression must carry a justification: "
                      "lint:ignore(<rule>): <why this is safe>"});
    }
  }
  std::vector<bool> waived_any(file.suppressions.size(), false);
  for (Finding& f : *findings) {
    bool waived = false;
    // Same-line suppressions bind first so a trailing waiver owns its
    // own line; otherwise a line-above waiver could steal the finding
    // and leave the trailing one falsely stale.
    for (const int delta : {0, 1}) {
      for (size_t si = 0; si < file.suppressions.size() && !waived; ++si) {
        const Suppression& s = file.suppressions[si];
        if (!s.justified || s.line != f.line - delta) continue;
        if (std::find(s.rules.begin(), s.rules.end(), f.rule) !=
            s.rules.end()) {
          waived = true;
          waived_any[si] = true;
        }
      }
      if (waived) break;
    }
    if (!waived) out->push_back(std::move(f));
  }
  for (size_t si = 0; si < file.suppressions.size(); ++si) {
    const Suppression& s = file.suppressions[si];
    if (!s.justified || s.rules.empty() || waived_any[si]) continue;
    const bool all_active =
        std::all_of(s.rules.begin(), s.rules.end(),
                    [&](const std::string& rule) {
                      return active_rules.count(rule) != 0;
                    });
    if (!all_active) continue;
    std::string rules;
    for (const std::string& rule : s.rules) {
      if (!rules.empty()) rules += ",";
      rules += rule;
    }
    out->push_back({"suppression", file.path, s.line,
                    "stale suppression: lint:ignore(" + rules +
                        ") waives no finding on this or the next line; "
                        "delete it (waivers must die with the finding "
                        "they covered)"});
  }
}

}  // namespace

Report lint_files(const std::vector<SourceFile>& files, const Options& opts) {
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  FunctionRegistry fn_registry;
  CallGraph graph;
  for (const SourceFile& f : files) {
    lexed.push_back(lex(f.path, f.text));
    collect_function_returns(lexed.back(), &fn_registry);
    graph.add_file(lexed.back());
  }
  graph.finalize();  // resolve edges, propagate effects, find sim roots
  graph.fill_registry(&fn_registry);
  fn_registry.finalize();  // drop names with conflicting void-like decls

  Report report;
  report.callgraph = graph.to_json();
  std::vector<NameUse> config_uses;
  std::vector<NameUse> metric_uses;
  for (const LexedFile& f : lexed) {
    const bool in_src = has_prefix(f.path, "src/");
    const bool in_tools = has_prefix(f.path, "tools/");

    std::vector<Finding> local;
    std::set<std::string> active_rules = {"status-discipline"};
    if (in_src) {
      check_determinism(f, &local);
      // No blanket exemption anymore: sim/parallel.{h,cc} (the one
      // sanctioned home for raw threads) now carries a per-site
      // justified waiver on every lock/thread token instead, so any
      // *new* raw threading there is a finding too.
      check_thread_discipline(f, &local);
      check_parallel_purity(f, graph, &local);
      check_transitive_determinism(f, graph, &local);
      check_coroutine_borrow(f, graph, &local);
      active_rules.insert({"determinism", "thread-discipline",
                           "parallel-purity", "transitive-determinism",
                           "coroutine-borrow", "metric-registry",
                           "config-registry"});
    }
    check_status_discipline(f, fn_registry,
                            /*check_value_guard=*/in_src || in_tools, &local);
    if (in_src || in_tools) {
      extract_config_keys(f, &config_uses, &local);
      active_rules.insert("config-registry");
    }
    if (in_src) extract_metric_names(f, &metric_uses, &local);
    apply_suppressions(f, active_rules, &local, &report.findings);
  }

  if (!opts.config_doc.empty()) {
    cross_check_config(config_uses, opts.config_doc, opts.config_doc_path,
                       &report.findings);
  }
  if (!opts.metrics_doc.empty()) {
    cross_check_metrics(metric_uses, opts.metrics_doc, opts.metrics_doc_path,
                        &report.findings);
  }

  std::set<std::string> keys, names, suffixes;
  for (const NameUse& u : config_uses) keys.insert(u.name);
  for (const NameUse& u : metric_uses) {
    (u.partial ? suffixes : names).insert(u.name);
  }
  report.config_keys.assign(keys.begin(), keys.end());
  report.metric_names.assign(names.begin(), names.end());
  report.metric_name_suffixes.assign(suffixes.begin(), suffixes.end());

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return report;
}

Json Report::to_json() const {
  Json root = Json::object();
  root.set("schema", Json("hmr-lint-v1"));
  Json arr = Json::array();
  std::map<std::string, std::int64_t> counts;
  for (const Finding& f : findings) {
    Json j = Json::object();
    j.set("rule", Json(f.rule));
    j.set("file", Json(f.file));
    j.set("line", Json(std::int64_t(f.line)));
    j.set("message", Json(f.message));
    arr.push_back(std::move(j));
    ++counts[f.rule];
  }
  root.set("findings", std::move(arr));
  Json jc = Json::object();
  for (const auto& [rule, n] : counts) jc.set(rule, Json(n));
  root.set("counts", std::move(jc));
  const auto string_array = [](const std::vector<std::string>& v) {
    Json a = Json::array();
    for (const auto& s : v) a.push_back(Json(s));
    return a;
  };
  root.set("config_keys", string_array(config_keys));
  root.set("metric_names", string_array(metric_names));
  root.set("metric_name_suffixes", string_array(metric_name_suffixes));
  return root;
}

Result<std::vector<SourceFile>> collect_tree(
    const std::string& repo_root, const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  for (const std::string& dir : dirs) {
    const fs::path root = fs::path(repo_root) / dir;
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      return Status::NotFound("lint: no such directory: " + root.string());
    }
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) return Status::Internal("lint: walk failed: " + ec.message());
      const fs::path& p = it->path();
      if (it->is_directory() && p.filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = p.extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp" && ext != ".hpp") {
        continue;
      }
      std::FILE* f = std::fopen(p.c_str(), "rb");
      if (f == nullptr) {
        return Status::Internal("lint: cannot open " + p.string());
      }
      std::string text;
      char buf[1 << 16];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
      std::fclose(f);
      files.push_back(
          {fs::path(p).lexically_relative(repo_root).generic_string(),
           std::move(text)});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

}  // namespace hmr::lint
