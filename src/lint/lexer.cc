#include "lint/lexer.h"

#include <cctype>

namespace hmr::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses a suppression out of a comment body: the marker, a
// parenthesised comma-separated rule list, and a justification after the
// closing "):". Returns false when the comment is not a suppression.
bool parse_suppression(std::string_view comment, int line, Suppression* out) {
  const auto pos = comment.find("lint:ignore(");
  if (pos == std::string_view::npos) return false;
  out->line = line;
  out->rules.clear();
  out->justified = false;
  std::string_view rest = comment.substr(pos + 12);
  const auto close = rest.find(')');
  if (close == std::string_view::npos) return true;  // malformed, no rules
  std::string_view list = rest.substr(0, close);
  while (!list.empty()) {
    const auto comma = list.find(',');
    std::string_view one = trim(list.substr(0, comma));
    if (!one.empty()) out->rules.emplace_back(one);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  std::string_view tail = rest.substr(close + 1);
  if (!tail.empty() && tail.front() == ':') {
    out->justified = !trim(tail.substr(1)).empty();
  }
  return true;
}

class Scanner {
 public:
  Scanner(std::string_view path, std::string_view text) : text_(text) {
    out_.path = std::string(path);
    split_lines(text);
  }

  LexedFile run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        preproc();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      if (c == '"') {
        quoted(TokKind::kString, '"');
        continue;
      }
      if (c == '\'') {
        quoted(TokKind::kChar, '\'');
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void split_lines(std::string_view text) {
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == '\n') {
        out_.lines.emplace_back(text.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  void emit(TokKind kind, std::string text) {
    out_.tokens.push_back(Token{kind, std::move(text), line_});
  }

  void preproc() {
    const int start_line = line_;
    std::string body;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        if (!body.empty() && body.back() == '\\') {
          body.pop_back();
          ++line_;
          ++pos_;
          continue;  // line continuation
        }
        break;
      }
      // A trailing // comment is not part of the directive; leave it for
      // the main loop so lint:ignore suppressions on #include lines work.
      if (c == '/' && peek(1) == '/') break;
      body.push_back(c);
      ++pos_;
    }
    out_.tokens.push_back(Token{TokKind::kPreproc, std::move(body), start_line});
  }

  void line_comment() {
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    Suppression s;
    if (parse_suppression(text_.substr(start, pos_ - start), line_, &s)) {
      out_.suppressions.push_back(std::move(s));
    }
  }

  void block_comment() {
    const size_t start = pos_;
    const int start_line = line_;
    pos_ += 2;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\n') ++line_;
      if (text_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        break;
      }
      ++pos_;
    }
    Suppression s;
    if (parse_suppression(text_.substr(start, pos_ - start), start_line, &s)) {
      out_.suppressions.push_back(std::move(s));
    }
  }

  void raw_string() {
    // R"delim( ... )delim"
    pos_ += 2;
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') delim.push_back(text_[pos_++]);
    if (pos_ < text_.size()) ++pos_;  // '('
    const std::string close = ")" + delim + "\"";
    const size_t body_start = pos_;
    const auto end = text_.find(close, pos_);
    const size_t body_end = end == std::string_view::npos ? text_.size() : end;
    std::string body(text_.substr(body_start, body_end - body_start));
    const int start_line = line_;
    for (char c : body) {
      if (c == '\n') ++line_;
    }
    pos_ = body_end + (end == std::string_view::npos ? 0 : close.size());
    out_.tokens.push_back(Token{TokKind::kString, std::move(body), start_line});
  }

  void quoted(TokKind kind, char quote) {
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        body.push_back(text_[pos_++]);
      } else if (text_[pos_] == '\n') {
        break;  // unterminated; don't swallow the file
      }
      body.push_back(text_[pos_++]);
    }
    if (pos_ < text_.size() && text_[pos_] == quote) ++pos_;
    emit(kind, std::move(body));
  }

  void identifier() {
    const size_t start = pos_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
    emit(TokKind::kIdent, std::string(text_.substr(start, pos_ - start)));
  }

  void number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (ident_char(text_[pos_]) || text_[pos_] == '.' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E' ||
              text_[pos_ - 1] == 'p' || text_[pos_ - 1] == 'P')))) {
      ++pos_;
    }
    emit(TokKind::kNumber, std::string(text_.substr(start, pos_ - start)));
  }

  void punct() {
    const char c = text_[pos_];
    if (c == ':' && peek(1) == ':') {
      emit(TokKind::kPunct, "::");
      pos_ += 2;
      return;
    }
    if (c == '-' && peek(1) == '>') {
      emit(TokKind::kPunct, "->");
      pos_ += 2;
      return;
    }
    emit(TokKind::kPunct, std::string(1, c));
    ++pos_;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view path, std::string_view text) {
  return Scanner(path, text).run();
}

}  // namespace hmr::lint
