// Rule families 3 and 4 of hmr-lint: the config-key and metric-name
// registries. Extraction walks the token stream for string literals
// flowing into Conf accessors / MetricsRegistry factories; the
// cross-check compares the extracted sets against the markdown tables
// in docs/CONFIG.md and docs/METRICS.md so code and docs can never
// drift apart silently.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"
#include "lint/rules.h"

namespace hmr::lint {

// One extracted name with its site. `partial` marks metric names built
// by concatenation (`registry.counter(prefix + "hits")`): only the
// literal suffix is statically known, so doc matching accepts any
// documented name ending in ".hits".
struct NameUse {
  std::string name;
  std::string file;
  int line = 0;
  bool partial = false;
};

// Config keys: string literals defined as `k...` key constants
// (`inline constexpr const char* kFoo = "a.b.c";`) or passed directly
// to Conf get_*/set_*/contains. Malformed keys (uppercase, empty
// components) are reported into `out`.
void extract_config_keys(const LexedFile& file, std::vector<NameUse>* uses,
                         std::vector<Finding>* out);

// Metric names: first string literal flowing into MetricsRegistry /
// MetricsSnapshot calls (counter, gauge, histogram, latency_histogram,
// fixed_histogram, counter_value, gauge_value, gauge_max, ...).
// Enforces the dot-separated lowercase convention into `out`.
void extract_metric_names(const LexedFile& file, std::vector<NameUse>* uses,
                          std::vector<Finding>* out);

// Backticked names in the first column of every markdown table row,
// paired with their 1-based line in the doc.
std::vector<std::pair<std::string, int>> doc_table_names(
    std::string_view markdown);

// Both directions: every extracted key documented, every documented key
// referenced. `doc_path` labels findings against the doc itself.
void cross_check_config(const std::vector<NameUse>& uses,
                        std::string_view doc, const std::string& doc_path,
                        std::vector<Finding>* out);

// Same, with suffix matching for `partial` metric uses.
void cross_check_metrics(const std::vector<NameUse>& uses,
                         std::string_view doc, const std::string& doc_path,
                         std::vector<Finding>* out);

}  // namespace hmr::lint
