#include "lint/registry.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace hmr::lint {

namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool lower_component(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

// `a.b.c` with >= min_components dot-separated lowercase components.
bool dotted_name(std::string_view s, int min_components) {
  int components = 0;
  while (true) {
    const auto dot = s.find('.');
    if (!lower_component(s.substr(0, dot))) return false;
    ++components;
    if (dot == std::string_view::npos) break;
    s.remove_prefix(dot + 1);
  }
  return components >= min_components;
}

// A literal is "key-shaped" when it has at least one '.' separating
// non-empty pieces — loose on purpose so malformed keys (uppercase,
// trailing dot) are caught and reported instead of slipping past.
bool key_shaped(std::string_view s) {
  return !s.empty() && s.find('.') != std::string_view::npos &&
         s.find(' ') == std::string_view::npos &&
         s.find("\\n") == std::string_view::npos;
}

const std::set<std::string, std::less<>> kConfAccessors = {
    "get",      "get_string", "get_int",  "get_double", "get_bool",
    "get_bytes", "set",       "set_int",  "set_double", "set_bool",
    "set_bytes", "contains",
};

const std::set<std::string, std::less<>> kMetricFactories = {
    "counter",         "gauge",          "histogram",
    "latency_histogram", "fixed_histogram", "counter_value",
    "gauge_value",     "gauge_max",      "find_histogram",
    "find_fixed_histogram",
};

}  // namespace

void extract_config_keys(const LexedFile& file, std::vector<NameUse>* uses,
                         std::vector<Finding>* out) {
  const auto& toks = file.tokens;
  const auto record = [&](const std::string& key, int line) {
    if (!dotted_name(key, 2)) {
      out->push_back({"config-registry", file.path, line,
                      "config key \"" + key +
                          "\" violates the dotted lowercase convention "
                          "(`component.component[.component...]`, "
                          "[a-z0-9_] components)"});
      return;
    }
    uses->push_back({key, file.path, line, false});
  };

  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    // Key constants: `kFoo = "a.b.c";` (types.h style).
    if (toks[i].kind == TokKind::kIdent && toks[i].text.size() > 1 &&
        toks[i].text[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(toks[i].text[1])) &&
        is_punct(toks[i + 1], "=") && i + 3 < toks.size() &&
        toks[i + 2].kind == TokKind::kString && is_punct(toks[i + 3], ";") &&
        key_shaped(toks[i + 2].text)) {
      record(toks[i + 2].text, toks[i + 2].line);
      continue;
    }
    // Direct literals: `conf.get_bytes("dfs.block.size", ...)`. Requiring
    // the dot in the literal keeps Json::set("field", ...) out.
    if (toks[i].kind == TokKind::kIdent && kConfAccessors.count(toks[i].text) &&
        i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        is_punct(toks[i + 1], "(") && i + 2 < toks.size() &&
        toks[i + 2].kind == TokKind::kString && key_shaped(toks[i + 2].text)) {
      record(toks[i + 2].text, toks[i + 2].line);
    }
  }
}

void extract_metric_names(const LexedFile& file, std::vector<NameUse>* uses,
                          std::vector<Finding>* out) {
  const auto& toks = file.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        !kMetricFactories.count(toks[i].text) || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    // Scan the first argument (up to a top-level ',' or the closing ')')
    // for its first string literal.
    int depth = 1;
    size_t arg_tokens = 0;
    const Token* literal = nullptr;
    for (size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")")) {
        if (--depth == 0) break;
      }
      if (depth == 1 && is_punct(toks[j], ",")) break;
      ++arg_tokens;
      if (literal == nullptr && toks[j].kind == TokKind::kString) {
        literal = &toks[j];
      }
    }
    if (literal == nullptr) continue;
    const bool partial = arg_tokens != 1;
    const std::string& name = literal->text;
    if (!dotted_name(name, partial ? 1 : 2)) {
      out->push_back({"metric-registry", file.path, literal->line,
                      "metric name \"" + name +
                          "\" violates the dot-separated lowercase "
                          "convention (subsystem.metric, [a-z0-9_] "
                          "components)"});
      continue;
    }
    uses->push_back({name, file.path, literal->line, partial});
  }
}

std::vector<std::pair<std::string, int>> doc_table_names(
    std::string_view markdown) {
  std::vector<std::pair<std::string, int>> names;
  int line_no = 0;
  size_t start = 0;
  while (start <= markdown.size()) {
    auto end = markdown.find('\n', start);
    if (end == std::string_view::npos) end = markdown.size();
    std::string_view line = markdown.substr(start, end - start);
    ++line_no;
    start = end + 1;

    // Table rows: `| `first cell`| ...`. The first cell must hold one
    // backticked name.
    size_t p = 0;
    while (p < line.size() && std::isspace(static_cast<unsigned char>(line[p]))) {
      ++p;
    }
    if (p >= line.size() || line[p] != '|') continue;
    const auto cell_end = line.find('|', p + 1);
    if (cell_end == std::string_view::npos) continue;
    std::string_view cell = line.substr(p + 1, cell_end - p - 1);
    const auto tick1 = cell.find('`');
    if (tick1 == std::string_view::npos) continue;
    const auto tick2 = cell.find('`', tick1 + 1);
    if (tick2 == std::string_view::npos) continue;
    std::string_view name = cell.substr(tick1 + 1, tick2 - tick1 - 1);
    if (!name.empty()) names.emplace_back(std::string(name), line_no);
    if (start > markdown.size()) break;
  }
  return names;
}

void cross_check_config(const std::vector<NameUse>& uses,
                        std::string_view doc, const std::string& doc_path,
                        std::vector<Finding>* out) {
  const auto doc_names = doc_table_names(doc);
  std::set<std::string> documented;
  for (const auto& [name, line] : doc_names) documented.insert(name);

  std::set<std::string> reported;
  std::set<std::string> used;
  for (const NameUse& use : uses) {
    used.insert(use.name);
    if (!documented.count(use.name) && reported.insert(use.name).second) {
      out->push_back({"config-registry", use.file, use.line,
                      "config key `" + use.name + "` is not documented in " +
                          doc_path + " (add a table row: key, type, "
                          "default, meaning)"});
    }
  }
  for (const auto& [name, line] : doc_names) {
    if (!used.count(name)) {
      out->push_back({"config-registry", doc_path, line,
                      "documented config key `" + name +
                          "` is referenced nowhere in src/ or tools/ "
                          "(dead doc entry — delete the row or wire the "
                          "key up)"});
    }
  }
}

void cross_check_metrics(const std::vector<NameUse>& uses,
                         std::string_view doc, const std::string& doc_path,
                         std::vector<Finding>* out) {
  const auto doc_names = doc_table_names(doc);
  const auto doc_matches = [&](const NameUse& use) {
    for (const auto& [name, line] : doc_names) {
      if (name == use.name) return true;
      if (use.partial && name.size() > use.name.size() &&
          name.compare(name.size() - use.name.size(), std::string::npos,
                       use.name) == 0 &&
          name[name.size() - use.name.size() - 1] == '.') {
        return true;
      }
    }
    return false;
  };
  const auto use_matches = [&](const std::string& doc_name) {
    for (const NameUse& use : uses) {
      if (use.name == doc_name) return true;
      if (use.partial && doc_name.size() > use.name.size() &&
          doc_name.compare(doc_name.size() - use.name.size(),
                           std::string::npos, use.name) == 0 &&
          doc_name[doc_name.size() - use.name.size() - 1] == '.') {
        return true;
      }
    }
    return false;
  };

  std::set<std::string> reported;
  for (const NameUse& use : uses) {
    if (!doc_matches(use) && reported.insert(use.name).second) {
      out->push_back({"metric-registry", use.file, use.line,
                      "metric `" + use.name + (use.partial ? "` (suffix)" : "`") +
                          " is not documented in " + doc_path +
                          " (regenerate: hmr_lint --list-metrics, then add "
                          "the row)"});
    }
  }
  for (const auto& [name, line] : doc_names) {
    if (!use_matches(name)) {
      out->push_back({"metric-registry", doc_path, line,
                      "documented metric `" + name +
                          "` is registered nowhere in src/ (dead doc "
                          "entry)"});
    }
  }
}

}  // namespace hmr::lint
