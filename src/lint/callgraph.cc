#include "lint/callgraph.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <deque>
#include <set>

namespace hmr::lint {

namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

size_t match_paren(const std::vector<Token>& toks, size_t open, size_t end) {
  int depth = 0;
  for (size_t i = open; i < end; ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return std::string::npos;
}

size_t match_brace(const std::vector<Token>& toks, size_t open, size_t end) {
  int depth = 0;
  for (size_t i = open; i < end; ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}") && --depth == 0) return i;
  }
  return std::string::npos;
}

size_t match_bracket(const std::vector<Token>& toks, size_t open, size_t end) {
  int depth = 0;
  for (size_t i = open; i < end; ++i) {
    if (is_punct(toks[i], "[")) ++depth;
    if (is_punct(toks[i], "]") && --depth == 0) return i;
  }
  return std::string::npos;
}

// True when `qualified` is exactly `suffix` or ends with "::" + suffix's
// components ("hmr::sim::Engine::now" matches "Engine::now").
bool qualified_ends_with(const std::string& qualified,
                         const std::string& suffix) {
  if (qualified == suffix) return true;
  if (qualified.size() <= suffix.size()) return false;
  if (qualified.compare(qualified.size() - suffix.size(), suffix.size(),
                        suffix) != 0) {
    return false;
  }
  const size_t at = qualified.size() - suffix.size();
  return at >= 2 && qualified.compare(at - 2, 2, "::") == 0;
}

const char* kEffNames[kEffBits] = {"clock",   "rng",    "env",
                                   "engine",  "tracer", "metrics",
                                   "global",  "lock",   "io"};

// Keywords that look like `name(` call sites but are not calls.
const std::set<std::string, std::less<>> kNotCalls = {
    "if",       "while",    "for",      "switch",  "return", "co_return",
    "co_await", "co_yield", "sizeof",   "alignof", "catch",  "operator",
    "decltype", "new",      "delete",   "throw",   "assert", "defined",
    "noexcept", "alignas",  "requires", "typeid"};

// Identifier-shaped tokens that still introduce a call on the *next*
// identifier (`return f(x)`, `co_await g()`).
const std::set<std::string, std::less<>> kCallPrefixKeywords = {
    "return", "co_return", "co_await", "co_yield", "else", "throw", "do"};

struct DirectHit {
  unsigned bit = 0;
  std::string token;
  int line = 0;
};

// Ranges (inclusive token indices) excluded from a scan, e.g. the
// arguments of calls on the sanctioned ParallelEffects parameter.
bool in_ranges(size_t i, const std::vector<std::pair<size_t, size_t>>& skip) {
  for (const auto& [lo, hi] : skip) {
    if (i >= lo && i <= hi) return true;
  }
  return false;
}

// Token-level direct effect scan over [begin, end). Fills `hits` (one
// entry per offending token) and `det` (rand/srand/getenv call sites).
void scan_direct_effects(const std::vector<Token>& toks, size_t begin,
                         size_t end,
                         const std::vector<std::pair<size_t, size_t>>& skip,
                         std::vector<DirectHit>* hits,
                         std::vector<DetCall>* det) {
  static const std::set<std::string, std::less<>> kRngTypes = {
      "random_device", "mt19937", "mt19937_64", "default_random_engine"};
  static const std::set<std::string, std::less<>> kClockTypes = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  static const std::set<std::string, std::less<>> kLockTypes = {
      "thread",          "jthread",
      "mutex",           "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",    "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",      "unique_lock",
      "scoped_lock",     "shared_lock",
      "future",          "shared_future",
      "promise",         "packaged_task",
      "async",           "latch",
      "barrier",         "counting_semaphore",
      "binary_semaphore"};
  static const std::set<std::string, std::less<>> kIoCalls = {
      "fopen", "freopen", "fread", "fwrite", "fclose",
      "fgets", "fputs",   "fflush", "fseek", "ftell"};
  static const std::set<std::string, std::less<>> kIoTypes = {
      "ifstream", "ofstream", "fstream"};

  for (size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || in_ranges(i, skip)) continue;
    const bool member_access =
        i > begin && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    const bool called = i + 1 < end && is_punct(toks[i + 1], "(");
    if ((t.text == "rand" || t.text == "srand" || t.text == "getenv") &&
        called && !member_access) {
      const unsigned bit = t.text == "getenv" ? kEffEnv : kEffRng;
      hits->push_back({bit, t.text, t.line});
      if (det != nullptr) det->push_back({t.text, t.line});
      continue;
    }
    if (kRngTypes.count(t.text)) {
      hits->push_back({kEffRng, t.text, t.line});
      continue;
    }
    if (kClockTypes.count(t.text)) {
      hits->push_back({kEffClock, t.text, t.line});
      continue;
    }
    if (kLockTypes.count(t.text) && i >= begin + 2 &&
        is_punct(toks[i - 1], "::") && is_ident(toks[i - 2], "std")) {
      hits->push_back({kEffLock, "std::" + t.text, t.line});
      continue;
    }
    if ((kIoCalls.count(t.text) && called && !member_access) ||
        kIoTypes.count(t.text)) {
      hits->push_back({kEffIo, t.text, t.line});
      continue;
    }
    if (t.text == "static" && i + 1 < end &&
        !(is_ident(toks[i + 1], "const") ||
          is_ident(toks[i + 1], "constexpr"))) {
      hits->push_back({kEffGlobal, "static", t.line});
      continue;
    }
  }
}

// Walks back over a `a.b->c::d` chain ending just before `call_open`
// (the index of the called name). Returns the index of the chain's
// first identifier.
size_t chain_start(const std::vector<Token>& toks, size_t name_idx,
                   size_t begin) {
  size_t s = name_idx;
  while (s >= begin + 2 &&
         (is_punct(toks[s - 1], ".") || is_punct(toks[s - 1], "->") ||
          is_punct(toks[s - 1], "::")) &&
         toks[s - 2].kind == TokKind::kIdent) {
    s -= 2;
  }
  return s;
}

// Extracts call sites in [begin, end). `skip` ranges are excluded.
void extract_calls(const std::vector<Token>& toks, size_t begin, size_t end,
                   const std::vector<std::pair<size_t, size_t>>& skip,
                   std::vector<CallSite>* out) {
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kIdent || in_ranges(i, skip)) continue;
    if (i + 1 >= end || !is_punct(toks[i + 1], "(")) continue;
    if (kNotCalls.count(toks[i].text)) continue;
    CallSite call;
    call.name = toks[i].text;
    call.line = toks[i].line;
    call.token = i;
    if (i > begin) {
      const Token& prev = toks[i - 1];
      if (prev.kind == TokKind::kIdent) {
        // `ByteWriter writer(...)` — a declaration, unless the previous
        // identifier is a statement keyword that precedes expressions.
        if (!kCallPrefixKeywords.count(prev.text)) continue;
      } else if (is_punct(prev, "::")) {
        // Qualified call: collect the qualifier chain; `std::` never
        // resolves to a repo function.
        const size_t s = chain_start(toks, i, begin);
        std::string qual;
        for (size_t k = s; k + 1 < i; k += 2) {
          if (!qual.empty()) qual += "::";
          qual += toks[k].text;
        }
        if (qual == "std" || qual.rfind("std::", 0) == 0) continue;
        call.qualifier = qual;
      } else if (is_punct(prev, ".") || is_punct(prev, "->")) {
        call.member = true;
        if (i >= begin + 2 && toks[i - 2].kind == TokKind::kIdent) {
          call.receiver = toks[i - 2].text;
        }
      } else if (is_punct(prev, "<") || is_punct(prev, "~")) {
        continue;  // template argument (`<void(...)>`) or destructor
      }
    }
    const size_t s = chain_start(toks, i, begin);
    if (s > begin && is_ident(toks[s - 1], "co_await")) call.awaited = true;
    out->push_back(std::move(call));
  }
}

struct Seed {
  const char* suffix;
  unsigned bits;
};
constexpr Seed kSeeds[] = {
    {"Engine::now", kEffEngine},
    {"Engine::run", kEffEngine},
    {"Engine::schedule_at", kEffEngine},
    {"Engine::schedule_after", kEffEngine},
    {"Engine::schedule_now", kEffEngine},
    {"Engine::schedule_work", kEffEngine},
    {"Engine::spawn", kEffEngine},
    {"Engine::delay", kEffEngine},
    {"Engine::parallel", kEffEngine},
    {"Engine::set_parallel_workers", kEffEngine},
    {"Engine::set_tracer", kEffEngine | kEffTracer},
    {"Engine::metrics", kEffEngine | kEffMetrics},
    {"Engine::tracer", kEffEngine | kEffTracer},
    {"Engine::make_rng", kEffEngine | kEffRng},
    {"MetricsRegistry::counter", kEffMetrics},
    {"MetricsRegistry::gauge", kEffMetrics},
    {"MetricsRegistry::histogram", kEffMetrics},
    {"MetricsRegistry::fixed_histogram", kEffMetrics},
    {"MetricsRegistry::latency_histogram", kEffMetrics},
    {"Histogram::record", kEffMetrics},
    {"FixedHistogram::record", kEffMetrics},
    {"Tracer::instant", kEffTracer},
    {"Tracer::complete", kEffTracer},
    {"Tracer::complete_ids", kEffTracer},
    {"Tracer::span", kEffTracer},
    {"sim::maybe_span", kEffTracer},
    {"Resource::acquire", kEffLock | kEffEngine},
    {"Resource::try_acquire", kEffLock | kEffEngine},
    {"Resource::release", kEffLock | kEffEngine},
    {"sim::hold", kEffLock | kEffEngine},
};

}  // namespace

std::string effect_names(unsigned mask) {
  std::string out;
  for (int b = 0; b < kEffBits; ++b) {
    if ((mask & (1u << b)) == 0) continue;
    if (!out.empty()) out += "|";
    out += kEffNames[b];
  }
  return out;
}

void CallGraph::add_file(const LexedFile& file) {
  const auto& toks = file.tokens;
  const size_t n = toks.size();

  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kOther } kind = kOther;
    std::string name;
    int depth = 0;        // brace depth inside the scope
    int fn_index = -1;    // fns_ index for kFunction
  };
  std::vector<Scope> scopes;
  int depth = 0;
  // What the next `{` opens; reset after use.
  Scope pending;
  bool has_pending = false;
  size_t stmt_start = 0;

  const auto qualified_prefix = [&]() {
    std::string q;
    for (const Scope& s : scopes) {
      if (s.name.empty()) continue;
      if (!q.empty()) q += "::";
      q += s.name;
    }
    return q;
  };

  // Return-type scan over [stmt_start, chain_first): 0 other, 1 Status,
  // 2 Result, 3 void-like; also reports coroutine-ness (Task<...>).
  const auto ret_kind = [&](size_t from, size_t to, bool* coroutine) {
    *coroutine = false;
    int kind = 0;
    for (size_t k = from; k < to; ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      if (toks[k].text == "Task") {
        *coroutine = true;
        if (k + 2 < to && is_punct(toks[k + 1], "<") &&
            is_punct(toks[k + 2], ">")) {
          kind = 3;  // fire-and-forget coroutine, void-like
        }
      } else if (toks[k].text == "Status") {
        kind = 1;
      } else if (toks[k].text == "Result" && k + 1 < to &&
                 is_punct(toks[k + 1], "<")) {
        kind = 2;
      } else if (toks[k].text == "void" &&
                 !(k > from && is_punct(toks[k - 1], "("))) {
        if (kind == 0) kind = 3;
      }
    }
    return kind;
  };

  for (size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    const bool in_function =
        !scopes.empty() && scopes.back().kind == Scope::kFunction;

    if (is_punct(t, "{")) {
      ++depth;
      if (!in_function) {
        if (has_pending) {
          pending.depth = depth;
          scopes.push_back(pending);
          has_pending = false;
        } else {
          scopes.push_back({Scope::kOther, "", depth, -1});
        }
      }
      stmt_start = i + 1;
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      if (!scopes.empty() && depth < scopes.back().depth) {
        if (scopes.back().kind == Scope::kFunction) {
          FunctionDef& fn = fns_[size_t(scopes.back().fn_index)];
          fn.body_end = i;
        }
        scopes.pop_back();
      }
      stmt_start = i + 1;
      continue;
    }
    if (in_function) continue;  // bodies are processed in finalize()
    if (t.kind == TokKind::kPreproc || is_punct(t, ";") || is_punct(t, ":")) {
      stmt_start = i + 1;
      continue;
    }

    if (is_ident(t, "template") && i + 1 < n && is_punct(toks[i + 1], "<")) {
      int angle = 0;
      size_t j = i + 1;
      for (; j < n; ++j) {
        if (is_punct(toks[j], "<")) ++angle;
        if (is_punct(toks[j], ">") && --angle == 0) break;
      }
      i = j;
      continue;
    }

    if (is_ident(t, "namespace")) {
      std::string name;
      size_t j = i + 1;
      while (j < n && toks[j].kind == TokKind::kIdent) {
        if (!name.empty()) name += "::";
        name += toks[j].text;
        if (j + 1 < n && is_punct(toks[j + 1], "::")) {
          j += 2;
        } else {
          ++j;
          break;
        }
      }
      if (j < n && is_punct(toks[j], "{")) {
        pending = {Scope::kNamespace, name, 0, -1};
        has_pending = true;
        i = j - 1;
      }
      continue;
    }

    if ((is_ident(t, "class") || is_ident(t, "struct") ||
         is_ident(t, "union")) &&
        !(i > 0 && is_ident(toks[i - 1], "enum"))) {
      size_t j = i + 1;
      // Skip attributes and alignas before the name.
      while (j < n) {
        if (is_punct(toks[j], "[")) {
          const size_t close = match_bracket(toks, j, n);
          if (close == std::string::npos) break;
          j = close + 1;
        } else if (is_ident(toks[j], "alignas") && j + 1 < n &&
                   is_punct(toks[j + 1], "(")) {
          const size_t close = match_paren(toks, j + 1, n);
          if (close == std::string::npos) break;
          j = close + 1;
        } else {
          break;
        }
      }
      if (j >= n || toks[j].kind != TokKind::kIdent) continue;
      const std::string name = toks[j].text;
      // Walk to `{` (definition) or `;` (forward declaration).
      for (++j; j < n; ++j) {
        if (is_punct(toks[j], ";") || is_punct(toks[j], "(") ||
            is_punct(toks[j], "=")) {
          break;
        }
        if (is_punct(toks[j], "{")) {
          pending = {Scope::kClass, name, 0, -1};
          has_pending = true;
          i = j - 1;
          break;
        }
      }
      continue;
    }

    if (!is_punct(t, "(")) continue;

    // Candidate function signature: identifier chain directly before the
    // open paren, preceded by a type-ish token or a statement boundary.
    if (i == 0 || toks[i - 1].kind != TokKind::kIdent) continue;
    const size_t name_idx = i - 1;
    if (kNotCalls.count(toks[name_idx].text)) continue;
    const size_t s = chain_start(toks, name_idx, 0);
    if (s > 0) {
      const Token& before = toks[s - 1];
      const bool type_ish =
          (before.kind == TokKind::kIdent && before.text != "return" &&
           before.text != "co_await" && before.text != "co_return") ||
          is_punct(before, ">") || is_punct(before, "&") ||
          is_punct(before, "*") || is_punct(before, "]");
      const bool boundary = before.kind == TokKind::kPreproc ||
                            is_punct(before, ";") || is_punct(before, "{") ||
                            is_punct(before, "}") || is_punct(before, ":");
      if (!type_ish && !boundary) continue;
      if (is_punct(before, "~")) continue;
    }
    // Destructor chain (`~Foo()`).
    if (s > 0 && is_punct(toks[s - 1], "~")) continue;

    const size_t close = match_paren(toks, i, n);
    if (close == std::string::npos) continue;
    size_t k = close + 1;
    // Skip cv/ref/noexcept/override/final and trailing return types.
    while (k < n) {
      if (is_ident(toks[k], "const") || is_ident(toks[k], "override") ||
          is_ident(toks[k], "final") || is_punct(toks[k], "&")) {
        ++k;
      } else if (is_ident(toks[k], "noexcept")) {
        ++k;
        if (k < n && is_punct(toks[k], "(")) {
          const size_t nc = match_paren(toks, k, n);
          if (nc == std::string::npos) break;
          k = nc + 1;
        }
      } else if (is_punct(toks[k], "->")) {
        // Trailing return type: skip to `{` or `;` at this level.
        ++k;
        while (k < n && !is_punct(toks[k], "{") && !is_punct(toks[k], ";")) {
          ++k;
        }
      } else {
        break;
      }
    }
    if (k >= n) continue;

    // Member-initializer list before the body.
    if (is_punct(toks[k], ":")) {
      ++k;
      while (k < n) {
        if (toks[k].kind == TokKind::kIdent || is_punct(toks[k], "::")) {
          ++k;
          continue;
        }
        if (is_punct(toks[k], "(")) {
          const size_t c2 = match_paren(toks, k, n);
          if (c2 == std::string::npos) break;
          k = c2 + 1;
          if (k < n && is_punct(toks[k], ",")) {
            ++k;
            continue;
          }
          break;
        }
        if (is_punct(toks[k], "{")) {
          const size_t c2 = match_brace(toks, k, n);
          if (c2 == std::string::npos) break;
          k = c2 + 1;
          if (k < n && is_punct(toks[k], ",")) {
            ++k;
            continue;
          }
          break;
        }
        break;
      }
    }
    if (k >= n) continue;

    const bool is_def = is_punct(toks[k], "{");
    const bool is_decl = is_punct(toks[k], ";") || is_punct(toks[k], "=");
    if (!is_def && !is_decl) continue;

    std::string chain;
    for (size_t c = s; c <= name_idx; c += 2) {
      if (!chain.empty()) chain += "::";
      chain += toks[c].text;
    }
    const std::string prefix = qualified_prefix();
    const std::string qualified =
        prefix.empty() ? chain : prefix + "::" + chain;

    bool coroutine = false;
    const int kind = ret_kind(stmt_start, s, &coroutine);
    if (kind != 0) ret_decls_.push_back({qualified, kind});

    if (is_def) {
      FunctionDef fn;
      fn.qualified = qualified;
      fn.name = toks[name_idx].text;
      fn.file = file.path;
      fn.line = toks[name_idx].line;
      fn.coroutine = coroutine;
      fn.body_begin = k + 1;
      fn.body_end = k + 1;  // fixed up when the body closes
      fns_.push_back(std::move(fn));
      by_name_[toks[name_idx].text].push_back(fns_.size() - 1);
      pending = {Scope::kFunction, "", 0, int(fns_.size() - 1)};
      has_pending = true;
      i = k - 1;
    } else {
      i = k;
      stmt_start = k + 1;
    }
  }

  // Receiver typing: record what class each declared name has.
  // `PrefetchCache cache_;` narrows `cache_.get(...)` to
  // PrefetchCache::get; a `std::`-headed type (`std::priority_queue<...>
  // heap_;`) marks the name as a library object whose member calls are
  // never repo functions — except that smart-pointer wrappers
  // (`std::unique_ptr<TaskTracker> t;`) record the *pointee* class so
  // `t->start()` still resolves.
  static const std::set<std::string, std::less<>> kCvKeywords = {
      "mutable", "const", "static", "inline", "constexpr", "thread_local"};
  static const std::set<std::string, std::less<>> kSmartPtr = {
      "unique_ptr", "shared_ptr", "optional"};
  for (size_t i = 2; i + 1 < n; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const Token& nxt = toks[i + 1];
    if (!(is_punct(nxt, ";") || is_punct(nxt, "=") || is_punct(nxt, "{") ||
          is_punct(nxt, ")") || is_punct(nxt, ","))) {
      continue;
    }
    const Token& prev = toks[i - 1];
    if (!(prev.kind == TokKind::kIdent || is_punct(prev, ">") ||
          is_punct(prev, "&") || is_punct(prev, "*"))) {
      continue;
    }
    size_t s = i;
    while (s > 0) {
      const Token& b = toks[s - 1];
      if (b.kind == TokKind::kPreproc || is_punct(b, ";") ||
          is_punct(b, "{") || is_punct(b, "}") || is_punct(b, "(") ||
          is_punct(b, ",") || is_punct(b, "=") || is_punct(b, ":")) {
        break;
      }
      --s;
    }
    while (s < i && toks[s].kind == TokKind::kIdent &&
           kCvKeywords.count(toks[s].text)) {
      ++s;
    }
    if (s >= i || toks[s].kind != TokKind::kIdent) continue;
    // Head of the type: skip namespace qualifiers (`dataplane::KvView`).
    size_t h = s;
    while (h + 2 < i && is_punct(toks[h + 1], "::") &&
           toks[h + 2].kind == TokKind::kIdent) {
      if (toks[h].text == "std" && kSmartPtr.count(toks[h + 2].text)) break;
      h += 2;
    }
    std::string head = toks[h].text;
    if (head == "std") {
      // std::unique_ptr<repo::Type>: the pointee class types the name.
      if (h + 2 < i && kSmartPtr.count(toks[h + 2].text) && h + 3 < i &&
          is_punct(toks[h + 3], "<")) {
        size_t p = h + 4;
        while (p + 2 < i && is_punct(toks[p + 1], "::") &&
               toks[p + 2].kind == TokKind::kIdent) {
          p += 2;
        }
        if (p < i && toks[p].kind == TokKind::kIdent &&
            std::isupper(static_cast<unsigned char>(toks[p].text[0]))) {
          member_types_[toks[i].text].insert(toks[p].text);
          continue;
        }
      }
      std_members_.insert(toks[i].text);
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(head[0]))) {
      member_types_[toks[i].text].insert(head);
    }
  }

  // Body scans: direct effects, determinism call sites, call sites.
  for (FunctionDef& fn : fns_) {
    if (fn.file != file.path || fn.body_end <= fn.body_begin) continue;
    if (fn.direct != 0 || !fn.calls.empty()) continue;  // already scanned
    std::vector<DirectHit> hits;
    scan_direct_effects(toks, fn.body_begin, fn.body_end, {}, &hits,
                        &fn.det_calls);
    for (const DirectHit& h : hits) {
      for (int b = 0; b < kEffBits; ++b) {
        if (h.bit != (1u << b) || (fn.direct & h.bit) != 0) continue;
        fn.origin[b] = {-1, h.token, h.line};
      }
      fn.direct |= h.bit;
    }
    extract_calls(toks, fn.body_begin, fn.body_end, {}, &fn.calls);
    for (size_t k = fn.body_begin; k < fn.body_end; ++k) {
      if (is_ident(toks[k], "co_await") || is_ident(toks[k], "co_return")) {
        fn.coroutine = true;
        break;
      }
    }
  }
}

std::vector<std::size_t> CallGraph::resolve(
    const CallSite& call, bool for_effects,
    const std::string& caller_scope) const {
  std::vector<std::size_t> out;
  // Member calls resolve only through the receiver's declared class.
  // std-typed receivers (`heap_.push(...)`), and receivers declared
  // nowhere (range-for variables, `x().get()` chains), are library or
  // unknowable objects — resolving them by bare name would alias every
  // same-named method in the repo into this call site. `this->` falls
  // through to caller-scope narrowing below.
  const std::set<std::string>* recv_types = nullptr;
  if (call.member && call.receiver != "this") {
    if (call.receiver.empty() || std_members_.count(call.receiver) != 0) {
      return out;
    }
    const auto tit = member_types_.find(call.receiver);
    if (tit == member_types_.end()) return out;
    recv_types = &tit->second;
  }
  const auto it = by_name_.find(call.name);
  if (it == by_name_.end()) return out;
  for (const std::size_t idx : it->second) {
    const FunctionDef& fn = fns_[idx];
    if (!call.qualifier.empty() &&
        !qualified_ends_with(fn.qualified, call.qualifier + "::" + call.name)) {
      continue;
    }
    if (recv_types != nullptr) {
      bool in_class = false;
      for (const std::string& type : *recv_types) {
        if (qualified_ends_with(fn.qualified, type + "::" + call.name)) {
          in_class = true;
          break;
        }
      }
      if (!in_class) continue;
    }
    // A coroutine built but not awaited never runs its body, and
    // resolving it anyway aliases plain functions into coroutine
    // effects (e.g. ByteWriter::append vs an hdfs Task<> append).
    if (for_effects && fn.coroutine && !call.awaited) continue;
    out.push_back(idx);
  }
  // Only awaitables can follow co_await: when a coroutine candidate
  // exists, plain same-named functions are aliases, not targets.
  if (call.awaited && out.size() > 1) {
    std::vector<std::size_t> coro;
    for (const std::size_t idx : out) {
      if (fns_[idx].coroutine) coro.push_back(idx);
    }
    if (!coro.empty() && coro.size() < out.size()) out = std::move(coro);
  }
  // An unqualified non-member call (`refill(n)` inside Arena::allocate)
  // targets the caller's own scope when that scope declares the name.
  if (!caller_scope.empty() && out.size() > 1 && call.qualifier.empty() &&
      (!call.member || call.receiver == "this")) {
    std::vector<std::size_t> same;
    for (const std::size_t idx : out) {
      const FunctionDef& fn = fns_[idx];
      const size_t cut = fn.qualified.rfind("::");
      if (cut != std::string::npos &&
          fn.qualified.compare(0, cut, caller_scope) == 0) {
        same.push_back(idx);
      }
    }
    if (!same.empty() && same.size() < out.size()) out = std::move(same);
  }
  return out;
}

unsigned CallGraph::call_effects(const CallSite& call) const {
  unsigned fx = 0;
  for (const std::size_t idx : resolve(call, /*for_effects=*/true)) {
    fx |= fns_[idx].effects;
  }
  return fx;
}

void CallGraph::finalize() {
  if (finalized_) return;
  finalized_ = true;

  for (FunctionDef& fn : fns_) {
    for (const Seed& seed : kSeeds) {
      if (!qualified_ends_with(fn.qualified, seed.suffix) &&
          fn.qualified != seed.suffix) {
        continue;
      }
      for (int b = 0; b < kEffBits; ++b) {
        if ((seed.bits & (1u << b)) == 0 || (fn.direct & (1u << b)) != 0) {
          continue;
        }
        fn.origin[b] = {-1, "intrinsic " + std::string(seed.suffix), fn.line};
      }
      fn.direct |= seed.bits;
    }
    fn.effects = fn.direct;
  }

  const auto scope_of = [](const FunctionDef& fn) {
    const size_t cut = fn.qualified.rfind("::");
    return cut == std::string::npos ? std::string()
                                    : fn.qualified.substr(0, cut);
  };

  // Fixed point: effects flow caller-ward along resolvable call edges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (FunctionDef& fn : fns_) {
      const std::string scope = scope_of(fn);
      for (const CallSite& call : fn.calls) {
        for (const std::size_t idx :
             resolve(call, /*for_effects=*/true, scope)) {
          const unsigned fresh = fns_[idx].effects & ~fn.effects;
          if (fresh == 0) continue;
          for (int b = 0; b < kEffBits; ++b) {
            if ((fresh & (1u << b)) != 0) {
              fn.origin[b] = {int(idx), call.name, call.line};
            }
          }
          fn.effects |= fresh;
          changed = true;
        }
      }
    }
  }

  // Sim-context reachability (roots = coroutines). Coroutine callees
  // stay resolvable here regardless of co_await so spawn(fn(...))
  // edges survive.
  sim_parent_.assign(fns_.size(), -2);
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    if (fns_[i].coroutine) {
      sim_parent_[i] = -1;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const std::size_t from = queue.front();
    queue.pop_front();
    const std::string scope = scope_of(fns_[from]);
    for (const CallSite& call : fns_[from].calls) {
      for (const std::size_t idx :
           resolve(call, /*for_effects=*/false, scope)) {
        if (sim_parent_[idx] != -2) continue;
        sim_parent_[idx] = int(from);
        queue.push_back(idx);
      }
    }
  }
}

std::string CallGraph::explain(std::size_t idx, unsigned bit) const {
  std::string path;
  std::size_t at = idx;
  for (int hops = 0; hops < 64; ++hops) {
    const FunctionDef& fn = fns_[at];
    if ((fn.effects & bit) == 0) return path;
    if (!path.empty()) path += " -> ";
    path += fn.qualified;
    int b = 0;
    while ((bit >> b) != 1u) ++b;
    const EffectOrigin& origin = fn.origin[b];
    if (origin.callee < 0) {
      path += " -> `" + origin.token + "` (" + fn.file + ":" +
              std::to_string(origin.line) + ")";
      return path;
    }
    at = std::size_t(origin.callee);
  }
  return path;
}

bool CallGraph::sim_reachable(std::size_t idx) const {
  return idx < sim_parent_.size() && sim_parent_[idx] != -2;
}

std::string CallGraph::sim_root_path(std::size_t idx) const {
  std::vector<std::string> names;
  std::size_t at = idx;
  for (int hops = 0; hops < 64; ++hops) {
    names.push_back(fns_[at].qualified);
    const int parent = sim_parent_[at];
    if (parent < 0) break;
    at = std::size_t(parent);
  }
  std::string path;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (!path.empty()) path += " -> ";
    path += *it;
  }
  return path;
}

void CallGraph::fill_registry(FunctionRegistry* reg) const {
  for (const RetDecl& decl : ret_decls_) {
    switch (decl.kind) {
      case 1:
        reg->qualified_status_fns.insert(decl.qualified);
        break;
      case 2:
        reg->qualified_result_fns.insert(decl.qualified);
        break;
      case 3:
        reg->qualified_void_fns.insert(decl.qualified);
        break;
      default:
        break;
    }
  }
}

Json CallGraph::to_json() const {
  Json root = Json::object();
  root.set("schema", Json("hmr-callgraph-v1"));
  Json fns = Json::array();
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    const FunctionDef& fn = fns_[i];
    Json j = Json::object();
    j.set("function", Json(fn.qualified));
    j.set("file", Json(fn.file));
    j.set("line", Json(std::int64_t(fn.line)));
    j.set("coroutine", Json(fn.coroutine));
    j.set("sim_reachable", Json(sim_reachable(i)));
    j.set("effects", Json(effect_names(fn.effects)));
    j.set("direct_effects", Json(effect_names(fn.direct)));
    Json calls = Json::array();
    std::set<std::string> seen;
    for (const CallSite& call : fn.calls) {
      const std::string shown =
          call.qualifier.empty() ? call.name : call.qualifier + "::" + call.name;
      if (!seen.insert(shown).second) continue;
      calls.push_back(Json(shown));
    }
    j.set("calls", std::move(calls));
    fns.push_back(std::move(j));
  }
  root.set("functions", std::move(fns));
  Json counts = Json::object();
  counts.set("functions", Json(std::int64_t(fns_.size())));
  root.set("counts", std::move(counts));
  return root;
}

namespace {

constexpr const char* kPurityAdvice =
    "; a parallel fn may only touch its closure, work-local state, "
    "atomics, and the staged ParallelEffects buffer (rule "
    "parallel-purity, docs/LINT.md)";

// Parses the lambda argument of one `.parallel(host, <lambda>)` call.
// Returns false when the second argument is not an inline lambda.
bool parse_parallel_lambda(const std::vector<Token>& toks, size_t open,
                           size_t close, size_t* body_begin, size_t* body_end,
                           std::string* effects_name) {
  // Find the top-level comma separating host from fn.
  int paren = 0, bracket = 0, brace = 0;
  size_t comma = std::string::npos;
  for (size_t i = open; i < close; ++i) {
    if (is_punct(toks[i], "(")) ++paren;
    if (is_punct(toks[i], ")")) --paren;
    if (is_punct(toks[i], "[")) ++bracket;
    if (is_punct(toks[i], "]")) --bracket;
    if (is_punct(toks[i], "{")) ++brace;
    if (is_punct(toks[i], "}")) --brace;
    if (is_punct(toks[i], ",") && paren == 1 && bracket == 0 && brace == 0) {
      comma = i;
      break;
    }
  }
  if (comma == std::string::npos) return false;
  size_t j = comma + 1;
  if (j >= close || !is_punct(toks[j], "[")) return false;
  const size_t cap_close = match_bracket(toks, j, close);
  if (cap_close == std::string::npos) return false;
  j = cap_close + 1;
  if (j < close && is_punct(toks[j], "(")) {
    const size_t params_close = match_paren(toks, j, close);
    if (params_close == std::string::npos) return false;
    for (size_t k = j + 1; k < params_close; ++k) {
      if (!is_ident(toks[k], "ParallelEffects")) continue;
      for (size_t m = k + 1; m < params_close; ++m) {
        if (is_punct(toks[m], ",")) break;
        if (toks[m].kind == TokKind::kIdent && toks[m].text != "const") {
          *effects_name = toks[m].text;
        }
      }
      break;
    }
    j = params_close + 1;
  }
  while (j < close && (is_ident(toks[j], "mutable") ||
                       is_ident(toks[j], "noexcept"))) {
    ++j;
  }
  if (j >= close || !is_punct(toks[j], "{")) return false;
  const size_t lambda_close = match_brace(toks, j, close + 1);
  if (lambda_close == std::string::npos) return false;
  *body_begin = j + 1;
  *body_end = lambda_close;
  return true;
}

}  // namespace

void check_parallel_purity(const LexedFile& file, const CallGraph& graph,
                           std::vector<Finding>* out) {
  const auto& toks = file.tokens;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "parallel")) continue;
    if (!(is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    const size_t open = i + 1;
    const size_t close = match_paren(toks, open, toks.size());
    if (close == std::string::npos) continue;

    size_t body_begin = 0, body_end = 0;
    std::string effects_name;
    if (!parse_parallel_lambda(toks, open, close, &body_begin, &body_end,
                               &effects_name)) {
      out->push_back(
          {"parallel-purity", file.path, toks[i].line,
           "fn passed to engine.parallel is not an inline lambda; the "
           "purity analysis needs the body visible at the call site" +
               std::string(kPurityAdvice)});
      continue;
    }

    // Calls on the ParallelEffects parameter are the sanctioned staging
    // channel; their whole argument ranges (e.g. an effects.defer
    // callback, which runs on the engine thread) are exempt.
    std::vector<std::pair<size_t, size_t>> exempt;
    if (!effects_name.empty()) {
      for (size_t k = body_begin; k + 3 < body_end; ++k) {
        if (!is_ident(toks[k], effects_name)) continue;
        if (!(is_punct(toks[k + 1], ".") || is_punct(toks[k + 1], "->"))) {
          continue;
        }
        if (toks[k + 2].kind != TokKind::kIdent ||
            !is_punct(toks[k + 3], "(")) {
          continue;
        }
        const size_t call_close = match_paren(toks, k + 3, body_end);
        if (call_close == std::string::npos) continue;
        exempt.emplace_back(k, call_close);
      }
    }

    for (size_t k = body_begin; k < body_end; ++k) {
      if (is_ident(toks[k], "co_await") && !in_ranges(k, exempt)) {
        out->push_back({"parallel-purity", file.path, toks[k].line,
                        "co_await inside a parallel fn: work fns are plain "
                        "functions and must not block or suspend" +
                            std::string(kPurityAdvice)});
      }
    }

    std::vector<DirectHit> hits;
    scan_direct_effects(toks, body_begin, body_end, exempt, &hits, nullptr);
    for (const DirectHit& h : hits) {
      out->push_back({"parallel-purity", file.path, h.line,
                      "parallel fn uses `" + h.token + "` directly (effect: " +
                          effect_names(h.bit) + ")" + kPurityAdvice});
    }

    std::vector<CallSite> calls;
    extract_calls(toks, body_begin, body_end, exempt, &calls);
    for (const CallSite& call : calls) {
      if (call.member && call.receiver == effects_name) continue;
      const unsigned fx = graph.call_effects(call);
      if (fx == 0) continue;
      unsigned bit = 1;
      while ((fx & bit) == 0) bit <<= 1;
      std::string path;
      for (const std::size_t idx : graph.resolve(call, true)) {
        if ((graph.functions()[idx].effects & bit) != 0) {
          path = graph.explain(idx, bit);
          break;
        }
      }
      out->push_back({"parallel-purity", file.path, call.line,
                      "parallel fn calls `" + call.name +
                          "`, which transitively has effects {" +
                          effect_names(fx) + "}: " + path + kPurityAdvice});
    }
  }
}

void check_transitive_determinism(const LexedFile& file,
                                  const CallGraph& graph,
                                  std::vector<Finding>* out) {
  const auto& fns = graph.functions();
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const FunctionDef& fn = fns[i];
    if (fn.file != file.path || fn.det_calls.empty()) continue;
    if (!graph.sim_reachable(i)) continue;
    const std::string path = graph.sim_root_path(i);
    for (const DetCall& det : fn.det_calls) {
      const char* advice =
          det.name == "getenv"
              ? "environment reads make runs host-dependent; plumb the "
                "setting through Conf"
              : "libc randomness breaks replay; use hmr::Rng (common/rng.h)";
      out->push_back({"transitive-determinism", file.path, det.line,
                      "`" + det.name + "` in `" + fn.qualified +
                          "` is reachable from a sim context: " + path +
                          "; " + advice +
                          " (rule transitive-determinism, docs/LINT.md)"});
    }
  }
}

void check_coroutine_borrow(const LexedFile& file, const CallGraph& graph,
                            std::vector<Finding>* out) {
  const auto& toks = file.tokens;
  for (const FunctionDef& fn : graph.functions()) {
    if (fn.file != file.path || fn.body_end <= fn.body_begin) continue;
    std::vector<size_t> awaits;
    for (size_t k = fn.body_begin; k < fn.body_end; ++k) {
      if (is_ident(toks[k], "co_await")) awaits.push_back(k);
    }
    if (awaits.empty()) continue;

    struct Borrow {
      std::string var;
      size_t decl = 0;
      const char* what = "";
    };
    std::vector<Borrow> borrows;
    for (size_t k = fn.body_begin; k + 2 < fn.body_end; ++k) {
      // `dataplane::KvView v;` / `KvView v = ...` — non-owning spans
      // into a source's arena or backing buffer.
      if (is_ident(toks[k], "KvView") &&
          toks[k + 1].kind == TokKind::kIdent &&
          (is_punct(toks[k + 2], ";") || is_punct(toks[k + 2], "=") ||
           is_punct(toks[k + 2], "{"))) {
        borrows.push_back({toks[k + 1].text, k, "KvView"});
        continue;
      }
      // `auto s = arena.allocate(...)` / `arena_.copy(...)` — spans valid
      // only until the arena resets.
      if ((is_ident(toks[k + 1], "allocate") || is_ident(toks[k + 1], "copy")) &&
          (is_punct(toks[k], ".") || is_punct(toks[k], "->")) && k > fn.body_begin &&
          toks[k - 1].kind == TokKind::kIdent &&
          toks[k - 1].text.find("arena") != std::string::npos &&
          k + 2 < fn.body_end && is_punct(toks[k + 2], "(")) {
        // Walk back over `<recv>.allocate` to `<var> =`.
        size_t eq = k - 1;
        while (eq > fn.body_begin && !is_punct(toks[eq], "=") &&
               !is_punct(toks[eq], ";") && !is_punct(toks[eq], "{")) {
          --eq;
        }
        if (is_punct(toks[eq], "=") && eq > fn.body_begin &&
            toks[eq - 1].kind == TokKind::kIdent) {
          borrows.push_back({toks[eq - 1].text, eq - 1, "arena span"});
        }
      }
    }

    for (const Borrow& borrow : borrows) {
      bool flagged = false;
      for (const size_t await_at : awaits) {
        if (flagged || await_at <= borrow.decl) continue;
        bool statement_boundary = false;
        for (size_t u = await_at + 1; u < fn.body_end; ++u) {
          if (is_punct(toks[u], ";")) {
            statement_boundary = true;
            continue;
          }
          if (!statement_boundary) continue;  // same statement as the await
          if (is_ident(toks[u], borrow.var)) {
            out->push_back(
                {"coroutine-borrow", file.path, toks[u].line,
                 "`" + borrow.var + "` (" + borrow.what +
                     ", declared line " +
                     std::to_string(toks[borrow.decl].line) +
                     ") is used after a co_await at line " +
                     std::to_string(toks[await_at].line) +
                     "; borrowed memory may be gone after a suspension — "
                     "copy it out or re-materialize after resuming (rule "
                     "coroutine-borrow, docs/LINT.md)"});
            flagged = true;
            break;
          }
        }
      }
    }
  }
}

}  // namespace hmr::lint
