#include "lint/rules.h"

#include <cctype>
#include <cstddef>
#include <map>
#include <optional>

namespace hmr::lint {

namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// Index of the ')' matching the '(' at `open`, or npos.
size_t match_paren(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return std::string::npos;
}

// Index of the '(' matching the ')' at `close`, or npos.
size_t match_paren_back(const std::vector<Token>& toks, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (is_punct(toks[i], ")")) ++depth;
    if (is_punct(toks[i], "(") && --depth == 0) return i;
  }
  return std::string::npos;
}

// Whole-word occurrence of `word` in `line` starting at or after `from`.
size_t find_word(std::string_view line, std::string_view word, size_t from = 0) {
  const auto boundary = [](char c) {
    return !(std::isalnum(static_cast<unsigned char>(c)) || c == '_');
  };
  size_t pos = from;
  while ((pos = line.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || boundary(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || boundary(line[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string_view::npos;
}

std::string strip_spaces(std::string_view line) {
  std::string out;
  out.reserve(line.size());
  for (char c : line) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

// True when the identifier starting at s[start] is written `std::ident`
// (e.g. the `string` in `std::string(name)`), which can never be one of
// the repo's Status/Result functions.
bool std_qualified(std::string_view s, size_t start) {
  return start >= 5 && s.substr(start - 5, 5) == "std::";
}

}  // namespace

namespace {

// True when some entry of `qualified` is exactly `qualifier::name` or
// ends with `::qualifier::name` — i.e. the written qualification is a
// suffix of the declaration's full scope chain.
bool qualified_match(const std::set<std::string>& qualified,
                     const std::string& qualifier, const std::string& name) {
  const std::string suffix = qualifier + "::" + name;
  for (const std::string& q : qualified) {
    if (q == suffix) return true;
    if (q.size() > suffix.size() + 2 &&
        q.compare(q.size() - suffix.size(), suffix.size(), suffix) == 0 &&
        q.compare(q.size() - suffix.size() - 2, 2, "::") == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

void FunctionRegistry::finalize() {
  for (const auto& name : void_like_fns) {
    status_fns.erase(name);
    result_fns.erase(name);
  }
  for (const auto& name : qualified_void_fns) {
    qualified_status_fns.erase(name);
    qualified_result_fns.erase(name);
  }
}

bool FunctionRegistry::is_status_call(const std::string& name,
                                      const std::string& qualifier) const {
  if (!qualifier.empty()) {
    if (qualified_match(qualified_status_fns, qualifier, name)) return true;
    // A qualified void-like match is definitive: don't fall back to the
    // (aliased) bare name.
    if (qualified_match(qualified_void_fns, qualifier, name) ||
        qualified_match(qualified_result_fns, qualifier, name)) {
      return false;
    }
  }
  return is_status(name);
}

bool FunctionRegistry::is_result_call(const std::string& name,
                                      const std::string& qualifier) const {
  if (!qualifier.empty()) {
    if (qualified_match(qualified_result_fns, qualifier, name)) return true;
    if (qualified_match(qualified_void_fns, qualifier, name) ||
        qualified_match(qualified_status_fns, qualifier, name)) {
      return false;
    }
  }
  return is_result(name);
}

void collect_function_returns(const LexedFile& file, FunctionRegistry* reg) {
  const auto& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const bool is_status_tok = is_ident(toks[i], "Status");
    const bool is_result_tok = is_ident(toks[i], "Result");
    // Void-like returns feed the ambiguity filter: `void f(...)` and the
    // fire-and-forget coroutine form `sim::Task<> f(...)`.
    bool is_void_tok = is_ident(toks[i], "void");
    if (is_ident(toks[i], "Task") && i + 2 < toks.size() &&
        is_punct(toks[i + 1], "<") && is_punct(toks[i + 2], ">")) {
      is_void_tok = true;
    }
    if (!is_status_tok && !is_result_tok && !is_void_tok) continue;
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->") ||
                  is_ident(toks[i - 1], "class") ||
                  is_ident(toks[i - 1], "struct") ||
                  is_ident(toks[i - 1], "enum"))) {
      continue;
    }
    // `(void)` casts are not declarations.
    if (is_void_tok && i > 0 && is_punct(toks[i - 1], "(")) continue;
    size_t j = i + 1;
    if (is_result_tok || (is_void_tok && !is_ident(toks[i], "void"))) {
      // Require the template argument list: `Result<...>` / `Task<>`.
      if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "<")) ++depth;
        if (is_punct(toks[j], ">") && --depth == 0) break;
      }
      if (j >= toks.size()) continue;
      ++j;  // past the closing '>'
    }
    // Skip wrapper closers and decorations: `Task<Status>`, `Result<T>&&`.
    while (j < toks.size() &&
           (is_punct(toks[j], ">") || is_punct(toks[j], "&") ||
            is_punct(toks[j], "*") || is_ident(toks[j], "const"))) {
      ++j;
    }
    // Identifier chain, possibly qualified: `Disk::write`.
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    std::string name = toks[j].text;
    ++j;
    while (j + 1 < toks.size() && is_punct(toks[j], "::") &&
           toks[j + 1].kind == TokKind::kIdent) {
      name = toks[j + 1].text;
      j += 2;
    }
    if (j >= toks.size() || !is_punct(toks[j], "(")) continue;
    if (name == "operator" || name == "if" || name == "while" ||
        name == "for" || name == "return" || name == "switch") {
      continue;
    }
    if (is_status_tok) {
      reg->status_fns.insert(name);
    } else if (is_result_tok) {
      reg->result_fns.insert(name);
    } else {
      reg->void_like_fns.insert(name);
    }
  }
}

void check_determinism(const LexedFile& file, std::vector<Finding>* out) {
  struct Ban {
    const char* advice;
    bool needs_call;  // only flag when followed by '('
  };
  static const std::map<std::string, Ban, std::less<>> kBans = {
      {"unordered_map",
       {"iteration order is unspecified; use std::map (sorted, deterministic)",
        false}},
      {"unordered_set",
       {"iteration order is unspecified; use std::set (sorted, deterministic)",
        false}},
      {"unordered_multimap",
       {"iteration order is unspecified; use std::multimap", false}},
      {"unordered_multiset",
       {"iteration order is unspecified; use std::multiset", false}},
      {"random_device",
       {"OS entropy breaks replay; derive a named hmr::Rng stream "
        "(common/rng.h)",
        false}},
      {"mt19937",
       {"library RNG bypasses seed-stream derivation; use hmr::Rng "
        "(common/rng.h)",
        false}},
      {"mt19937_64",
       {"library RNG bypasses seed-stream derivation; use hmr::Rng "
        "(common/rng.h)",
        false}},
      {"default_random_engine",
       {"library RNG bypasses seed-stream derivation; use hmr::Rng "
        "(common/rng.h)",
        false}},
      // rand/srand/getenv are *call-time* hazards and moved to the
      // reachability-based transitive-determinism family (callgraph.h).
      {"system_clock",
       {"wall clock in sim-facing code; simulated time flows through "
        "sim::Engine::now()",
        false}},
      {"steady_clock",
       {"wall clock in sim-facing code; simulated time flows through "
        "sim::Engine::now()",
        false}},
      {"high_resolution_clock",
       {"wall clock in sim-facing code; simulated time flows through "
        "sim::Engine::now()",
        false}},
  };
  static const char* kBannedHeaders[] = {"<unordered_map>", "<unordered_set>",
                                         "<random>", "<chrono>"};

  const auto& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreproc) {
      if (t.text.find("include") == std::string::npos) continue;
      for (const char* header : kBannedHeaders) {
        if (t.text.find(header) != std::string::npos) {
          out->push_back({"determinism", file.path, t.line,
                          "#include " + std::string(header) +
                              " in sim-facing code; determinism bans this "
                              "header (see docs/TESTING.md)"});
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    const auto it = kBans.find(t.text);
    if (it == kBans.end()) continue;
    if (it->second.needs_call &&
        (i + 1 >= toks.size() || !is_punct(toks[i + 1], "("))) {
      continue;
    }
    // Member accesses (`x.rand()`) are a different function entirely.
    if (it->second.needs_call && i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;
    }
    out->push_back({"determinism", file.path, t.line,
                    "`" + t.text + "`: " + it->second.advice});
  }
}

void check_thread_discipline(const LexedFile& file,
                             std::vector<Finding>* out) {
  // Flagged only when `std::`-qualified, so a field or local that merely
  // shares a name (`mutex`, `promise` from the coroutine machinery)
  // stays silent; the header bans catch unqualified use via
  // using-declarations anyway.
  static const std::set<std::string, std::less<>> kBannedTypes = {
      "thread",         "jthread",
      "mutex",          "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "future",         "shared_future",
      "promise",        "packaged_task",
      "async",          "latch",
      "barrier",        "counting_semaphore",
      "binary_semaphore"};
  static const char* kBannedHeaders[] = {"<thread>", "<mutex>",
                                         "<shared_mutex>",
                                         "<condition_variable>", "<future>",
                                         "<latch>", "<barrier>",
                                         "<semaphore>"};
  constexpr const char* kAdvice =
      "; shared mutable state belongs to the WorkerPool in sim/parallel.h — "
      "use co_await engine.parallel(host, fn) and stage effects through "
      "ParallelEffects (rule thread-discipline, docs/TESTING.md)";

  const auto& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreproc) {
      if (t.text.find("include") == std::string::npos) continue;
      for (const char* header : kBannedHeaders) {
        if (t.text.find(header) != std::string::npos) {
          out->push_back({"thread-discipline", file.path, t.line,
                          "#include " + std::string(header) + kAdvice});
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || !kBannedTypes.count(t.text)) continue;
    if (i < 2 || !is_punct(toks[i - 1], "::") ||
        toks[i - 2].kind != TokKind::kIdent || toks[i - 2].text != "std") {
      continue;
    }
    out->push_back({"thread-discipline", file.path, t.line,
                    "`std::" + t.text + "`" + kAdvice});
  }
}

namespace {

// Looks backward from `use_line` for `auto r = <result-call>;`-style
// bindings. Returns the binding line when `r` visibly holds a
// Result<T>, nullopt when its type can't be established (in which case
// the access rules stay silent rather than guess).
std::optional<int> result_binding_line(const LexedFile& file,
                                       const FunctionRegistry& reg,
                                       const std::string& r, int use_line) {
  const int lo = use_line - 60 < 1 ? 1 : use_line - 60;
  for (int ln = use_line; ln >= lo; --ln) {
    const std::string& line = file.lines[size_t(ln - 1)];
    const size_t pos = find_word(line, r);
    if (pos == std::string_view::npos) continue;
    // Want `r =` (plain assignment, not ==, +=, ...).
    size_t eq = pos + r.size();
    while (eq < line.size() && std::isspace(static_cast<unsigned char>(line[eq]))) {
      ++eq;
    }
    if (eq >= line.size() || line[eq] != '=') continue;
    if (eq + 1 < line.size() && line[eq + 1] == '=') continue;
    if (ln == use_line) continue;  // binding and use on one line: assume fine
    // Does the right-hand side call a Result-returning function?
    std::string_view rhs = std::string_view(line).substr(eq + 1);
    std::string word;
    for (size_t k = 0; k <= rhs.size(); ++k) {
      const char c = k < rhs.size() ? rhs[k] : '\0';
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        word.push_back(c);
      } else {
        if (!word.empty() && c == '(' && reg.is_result(word) &&
            !std_qualified(rhs, k - word.size())) {
          return ln;
        }
        word.clear();
      }
    }
    return std::nullopt;  // bound, but not visibly from a Result call
  }
  return std::nullopt;
}

bool guard_between(const LexedFile& file, const std::string& r, int from_line,
                   int to_line) {
  for (int ln = from_line; ln <= to_line; ++ln) {
    const std::string& line = file.lines[size_t(ln - 1)];
    size_t pos = 0;
    while ((pos = find_word(line, r, pos)) != std::string_view::npos) {
      const std::string_view after = std::string_view(line).substr(pos + r.size());
      if (after.rfind(".ok(", 0) == 0) return true;
      if (pos > 0 && line[pos - 1] == '!') return true;
      pos += r.size();
    }
    const std::string dense = strip_spaces(line);
    if (dense.find("if(" + r + ")") != std::string::npos) return true;
    if (dense.find("while(" + r + ")") != std::string::npos) return true;
  }
  return false;
}

void flag_value_access(const LexedFile& file, const FunctionRegistry& reg,
                       const std::string& r, int use_line, const char* how,
                       std::vector<Finding>* out) {
  const auto binding = result_binding_line(file, reg, r, use_line);
  if (!binding) return;  // type unknown; stay silent
  if (guard_between(file, r, *binding, use_line)) return;
  out->push_back(
      {"status-discipline", file.path, use_line,
       std::string("Result `") + r + "` is " + how +
           " without a preceding ok() check (bound at line " +
           std::to_string(*binding) +
           "); check it, use value_or(), or suppress with "
           "lint:ignore(status-discipline): <why>"});
}

}  // namespace

void check_status_discipline(const LexedFile& file,
                             const FunctionRegistry& reg,
                             bool check_value_guard,
                             std::vector<Finding>* out) {
  const auto& toks = file.tokens;

  // --- discarded call results --------------------------------------------
  for (size_t i = 0; i < toks.size(); ++i) {
    const bool at_start =
        i == 0 || toks[i - 1].kind == TokKind::kPreproc ||
        is_punct(toks[i - 1], ";") || is_punct(toks[i - 1], "{") ||
        is_punct(toks[i - 1], "}");
    if (!at_start) continue;
    size_t k = i;
    bool laundered = false;
    if (k + 2 < toks.size() && is_punct(toks[k], "(") &&
        is_ident(toks[k + 1], "void") && is_punct(toks[k + 2], ")")) {
      laundered = true;
      k += 3;
    }
    if (k < toks.size() && is_ident(toks[k], "co_await")) ++k;
    if (k >= toks.size() || toks[k].kind != TokKind::kIdent) continue;
    // `std::`-qualified calls are never repo Status/Result functions
    // (std::remove returns int); skip the chain to dodge name aliasing.
    if (is_ident(toks[k], "std") && k + 1 < toks.size() &&
        is_punct(toks[k + 1], "::")) {
      continue;
    }

    // Walk an `a.b().c(...)`-shaped chain; remember the last called name
    // and, for `A::f(...)` shapes, the written qualifier — it lets the
    // registry resolve names whose bare form is ambiguous.
    std::string last_ident = toks[k].text;
    std::string last_qualifier;
    std::string called;
    std::string called_qualifier;
    ++k;
    bool ended_with_semicolon = false;
    while (k < toks.size()) {
      if (is_punct(toks[k], ".") || is_punct(toks[k], "->") ||
          is_punct(toks[k], "::")) {
        if (k + 1 >= toks.size() || toks[k + 1].kind != TokKind::kIdent) break;
        if (is_punct(toks[k], "::")) {
          last_qualifier = last_qualifier.empty()
                               ? last_ident
                               : last_qualifier + "::" + last_ident;
        } else {
          last_qualifier.clear();
        }
        last_ident = toks[k + 1].text;
        k += 2;
        continue;
      }
      if (is_punct(toks[k], "(")) {
        const size_t close = match_paren(toks, k);
        if (close == std::string::npos) break;
        called = last_ident;
        called_qualifier = last_qualifier;
        last_qualifier.clear();
        k = close + 1;
        continue;
      }
      if (is_punct(toks[k], ";")) {
        ended_with_semicolon = true;
      }
      break;
    }
    if (!ended_with_semicolon || called.empty()) continue;
    if (!reg.is_checked_call(called, called_qualifier)) continue;
    const char* kind =
        reg.is_status_call(called, called_qualifier) ? "Status" : "Result";
    out->push_back(
        {"status-discipline", file.path, toks[i].line,
         std::string("result of `") + called + "` (" + kind + ") is " +
             (laundered ? "discarded through a (void) cast" : "silently discarded") +
             "; handle it, wrap it in HMR_RETURN_IF_ERROR, or suppress "
             "with lint:ignore(status-discipline): <why>"});
  }

  if (!check_value_guard) return;

  // --- .value() / deref without a visible ok() check ---------------------
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!(is_punct(toks[i], ".") && is_ident(toks[i + 1], "value") &&
          is_punct(toks[i + 2], "(") && is_punct(toks[i + 3], ")"))) {
      continue;
    }
    if (i == 0) continue;
    const Token& recv = toks[i - 1];
    if (recv.kind == TokKind::kIdent) {
      flag_value_access(file, reg, recv.text, toks[i].line,
                        "accessed with .value()", out);
      continue;
    }
    if (!is_punct(recv, ")")) continue;
    const size_t open = match_paren_back(toks, i - 1);
    if (open == std::string::npos || open == 0) continue;
    // `std::move(r).value()` guards like `r.value()`.
    if (open >= 1 && is_ident(toks[open - 1], "move") && open + 2 == i - 1 &&
        toks[open + 1].kind == TokKind::kIdent) {
      flag_value_access(file, reg, toks[open + 1].text, toks[i].line,
                        "accessed with .value()", out);
      continue;
    }
    // `f(...).value()`: a fresh Result can never have been ok()-checked.
    if (open >= 3 && is_punct(toks[open - 2], "::") &&
        is_ident(toks[open - 3], "std")) {
      continue;  // std::f(...) is not a repo Result function
    }
    if (toks[open - 1].kind == TokKind::kIdent &&
        reg.is_result(toks[open - 1].text)) {
      out->push_back(
          {"status-discipline", file.path, toks[i].line,
           "`.value()` called directly on the Result returned by `" +
               toks[open - 1].text +
               "`; bind it and check ok() first (a failed Result aborts "
               "the process), or suppress with "
               "lint:ignore(status-discipline): <why>"});
    }
  }

  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    // `*r` where r visibly holds a Result — but `*p = ...` is a write
    // through a pointer (an assignment target), not a Result read.
    if (is_punct(toks[i], "*") && toks[i + 1].kind == TokKind::kIdent &&
        i > 0 &&
        (is_punct(toks[i - 1], "(") || is_punct(toks[i - 1], ",") ||
         is_punct(toks[i - 1], "=") || is_punct(toks[i - 1], "{") ||
         is_punct(toks[i - 1], ";") || is_ident(toks[i - 1], "return")) &&
        !(i + 2 < toks.size() && is_punct(toks[i + 2], "="))) {
      flag_value_access(file, reg, toks[i + 1].text, toks[i].line,
                        "dereferenced", out);
    }
    // `r->field` where r visibly holds a Result.
    if (toks[i].kind == TokKind::kIdent && is_punct(toks[i + 1], "->")) {
      flag_value_access(file, reg, toks[i].text, toks[i].line,
                        "dereferenced with ->", out);
    }
  }
}

}  // namespace hmr::lint
