#include "rdmashuffle/engine.h"

#include <algorithm>

#include "common/crc32.h"
#include "dataplane/merger.h"
#include "mapred/integrity.h"
#include "mapred/recovery.h"
#include "sim/fault.h"
#include "sim/trace.h"

namespace hmr::rdmashuffle {

using dataplane::KvPair;
using mapred::KvBatch;
using mapred::MapOutputInfo;
using mapred::TaskTrackerState;

namespace {

// Built outside the coroutine bodies: GCC 12 emits a spurious -Wrestrict
// for char* + std::string&& chains inlined into coroutine frames.
std::string map_cache_key(std::uint32_t job_id, std::uint32_t map_id) {
  std::string key = "j";
  key += std::to_string(job_id);
  key += "_map_";
  key += std::to_string(map_id);
  return key;
}

}  // namespace

RdmaShuffleOptions RdmaShuffleOptions::osu_ib(const Conf& conf) {
  RdmaShuffleOptions opt;
  opt.use_cache = conf.get_bool(mapred::kCachingEnabled, true);
  opt.cache_bytes = conf.get_bytes(mapred::kCacheBytes, opt.cache_bytes);
  opt.packet_bytes =
      conf.get_bytes(mapred::kRdmaPacketBytes, opt.packet_bytes);
  opt.kv_per_packet = std::uint64_t(
      conf.get_int(mapred::kRdmaKvPerPacket, 0));  // byte-budgeted
  opt.responder_threads =
      int(conf.get_int(mapred::kResponderThreads, opt.responder_threads));
  opt.overlap_reduce = conf.get_bool(mapred::kOverlapReduce, true);
  opt.responder_deadline = conf.get_double(mapred::kResponderDeadlineSec,
                                           opt.responder_deadline);
  if (conf.get_string(mapred::kRdmaRendezvous, "read") == "write") {
    opt.ucr.rendezvous = ucr::RendezvousMode::kWrite;
  }
  return opt;
}

RdmaShuffleOptions RdmaShuffleOptions::hadoop_a(const Conf& conf) {
  RdmaShuffleOptions opt;
  // Per SC'11 and §III-C: verbs shuffle and levitated merge, but no
  // TaskTracker cache and a fixed number of kv pairs per packet that
  // ignores pair size.
  opt.use_cache = false;
  opt.packet_bytes = 0;  // unlimited; the kv count is the budget
  opt.kv_per_packet =
      std::uint64_t(conf.get_int(mapred::kRdmaKvPerPacket, 1024));
  opt.responder_threads =
      int(conf.get_int(mapred::kResponderThreads, opt.responder_threads));
  opt.overlap_reduce = true;
  opt.pipelined_refill = false;  // levitated merge fetches on demand
  opt.charge_by_count = true;    // buffers provisioned by pair count
  opt.responder_deadline = conf.get_double(mapred::kResponderDeadlineSec,
                                           opt.responder_deadline);
  return opt;
}

// ---------------------------------------------------------------------
// TaskTracker side
// ---------------------------------------------------------------------

sim::Task<> RdmaShuffleEngine::start(JobRuntime& job) {
  // Rebound per job: a reused engine instance must never hold handles
  // into a previous run's registry.
  metric_ = std::make_unique<OsuMetrics>(job.engine.metrics());
  daemons_ = std::make_unique<sim::WaitGroup>(job.engine);
  for (auto& tracker : job.trackers) {
    const int host_id = tracker->host->id();
    auto service = std::make_unique<TrackerService>(job.engine,
                                                    options_.cache_bytes);
    // All trackers mirror into one registry, so the cache.* counters
    // aggregate cluster-wide; the used-bytes gauge keeps a high-water max.
    service->cache.attach_metrics(job.engine.metrics(), "cache.");
    service->listener = std::make_unique<ucr::Listener>(
        job.network, *tracker->host, options_.ucr);
    daemons_->add();
    job.engine.spawn(rdma_listener(job, *service));
    for (int r = 0; r < options_.responder_threads; ++r) {
      daemons_->add();
      job.engine.spawn(rdma_responder(job, *service, host_id));
    }
    for (int p = 0; p < options_.prefetch_daemons; ++p) {
      daemons_->add();
      job.engine.spawn(prefetcher(job, *service, host_id));
    }
    services_.emplace(host_id, std::move(service));
  }
  co_return;
}

sim::Task<> RdmaShuffleEngine::rdma_listener(JobRuntime& job,
                                             TrackerService& service) {
  while (auto endpoint = co_await service.listener->accept()) {
    daemons_->add();
    ucr::Endpoint& ref = *endpoint;
    service.endpoints.push_back(std::move(endpoint));
    job.engine.spawn(rdma_receiver(job, service, ref));
  }
  daemons_->done();
}

sim::Task<> RdmaShuffleEngine::rdma_receiver(JobRuntime& job,
                                             TrackerService& service,
                                             ucr::Endpoint& endpoint) {
  while (auto msg = co_await endpoint.recv()) {
    HMR_CHECK(msg->tag == kTagDataRequest && msg->payload != nullptr);
    auto req = DataRequest::decode(*msg->payload);
    if (!req.ok()) {
      // Malformed frame: drop it rather than crash the responder; the
      // copier's watchdog re-issues the request.
      job.metric.malformed_msgs.add();
      continue;
    }
    PendingRequest pending{std::move(req).value(), &endpoint,
                           job.engine.now()};
    co_await service.request_queue.send(std::move(pending));
  }
  // Peer closed: complete the symmetric close so the peer's inbox drains.
  endpoint.close();
  daemons_->done();
}

sim::Task<> RdmaShuffleEngine::rdma_responder(JobRuntime& job,
                                              TrackerService& service,
                                              int host_id) {
  while (auto pending = co_await service.request_queue.recv()) {
    if (options_.responder_deadline > 0 &&
        job.engine.now() - pending->enqueued_at >
            options_.responder_deadline) {
      // Orphaned request: the copier that sent it timed out long ago and
      // has retried elsewhere. Serving it would waste responder and disk
      // time on an answer nobody is waiting for.
      metric_->responder_evicted.add();
      continue;
    }
    metric_->queue_wait.record(job.engine.now() - pending->enqueued_at);
    co_await respond(job, service, host_id, std::move(*pending));
  }
  daemons_->done();
}

sim::Task<> RdmaShuffleEngine::respond(JobRuntime& job,
                                       TrackerService& service, int host_id,
                                       PendingRequest pending) {
  const DataRequest& req = pending.request;
  // Injected faults (sim/fault.h): a dead tracker's shuffle service stops
  // answering entirely; a faulty one drops or stalls individual
  // responses. Copiers recover via timeout/retry/blacklist.
  if (job.spec.faults != nullptr) {
    sim::FaultPlan& faults = *job.spec.faults;
    if (faults.tracker_dead(host_id, job.engine.now())) {
      job.metric.fault_dropped_requests.add();
      co_return;
    }
    double stall_seconds = 0;
    switch (faults.response_fate(host_id, &stall_seconds)) {
      case sim::FaultPlan::ResponseFate::kDrop:
        job.metric.fault_dropped_responses.add();
        co_return;
      case sim::FaultPlan::ResponseFate::kStall:
        job.metric.fault_stalled_responses.add();
        co_await job.engine.delay(stall_seconds);
        break;
      case sim::FaultPlan::ResponseFate::kDeliver:
        break;
    }
  }
  TaskTrackerState& tracker = job.tracker_for_host(host_id);
  auto it = tracker.map_outputs.find({int(req.job_id), int(req.map_id)});
  HMR_CHECK_MSG(it != tracker.map_outputs.end(),
                "responder asked for unknown map output");
  const MapOutputInfo& info = it->second;
  const auto& entry = info.output->index.at(int(req.reduce_id));

  // PrefetchCache lookup (§III-B3); a miss serves from disk immediately
  // and re-queues the output for caching with raised priority.
  const std::string cache_key = map_cache_key(req.job_id, req.map_id);
  bool from_disk = true;
  std::shared_ptr<const dataplane::MapOutput> source = info.output;
  if (options_.use_cache) {
    if (auto hit = service.cache.get(cache_key)) {
      if (tracker.host->fs().roll_cache_corrupt() && job.integrity.enabled) {
        // Bit-rot in the cached copy, caught by the segment checksum
        // before anything is sent: evict the poisoned entry and serve
        // this request from disk (the on-disk copy verified clean at
        // spill time), then re-cache from the clean source.
        mapred::count_checksum_mismatch(job);
        ++job.result.cache_integrity_evictions;
        metric_->cache_integrity_evictions.add();
        (void)service.cache.erase(cache_key);
        (void)service.prefetch_queue.try_send(int(req.map_id) | (1 << 24));
      } else {
        source = std::move(hit);
        from_disk = false;
      }
    } else {
      (void)service.prefetch_queue.try_send(int(req.map_id) | (1 << 24));
    }
  }

  auto partition = source->partition_bytes(int(req.reduce_id));
  HMR_CHECK(req.cursor_real <= partition.size());
  dataplane::SegmentReader reader(source->data,
                                  partition.subspan(req.cursor_real));
  std::uint64_t n_pairs = 0;
  const auto chunk = reader.take_chunk(
      req.max_pairs == 0 ? UINT64_MAX : req.max_pairs,
      req.max_real_bytes == 0 ? UINT64_MAX : req.max_real_bytes, &n_pairs);

  if (from_disk && !chunk.empty()) {
    const double dt0 = job.engine.now();
    auto view = co_await mapred::read_range_verified(
        job, *tracker.host, info.local_path, entry.offset + req.cursor_real,
        chunk.size());
    if (!view.ok()) {
      // The on-disk map output is unreadable past bounded recovery
      // (at-rest rot or a persistent IO fault). Drop the request: the
      // copier's watchdog times out, blacklists this tracker, and
      // re-executes the map on a healthy one (mapred/recovery.h).
      job.metric.mapout_unserved.add();
      co_return;
    }
    metric_->respond_disk.record(job.engine.now() - dt0);
  }

  DataResponse header;
  header.job_id = req.job_id;
  header.map_id = req.map_id;
  header.reduce_id = req.reduce_id;
  header.cursor_real = req.cursor_real;
  header.n_pairs = n_pairs;
  header.chunk_real_bytes = chunk.size();
  // Derived from the spill-time segment checksums, not recomputed from
  // the platters: the copier verifies against what the mapper wrote.
  // The scan itself runs as a parallel work event (sim/parallel.h).
  co_await job.engine.parallel(
      tracker.host->id(), [&](sim::ParallelEffects& effects) {
        header.chunk_crc = crc32c(chunk);
        effects.instant(tracker.host->name(), "crc",
                        "respond_crc_m" + std::to_string(req.map_id));
      });
  header.eof = req.cursor_real + chunk.size() >= partition.size();

  Bytes body = header.encode_header();
  body.insert(body.end(), chunk.begin(), chunk.end());
  const auto modeled =
      kResponseHeaderBytes +
      static_cast<std::uint64_t>(double(chunk.size()) * info.scale);
  job.result.shuffled_modeled_bytes +=
      static_cast<std::uint64_t>(double(chunk.size()) * info.scale);
  if (pending.endpoint->closed()) {
    // The copier timed out, recovered elsewhere, and tore this
    // connection down while the response was stalled or reading disk.
    metric_->respond_orphaned.add();
    co_return;
  }
  const double st0 = job.engine.now();
  co_await pending.endpoint->send(net::Message::share(
      std::make_shared<const Bytes>(std::move(body)), modeled,
      kTagDataResponse));
  metric_->respond_send.record(job.engine.now() - st0);
}

sim::Task<> RdmaShuffleEngine::prefetcher(JobRuntime& job,
                                          TrackerService& service,
                                          int host_id) {
  TaskTrackerState& tracker = job.tracker_for_host(host_id);
  while (auto tagged = co_await service.prefetch_queue.recv()) {
    const int map_id = *tagged & 0xffffff;
    const int priority = *tagged >> 24;
    const std::string cache_key = map_cache_key(std::uint32_t(job.job_id),
                                                std::uint32_t(map_id));
    if (service.cache.contains(cache_key)) {
      service.cache.boost(cache_key, priority);
      continue;
    }
    // Anti-thrash: never fetch the same output concurrently, and give up
    // re-caching outputs the cache keeps evicting.
    if (service.prefetch_inflight.contains(map_id)) continue;
    if (service.prefetch_attempts[map_id] >=
        1 + options_.max_recache_attempts) {
      continue;
    }
    ++service.prefetch_attempts[map_id];
    service.prefetch_inflight.insert(map_id);
    struct InflightGuard {
      TrackerService& service;
      int map_id;
      ~InflightGuard() { service.prefetch_inflight.erase(map_id); }
    } inflight_guard{service, map_id};
    auto it = tracker.map_outputs.find({job.job_id, map_id});
    if (it == tracker.map_outputs.end()) continue;
    const MapOutputInfo& info = it->second;
    const auto modeled = static_cast<std::uint64_t>(
        double(info.output->total_bytes()) * info.scale);
    if (modeled > service.cache.capacity_bytes()) continue;
    if (job.engine.now() - info.created_at < options_.page_cache_window) {
      // The map just wrote this file: it is still in the page cache, so
      // caching it is a memory copy, not a platter read.
      auto core = co_await sim::hold(tracker.host->cpu());
      co_await job.engine.delay(double(modeled) / options_.page_cache_bw);
    } else {
      // Verified fill: a cache loaded from a rotten platter read would
      // poison every subsequent hit. Unreadable outputs just stay
      // uncached — responders fall back to (verified) disk reads.
      auto view = co_await mapred::read_file_verified(job, *tracker.host,
                                                      info.local_path);
      if (!view.ok()) continue;
    }
    (void)service.cache.put(cache_key, info.output, modeled, priority);
  }
  daemons_->done();
}

void RdmaShuffleEngine::on_disk_pressure(JobRuntime& job, int host_id) {
  auto it = services_.find(host_id);
  if (it == services_.end()) return;
  dataplane::PrefetchCache& cache = it->second->cache;
  if (cache.entries() == 0) return;
  // A full disk on this host: the cached map outputs are the only
  // storage-adjacent memory the engine holds there, so shed them all and
  // let the spill retry. Dropped entries re-cache on demand later.
  job.engine.metrics()
      .counter("cache.pressure.evictions")
      .add(std::int64_t(cache.entries()));
  cache.clear();
}

void RdmaShuffleEngine::on_map_finished(JobRuntime& job, int map_id,
                                        int host_id) {
  (void)job;
  if (!options_.use_cache) return;
  auto it = services_.find(host_id);
  if (it == services_.end()) return;
  // Priority 0 speculative prefetch; dropped if the queue is full.
  (void)it->second->prefetch_queue.try_send(map_id);
}

// ---------------------------------------------------------------------
// ReduceTask side: RdmaCopier + streaming priority-queue merge
// ---------------------------------------------------------------------

sim::Task<ucr::Endpoint*> RdmaShuffleEngine::ensure_client_endpoint(
    JobRuntime& job, Host& host, std::shared_ptr<CopierState> state,
    int server) {
  // Connect once per TaskTracker (guarded against concurrent dials).
  auto lock = co_await sim::hold(state->conn_lock);
  auto it = state->conns.find(server);
  if (it != state->conns.end()) co_return it->second;
  auto ep = co_await ucr::connect(job.network, host,
                                  *services_.at(server)->listener,
                                  options_.ucr);
  ucr::Endpoint* endpoint = ep.get();
  state->conns.emplace(server, endpoint);
  client_endpoints_.push_back(std::move(ep));
  // Response router for this connection: demultiplexes onto the per-map
  // stream event channels. A response for an unrouted map is a stale
  // duplicate of a request its copier already gave up on — dropped, not
  // fatal (faults can stall responses past the stream's lifetime).
  daemons_->add();
  job.engine.spawn([](RdmaShuffleEngine& self, JobRuntime& job,
                      ucr::Endpoint& ep,
                      std::shared_ptr<CopierState> state) -> sim::Task<> {
    while (auto msg = co_await ep.recv()) {
      HMR_CHECK(msg->tag == kTagDataResponse);
      ByteReader r(*msg->payload);
      const auto header = DataResponse::decode_header(r);
      if (!header.ok()) {
        job.metric.malformed_msgs.add();
        continue;
      }
      auto route = state->routes.find(int(header->map_id));
      if (route == state->routes.end()) {
        job.metric.fetch_stale_dropped.add();
        continue;
      }
      mapred::FetchEvent event;
      event.msg = std::move(*msg);
      // The events channel is sized so delivery never parks the router:
      // each stream has at most one outstanding request plus a bounded
      // number of stale duplicates and watchdog markers.
      HMR_CHECK(route->second->events.try_send(std::move(event)));
    }
    self.daemons_->done();
  }(*this, job, *endpoint, state));
  co_return endpoint;
}

sim::Task<> RdmaShuffleEngine::copier_driver(
    JobRuntime& job, int reduce_id, Host& host,
    std::shared_ptr<CopierState> state, std::shared_ptr<MapStream> stream,
    int map_id, double kv_inflation, std::uint64_t max_record_modeled,
    sim::WaitGroup& done) {
  co_await job.map_done.at(map_id)->wait();
  if (stream->cancelled) {
    // The reduce attempt was killed while this stream waited for its
    // map; nothing was routed or fetched yet.
    stream->chunks.close();
    done.done();
    co_return;
  }
  if (job.tracker_blacklisted(job.maps.at(map_id).ran_on)) {
    // The serving tracker was blacklisted before this stream started:
    // wait for (or trigger) re-execution on a healthy tracker.
    co_await job.ensure_fetchable(map_id);
  }
  int server = job.maps.at(map_id).ran_on;
  ucr::Endpoint* endpoint =
      co_await ensure_client_endpoint(job, host, state, server);
  auto rng = job.engine.make_rng("shuffle.retry.r" +
                                 std::to_string(reduce_id) + ".m" +
                                 std::to_string(map_id));
  bool refetching = false;

  // One request/response exchange for this stream. Stale duplicates
  // (cursor mismatch) are discarded; nullopt means the watchdog fired
  // before the matching response arrived.
  auto exchange =
      [&](const DataRequest& req) -> sim::Task<std::optional<net::Message>> {
    Bytes wire = req.encode();
    net::Message request =
        net::Message::data(std::move(wire), 1.0, kTagDataRequest)
            .with_modeled(kRequestWireBytes);
    job.metric.fetch_requests.add();
    co_await endpoint->send(std::move(request));
    const std::uint64_t timer_id = ++stream->timer_seq;
    if (job.retry.fetch_timeout > 0) {
      job.engine.spawn(mapred::fetch_watchdog(job.engine, stream,
                                              stream->events,
                                              job.retry.fetch_timeout,
                                              timer_id));
    }
    while (true) {
      auto event = co_await stream->events.recv();
      HMR_CHECK(event.has_value());  // the events channel is never closed
      if (event->msg.has_value()) {
        ByteReader r(*event->msg->payload);
        const auto header = DataResponse::decode_header(r);
        if (!header.ok() || r.remaining() < header->chunk_real_bytes) {
          // Malformed header or short body: drop it like a stale
          // duplicate and let the watchdog/retry path re-fetch.
          job.metric.malformed_msgs.add();
          continue;
        }
        if (header->cursor_real == req.cursor_real) {
          if (job.integrity.enabled && header->chunk_real_bytes > 0) {
            // End-to-end check: the chunk CRC was computed from the
            // spill-time segment checksums; recompute over the received
            // body and drop the frame on mismatch (the watchdog/retry
            // path re-fetches it, like any malformed message).
            ByteReader body = r;
            const auto records = body.bytes(header->chunk_real_bytes);
            HMR_CHECK(records.ok());
            co_await mapred::charge_verify_cpu(
                job, host,
                static_cast<std::uint64_t>(
                    double(header->chunk_real_bytes) * job.data_scale));
            std::uint32_t got_crc = 0;
            co_await job.engine.parallel(
                host.id(), [&](sim::ParallelEffects& effects) {
                  got_crc = crc32c(*records);
                  effects.instant(host.name(), "crc",
                                  "verify_crc_m" + std::to_string(req.map_id));
                });
            if (got_crc != header->chunk_crc) {
              job.metric.malformed_msgs.add();
              continue;
            }
          }
          co_return std::move(event->msg);
        }
        job.metric.fetch_stale_dropped.add();
        continue;
      }
      if (event->timer_id == timer_id) co_return std::nullopt;
      // Watchdog of an already-answered request: ignore.
    }
  };

  // exchange() with recovery: capped exponential backoff between
  // retries; once the serving tracker crosses the blacklist threshold
  // the fetch relocates to a re-executed attempt and resumes from the
  // SAME cursor — deterministic map execution makes the rerun's
  // partition byte-identical, so no delivered chunk is ever re-merged.
  auto exchange_with_retry =
      [&](const DataRequest& req) -> sim::Task<net::Message> {
    int attempt = 0;
    while (true) {
      auto response = co_await exchange(req);
      if (response.has_value()) {
        job.report_fetch_success(server);
        co_return std::move(*response);
      }
      ++attempt;
      ++job.result.fetch_timeouts;
      job.metric.fetch_timeouts.add();
      if (auto* tracer = job.engine.tracer()) {
        tracer->instant(host.name(), "fault",
                        "fetch_timeout map_" + std::to_string(map_id));
      }
      HMR_CHECK_MSG(attempt <= job.retry.max_retries,
                    "fetch of map " + std::to_string(map_id) +
                        " exceeded " + mapred::kFetchMaxRetries);
      (void)job.report_fetch_failure(server);
      if (job.tracker_blacklisted(server)) {
        co_await job.ensure_fetchable(map_id);
        const int relocated = job.maps.at(map_id).ran_on;
        if (relocated != server) {
          server = relocated;
          endpoint =
              co_await ensure_client_endpoint(job, host, state, server);
          refetching = true;
        }
      } else {
        co_await job.engine.delay(job.retry.backoff(attempt, rng));
      }
      ++job.result.fetch_retries;
      job.metric.fetch_retries.add();
    }
  };

  state->routes.emplace(map_id, stream.get());
  std::uint64_t cursor = 0;
  const std::uint64_t max_real_bytes =
      options_.packet_bytes == 0
          ? 0
          : job.real_from_modeled(options_.packet_bytes);
  bool first_request = true;
  while (true) {
    // Abandon between exchanges once the attempt is killed (the watcher
    // pulses `demand` so waits here don't outlive the race); any chunk
    // already sent is drained — and its memory charge released — by the
    // merge's cancellation drain.
    if (stream->cancelled) break;
    if (!first_request && !options_.pipelined_refill && !stream->urgent) {
      // Network-levitated merge: wait until the merge actually needs
      // the next packet of this segment.
      co_await stream->demand.wait();
      if (stream->cancelled) break;
    }
    first_request = false;

    // Provision the receive buffer *before* fetching (pre-allocated
    // buffers): byte-budgeted engines reserve the packet size,
    // fixed-count engines reserve count x largest record — the
    // §IV-C pathology. The stream the merge is blocked on bypasses
    // the wait (uncharged emergency buffer) so memory pressure
    // serializes fetches onto the merge's critical path instead of
    // deadlocking it.
    const std::uint64_t count_budget =
        options_.kv_per_packet == 0
            ? 0
            : std::max<std::uint64_t>(
                  1, std::uint64_t(double(options_.kv_per_packet) /
                                   kv_inflation));
    std::uint64_t charge = options_.charge_by_count && count_budget > 0
                               ? count_budget * max_record_modeled
                               : options_.packet_bytes;
    if (charge == 0) charge = max_record_modeled;
    charge =
        std::min<std::uint64_t>(charge, std::uint64_t(state->mem.capacity()));
    bool charged = state->mem.try_acquire(std::int64_t(charge));
    if (!charged && !stream->urgent) {
      // Buffers are full: degrade to on-demand fetching — sleep until
      // the merge actually blocks on this stream, then deliver as an
      // uncharged emergency chunk (or charged, if memory freed up).
      co_await stream->demand.wait();
      if (stream->cancelled) break;  // no charge held yet
      charged = state->mem.try_acquire(std::int64_t(charge));
    }

    DataRequest req;
    req.job_id = std::uint32_t(job.job_id);
    req.map_id = std::uint32_t(map_id);
    req.reduce_id = std::uint32_t(reduce_id);
    req.cursor_real = cursor;
    // kv-count budgets are in real-world pairs; each carried pair
    // stands for kv_inflation of them (mapred::kKvInflation).
    req.max_pairs = count_budget;
    req.max_real_bytes = max_real_bytes;
    const double rt0 = job.engine.now();
    net::Message response = co_await exchange_with_retry(req);
    if (!charged) {
      // Over-budget segment: the merge had no room to keep this
      // buffer resident, so an earlier delivery was dropped and the
      // packet is fetched again now that the merge demands it —
      // the levitated-merge thrash of fixed-count buffers (§IV-C).
      net::Message again = co_await exchange_with_retry(req);
      response = std::move(again);
    }
    metric_->fetch_rtt.record(job.engine.now() - rt0);
    ByteReader r(*response.payload);
    // exchange() only returns messages whose header decoded and whose
    // body length checked out, so failure here is an engine bug.
    const auto decoded = DataResponse::decode_header(r);
    HMR_CHECK(decoded.ok());
    const DataResponse& header = *decoded;
    auto records = r.bytes(header.chunk_real_bytes);
    HMR_CHECK(records.ok());
    auto pairs = dataplane::decode_run(records.value());
    HMR_CHECK(pairs.ok());
    cursor += header.chunk_real_bytes;
    if (refetching) {
      job.result.refetched_modeled_bytes += static_cast<std::uint64_t>(
          double(header.chunk_real_bytes) * job.data_scale);
    }

    StreamChunk chunk;
    chunk.pairs = std::move(pairs.value());
    chunk.mem_charge = charged ? charge : 0;
    co_await stream->chunks.send(std::move(chunk));
    if (header.eof) break;
  }
  stream->chunks.close();
  state->routes.erase(map_id);
  done.done();
}

sim::Task<> RdmaShuffleEngine::fetch_and_merge(JobRuntime& job,
                                               int reduce_id, Host& host,
                                               KvSink& sink,
                                               mapred::TaskAttempt* attempt) {
  const auto cancelled = [attempt] {
    return attempt != nullptr && attempt->kill_requested;
  };
  const std::uint64_t mem_bytes = job.spec.conf.get_bytes(
      mapred::kShuffleBufferBytes, mapred::kDefaultShuffleBufferBytes);
  auto state = std::make_shared<CopierState>(job.engine, mem_bytes);
  // Real-world pairs per carried pair (see mapred::kKvInflation).
  const double kv_inflation =
      job.spec.conf.get_double(mapred::kKvInflation, job.data_scale);
  // Largest modeled record; sizes count-provisioned receive buffers.
  const std::uint64_t max_record_modeled = job.spec.conf.get_bytes(
      mapred::kMaxRecordBytes,
      static_cast<std::uint64_t>(102.0 * job.data_scale));
  std::vector<std::shared_ptr<MapStream>> streams;
  streams.reserve(job.maps.size());
  for (size_t m = 0; m < job.maps.size(); ++m) {
    streams.push_back(std::make_shared<MapStream>(job.engine));
  }

  // Kill watcher: flags every stream cancelled and pulses its demand
  // event so drivers parked waiting for the merge wake up and unwind.
  // Streams are captured by shared_ptr value, and `wake` is also set on
  // the terminal transition, so the watcher always completes safely.
  if (attempt != nullptr) {
    job.engine.spawn(
        [](mapred::TaskAttempt& attempt,
           std::vector<std::shared_ptr<MapStream>> streams) -> sim::Task<> {
          co_await attempt.wake.wait();
          if (!attempt.kill_requested) co_return;
          for (auto& stream : streams) {
            stream->cancelled = true;
            stream->demand.set();
            stream->demand.reset();
          }
        }(*attempt, streams));
  }

  // --- RdmaCopier: one driver per map stream -------------------------
  sim::WaitGroup drivers(job.engine);
  for (size_t m = 0; m < job.maps.size(); ++m) {
    drivers.add();
    job.engine.spawn(copier_driver(job, reduce_id, host, state, streams[m],
                                   int(m), kv_inflation, max_record_modeled,
                                   drivers));
  }

  // --- streaming priority-queue merge (§III-B2) -----------------------
  struct Cursor {
    std::vector<KvPair> pairs;
    size_t idx = 0;
    std::uint64_t mem_charge = 0;
  };
  std::vector<Cursor> cursors(streams.size());

  // Pull the next non-empty chunk for stream s; false when exhausted.
  auto advance_chunk = [&](size_t s) -> sim::Task<bool> {
    const double t0 = job.engine.now();
    Cursor& cursor = cursors[s];
    if (cursor.mem_charge != 0) {
      state->mem.release(std::int64_t(cursor.mem_charge));
      cursor.mem_charge = 0;
    }
    while (true) {
      if (streams[s]->chunks.empty()) {
        streams[s]->urgent = true;
        streams[s]->demand.set();
        streams[s]->demand.reset();
      }
      auto chunk = co_await streams[s]->chunks.recv();
      streams[s]->urgent = false;
      if (!chunk) co_return false;
      if (chunk->pairs.empty()) {
        if (chunk->mem_charge != 0) {
          state->mem.release(std::int64_t(chunk->mem_charge));
        }
        continue;
      }
      cursor.pairs = std::move(chunk->pairs);
      cursor.idx = 0;
      cursor.mem_charge = chunk->mem_charge;
      metric_->merge_chunk_wait.record(job.engine.now() - t0);
      co_return true;
    }
  };

  struct HeapItem {
    const KvPair* pair;
    size_t stream;
  };
  auto greater = [](const HeapItem& a, const HeapItem& b) {
    const int c = dataplane::KvLess::compare_keys(a.pair->key, b.pair->key);
    if (c != 0) return c > 0;
    return a.stream > b.stream;
  };
  std::vector<HeapItem> heap;
  for (size_t s = 0; s < streams.size(); ++s) {
    if (co_await advance_chunk(s)) {
      heap.push_back(HeapItem{&cursors[s].pairs[0], s});
    }
  }
  std::make_heap(heap.begin(), heap.end(), greater);
  // Speculation losers cancelled after the job's final commit must not
  // push shuffle_done_time past finish_time (see mapred/vanilla.cc).
  if (attempt == nullptr || !attempt->kill_requested) {
    job.result.shuffle_done_time = job.engine.now();
  }

  constexpr size_t kBatchPairs = 256;
  std::vector<KvBatch> held_back;  // used when overlap is disabled
  KvBatch batch;
  batch.reserve(kBatchPairs);
  std::uint64_t batch_real = 0;

  auto flush_batch = [&]() -> sim::Task<> {
    if (batch.empty()) co_return;
    co_await job.charge_cpu(
        host, static_cast<std::uint64_t>(double(batch_real) * job.data_scale),
        job.cost.merge_cpu_bw);
    if (options_.overlap_reduce) {
      co_await sink.send(std::move(batch));
    } else {
      held_back.push_back(std::move(batch));
    }
    batch = KvBatch{};
    batch.reserve(kBatchPairs);
    batch_real = 0;
  };

  while (!heap.empty()) {
    if (cancelled()) break;
    std::pop_heap(heap.begin(), heap.end(), greater);
    HeapItem item = heap.back();
    heap.pop_back();
    Cursor& cursor = cursors[item.stream];
    // The cursor's chunk is discarded once drained, so move the record
    // out instead of deep-copying its key/value buffers.
    KvPair pair = std::move(cursor.pairs[cursor.idx++]);
    batch_real += pair.serialized_size();
    batch.push_back(std::move(pair));
    if (batch.size() >= kBatchPairs) co_await flush_batch();

    if (cursor.idx < cursor.pairs.size()) {
      heap.push_back(HeapItem{&cursor.pairs[cursor.idx], item.stream});
      std::push_heap(heap.begin(), heap.end(), greater);
    } else if (co_await advance_chunk(item.stream)) {
      heap.push_back(HeapItem{&cursor.pairs[0], item.stream});
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  if (cancelled()) {
    // Cancellation drain: every stream must be received to completion so
    // parked drivers can finish (Channel::close requires no parked
    // senders) and every chunk's shuffle-memory charge is released.
    for (size_t s = 0; s < streams.size(); ++s) {
      Cursor& cursor = cursors[s];
      if (cursor.mem_charge != 0) {
        state->mem.release(std::int64_t(cursor.mem_charge));
        cursor.mem_charge = 0;
      }
      while (true) {
        if (streams[s]->chunks.empty()) {
          streams[s]->urgent = true;
          streams[s]->demand.set();
          streams[s]->demand.reset();
        }
        auto chunk = co_await streams[s]->chunks.recv();
        if (!chunk) break;
        if (chunk->mem_charge != 0) {
          state->mem.release(std::int64_t(chunk->mem_charge));
        }
      }
    }
  } else {
    co_await flush_batch();
  }
  co_await drivers.wait();
  if (!options_.overlap_reduce && !cancelled()) {
    for (auto& held : held_back) co_await sink.send(std::move(held));
  }
  sink.close();

  // Orderly close: tells every TaskTracker this reducer is done; the
  // endpoints themselves stay alive (owned by the engine) until stop().
  for (auto& [_, endpoint] : state->conns) endpoint->close();
}

sim::Task<> RdmaShuffleEngine::stop(JobRuntime& job) {
  (void)job;
  for (auto& [_, service] : services_) {
    service->listener->close();
    service->request_queue.close();
    service->prefetch_queue.close();
  }
  co_await daemons_->wait();
  for (auto& [_, service] : services_) {
    cache_stats_.hits += service->cache.stats().hits;
    cache_stats_.misses += service->cache.stats().misses;
    cache_stats_.insertions += service->cache.stats().insertions;
    cache_stats_.evictions += service->cache.stats().evictions;
    cache_stats_.rejected += service->cache.stats().rejected;
  }
  job.result.cache_hits = cache_stats_.hits;
  job.result.cache_misses = cache_stats_.misses;
}

}  // namespace hmr::rdmashuffle
