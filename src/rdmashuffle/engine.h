// RDMA-based MapReduce shuffle engine — the paper's primary contribution
// (§III-B), built on UCR endpoints over the simulated verbs fabric.
//
// TaskTracker side (one service per tracker):
//   RdmaListener      — accepts UCR endpoint connections at startup
//   RdmaReceiver      — per-endpoint loop receiving DataRequests
//   DataRequestQueue  — holds requests until a responder picks them up
//   RdmaResponder     — pool of lightweight workers answering requests
//                       from the PrefetchCache, falling back to disk
//   MapOutputPrefetcher — daemon pool caching freshly-finished map
//                       outputs; misses are re-cached with raised
//                       priority (§III-B3)
//
// ReduceTask side:
//   RdmaCopier        — per-map stream fetchers with one chunk of
//                       read-ahead, feeding a priority-queue streaming
//                       merge whose sorted output flows into the
//                       DataToReduceQueue (the KvSink), overlapping
//                       shuffle, merge and reduce (§III-B2/B4)
//
// The Hadoop-A comparator (src/hadoopa) reuses this engine with the
// options that match the SC'11 description: no cache, fixed kv-count
// packets.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "dataplane/cache.h"
#include "mapred/runtime.h"
#include "rdmashuffle/protocol.h"
#include "ucr/endpoint.h"

namespace hmr::rdmashuffle {

using mapred::Host;
using mapred::JobRuntime;
using mapred::KvSink;

struct RdmaShuffleOptions {
  bool use_cache = true;
  // Tracker-side request hardening: a request that sat in the
  // DataRequestQueue longer than this was already given up on by its
  // copier (fetch timeout + retries) — serving it would waste responder
  // and disk time, so it is evicted instead. 0 disables.
  double responder_deadline = 120.0;  // seconds
  // TaskTracker cache budget. The paper's headline figures ran on the
  // 24 GB storage nodes (§IV-A/B: "storage nodes have twice as much
  // memory ... our implementation has more benefits in storage nodes").
  std::uint64_t cache_bytes = 12ull * 1024 * 1024 * 1024;  // modeled
  // A map output is re-cached after misses at most this many times;
  // beyond that the cache is thrashing and re-reading whole outputs from
  // disk only steals bandwidth from the responders ("adjust caching
  // based on data availability and necessity", §III-B3).
  int max_recache_attempts = 2;
  std::uint64_t packet_bytes = 1024 * 1024;  // modeled; 0 = unlimited
  std::uint64_t kv_per_packet = 0;           // 0 = unlimited (byte mode)
  int responder_threads = 4;
  int prefetch_daemons = 2;
  bool overlap_reduce = true;
  // Fixed-count receive buffers (Hadoop-A): each segment's buffer is
  // provisioned for kv_per_packet pairs of the *largest observed* pair
  // size, regardless of how many bytes actually arrive — harmless for
  // TeraSort's uniform 100-byte rows, ruinous for Sort's 20,000-byte
  // records (§IV-C: "inefficiency in number of key-value pairs
  // transferred each time that also affects proper overlapping").
  bool charge_by_count = false;
  // Reducer-side refill pipelining. true: request the next chunk while
  // the merge consumes the current one (OSU-IB). false: network-levitated
  // on-demand fetch — the next packet is requested only when the merge
  // exhausts the stream (Hadoop-A's SC'11 design), putting the remote
  // disk on the merge's critical path.
  bool pipelined_refill = true;
  // A map output read within this window of its creation is still in the
  // OS page cache (the map just wrote it): the prefetcher copies it at
  // memory speed instead of re-reading the platters. This immediacy is
  // what makes "cache as soon as it gets available" (§III-B3) cheap.
  double page_cache_window = 20.0;   // seconds
  double page_cache_bw = 2.5e9;      // bytes/sec memcpy
  // UCR endpoint parameters (eager threshold, rendezvous protocol, ...).
  ucr::UcrParams ucr;

  // The paper's design: byte-budgeted packets, caching on (§III-C(3)
  // exposes all of these as user tunables).
  static RdmaShuffleOptions osu_ib(const Conf& conf);
  // Hadoop-A per its SC'11 description: fixed kv count, no cache.
  static RdmaShuffleOptions hadoop_a(const Conf& conf);
};

class RdmaShuffleEngine : public mapred::ShuffleEngine {
 public:
  RdmaShuffleEngine(std::string name, RdmaShuffleOptions options)
      : name_(std::move(name)), options_(options) {}

  std::string name() const override { return name_; }
  const RdmaShuffleOptions& options() const { return options_; }

  sim::Task<> start(JobRuntime& job) override;
  void on_map_finished(JobRuntime& job, int map_id, int host_id) override;
  // Disk-full on `host_id`: drops that tracker's prefetch cache so the
  // spill can retry into the freed space (counted as
  // cache.pressure.evictions, distinct from integrity evictions).
  void on_disk_pressure(JobRuntime& job, int host_id) override;
  sim::Task<> fetch_and_merge(JobRuntime& job, int reduce_id, Host& host,
                              KvSink& sink,
                              mapred::TaskAttempt* attempt = nullptr) override;
  bool overlaps_reduce(const JobRuntime& job) const override {
    (void)job;
    return options_.overlap_reduce;
  }
  sim::Task<> stop(JobRuntime& job) override;

  // Aggregated over all trackers; valid after stop().
  const dataplane::CacheStats& cache_stats() const { return cache_stats_; }

 private:
  struct PendingRequest {
    DataRequest request;
    ucr::Endpoint* endpoint;
    double enqueued_at = 0.0;  // for responder deadline eviction
  };
  // One fetched chunk flowing from a copier driver into the merge.
  struct StreamChunk {
    std::vector<dataplane::KvPair> pairs;
    std::uint64_t mem_charge = 0;
  };
  // Per-map reduce-side stream state. Shared-owned because watchdog
  // timers may still be pending after the driver finished.
  struct MapStream {
    explicit MapStream(sim::Engine& engine)
        : events(engine, 64), chunks(engine, 2), demand(engine) {}
    // Responses (routed by map id) interleaved with watchdog expiries.
    sim::Channel<mapred::FetchEvent> events;
    sim::Channel<StreamChunk> chunks;
    std::uint64_t timer_seq = 0;  // id of the current request's watchdog
    // Set by the kill watcher when the reduce attempt loses its race:
    // the driver abandons between exchanges and closes its chunk queue.
    bool cancelled = false;
    // Set by the merge while it is blocked on this stream: the driver may
    // deliver uncharged instead of waiting for shuffle memory, and
    // on-demand (non-pipelined) drivers may issue the next request.
    bool urgent = false;
    sim::Event demand;  // pulsed when the merge starts waiting
  };
  // Per-reducer copier state shared by that reducer's stream drivers.
  struct CopierState {
    CopierState(sim::Engine& engine, std::uint64_t mem_bytes)
        : mem(engine, std::int64_t(mem_bytes), "shuffle.mem"),
          conn_lock(engine, 1, "copier.conn") {}
    std::map<int, ucr::Endpoint*> conns;  // tracker host id -> endpoint
    std::map<int, MapStream*> routes;     // map id -> stream
    sim::Resource mem;                    // reducer shuffle buffer
    sim::Resource conn_lock;
  };
  // Per-TaskTracker service state.
  struct TrackerService {
    TrackerService(sim::Engine& engine, std::uint64_t cache_bytes)
        : cache(cache_bytes),
          request_queue(engine, 256),
          prefetch_queue(engine, 1024) {}
    std::unique_ptr<ucr::Listener> listener;
    dataplane::PrefetchCache cache;
    sim::Channel<PendingRequest> request_queue;       // DataRequestQueue
    sim::Channel<int> prefetch_queue;                 // map ids to cache
    std::map<int, int> prefetch_attempts;             // per map id
    std::set<int> prefetch_inflight;
    std::deque<std::unique_ptr<ucr::Endpoint>> endpoints;
  };

  sim::Task<> rdma_listener(JobRuntime& job, TrackerService& service);
  sim::Task<> rdma_receiver(JobRuntime& job, TrackerService& service,
                            ucr::Endpoint& endpoint);
  sim::Task<> rdma_responder(JobRuntime& job, TrackerService& service,
                             int host_id);
  sim::Task<> prefetcher(JobRuntime& job, TrackerService& service,
                         int host_id);
  // Serves one request: cache lookup / disk read / chunk extraction.
  sim::Task<> respond(JobRuntime& job, TrackerService& service, int host_id,
                      PendingRequest pending);
  // Dials (once per tracker) and returns the reducer's endpoint to
  // `server`, spawning the response router on first connect.
  sim::Task<ucr::Endpoint*> ensure_client_endpoint(
      JobRuntime& job, Host& host, std::shared_ptr<CopierState> state,
      int server);
  // RdmaCopier: fetches one map's partition chunk by chunk with
  // timeout/retry/blacklist recovery, feeding the stream's chunk queue.
  sim::Task<> copier_driver(JobRuntime& job, int reduce_id, Host& host,
                            std::shared_ptr<CopierState> state,
                            std::shared_ptr<MapStream> stream, int map_id,
                            double kv_inflation,
                            std::uint64_t max_record_modeled,
                            sim::WaitGroup& done);

  // Cached handles for the per-request/per-chunk metric sites, bound in
  // start() (registry references are stable for the engine's lifetime;
  // same idiom as mapred::ShuffleMetrics and net::Network).
  struct OsuMetrics {
    explicit OsuMetrics(MetricsRegistry& registry)
        : responder_evicted(registry.counter("osu.responder.evicted")),
          respond_orphaned(registry.counter("osu.respond.orphaned")),
          cache_integrity_evictions(
              registry.counter("cache.integrity.evictions")),
          fetch_rtt(registry.latency_histogram("osu.fetch.rtt")),
          respond_disk(registry.latency_histogram("osu.respond.disk")),
          respond_send(registry.latency_histogram("osu.respond.send")),
          queue_wait(registry.latency_histogram("osu.responder.queue_wait")),
          merge_chunk_wait(
              registry.latency_histogram("osu.merge.chunk_wait")) {}

    Counter& responder_evicted;
    Counter& respond_orphaned;
    Counter& cache_integrity_evictions;
    FixedHistogram& fetch_rtt;
    FixedHistogram& respond_disk;
    FixedHistogram& respond_send;
    FixedHistogram& queue_wait;
    FixedHistogram& merge_chunk_wait;
  };

  std::string name_;
  RdmaShuffleOptions options_;
  std::unique_ptr<OsuMetrics> metric_;  // bound in start()
  std::map<int, std::unique_ptr<TrackerService>> services_;  // by host id
  // Reducer-side endpoints; kept alive until stop() so the symmetric
  // close handshake can complete.
  std::vector<std::unique_ptr<ucr::Endpoint>> client_endpoints_;
  std::unique_ptr<sim::WaitGroup> daemons_;
  dataplane::CacheStats cache_stats_;
};

}  // namespace hmr::rdmashuffle
