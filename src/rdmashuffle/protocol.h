// Wire protocol between RdmaCopier (ReduceTask) and the TaskTracker's
// RDMA shuffle service (§III-B1): every request/response carries the
// identification parameters the paper lists — map id, reduce id, job id,
// cursor, and the number of key-value pairs shipped.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace hmr::rdmashuffle {

inline constexpr std::uint64_t kTagDataRequest = 0x10;
inline constexpr std::uint64_t kTagDataResponse = 0x11;

inline constexpr std::uint64_t kRequestWireBytes = 64;
inline constexpr std::uint64_t kResponseHeaderBytes = 64;

struct DataRequest {
  std::uint32_t job_id = 0;
  std::uint32_t map_id = 0;
  std::uint32_t reduce_id = 0;
  std::uint64_t cursor_real = 0;     // real-byte offset into the partition
  std::uint64_t max_pairs = 0;       // fixed-count mode (Hadoop-A)
  std::uint64_t max_real_bytes = 0;  // byte-budget mode (OSU-IB)

  Bytes encode() const {
    ByteWriter w;
    w.put_u32(job_id);
    w.put_u32(map_id);
    w.put_u32(reduce_id);
    w.put_u64(cursor_real);
    w.put_u64(max_pairs);
    w.put_u64(max_real_bytes);
    return w.take();
  }
  // A request is exactly the six fixed-width fields; anything truncated
  // or with trailing bytes is malformed. Callers drop malformed messages
  // (counting shuffle.malformed_msgs) and let the copier's watchdog
  // retry — a bad frame must never take the responder down.
  static Result<DataRequest> decode(const Bytes& data) {
    ByteReader r(data);
    DataRequest req;
    const auto job_id = r.u32();
    if (!job_id.ok()) return job_id.status();
    req.job_id = *job_id;
    const auto map_id = r.u32();
    if (!map_id.ok()) return map_id.status();
    req.map_id = *map_id;
    const auto reduce_id = r.u32();
    if (!reduce_id.ok()) return reduce_id.status();
    req.reduce_id = *reduce_id;
    const auto cursor_real = r.u64();
    if (!cursor_real.ok()) return cursor_real.status();
    req.cursor_real = *cursor_real;
    const auto max_pairs = r.u64();
    if (!max_pairs.ok()) return max_pairs.status();
    req.max_pairs = *max_pairs;
    const auto max_real_bytes = r.u64();
    if (!max_real_bytes.ok()) return max_real_bytes.status();
    req.max_real_bytes = *max_real_bytes;
    if (!r.at_end()) {
      return Status::InvalidArgument("trailing bytes after DataRequest");
    }
    return req;
  }
};

struct DataResponse {
  std::uint32_t job_id = 0;
  std::uint32_t map_id = 0;
  std::uint32_t reduce_id = 0;
  std::uint64_t cursor_real = 0;  // echo of the request's cursor: the
                                  // copier uses it to discard stale
                                  // duplicates of timed-out requests
  std::uint64_t n_pairs = 0;
  std::uint64_t chunk_real_bytes = 0;
  std::uint32_t chunk_crc = 0;  // CRC-32C of the chunk payload, computed
                                // at spill time and carried end-to-end so
                                // the copier verifies what the mapper
                                // wrote, not what the responder read
  bool eof = false;
  // Raw serialized kv records follow the header on the wire.

  Bytes encode_header() const {
    ByteWriter w;
    w.put_u32(job_id);
    w.put_u32(map_id);
    w.put_u32(reduce_id);
    w.put_u64(cursor_real);
    w.put_u64(n_pairs);
    w.put_u64(chunk_real_bytes);
    w.put_u32(chunk_crc);
    w.put_u8(eof ? 1 : 0);
    return w.take();
  }
  // Consumes the header, leaving `r` at the first kv record. A short
  // header is malformed (see DataRequest::decode); the payload length is
  // checked by the caller against chunk_real_bytes.
  static Result<DataResponse> decode_header(ByteReader& r) {
    DataResponse resp;
    const auto job_id = r.u32();
    if (!job_id.ok()) return job_id.status();
    resp.job_id = *job_id;
    const auto map_id = r.u32();
    if (!map_id.ok()) return map_id.status();
    resp.map_id = *map_id;
    const auto reduce_id = r.u32();
    if (!reduce_id.ok()) return reduce_id.status();
    resp.reduce_id = *reduce_id;
    const auto cursor_real = r.u64();
    if (!cursor_real.ok()) return cursor_real.status();
    resp.cursor_real = *cursor_real;
    const auto n_pairs = r.u64();
    if (!n_pairs.ok()) return n_pairs.status();
    resp.n_pairs = *n_pairs;
    const auto chunk_real_bytes = r.u64();
    if (!chunk_real_bytes.ok()) return chunk_real_bytes.status();
    resp.chunk_real_bytes = *chunk_real_bytes;
    const auto chunk_crc = r.u32();
    if (!chunk_crc.ok()) return chunk_crc.status();
    resp.chunk_crc = *chunk_crc;
    const auto eof = r.u8();
    if (!eof.ok()) return eof.status();
    resp.eof = *eof != 0;
    return resp;
  }
};

}  // namespace hmr::rdmashuffle
