// Wire protocol between RdmaCopier (ReduceTask) and the TaskTracker's
// RDMA shuffle service (§III-B1): every request/response carries the
// identification parameters the paper lists — map id, reduce id, job id,
// cursor, and the number of key-value pairs shipped.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace hmr::rdmashuffle {

inline constexpr std::uint64_t kTagDataRequest = 0x10;
inline constexpr std::uint64_t kTagDataResponse = 0x11;

inline constexpr std::uint64_t kRequestWireBytes = 64;
inline constexpr std::uint64_t kResponseHeaderBytes = 64;

struct DataRequest {
  std::uint32_t job_id = 0;
  std::uint32_t map_id = 0;
  std::uint32_t reduce_id = 0;
  std::uint64_t cursor_real = 0;     // real-byte offset into the partition
  std::uint64_t max_pairs = 0;       // fixed-count mode (Hadoop-A)
  std::uint64_t max_real_bytes = 0;  // byte-budget mode (OSU-IB)

  Bytes encode() const {
    ByteWriter w;
    w.put_u32(job_id);
    w.put_u32(map_id);
    w.put_u32(reduce_id);
    w.put_u64(cursor_real);
    w.put_u64(max_pairs);
    w.put_u64(max_real_bytes);
    return w.take();
  }
  static DataRequest decode(const Bytes& data) {
    ByteReader r(data);
    DataRequest req;
    req.job_id = r.u32().value();
    req.map_id = r.u32().value();
    req.reduce_id = r.u32().value();
    req.cursor_real = r.u64().value();
    req.max_pairs = r.u64().value();
    req.max_real_bytes = r.u64().value();
    return req;
  }
};

struct DataResponse {
  std::uint32_t job_id = 0;
  std::uint32_t map_id = 0;
  std::uint32_t reduce_id = 0;
  std::uint64_t cursor_real = 0;  // echo of the request's cursor: the
                                  // copier uses it to discard stale
                                  // duplicates of timed-out requests
  std::uint64_t n_pairs = 0;
  std::uint64_t chunk_real_bytes = 0;
  bool eof = false;
  // Raw serialized kv records follow the header on the wire.

  Bytes encode_header() const {
    ByteWriter w;
    w.put_u32(job_id);
    w.put_u32(map_id);
    w.put_u32(reduce_id);
    w.put_u64(cursor_real);
    w.put_u64(n_pairs);
    w.put_u64(chunk_real_bytes);
    w.put_u8(eof ? 1 : 0);
    return w.take();
  }
  static DataResponse decode_header(ByteReader& r) {
    DataResponse resp;
    resp.job_id = r.u32().value();
    resp.map_id = r.u32().value();
    resp.reduce_id = r.u32().value();
    resp.cursor_real = r.u64().value();
    resp.n_pairs = r.u64().value();
    resp.chunk_real_bytes = r.u64().value();
    resp.eof = r.u8().value() != 0;
    return resp;
  }
};

}  // namespace hmr::rdmashuffle
