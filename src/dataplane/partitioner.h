// Partitioners: key -> reduce-task index.
//
// HashPartitioner mirrors Hadoop's default (used by Sort/WordCount);
// RangePartitioner mirrors TeraSort's TotalOrderPartitioner under
// TeraGen's uniform keyspace: contiguous key ranges map to contiguous
// reducers, so concatenated reducer outputs are globally sorted.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"

namespace hmr::dataplane {

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual int partition(std::span<const std::uint8_t> key,
                        int num_partitions) const = 0;
};

class HashPartitioner final : public Partitioner {
 public:
  int partition(std::span<const std::uint8_t> key,
                int num_partitions) const override {
    const std::uint64_t h =
        fnv1a({reinterpret_cast<const char*>(key.data()), key.size()});
    return int(h % std::uint64_t(num_partitions));
  }
};

class RangePartitioner final : public Partitioner {
 public:
  // Interprets the first 8 key bytes as a big-endian integer and splits
  // the 64-bit space evenly.
  int partition(std::span<const std::uint8_t> key,
                int num_partitions) const override {
    std::uint64_t prefix = 0;
    for (size_t i = 0; i < 8; ++i) {
      prefix = (prefix << 8) | (i < key.size() ? key[i] : 0);
    }
    // Map via 128-bit multiply to avoid overflow and keep ranges exact.
    return int((static_cast<__uint128_t>(prefix) *
                static_cast<std::uint64_t>(num_partitions)) >>
               64);
  }
};

}  // namespace hmr::dataplane
