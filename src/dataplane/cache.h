// PrefetchCache — the intermediate-data cache at the heart of the
// paper's contribution (§III-B3).
//
// A byte-budgeted cache of map outputs on the TaskTracker side.
// Eviction picks the lowest (priority, recency) victim, so demand-
// boosted entries (requested by reducers after a miss) outlive
// speculatively prefetched ones. The budget is expressed in *modeled*
// bytes — it models the TaskTracker heap-size limit the paper exposes
// through mapred.local.caching configuration.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/metrics.h"
#include "dataplane/segment.h"

namespace hmr::dataplane {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }
};

class PrefetchCache {
 public:
  explicit PrefetchCache(std::uint64_t capacity_bytes);

  // Inserts (or refreshes) an entry of `charged_bytes` modeled bytes,
  // evicting lower-ranked entries to fit. Returns false (and counts a
  // rejection) if the entry alone exceeds the budget or every resident
  // entry outranks it.
  bool put(const std::string& key, std::shared_ptr<const MapOutput> value,
           std::uint64_t charged_bytes, int priority = 0);

  // Hit: bumps recency and returns the value. Miss: returns nullptr.
  std::shared_ptr<const MapOutput> get(const std::string& key);

  // Peek without touching recency or stats.
  bool contains(const std::string& key) const;

  // Demand prioritisation: raise the entry's priority (if resident) so
  // follow-up requests for a hot map output keep hitting (§III-B3: after
  // a miss, re-cache "with more priority").
  void boost(const std::string& key, int priority);

  bool erase(const std::string& key);
  void clear();

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  size_t entries() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

  // Mirrors stats into `registry` under `prefix` (e.g. "cache."):
  // hit/miss/insertion/eviction/rejection counters plus a used-bytes
  // gauge whose high-water mark survives clear().
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix);

  // Accounting invariant: used_bytes() equals the sum of resident
  // charged bytes, the rank index mirrors the entry map, and usage never
  // exceeds the budget. Debug builds check this after every mutation.
  bool invariant_holds() const;

 private:
  struct Entry {
    std::shared_ptr<const MapOutput> value;
    std::uint64_t bytes = 0;
    int priority = 0;
    std::uint64_t tick = 0;
  };
  // Eviction rank: (priority, tick) ascending — coldest first.
  using Rank = std::tuple<int, std::uint64_t, std::string>;

  Rank rank_of(const std::string& key, const Entry& entry) const {
    return {entry.priority, entry.tick, key};
  }
  void unrank(const std::string& key, const Entry& entry) {
    ranks_.erase(rank_of(key, entry));
  }
  // Evicts victims ranked strictly below `incoming` until `needed` fits.
  bool make_room(std::uint64_t needed, const Rank& incoming);
  void check_invariant() const;
  void sync_used_gauge() {
    if (used_metric_ != nullptr) used_metric_->set(double(used_));
  }

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t next_tick_ = 1;
  std::map<std::string, Entry> entries_;
  std::set<Rank> ranks_;
  CacheStats stats_;
  // Optional registry mirrors; null until attach_metrics().
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;
  Counter* insertions_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
  Counter* rejected_metric_ = nullptr;
  Gauge* used_metric_ = nullptr;
};

}  // namespace hmr::dataplane
