#include "dataplane/merger.h"

#include <algorithm>

namespace hmr::dataplane {

BytesSource::BytesSource(std::shared_ptr<const Bytes> backing)
    : reader_(backing, backing ? std::span<const std::uint8_t>(*backing)
                               : std::span<const std::uint8_t>{}) {}

BytesSource::BytesSource(std::shared_ptr<const Bytes> backing,
                         std::span<const std::uint8_t> slice)
    : reader_(std::move(backing), slice) {}

bool BytesSource::next(KvPair* out) { return reader_.next(out); }

bool VectorSource::next(KvPair* out) {
  if (pos_ >= pairs_.size()) return false;
  *out = std::move(pairs_[pos_++]);
  return true;
}

StreamMerger::StreamMerger(std::vector<std::unique_ptr<KvSource>> sources)
    : sources_(std::move(sources)) {
  for (size_t i = 0; i < sources_.size(); ++i) refill(i);
}

void StreamMerger::refill(size_t source) {
  KvPair pair;
  if (sources_[source]->next(&pair)) {
    heap_.push(HeapItem{std::move(pair), source});
  }
}

bool StreamMerger::next(KvPair* out) {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the move is safe because we pop
  // immediately — use const_cast-free copy of the small struct instead.
  HeapItem item = heap_.top();
  heap_.pop();
  *out = std::move(item.pair);
  ++records_merged_;
  refill(item.source);
  return true;
}

std::vector<KvPair> drain(KvSource& source) {
  std::vector<KvPair> out;
  KvPair pair;
  while (source.next(&pair)) out.push_back(std::move(pair));
  return out;
}

bool is_sorted_run(std::span<const KvPair> pairs) {
  return std::is_sorted(pairs.begin(), pairs.end(),
                        [](const KvPair& a, const KvPair& b) {
                          return KvLess::compare_keys(a.key, b.key) < 0;
                        });
}

}  // namespace hmr::dataplane
