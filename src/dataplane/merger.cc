#include "dataplane/merger.h"

#include <algorithm>

namespace hmr::dataplane {

BytesSource::BytesSource(std::shared_ptr<const Bytes> backing)
    : reader_(backing, backing ? std::span<const std::uint8_t>(*backing)
                               : std::span<const std::uint8_t>{}) {}

BytesSource::BytesSource(std::shared_ptr<const Bytes> backing,
                         std::span<const std::uint8_t> slice)
    : reader_(std::move(backing), slice) {}

bool BytesSource::next(KvPair* out) { return reader_.next(out); }

bool BytesSource::next_view(KvView* out) { return reader_.next_view(out); }

bool VectorSource::next(KvPair* out) {
  if (pos_ >= pairs_.size()) return false;
  *out = std::move(pairs_[pos_++]);
  return true;
}

bool VectorSource::next_view(KvView* out) {
  if (pos_ >= pairs_.size()) return false;
  *out = KvView(pairs_[pos_++]);
  return true;
}

StreamMerger::StreamMerger(std::vector<std::unique_ptr<KvSource>> sources)
    : sources_(std::move(sources)) {
  for (size_t i = 0; i < sources_.size(); ++i) refill(i);
}

void StreamMerger::refill(size_t source) {
  KvView view;
  if (sources_[source]->next_view(&view)) {
    heap_.push(HeapItem{view, source});
  }
}

bool StreamMerger::next_view(KvView* out) {
  if (pending_refill_ != kNoRefill) {
    // Deferred from the previous call: refilling earlier would have
    // invalidated the view we handed out.
    refill(pending_refill_);
    pending_refill_ = kNoRefill;
  }
  if (heap_.empty()) return false;
  const HeapItem item = heap_.top();
  heap_.pop();
  *out = item.view;
  ++records_merged_;
  pending_refill_ = item.source;
  return true;
}

bool StreamMerger::next(KvPair* out) {
  KvView view;
  if (!next_view(&view)) return false;
  *out = view.to_pair();
  return true;
}

std::vector<KvPair> drain(KvSource& source) {
  std::vector<KvPair> out;
  KvPair pair;
  while (source.next(&pair)) out.push_back(std::move(pair));
  return out;
}

bool is_sorted_run(std::span<const KvPair> pairs) {
  return std::is_sorted(pairs.begin(), pairs.end(),
                        [](const KvPair& a, const KvPair& b) {
                          return KvLess::compare_keys(a.key, b.key) < 0;
                        });
}

}  // namespace hmr::dataplane
