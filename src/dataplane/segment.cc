#include "dataplane/segment.h"

#include <algorithm>

#include "common/crc32.h"

namespace hmr::dataplane {

Bytes MapOutput::encode_index() const {
  ByteWriter writer;
  writer.put_varint(index.size());
  for (const auto& entry : index) {
    writer.put_varint(entry.offset);
    writer.put_varint(entry.length);
    writer.put_varint(entry.kv_count);
    writer.put_varint(entry.crc);
  }
  return writer.take();
}

Result<std::vector<IndexEntry>> MapOutput::decode_index(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  auto count = reader.varint();
  if (!count.ok()) return count.status();
  std::vector<IndexEntry> out;
  out.reserve(count.value());
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    IndexEntry entry;
    auto offset = reader.varint();
    auto length = reader.varint();
    auto kv_count = reader.varint();
    auto crc = reader.varint();
    if (!offset.ok() || !length.ok() || !kv_count.ok() || !crc.ok() ||
        crc.value() > 0xffffffffull) {
      return Status::OutOfRange("truncated map-output index");
    }
    entry.offset = offset.value();
    entry.length = length.value();
    entry.kv_count = kv_count.value();
    entry.crc = static_cast<std::uint32_t>(crc.value());
    out.push_back(entry);
  }
  return out;
}

MapOutputBuilder::MapOutputBuilder(int num_partitions,
                                   const Partitioner& partitioner)
    : partitioner_(partitioner), partitions_(num_partitions) {
  HMR_CHECK_MSG(num_partitions > 0, "need at least one partition");
}

void MapOutputBuilder::add(const KvView& view) {
  pending_bytes_ += view.serialized_size();
  const int p = partitioner_.partition(view.key, int(partitions_.size()));
  partitions_.at(p).push_back(
      KvView{arena_.copy(view.key), arena_.copy(view.value)});
}

std::uint64_t MapOutputBuilder::pending_records() const {
  std::uint64_t n = 0;
  for (const auto& partition : partitions_) n += partition.size();
  return n;
}

MapOutput MapOutputBuilder::build(const CombineFn* combiner) {
  MapOutput out;
  ByteWriter writer;
  out.index.reserve(partitions_.size());
  for (auto& partition : partitions_) {
    std::sort(partition.begin(), partition.end(), KvLess{});
    if (combiner != nullptr && !partition.empty()) {
      // The CombineFn API owns its inputs, so groups materialize out of
      // the arena here; combined output is copied back in. Combining is
      // rare relative to the sort path (aggregatable workloads only).
      std::vector<KvView> combined;
      const std::function<void(KvPair)> emit = [this,
                                                &combined](KvPair pair) {
        combined.push_back(
            KvView{arena_.copy(pair.key), arena_.copy(pair.value)});
      };
      std::vector<Bytes> values;
      size_t i = 0;
      while (i < partition.size()) {
        const Bytes key(partition[i].key.begin(), partition[i].key.end());
        values.clear();
        while (i < partition.size() &&
               KvLess::compare_keys(partition[i].key, key) == 0) {
          values.emplace_back(partition[i].value.begin(),
                              partition[i].value.end());
          ++i;
        }
        (*combiner)(key, values, emit);
      }
      // Combiner output may be unsorted if it emits new keys; re-sort.
      std::sort(combined.begin(), combined.end(), KvLess{});
      partition = std::move(combined);
    }
    IndexEntry entry;
    entry.offset = writer.size();
    entry.kv_count = partition.size();
    for (const auto& view : partition) encode_kv(view, writer);
    entry.length = writer.size() - entry.offset;
    out.index.push_back(entry);
    partition.clear();
  }
  out.data = std::make_shared<const Bytes>(writer.take());
  // Per-partition CRC32C, the checksum every downstream read boundary
  // (cache fill, responder, servlet, merge ingest) verifies against.
  for (auto& entry : out.index) {
    entry.crc = crc32c(std::span<const std::uint8_t>(*out.data)
                           .subspan(entry.offset, entry.length));
  }
  pending_bytes_ = 0;
  arena_.reset();  // every view in partitions_ is dead now
  return out;
}

SegmentReader::SegmentReader(std::shared_ptr<const Bytes> backing,
                             std::span<const std::uint8_t> slice)
    : backing_(std::move(backing)), slice_(slice) {}

bool SegmentReader::next(KvPair* out) {
  KvView view;
  if (!next_view(&view)) return false;
  *out = view.to_pair();
  return true;
}

bool SegmentReader::next_view(KvView* out) {
  if (exhausted()) return false;
  ByteReader reader(slice_.subspan(pos_));
  auto view = decode_kv_view(reader);
  HMR_CHECK_MSG(view.ok(), "corrupt segment record");
  pos_ += reader.position();
  *out = view.value();
  return true;
}

std::span<const std::uint8_t> SegmentReader::take_chunk(
    std::uint64_t max_pairs, std::uint64_t max_bytes,
    std::uint64_t* pairs_out) {
  const size_t start = pos_;
  std::uint64_t pairs = 0;
  while (pairs < max_pairs && pos_ < slice_.size()) {
    ByteReader reader(slice_.subspan(pos_));
    auto pair = decode_kv(reader);
    HMR_CHECK_MSG(pair.ok(), "corrupt segment record");
    const size_t record_len = reader.position();
    // Never cross the byte budget, except that the first record always
    // ships (a chunk must make progress even for jumbo pairs).
    if (pairs > 0 && (pos_ - start) + record_len > max_bytes) break;
    pos_ += record_len;
    ++pairs;
    if (pos_ - start >= max_bytes) break;
  }
  if (pairs_out != nullptr) *pairs_out = pairs;
  return slice_.subspan(start, pos_ - start);
}

}  // namespace hmr::dataplane
