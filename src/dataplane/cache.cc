#include "dataplane/cache.h"

#include "common/status.h"

namespace hmr::dataplane {

PrefetchCache::PrefetchCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool PrefetchCache::make_room(std::uint64_t needed, const Rank& incoming) {
  if (needed > capacity_) return false;
  while (capacity_ - used_ < needed) {
    HMR_CHECK(!ranks_.empty());
    const Rank& victim_rank = *ranks_.begin();
    if (!(victim_rank < incoming)) return false;  // everything outranks us
    const std::string victim_key = std::get<2>(victim_rank);
    auto it = entries_.find(victim_key);
    HMR_CHECK(it != entries_.end());
    used_ -= it->second.bytes;
    ranks_.erase(ranks_.begin());
    entries_.erase(it);
    ++stats_.evictions;
  }
  return true;
}

bool PrefetchCache::put(const std::string& key,
                        std::shared_ptr<const MapOutput> value,
                        std::uint64_t charged_bytes, int priority) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place, keeping the higher priority.
    unrank(key, it->second);
    used_ -= it->second.bytes;
    it->second.value = std::move(value);
    it->second.bytes = 0;  // re-charged below
    priority = std::max(priority, it->second.priority);
    const Rank incoming{priority, next_tick_, key};
    if (!make_room(charged_bytes, incoming)) {
      entries_.erase(it);
      ++stats_.rejected;
      return false;
    }
    it = entries_.find(key);
    HMR_CHECK(it != entries_.end());
    it->second.bytes = charged_bytes;
    it->second.priority = priority;
    it->second.tick = next_tick_++;
    used_ += charged_bytes;
    ranks_.insert(rank_of(key, it->second));
    ++stats_.insertions;
    return true;
  }

  const Rank incoming{priority, next_tick_, key};
  if (!make_room(charged_bytes, incoming)) {
    ++stats_.rejected;
    return false;
  }
  Entry entry;
  entry.value = std::move(value);
  entry.bytes = charged_bytes;
  entry.priority = priority;
  entry.tick = next_tick_++;
  used_ += charged_bytes;
  ranks_.insert(rank_of(key, entry));
  entries_.emplace(key, std::move(entry));
  ++stats_.insertions;
  return true;
}

std::shared_ptr<const MapOutput> PrefetchCache::get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  unrank(key, it->second);
  it->second.tick = next_tick_++;
  ranks_.insert(rank_of(key, it->second));
  return it->second.value;
}

bool PrefetchCache::contains(const std::string& key) const {
  return entries_.find(key) != entries_.end();
}

void PrefetchCache::boost(const std::string& key, int priority) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (priority <= it->second.priority) return;
  unrank(key, it->second);
  it->second.priority = priority;
  it->second.tick = next_tick_++;
  ranks_.insert(rank_of(key, it->second));
}

bool PrefetchCache::erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  unrank(key, it->second);
  used_ -= it->second.bytes;
  entries_.erase(it);
  return true;
}

void PrefetchCache::clear() {
  entries_.clear();
  ranks_.clear();
  used_ = 0;
}

}  // namespace hmr::dataplane
