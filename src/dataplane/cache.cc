#include "dataplane/cache.h"

#include "common/status.h"

namespace hmr::dataplane {

PrefetchCache::PrefetchCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

void PrefetchCache::attach_metrics(MetricsRegistry& registry,
                                   const std::string& prefix) {
  hits_metric_ = &registry.counter(prefix + "hits");
  misses_metric_ = &registry.counter(prefix + "misses");
  insertions_metric_ = &registry.counter(prefix + "insertions");
  evictions_metric_ = &registry.counter(prefix + "evictions");
  rejected_metric_ = &registry.counter(prefix + "rejected");
  used_metric_ = &registry.gauge(prefix + "used_bytes");
  // Carry over anything counted before attachment.
  hits_metric_->add(std::int64_t(stats_.hits));
  misses_metric_->add(std::int64_t(stats_.misses));
  insertions_metric_->add(std::int64_t(stats_.insertions));
  evictions_metric_->add(std::int64_t(stats_.evictions));
  rejected_metric_->add(std::int64_t(stats_.rejected));
  sync_used_gauge();
}

bool PrefetchCache::invariant_holds() const {
  if (ranks_.size() != entries_.size()) return false;
  if (used_ > capacity_) return false;
  std::uint64_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += entry.bytes;
    if (ranks_.find(rank_of(key, entry)) == ranks_.end()) return false;
  }
  return total == used_;
}

void PrefetchCache::check_invariant() const {
#ifndef NDEBUG
  HMR_CHECK_MSG(invariant_holds(), "PrefetchCache accounting out of sync");
#endif
}

bool PrefetchCache::make_room(std::uint64_t needed, const Rank& incoming) {
  if (needed > capacity_) return false;
  // used_ <= capacity_ by the accounting invariant; guard the unsigned
  // subtraction anyway so a future bug rejects instead of wrapping.
  HMR_CHECK(used_ <= capacity_);
  while (capacity_ - used_ < needed) {
    HMR_CHECK(!ranks_.empty());
    const Rank& victim_rank = *ranks_.begin();
    if (!(victim_rank < incoming)) return false;  // everything outranks us
    const std::string victim_key = std::get<2>(victim_rank);
    auto it = entries_.find(victim_key);
    HMR_CHECK(it != entries_.end());
    used_ -= it->second.bytes;
    ranks_.erase(ranks_.begin());
    entries_.erase(it);
    ++stats_.evictions;
    if (evictions_metric_ != nullptr) evictions_metric_->add();
  }
  return true;
}

bool PrefetchCache::put(const std::string& key,
                        std::shared_ptr<const MapOutput> value,
                        std::uint64_t charged_bytes, int priority) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place: the old charge comes off the budget before
    // make_room runs, and the entry leaves the rank index so it can
    // never evict itself while making room for its own new size.
    unrank(key, it->second);
    used_ -= it->second.bytes;
    it->second.value = std::move(value);
    it->second.bytes = 0;  // re-charged below
    priority = std::max(priority, it->second.priority);
    const Rank incoming{priority, next_tick_, key};
    if (!make_room(charged_bytes, incoming)) {
      entries_.erase(it);
      ++stats_.rejected;
      if (rejected_metric_ != nullptr) rejected_metric_->add();
      sync_used_gauge();
      check_invariant();
      return false;
    }
    it = entries_.find(key);
    HMR_CHECK(it != entries_.end());
    it->second.bytes = charged_bytes;
    it->second.priority = priority;
    it->second.tick = next_tick_++;
    used_ += charged_bytes;
    ranks_.insert(rank_of(key, it->second));
    ++stats_.insertions;
    if (insertions_metric_ != nullptr) insertions_metric_->add();
    sync_used_gauge();
    check_invariant();
    return true;
  }

  const Rank incoming{priority, next_tick_, key};
  if (!make_room(charged_bytes, incoming)) {
    ++stats_.rejected;
    if (rejected_metric_ != nullptr) rejected_metric_->add();
    sync_used_gauge();
    check_invariant();
    return false;
  }
  Entry entry;
  entry.value = std::move(value);
  entry.bytes = charged_bytes;
  entry.priority = priority;
  entry.tick = next_tick_++;
  used_ += charged_bytes;
  ranks_.insert(rank_of(key, entry));
  entries_.emplace(key, std::move(entry));
  ++stats_.insertions;
  if (insertions_metric_ != nullptr) insertions_metric_->add();
  sync_used_gauge();
  check_invariant();
  return true;
}

std::shared_ptr<const MapOutput> PrefetchCache::get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (misses_metric_ != nullptr) misses_metric_->add();
    return nullptr;
  }
  ++stats_.hits;
  if (hits_metric_ != nullptr) hits_metric_->add();
  unrank(key, it->second);
  it->second.tick = next_tick_++;
  ranks_.insert(rank_of(key, it->second));
  check_invariant();
  return it->second.value;
}

bool PrefetchCache::contains(const std::string& key) const {
  return entries_.find(key) != entries_.end();
}

void PrefetchCache::boost(const std::string& key, int priority) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (priority <= it->second.priority) return;
  unrank(key, it->second);
  it->second.priority = priority;
  it->second.tick = next_tick_++;
  ranks_.insert(rank_of(key, it->second));
  check_invariant();
}

bool PrefetchCache::erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  unrank(key, it->second);
  used_ -= it->second.bytes;
  entries_.erase(it);
  sync_used_gauge();
  check_invariant();
  return true;
}

void PrefetchCache::clear() {
  entries_.clear();
  ranks_.clear();
  used_ = 0;
  sync_used_gauge();
  check_invariant();
}

}  // namespace hmr::dataplane
