#include "dataplane/kv.h"

#include <algorithm>
#include <cstring>

namespace hmr::dataplane {

namespace {
std::uint64_t varint_size(std::uint64_t v) {
  std::uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}
}  // namespace

std::uint64_t KvPair::serialized_size() const {
  return varint_size(key.size()) + varint_size(value.size()) + key.size() +
         value.size();
}

std::uint64_t KvView::serialized_size() const {
  return varint_size(key.size()) + varint_size(value.size()) + key.size() +
         value.size();
}

int KvLess::compare_keys(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  const size_t n = std::min(a.size(), b.size());
  if (n > 0) {
    const int c = std::memcmp(a.data(), b.data(), n);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

KvPair make_kv(std::string_view key, std::string_view value) {
  return KvPair{Bytes(key.begin(), key.end()), Bytes(value.begin(), value.end())};
}

void encode_kv(const KvPair& pair, ByteWriter& writer) {
  writer.put_varint(pair.key.size());
  writer.put_varint(pair.value.size());
  writer.put_bytes(pair.key);
  writer.put_bytes(pair.value);
}

void encode_kv(const KvView& view, ByteWriter& writer) {
  writer.put_varint(view.key.size());
  writer.put_varint(view.value.size());
  writer.put_bytes(view.key);
  writer.put_bytes(view.value);
}

Result<KvView> decode_kv_view(ByteReader& reader) {
  auto klen = reader.varint();
  if (!klen.ok()) return klen.status();
  auto vlen = reader.varint();
  if (!vlen.ok()) return vlen.status();
  auto key = reader.bytes(klen.value());
  if (!key.ok()) return key.status();
  auto value = reader.bytes(vlen.value());
  if (!value.ok()) return value.status();
  return KvView{key.value(), value.value()};
}

Result<KvPair> decode_kv(ByteReader& reader) {
  auto view = decode_kv_view(reader);
  if (!view.ok()) return view.status();
  return view.value().to_pair();
}

Bytes encode_run(std::span<const KvPair> pairs) {
  ByteWriter writer;
  for (const auto& pair : pairs) encode_kv(pair, writer);
  return writer.take();
}

Result<std::vector<KvPair>> decode_run(std::span<const std::uint8_t> data) {
  std::vector<KvPair> out;
  ByteReader reader(data);
  while (!reader.at_end()) {
    auto pair = decode_kv(reader);
    if (!pair.ok()) return pair.status();
    out.push_back(std::move(pair.value()));
  }
  return out;
}

}  // namespace hmr::dataplane
