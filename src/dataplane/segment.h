// Map-output files: sorted, partitioned runs with a per-partition index,
// the moral equivalent of Hadoop's file.out + file.out.index pair.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "dataplane/kv.h"
#include "dataplane/partitioner.h"

namespace hmr::dataplane {

struct IndexEntry {
  std::uint64_t offset = 0;    // byte offset into data
  std::uint64_t length = 0;    // serialized bytes
  std::uint64_t kv_count = 0;  // records in this partition
  std::uint32_t crc = 0;       // CRC32C of the partition's bytes, computed
                               // at spill time (DESIGN.md §6.2)
};

// One map task's complete output: every partition sorted by key.
struct MapOutput {
  std::shared_ptr<const Bytes> data;
  std::vector<IndexEntry> index;

  std::uint64_t total_bytes() const { return data ? data->size() : 0; }
  std::span<const std::uint8_t> partition_bytes(int p) const {
    const auto& e = index.at(p);
    return std::span<const std::uint8_t>(*data).subspan(e.offset, e.length);
  }
  // Serializes/parses the index itself (the .index side file).
  Bytes encode_index() const;
  static Result<std::vector<IndexEntry>> decode_index(
      std::span<const std::uint8_t> bytes);
};

// Map-side combiner: called once per distinct key with all its values;
// emits the (usually smaller) combined records.
using CombineFn = std::function<void(
    const Bytes& key, const std::vector<Bytes>& values,
    const std::function<void(KvPair)>& emit)>;

// Collects a map task's emitted pairs, then sorts each partition and
// serializes (the in-memory sort half of Hadoop's MapOutputBuffer).
//
// Record storage is arena-backed: add() copies the key/value bytes into
// an internal Arena and keeps only 32-byte KvViews in the partition
// buckets, so the sort moves views instead of vector pairs and the
// per-record heap allocations of the old std::vector<KvPair> layout are
// gone. build() resets the arena; slabs are retained, so repeated
// spills from one builder reuse the same memory.
class MapOutputBuilder {
 public:
  MapOutputBuilder(int num_partitions, const Partitioner& partitioner);

  // Copies the record's bytes into the builder's arena; the argument
  // may be a temporary.
  void add(const KvPair& pair) { add(KvView(pair)); }
  void add(const KvView& view);
  std::uint64_t pending_bytes() const { return pending_bytes_; }
  std::uint64_t pending_records() const;

  // Sorts and serializes; the builder resets to empty. A non-null
  // combiner runs over each sorted partition first (Hadoop's map-side
  // combine), shrinking what the shuffle must move.
  MapOutput build(const CombineFn* combiner = nullptr);

 private:
  const Partitioner& partitioner_;
  Arena arena_;
  std::vector<std::vector<KvView>> partitions_;
  std::uint64_t pending_bytes_ = 0;
};

// Sequential reader over one partition's serialized bytes. Keeps shared
// ownership of the backing buffer so callers can slice freely.
class SegmentReader {
 public:
  SegmentReader(std::shared_ptr<const Bytes> backing,
                std::span<const std::uint8_t> slice);
  // Reads the next record; false at end. Aborts on corrupt data.
  bool next(KvPair* out);
  // Zero-copy variant: the view aliases the backing buffer, so it stays
  // valid as long as the backing shared_ptr does.
  bool next_view(KvView* out);
  // Reads up to max_pairs or max_bytes (whichever first) raw record bytes
  // starting at the cursor — the unit the OSU-IB responder ships.
  std::span<const std::uint8_t> take_chunk(std::uint64_t max_pairs,
                                           std::uint64_t max_bytes,
                                           std::uint64_t* pairs_out);
  bool exhausted() const { return pos_ == slice_.size(); }
  std::uint64_t remaining_bytes() const { return slice_.size() - pos_; }

 private:
  std::shared_ptr<const Bytes> backing_;
  std::span<const std::uint8_t> slice_;
  size_t pos_ = 0;
};

}  // namespace hmr::dataplane
