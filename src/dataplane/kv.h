// Key-value records and their on-disk/wire codec.
//
// The serialized form follows Hadoop's IFile record layout:
// varint(key_len) varint(value_len) key value, records back to back.
// Keys compare as unsigned lexicographic byte strings, matching
// Hadoop's BytesWritable ordering (and TeraSort's 10-byte keys).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hmr::dataplane {

struct KvPair {
  Bytes key;
  Bytes value;

  std::uint64_t serialized_size() const;
  bool operator==(const KvPair& other) const = default;
};

// Non-owning record: spans into an arena, a serialized run, or a
// KvPair's buffers. Lifetime is bounded by whatever backs the spans
// (see DESIGN.md §"Arena ownership") — the dataplane hot paths sort,
// merge, and encode views to avoid the two heap allocations per record
// that owning KvPairs cost.
struct KvView {
  std::span<const std::uint8_t> key;
  std::span<const std::uint8_t> value;

  KvView() = default;
  KvView(std::span<const std::uint8_t> k, std::span<const std::uint8_t> v)
      : key(k), value(v) {}
  explicit KvView(const KvPair& pair) : key(pair.key), value(pair.value) {}

  std::uint64_t serialized_size() const;
  // Materializes an owning copy.
  KvPair to_pair() const {
    return KvPair{Bytes(key.begin(), key.end()),
                  Bytes(value.begin(), value.end())};
  }
};

// Strict-weak ordering on keys (ties broken by value for determinism).
// Works on any mix of owning pairs and views.
struct KvLess {
  bool operator()(std::span<const std::uint8_t> a_key,
                  std::span<const std::uint8_t> a_value,
                  std::span<const std::uint8_t> b_key,
                  std::span<const std::uint8_t> b_value) const {
    const int c = compare_keys(a_key, b_key);
    if (c != 0) return c < 0;
    return compare_keys(a_value, b_value) < 0;
  }
  bool operator()(const KvPair& a, const KvPair& b) const {
    return (*this)(a.key, a.value, b.key, b.value);
  }
  bool operator()(const KvView& a, const KvView& b) const {
    return (*this)(a.key, a.value, b.key, b.value);
  }
  static int compare_keys(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b);
};

KvPair make_kv(std::string_view key, std::string_view value);

// Appends the record to `writer`.
void encode_kv(const KvPair& pair, ByteWriter& writer);
void encode_kv(const KvView& view, ByteWriter& writer);
// Decodes one record; OutOfRange on truncation.
Result<KvPair> decode_kv(ByteReader& reader);
// Zero-copy decode: the view aliases the reader's underlying buffer and
// is valid only while that buffer lives.
Result<KvView> decode_kv_view(ByteReader& reader);

// Serializes a whole run; `pairs` need not be sorted.
Bytes encode_run(std::span<const KvPair> pairs);
// Decodes until the reader is exhausted.
Result<std::vector<KvPair>> decode_run(std::span<const std::uint8_t> data);

}  // namespace hmr::dataplane
