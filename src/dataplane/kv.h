// Key-value records and their on-disk/wire codec.
//
// The serialized form follows Hadoop's IFile record layout:
// varint(key_len) varint(value_len) key value, records back to back.
// Keys compare as unsigned lexicographic byte strings, matching
// Hadoop's BytesWritable ordering (and TeraSort's 10-byte keys).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hmr::dataplane {

struct KvPair {
  Bytes key;
  Bytes value;

  std::uint64_t serialized_size() const;
  bool operator==(const KvPair& other) const = default;
};

// Strict-weak ordering on keys (ties broken by value for determinism).
struct KvLess {
  bool operator()(const KvPair& a, const KvPair& b) const {
    return compare_keys(a.key, b.key) < 0 ||
           (compare_keys(a.key, b.key) == 0 &&
            compare_keys(a.value, b.value) < 0);
  }
  static int compare_keys(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b);
};

KvPair make_kv(std::string_view key, std::string_view value);

// Appends the record to `writer`.
void encode_kv(const KvPair& pair, ByteWriter& writer);
// Decodes one record; OutOfRange on truncation.
Result<KvPair> decode_kv(ByteReader& reader);

// Serializes a whole run; `pairs` need not be sorted.
Bytes encode_run(std::span<const KvPair> pairs);
// Decodes until the reader is exhausted.
Result<std::vector<KvPair>> decode_run(std::span<const std::uint8_t> data);

}  // namespace hmr::dataplane
