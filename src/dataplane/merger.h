// K-way merge over sorted record streams — the reducer's merge phase.
//
// StreamMerger is the synchronous k-way heap merge used by the vanilla
// two-level merger and by final merge passes. The shuffle engines'
// *streaming* merges (priority queue with asynchronous refills, §III-B2)
// live in the engine code but reuse these comparators and sources.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "dataplane/kv.h"
#include "dataplane/segment.h"

namespace hmr::dataplane {

// Pull interface over a sorted run. The view variant is the hot path:
// a returned view stays valid until the next call on the *same* source
// (or source destruction, whichever is earlier); callers that need
// longer lifetimes materialize with KvView::to_pair().
class KvSource {
 public:
  virtual ~KvSource() = default;
  // False at end of stream.
  virtual bool next(KvPair* out) = 0;
  // Allocation-free variant; the default adapter materializes through a
  // scratch pair, concrete sources override with zero-copy reads.
  virtual bool next_view(KvView* out) {
    if (!next(&scratch_)) return false;
    *out = KvView(scratch_);
    return true;
  }

 private:
  KvPair scratch_;  // backs the default next_view adapter
};

// Source over serialized record bytes.
class BytesSource final : public KvSource {
 public:
  explicit BytesSource(std::shared_ptr<const Bytes> backing);
  BytesSource(std::shared_ptr<const Bytes> backing,
              std::span<const std::uint8_t> slice);
  bool next(KvPair* out) override;
  bool next_view(KvView* out) override;  // aliases the backing buffer

 private:
  SegmentReader reader_;
};

// Source over an in-memory vector (already sorted by the caller).
class VectorSource final : public KvSource {
 public:
  explicit VectorSource(std::vector<KvPair> pairs)
      : pairs_(std::move(pairs)) {}
  bool next(KvPair* out) override;
  bool next_view(KvView* out) override;

 private:
  std::vector<KvPair> pairs_;
  size_t pos_ = 0;
};

// Heap-based k-way merge; yields globally sorted output if every input
// is sorted. The heap holds non-owning views into the sources' buffers;
// a source is refilled only on the call *after* its record was yielded,
// so a view handed out by next_view() honors the KvSource lifetime
// contract even for scratch-backed sources.
class StreamMerger final : public KvSource {
 public:
  explicit StreamMerger(std::vector<std::unique_ptr<KvSource>> sources);

  bool next(KvPair* out) override;
  bool next_view(KvView* out) override;
  std::uint64_t records_merged() const { return records_merged_; }

 private:
  struct HeapItem {
    KvView view;
    size_t source;
  };
  struct HeapGreater {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      // std::priority_queue is a max-heap; invert for min-merge. Ties
      // break toward the lower source index for determinism.
      const int c = KvLess::compare_keys(a.view.key, b.view.key);
      if (c != 0) return c > 0;
      return a.source > b.source;
    }
  };

  static constexpr size_t kNoRefill = size_t(-1);

  void refill(size_t source);

  std::vector<std::unique_ptr<KvSource>> sources_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapGreater> heap_;
  // Source whose view was yielded by the previous next_view() call and
  // must be refilled before the next pop.
  size_t pending_refill_ = kNoRefill;
  std::uint64_t records_merged_ = 0;
};

// Drains a source; convenience for tests and final passes.
std::vector<KvPair> drain(KvSource& source);
// True if `pairs` is sorted by KvLess key order.
bool is_sorted_run(std::span<const KvPair> pairs);

}  // namespace hmr::dataplane
