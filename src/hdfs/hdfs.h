// HDFS-lite: the storage substrate Hadoop MapReduce runs on (§II-A).
//
// One NameNode (namespace + block map + placement policy) and one
// DataNode per storage host. Files are split into blocks; each block is
// replicated over a write pipeline (client -> dn1 -> dn2 -> dn3, stages
// overlapped), and reads prefer a node-local replica — the property the
// JobTracker's locality-aware scheduling feeds on.
//
// Files carry real payload bytes plus the scale factor (DESIGN.md §2):
// blocks are sliced in real bytes, all timing is charged in modeled
// bytes through LocalFS and Network.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/conf.h"
#include "net/cluster.h"
#include "net/network.h"
#include "sim/sync.h"

namespace hmr::hdfs {

using net::Cluster;
using net::Host;
using net::Network;

struct HdfsParams {
  std::uint64_t block_size = 64 * 1024 * 1024;  // modeled bytes (dfs.block.size)
  int replication = 3;                          // dfs.replication
  std::uint64_t rpc_bytes = 256;                // NameNode RPC wire size

  static HdfsParams from_conf(const Conf& conf);
};

struct BlockInfo {
  std::uint64_t id = 0;
  std::uint64_t real_offset = 0;  // offset within the file's real payload
  std::uint64_t real_len = 0;
  std::uint32_t crc = 0;          // CRC-32C of the block payload
  std::vector<int> replicas;      // host ids holding the block
};

struct FileInfo {
  std::string path;
  double scale = 1.0;
  std::uint64_t real_size = 0;
  std::vector<BlockInfo> blocks;

  std::uint64_t modeled_size() const {
    return static_cast<std::uint64_t>(double(real_size) * scale);
  }
};

class NameNode {
 public:
  NameNode(HdfsParams params, std::vector<int> datanode_hosts,
           std::uint64_t seed);

  // Chooses `replication` distinct replicas; the writer host leads if it
  // runs a DataNode (write-locality, like the real placement policy).
  std::vector<int> choose_replicas(int writer_host,
                                   int replication_override = -1);

  Status create(const FileInfo& info);
  Result<FileInfo> stat(const std::string& path) const;
  // Mutable iteration for the replication monitor / death pruning.
  std::map<std::string, FileInfo>& files() { return files_; }
  // Removes a dead DataNode from the placement pool.
  void decommission(int host_id);
  bool exists(const std::string& path) const;
  Status remove(const std::string& path);
  // Metadata-only move (the task-commit primitive): fails NotFound when
  // `from` is missing, AlreadyExists when `to` is taken. Block placement
  // and payloads are untouched.
  Status rename(const std::string& from, const std::string& to);
  std::vector<std::string> list(const std::string& prefix) const;
  std::uint64_t next_block_id() { return next_block_id_++; }

  const HdfsParams& params() const { return params_; }
  const std::vector<int>& datanodes() const { return datanode_hosts_; }

 private:
  HdfsParams params_;
  std::vector<int> datanode_hosts_;
  Rng rng_;
  std::map<std::string, FileInfo> files_;
  std::uint64_t next_block_id_ = 1;
};

// The deployed filesystem: NameNode on a master host plus a DataNode on
// every storage host. This is the object MapReduce code holds.
class MiniDfs {
 public:
  // `master` is the NameNode host id; every id in `datanodes` stores
  // blocks on its host's LocalFS.
  MiniDfs(Cluster& cluster, Network& network, HdfsParams params, int master,
          std::vector<int> datanodes);

  NameNode& namenode() { return namenode_; }
  const HdfsParams& params() const { return namenode_.params(); }
  Host& master() { return cluster_.host(master_); }

  // Writes a file from `writer`: charges NameNode RPCs, pipelined
  // replica transfers and DataNode disk writes.
  sim::Task<Status> write(Host& writer, std::string path, Bytes data,
                          double scale = 1.0);

  // Reads the whole file to `reader` (locality-preferring), charging disk
  // and network; returns the reassembled real payload.
  sim::Task<Result<Bytes>> read(Host& reader, std::string path);

  // Reads one block (a map task's input split).
  sim::Task<Result<Bytes>> read_block(Host& reader, const std::string& path,
                                      size_t block_index);

  // Streaming writer (DFSOutputStream equivalent): append() buffers and
  // ships full blocks through the replica pipeline as they fill, so a
  // reducer's output writes overlap its compute.
  class Writer {
   public:
    // replication < 0 uses dfs.replication; TeraSort-style jobs write
    // their output at replication 1.
    Writer(MiniDfs& dfs, Host& writer, std::string path, double scale,
           int replication = -1);
    sim::Task<> append(std::span<const std::uint8_t> data);
    // Flushes the tail block and registers the file with the NameNode.
    sim::Task<Status> close();
    std::uint64_t real_written() const { return info_.real_size; }

   private:
    MiniDfs& dfs_;
    Host& writer_;
    double scale_;
    FileInfo info_;
    Bytes pending_;
    std::uint64_t real_block_;
    int replication_;
    bool closed_ = false;
  };

  // --- fault handling ---------------------------------------------------
  // Marks a DataNode dead: its replicas become unreadable, the NameNode
  // stops placing new blocks there, and every file's block map is pruned
  // (the DataNode's block report stops arriving).
  void kill_datanode(int host_id);
  bool is_alive(int host_id) const;
  // Re-replicates every under-replicated block from a surviving replica
  // (the NameNode's replication monitor), charging the copy traffic.
  sim::Task<int> replicate_under_replicated();
  // Blocks with fewer live replicas than dfs.replication.
  int under_replicated_blocks() const;

  // Untimed helpers for validation / job planning.
  Result<FileInfo> stat(const std::string& path) const {
    return namenode_.stat(path);
  }
  std::vector<std::string> list(const std::string& prefix) const {
    return namenode_.list(prefix);
  }
  // Untimed namespace operations a task commit uses (they ride the same
  // heartbeat RPCs the timed paths already charge).
  Status rename(const std::string& from, const std::string& to) {
    return namenode_.rename(from, to);
  }
  Status remove(const std::string& path) { return namenode_.remove(path); }
  // Concatenated payload without timing (for output validation).
  Result<Bytes> peek(const std::string& path) const;

 private:
  friend class Writer;
  static std::string block_path(std::uint64_t id) {
    return "dfs/blk_" + std::to_string(id);
  }
  sim::Task<> rpc(Host& from);
  bool is_datanode(int host) const;
  // Ships one block through the replica pipeline (stages overlapped) and
  // writes it on every replica's disk.
  sim::Task<> write_block(Host& writer, BlockInfo block, Bytes slice,
                          double scale);
  // Bounded-retry, checksum-verified write of one replica (shared by the
  // pipeline stages and the replication monitor): injected IO errors are
  // retried, a full disk backs off until the window drains, and a
  // silently corrupted write is redone — the DataNode verifies received
  // data against the client checksum before acking the stage.
  sim::Task<> write_replica(Host& dn, std::uint64_t block_id, Bytes slice,
                            double scale);
  // Drops a corrupt replica from the live block map (the DataNode's
  // block scanner reported a bad block) and kicks the replication
  // monitor to restore the replica count from a clean copy.
  void prune_replica(const std::string& path, std::uint64_t block_id,
                     int host_id);
  void spawn_rereplication();

  Cluster& cluster_;
  Network& network_;
  NameNode namenode_;
  int master_;
  std::set<int> dead_;
  bool rereplication_running_ = false;
};

}  // namespace hmr::hdfs
