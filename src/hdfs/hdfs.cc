#include "hdfs/hdfs.h"

#include <algorithm>

#include "common/crc32.h"

namespace hmr::hdfs {

namespace {

// Fault-recovery bounds. Transient-error probabilities are < 1, so the
// chance all attempts fail decays geometrically; disk-full windows are
// finite by construction and only need a wide-enough backoff budget.
constexpr int kReadAttemptsPerReplica = 3;
constexpr int kWriteAttempts = 16;
constexpr int kDiskFullAttempts = 240;
constexpr double kWriteBackoff = 0.5;  // seconds per disk-full retry

}  // namespace

HdfsParams HdfsParams::from_conf(const Conf& conf) {
  HdfsParams params;
  params.block_size = conf.get_bytes("dfs.block.size", params.block_size);
  params.replication =
      int(conf.get_int("dfs.replication", params.replication));
  return params;
}

NameNode::NameNode(HdfsParams params, std::vector<int> datanode_hosts,
                   std::uint64_t seed)
    : params_(params),
      datanode_hosts_(std::move(datanode_hosts)),
      rng_(seed, "namenode") {
  HMR_CHECK_MSG(!datanode_hosts_.empty(), "cluster has no DataNodes");
  HMR_CHECK_MSG(params_.replication >= 1, "replication must be >= 1");
}

std::vector<int> NameNode::choose_replicas(int writer_host,
                                           int replication_override) {
  const int replication =
      replication_override > 0 ? replication_override : params_.replication;
  const int want = std::min<int>(replication, int(datanode_hosts_.size()));
  std::vector<int> replicas;
  replicas.reserve(want);
  const bool writer_is_dn =
      std::find(datanode_hosts_.begin(), datanode_hosts_.end(),
                writer_host) != datanode_hosts_.end();
  if (writer_is_dn) replicas.push_back(writer_host);
  // Random distinct remote replicas (rack-awareness collapses to random in
  // a single-switch cluster).
  std::vector<int> candidates;
  for (int host : datanode_hosts_) {
    if (host != writer_host) candidates.push_back(host);
  }
  while (int(replicas.size()) < want && !candidates.empty()) {
    const size_t pick = rng_.below(candidates.size());
    replicas.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + pick);
  }
  return replicas;
}

Status NameNode::create(const FileInfo& info) {
  if (files_.contains(info.path)) {
    return Status::AlreadyExists(info.path);
  }
  files_.emplace(info.path, info);
  return Status::Ok();
}

Result<FileInfo> NameNode::stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("hdfs: " + path);
  return it->second;
}

bool NameNode::exists(const std::string& path) const {
  return files_.contains(path);
}

Status NameNode::remove(const std::string& path) {
  if (files_.erase(path) == 0) return Status::NotFound("hdfs: " + path);
  return Status::Ok();
}

Status NameNode::rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("hdfs: " + from);
  if (files_.contains(to)) return Status::AlreadyExists(to);
  FileInfo info = std::move(it->second);
  files_.erase(it);
  info.path = to;
  files_.emplace(to, std::move(info));
  return Status::Ok();
}

void NameNode::decommission(int host_id) {
  datanode_hosts_.erase(
      std::remove(datanode_hosts_.begin(), datanode_hosts_.end(), host_id),
      datanode_hosts_.end());
}

std::vector<std::string> NameNode::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.starts_with(prefix); ++it) {
    out.push_back(it->first);
  }
  return out;
}

MiniDfs::MiniDfs(Cluster& cluster, Network& network, HdfsParams params,
                 int master, std::vector<int> datanodes)
    : cluster_(cluster),
      network_(network),
      namenode_(params, std::move(datanodes), cluster.engine().seed()),
      master_(master) {}

bool MiniDfs::is_datanode(int host) const {
  const auto& dns = namenode_.datanodes();
  return std::find(dns.begin(), dns.end(), host) != dns.end();
}

sim::Task<> MiniDfs::rpc(Host& from) {
  co_await network_.transmit(from, master(), params().rpc_bytes);
  co_await network_.transmit(master(), from, params().rpc_bytes);
}

sim::Task<> MiniDfs::write_replica(Host& dn, std::uint64_t block_id,
                                   Bytes slice, double scale) {
  auto& metrics = cluster_.engine().metrics();
  int io_attempts = 0;
  int full_attempts = 0;
  for (;;) {
    const Status st =
        co_await dn.fs().write_file(block_path(block_id), Bytes(slice), scale);
    if (st.code() == StatusCode::kResourceExhausted) {
      HMR_CHECK_MSG(++full_attempts <= kDiskFullAttempts,
                    "disk-full window outlasted datanode write: " +
                        block_path(block_id));
      metrics.counter("hdfs.write.retries").add();
      co_await cluster_.engine().delay(kWriteBackoff);
      continue;
    }
    if (!st.ok()) {  // injected transient IO error
      HMR_CHECK_MSG(++io_attempts <= kWriteAttempts,
                    "datanode write of " + block_path(block_id) +
                        " still failing after retries: " + st.to_string());
      metrics.counter("hdfs.write.retries").add();
      continue;
    }
    // The DataNode verifies received data against the client's checksum
    // before acking the pipeline stage; a silently corrupted write is
    // redone, so an acked block is clean on every replica at creation.
    const auto stored = dn.fs().peek(block_path(block_id));
    HMR_CHECK(stored.ok());
    if (!stored->corrupted) co_return;
    HMR_CHECK_MSG(++io_attempts <= kWriteAttempts,
                  "datanode write of " + block_path(block_id) +
                      " corrupt after rewrites");
    metrics.counter("hdfs.write.rewrites").add();
  }
}

sim::Task<> MiniDfs::write_block(Host& writer, BlockInfo block, Bytes slice,
                                 double scale) {
  const auto modeled =
      static_cast<std::uint64_t>(double(block.real_len) * scale);
  // Pipelined replication: client->r0, r0->r1, r1->r2 run concurrently
  // (each stage forwards packets as they arrive); every replica also
  // writes the block to its local disk.
  sim::WaitGroup stages(cluster_.engine());
  Host* upstream = &writer;
  for (int replica : block.replicas) {
    Host& dn = cluster_.host(replica);
    stages.add();
    cluster_.engine().spawn(
        [](MiniDfs& dfs, Host* from, Host* to, std::uint64_t modeled,
           Bytes slice, double scale, std::uint64_t block_id,
           sim::WaitGroup& stages) -> sim::Task<> {
          if (from->id() != to->id()) {
            co_await dfs.network_.transmit(*from, *to, modeled);
          }
          co_await dfs.write_replica(*to, block_id, std::move(slice), scale);
          stages.done();
        }(*this, upstream, &dn, modeled, slice, scale, block.id, stages));
    upstream = &dn;
  }
  co_await stages.wait();
}

void MiniDfs::prune_replica(const std::string& path, std::uint64_t block_id,
                            int host_id) {
  auto it = namenode_.files().find(path);
  if (it == namenode_.files().end()) return;
  for (auto& block : it->second.blocks) {
    if (block.id != block_id) continue;
    auto pos = std::find(block.replicas.begin(), block.replicas.end(), host_id);
    if (pos == block.replicas.end()) return;  // already pruned
    // Never prune the last copy: a transient corruption streak would turn
    // into permanent data loss. The sole replica stays listed and readers
    // keep retrying it instead.
    if (block.replicas.size() <= 1) return;
    block.replicas.erase(pos);
    cluster_.engine().metrics().counter("hdfs.corrupt.replicas_pruned").add();
    return;
  }
}

void MiniDfs::spawn_rereplication() {
  // One monitor pass at a time; a pass started after a prune observes
  // every block pruned before it, so back-to-back prunes coalesce.
  if (rereplication_running_) return;
  rereplication_running_ = true;
  cluster_.engine().spawn([](MiniDfs& dfs) -> sim::Task<> {
    const int copied = co_await dfs.replicate_under_replicated();
    if (copied > 0) {
      dfs.cluster_.engine().metrics().counter("hdfs.rereplications").add(
          copied);
    }
    dfs.rereplication_running_ = false;
  }(*this));
}

MiniDfs::Writer::Writer(MiniDfs& dfs, Host& writer, std::string path,
                        double scale, int replication)
    : dfs_(dfs), writer_(writer), scale_(scale), replication_(replication) {
  info_.path = std::move(path);
  info_.scale = scale;
  real_block_ = std::max<std::uint64_t>(
      1,
      static_cast<std::uint64_t>(double(dfs.params().block_size) / scale));
}

sim::Task<> MiniDfs::Writer::append(std::span<const std::uint8_t> data) {
  HMR_CHECK_MSG(!closed_, "append to closed HDFS writer");
  pending_.insert(pending_.end(), data.begin(), data.end());
  info_.real_size += data.size();
  while (pending_.size() >= real_block_) {
    BlockInfo block;
    block.id = dfs_.namenode_.next_block_id();
    block.real_offset =
        info_.blocks.empty()
            ? 0
            : info_.blocks.back().real_offset + info_.blocks.back().real_len;
    block.real_len = real_block_;
    block.replicas =
        dfs_.namenode_.choose_replicas(writer_.id(), replication_);
    Bytes slice(pending_.begin(), pending_.begin() + real_block_);
    pending_.erase(pending_.begin(), pending_.begin() + real_block_);
    block.crc = crc32c(slice);
    info_.blocks.push_back(block);
    co_await dfs_.write_block(writer_, block, std::move(slice), scale_);
  }
}

sim::Task<Status> MiniDfs::Writer::close() {
  HMR_CHECK_MSG(!closed_, "double close of HDFS writer");
  closed_ = true;
  co_await dfs_.rpc(writer_);  // create()
  if (!pending_.empty() || info_.blocks.empty()) {
    BlockInfo block;
    block.id = dfs_.namenode_.next_block_id();
    block.real_offset =
        info_.blocks.empty()
            ? 0
            : info_.blocks.back().real_offset + info_.blocks.back().real_len;
    block.real_len = pending_.size();
    block.replicas =
        dfs_.namenode_.choose_replicas(writer_.id(), replication_);
    block.crc = crc32c(pending_);
    info_.blocks.push_back(block);
    co_await dfs_.write_block(writer_, block, std::move(pending_), scale_);
    pending_.clear();
  }
  co_await dfs_.rpc(writer_);  // complete()
  co_return dfs_.namenode_.create(info_);
}

sim::Task<Status> MiniDfs::write(Host& writer, std::string path, Bytes data,
                                 double scale) {
  Writer out(*this, writer, std::move(path), scale);
  co_await out.append(data);
  co_return co_await out.close();
}

void MiniDfs::kill_datanode(int host_id) {
  dead_.insert(host_id);
  namenode_.decommission(host_id);
  // Prune the dead node from every block's replica list (its block
  // report is gone).
  for (auto& [_, info] : namenode_.files()) {
    for (auto& block : info.blocks) {
      block.replicas.erase(
          std::remove(block.replicas.begin(), block.replicas.end(), host_id),
          block.replicas.end());
    }
  }
}

bool MiniDfs::is_alive(int host_id) const { return !dead_.contains(host_id); }

int MiniDfs::under_replicated_blocks() const {
  const int want = std::min<int>(namenode_.params().replication,
                                 int(namenode_.datanodes().size()));
  int count = 0;
  for (const auto& [_, info] :
       const_cast<NameNode&>(namenode_).files()) {
    for (const auto& block : info.blocks) {
      if (int(block.replicas.size()) < want) ++count;
    }
  }
  return count;
}

sim::Task<int> MiniDfs::replicate_under_replicated() {
  const int want = std::min<int>(namenode_.params().replication,
                                 int(namenode_.datanodes().size()));
  int copied = 0;
  for (auto& [_, info] : namenode_.files()) {
    for (auto& block : info.blocks) {
      while (int(block.replicas.size()) < want) {
        if (block.replicas.empty()) {
          // All replicas lost: the block (and file) is gone for good.
          break;
        }
        // Source: first replica serving a clean copy — corrupt or
        // persistently erroring replicas are skipped (a later read will
        // prune the corrupt ones).
        auto& metrics = cluster_.engine().metrics();
        Host* source = nullptr;
        Bytes payload;
        double scale = 1.0;
        std::uint64_t modeled = 0;
        const std::vector<int> sources = block.replicas;
        for (int candidate : sources) {
          Host& cand = cluster_.host(candidate);
          Result<storage::FileView> view =
              co_await cand.fs().read_file(block_path(block.id));
          for (int attempt = 1;
               !view.ok() &&
               view.status().code() == StatusCode::kUnavailable &&
               attempt < kReadAttemptsPerReplica;
               ++attempt) {
            metrics.counter("hdfs.read.retries").add();
            view = co_await cand.fs().read_file(block_path(block.id));
          }
          if (!view.ok()) continue;
          if (view->corrupted || crc32c(*view->data) != block.crc) {
            metrics.counter("hdfs.read.checksum_mismatches").add();
            continue;
          }
          source = &cand;
          payload = Bytes(*view->data);
          scale = view->scale;
          modeled = view->modeled_size();
          break;
        }
        if (source == nullptr) break;  // no clean copy this round
        // Target: a live DataNode without a replica.
        int target = -1;
        for (int candidate : namenode_.datanodes()) {
          if (std::find(block.replicas.begin(), block.replicas.end(),
                        candidate) == block.replicas.end()) {
            target = candidate;
            break;
          }
        }
        if (target < 0) break;  // not enough live nodes
        Host& dst = cluster_.host(target);
        co_await network_.transmit(*source, dst, modeled);
        co_await write_replica(dst, block.id, std::move(payload), scale);
        // The block map may have changed across the awaits; only record
        // the new replica if it is still missing.
        if (std::find(block.replicas.begin(), block.replicas.end(), target) ==
            block.replicas.end()) {
          block.replicas.push_back(target);
          ++copied;
        }
      }
    }
  }
  co_return copied;
}

sim::Task<Result<Bytes>> MiniDfs::read_block(Host& reader,
                                             const std::string& path,
                                             size_t block_index) {
  auto info = namenode_.stat(path);
  if (!info.ok()) co_return Result<Bytes>(info.status());
  if (block_index >= info->blocks.size()) {
    co_return Result<Bytes>(Status::OutOfRange("block index"));
  }
  co_await rpc(reader);  // getBlockLocations()
  const BlockInfo block = info->blocks[block_index];

  if (block.replicas.empty()) {
    co_return Result<Bytes>(Status::Unavailable(
        "all replicas of block " + std::to_string(block.id) + " are dead"));
  }
  // Candidate order: the node-local replica first, then placement order.
  std::vector<int> candidates;
  for (int replica : block.replicas) {
    if (replica == reader.id()) candidates.push_back(replica);
  }
  for (int replica : block.replicas) {
    if (replica != reader.id()) candidates.push_back(replica);
  }

  auto& metrics = cluster_.engine().metrics();
  Status last = Status::Unavailable("unreadable");
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (c > 0) metrics.counter("hdfs.replica.failovers").add();
    const int source = candidates[c];
    Host& dn = cluster_.host(source);
    bool saw_corrupt = false;
    for (int attempt = 0; attempt < kReadAttemptsPerReplica; ++attempt) {
      auto view = co_await dn.fs().read_file(block_path(block.id));
      if (!view.ok()) {
        last = view.status();
        // NotFound means the replica itself is gone; only transient
        // errors are worth retrying on the same DataNode.
        if (last.code() != StatusCode::kUnavailable) break;
        metrics.counter("hdfs.read.retries").add();
        continue;
      }
      // HDFS verifies block checksums on every read (DataChecksum).
      if (view->corrupted || crc32c(*view->data) != block.crc) {
        metrics.counter("hdfs.read.checksum_mismatches").add();
        last = Status::Internal("checksum mismatch reading block " +
                                std::to_string(block.id) + " of " + path);
        saw_corrupt = true;  // re-read: a transient flip may clear
        continue;
      }
      if (source != reader.id()) {
        co_await network_.transmit(dn, reader, view->modeled_size());
      }
      co_return Bytes(*view->data);
    }
    if (saw_corrupt) {
      // Persistently corrupt replica: report it bad, drop it from the
      // block map, and let the replication monitor restore the count
      // from a clean copy while we fail over.
      prune_replica(path, block.id, source);
      spawn_rereplication();
    }
  }
  co_return Result<Bytes>(Status::Unavailable(
      "no readable replica of block " + std::to_string(block.id) + " of " +
      path + " (last error: " + last.to_string() + ")"));
}

sim::Task<Result<Bytes>> MiniDfs::read(Host& reader, std::string path) {
  auto info = namenode_.stat(path);
  if (!info.ok()) co_return Result<Bytes>(info.status());
  Bytes out;
  out.reserve(info->real_size);
  for (size_t b = 0; b < info->blocks.size(); ++b) {
    auto block = co_await read_block(reader, path, b);
    if (!block.ok()) co_return Result<Bytes>(block.status());
    out.insert(out.end(), block->begin(), block->end());
  }
  co_return out;
}

Result<Bytes> MiniDfs::peek(const std::string& path) const {
  auto info = namenode_.stat(path);
  if (!info.ok()) return info.status();
  Bytes out;
  out.reserve(info->real_size);
  for (const auto& block : info->blocks) {
    // Any clean replica works; at-rest rot on one replica must not make
    // validation read garbage when a clean copy exists.
    std::optional<storage::FileView> chosen;
    for (int replica : block.replicas) {
      auto view = cluster_.host(replica).fs().peek(block_path(block.id));
      if (!view.ok()) continue;
      if (!view->corrupted) {
        chosen = *view;
        break;
      }
      if (!chosen) chosen = *view;  // corrupt fallback, better than nothing
    }
    if (!chosen) {
      return Status::Unavailable("no readable replica of block " +
                                 std::to_string(block.id) + " of " + path);
    }
    out.insert(out.end(), chosen->data->begin(), chosen->data->end());
  }
  return out;
}

}  // namespace hmr::hdfs
