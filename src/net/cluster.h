// Hosts and the cluster container.
//
// A Host bundles the per-node simulated resources: CPU cores (a counted
// sim::Resource every compute and socket-stack charge goes through),
// directional NIC links, and the node's local filesystem over its disks.
// Cluster wires N hosts to one non-blocking switch, mirroring the
// paper's testbed (§IV-A: Westmere, 8 cores, QDR HCA, Mellanox switch).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/profile.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/sync.h"
#include "storage/localfs.h"

namespace hmr::net {

// One direction of a NIC link, fair-shared among active flows.
struct SharedLink {
  double bw = 0.0;  // bytes/sec
  int active = 0;   // flows currently using this direction

  double share() const { return active > 0 ? bw / active : bw; }
};

struct HostSpec {
  std::string name;
  int cores = 8;  // dual quad-core Westmere
  std::vector<storage::DiskSpec> disks = {storage::DiskSpec::hdd("hdd0")};
};

class Host {
 public:
  Host(sim::Engine& engine, int id, const HostSpec& spec,
       const NetProfile& profile);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  int cores() const { return cores_; }

  sim::Resource& cpu() { return cpu_; }
  storage::LocalFS& fs() { return *fs_; }
  SharedLink& egress() { return egress_; }
  SharedLink& ingress() { return ingress_; }

  // Occupies one core for `seconds` of simulated time (scaled by the
  // host's current compute speed factor).
  sim::Task<> compute(double seconds);

  // Fault injection: multiplies both NIC directions' bandwidth by
  // `factor`. Flows in progress see the new share on their next
  // transmit step.
  void degrade_nic(double factor);
  // Fault injection: multiplies the host's compute speed by `factor`
  // (< 1 slows every subsequent compute()). Restores compose: degrading
  // by f and later by 1/f returns to the original speed.
  void degrade_cpu(double factor);
  double cpu_speed() const { return cpu_speed_; }

 private:
  sim::Engine& engine_;
  int id_;
  std::string name_;
  int cores_;
  sim::Resource cpu_;
  std::unique_ptr<storage::LocalFS> fs_;
  SharedLink egress_;
  SharedLink ingress_;
  double cpu_speed_ = 1.0;
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, const NetProfile& profile,
          const std::vector<HostSpec>& specs);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  const NetProfile& profile() const { return profile_; }
  size_t size() const { return hosts_.size(); }
  Host& host(size_t i) { return *hosts_.at(i); }
  std::vector<Host*> hosts();

  // Arms the plan's NIC degradations and disk faults: spawns a timer per
  // NIC/disk degrade entry, and hands each host's DiskFault to its
  // LocalFS with a host-unique RNG stream. (Tracker kills and response
  // drops are consulted inline by the shuffle engines.)
  void inject_faults(const sim::FaultPlan& plan);
  // The disk half alone — also the entry point for conf-driven plans
  // (`sim.fault.disk.*`, see sim::FaultPlan::disk_faults_from_conf).
  void arm_disk_faults(const std::map<int, sim::DiskFault>& faults);
  // The cpu.degrade half alone — also the entry point for conf-driven
  // plans (`sim.fault.cpu.*`, see sim::ComputeFaults::from_conf). Task
  // hang/slow windows are not armed here: they are consulted per
  // attempt checkpoint by mapred.
  void arm_cpu_degrades(const std::vector<sim::CpuDegrade>& degrades);

  // Uniform cluster of n hosts named host0..host{n-1}.
  static std::vector<HostSpec> uniform(int n, int disks_per_host,
                                       bool ssd = false, int cores = 8);

 private:
  sim::Engine& engine_;
  NetProfile profile_;
  std::vector<std::unique_ptr<Host>> hosts_;
};

}  // namespace hmr::net
