#include "net/socket.h"

namespace hmr::net {

namespace {
constexpr size_t kReceiveWindowMessages = 8;
constexpr size_t kListenBacklog = 128;
}  // namespace

Socket::Socket(Network& network, Host& local, Host& remote,
               std::shared_ptr<Conn> conn, bool is_a)
    : network_(network),
      local_(local),
      remote_(remote),
      conn_(std::move(conn)),
      is_a_(is_a) {}

Socket::~Socket() { close(); }

sim::Task<> Socket::send(Message msg) {
  HMR_CHECK_MSG(!closed_, "send on closed socket");
  Direction& dir = is_a_ ? conn_->a_to_b : conn_->b_to_a;
  auto lock = co_await sim::hold(dir.lock);
  co_await network_.transmit(local_, remote_, msg.modeled_bytes);
  co_await dir.buffer.send(std::move(msg));
}

sim::Task<std::optional<Message>> Socket::recv() {
  Direction& dir = is_a_ ? conn_->b_to_a : conn_->a_to_b;
  co_return co_await dir.buffer.recv();
}

void Socket::close() {
  if (closed_) return;
  closed_ = true;
  Direction& dir = is_a_ ? conn_->a_to_b : conn_->b_to_a;
  dir.buffer.close();
}

Listener::Listener(Network& network, Host& host)
    : network_(network), host_(host), pending_(network.engine(), kListenBacklog) {}

sim::Task<std::unique_ptr<Socket>> Listener::accept() {
  auto pending = co_await pending_.recv();
  if (!pending) co_return nullptr;
  // SYN-ACK back to the client completes the handshake.
  co_await network_.transmit(host_, *pending->client, 0);
  pending->established->set();
  co_return std::unique_ptr<Socket>(new Socket(
      network_, host_, *pending->client, pending->conn, /*is_a=*/false));
}

sim::Task<std::unique_ptr<Socket>> connect(Network& network, Host& from,
                                           Listener& listener) {
  auto conn = std::make_shared<Socket::Conn>(network.engine(),
                                             kReceiveWindowMessages);
  sim::Event established(network.engine());
  // SYN.
  co_await network.transmit(from, listener.host(), 0);
  // Built as a named local, not inline in the co_await operand: GCC 12
  // miscompiles aggregate construction inside co_await arguments (the
  // shared_ptr copy is elided into a bitwise move, splitting ownership).
  Listener::Pending pending{&from, conn, &established};
  co_await listener.pending_.send(std::move(pending));
  co_await established.wait();
  co_return std::unique_ptr<Socket>(
      new Socket(network, from, listener.host(), conn, /*is_a=*/true));
}

}  // namespace hmr::net
