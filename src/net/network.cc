#include "net/network.h"

#include <algorithm>

namespace hmr::net {
namespace {

// RAII flow registration on both link directions.
class FlowReg {
 public:
  FlowReg(SharedLink& a, SharedLink& b) : a_(a), b_(b) {
    ++a_.active;
    ++b_.active;
  }
  ~FlowReg() {
    --a_.active;
    --b_.active;
  }
  FlowReg(const FlowReg&) = delete;
  FlowReg& operator=(const FlowReg&) = delete;

 private:
  SharedLink& a_;
  SharedLink& b_;
};

}  // namespace

Network::Network(sim::Engine& engine, NetProfile profile)
    : engine_(engine),
      profile_(std::move(profile)),
      messages_metric_(engine.metrics().counter("net.messages")),
      bytes_metric_(engine.metrics().counter("net.bytes")),
      messages_received_metric_(
          engine.metrics().counter("net.messages_received")),
      bytes_received_metric_(engine.metrics().counter("net.bytes_received")),
      cpu_seconds_metric_(engine.metrics().gauge("net.cpu_seconds")) {}

sim::Task<> Network::transmit(Host& src, Host& dst,
                              std::uint64_t modeled_bytes) {
  ++messages_;
  bytes_ += modeled_bytes;
  messages_metric_.add();
  bytes_metric_.add(std::int64_t(modeled_bytes));

  // Fixed per-message CPU (syscall / WQE posting) on the sender.
  if (profile_.per_msg_cpu > 0.0) {
    if (profile_.os_bypass()) {
      // Posting a WQE is cheap enough not to contend for a core.
      co_await engine_.delay(profile_.per_msg_cpu);
    } else {
      co_await src.compute(profile_.per_msg_cpu);
      cpu_seconds_ += profile_.per_msg_cpu;
      cpu_seconds_metric_.set(cpu_seconds_);
    }
  }
  co_await engine_.delay(profile_.base_latency);

  if (modeled_bytes == 0 || &src == &dst) {
    // Loopback or pure control: latency only.
    ++messages_received_;
    bytes_received_ += modeled_bytes;
    messages_received_metric_.add();
    bytes_received_metric_.add(std::int64_t(modeled_bytes));
    co_return;
  }

  FlowReg flow(src.egress(), dst.ingress());
  std::uint64_t left = modeled_bytes;
  while (left > 0) {
    const std::uint64_t chunk = std::min(left, chunk_bytes_);
    double rate = std::min(src.egress().share(), dst.ingress().share());
    if (profile_.incast_penalty > 0.0 && dst.ingress().active > 1) {
      rate /= 1.0 + profile_.incast_penalty * double(dst.ingress().active - 1);
    }
    const double wire = double(chunk) / rate;
    if (profile_.os_bypass()) {
      co_await engine_.delay(wire);
    } else {
      // The socket stack keeps a core busy while streaming: first half of
      // the chunk on the sender (copy + segmentation), second half on the
      // receiver (copy + interrupt handling). One resource at a time, so
      // flows cannot deadlock, but saturated hosts slow the stream down.
      {
        auto core = co_await sim::hold(src.cpu());
        co_await engine_.delay(wire / 2);
      }
      {
        auto core = co_await sim::hold(dst.cpu());
        co_await engine_.delay(wire / 2);
      }
      cpu_seconds_ += wire;
      cpu_seconds_metric_.set(cpu_seconds_);
    }
    left -= chunk;
  }
  // Delivery accounting: a transmit destroyed mid-flight (e.g. a teardown
  // cancelling the coroutine) leaves sent > received, which the simfuzz
  // conservation oracle flags.
  ++messages_received_;
  bytes_received_ += modeled_bytes;
  messages_received_metric_.add();
  bytes_received_metric_.add(std::int64_t(modeled_bytes));
}

}  // namespace hmr::net
