// Fabric profiles for the interconnects evaluated in the paper (§IV):
// 1GigE, 10GigE (Chelsio T320 w/ TOE), IPoIB on a 32 Gbps QDR HCA, and
// native IB verbs on the same HCA.
//
// The decisive differences the models encode:
//  * effective bandwidth: the socket path on IB (IPoIB) reaches only a
//    fraction of QDR line rate; verbs reaches most of it;
//  * small-message latency: verbs is OS-bypassed (microseconds), sockets
//    pay the kernel stack (tens of microseconds);
//  * CPU involvement: sockets consume a core while streaming (copies,
//    checksums, interrupts), so transfers contend with map/reduce
//    compute; RDMA offloads to the HCA and leaves the cores alone.
#pragma once

#include <string>

namespace hmr::net {

struct NetProfile {
  std::string name;
  double link_bw;        // bytes/sec per NIC direction at line rate
  double efficiency;     // achievable fraction of link_bw for this stack
  double base_latency;   // one-way first-byte latency, seconds
  double stack_bw;       // CPU-limited throughput of the socket stack
                         // (bytes/sec per core); 0 = OS-bypass (no core held)
  double per_msg_cpu;    // fixed CPU seconds per message (syscalls, irq)
  // TCP incast: goodput collapse under fan-in (switch buffer overruns +
  // retransmission timeouts). Effective receive rate is divided by
  // (1 + incast_penalty * (inbound_flows - 1)). Zero for RDMA transports
  // (credit-based link-level flow control).
  double incast_penalty = 0.0;

  bool os_bypass() const { return stack_bw == 0.0; }
  double effective_bw() const { return link_bw * efficiency; }

  static NetProfile one_gige();
  static NetProfile ten_gige();
  static NetProfile ipoib_qdr();   // "IPoIB (32Gbps)" in the figures
  static NetProfile verbs_qdr();   // native RDMA path ("OSU-IB", Hadoop-A)
};

}  // namespace hmr::net
