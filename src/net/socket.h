// Connection-oriented socket transport (the vanilla Hadoop data path).
//
// Gives TCP-ish semantics over the Network model: connect/accept with a
// handshake RTT, in-order message streams per direction, sender
// serialization, and bounded receive buffering (back-pressure). All
// byte movement goes through Network::transmit, so socket users pay the
// profile's CPU costs — this is what makes IPoIB/10GigE/1GigE runs
// behave like the paper's socket numbers.
#pragma once

#include <memory>
#include <optional>

#include "net/cluster.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/channel.h"
#include "sim/sync.h"

namespace hmr::net {

class Listener;

class Socket {
 public:
  // Sockets are created in connected pairs by Listener/connect().
  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // In-order, serialized per direction; blocks when the peer's receive
  // buffer is full (flow control).
  sim::Task<> send(Message msg);
  // Next message, or nullopt once the peer closed and the stream drained.
  sim::Task<std::optional<Message>> recv();
  // Closes this end's outgoing direction (like shutdown(SHUT_WR)).
  void close();

  Host& local_host() { return local_; }
  Host& remote_host() { return remote_; }

 private:
  friend class Listener;
  friend sim::Task<std::unique_ptr<Socket>> connect(Network& network,
                                                    Host& from,
                                                    Listener& listener);
  struct Direction {
    explicit Direction(sim::Engine& engine, size_t window)
        : buffer(engine, window), lock(engine, 1, "sock.dir") {}
    sim::Channel<Message> buffer;
    sim::Resource lock;
  };
  struct Conn {
    Conn(sim::Engine& engine, size_t window)
        : a_to_b(engine, window), b_to_a(engine, window) {}
    Direction a_to_b;
    Direction b_to_a;
  };

  Socket(Network& network, Host& local, Host& remote,
         std::shared_ptr<Conn> conn, bool is_a);

  Network& network_;
  Host& local_;
  Host& remote_;
  std::shared_ptr<Conn> conn_;
  bool is_a_;
  bool closed_ = false;
};

class Listener {
 public:
  Listener(Network& network, Host& host);

  // Blocks until a client connects.
  sim::Task<std::unique_ptr<Socket>> accept();
  Host& host() { return host_; }
  // Stop accepting; parked accept() calls resolve to nullptr... they
  // return a null unique_ptr after close().
  void close() { pending_.close(); }

 private:
  friend sim::Task<std::unique_ptr<Socket>> connect(Network& network,
                                                    Host& from,
                                                    Listener& listener);
  struct Pending {
    Host* client;
    std::shared_ptr<Socket::Conn> conn;
    sim::Event* established;
  };
  Network& network_;
  Host& host_;
  sim::Channel<Pending> pending_;
};

// Client side: pays a handshake round trip, returns the connected socket.
sim::Task<std::unique_ptr<Socket>> connect(Network& network, Host& from,
                                           Listener& listener);

}  // namespace hmr::net
