#include "net/cluster.h"

namespace hmr::net {

Host::Host(sim::Engine& engine, int id, const HostSpec& spec,
           const NetProfile& profile)
    : engine_(engine),
      id_(id),
      name_(spec.name),
      cores_(spec.cores),
      cpu_(engine, spec.cores, spec.name + ".cpu") {
  std::vector<std::unique_ptr<storage::Disk>> disks;
  disks.reserve(spec.disks.size());
  for (const auto& disk_spec : spec.disks) {
    auto named = disk_spec;
    named.name = spec.name + "." + disk_spec.name;
    disks.push_back(std::make_unique<storage::Disk>(engine, std::move(named)));
  }
  fs_ = std::make_unique<storage::LocalFS>(engine, std::move(disks));
  egress_.bw = profile.effective_bw();
  ingress_.bw = profile.effective_bw();
}

sim::Task<> Host::compute(double seconds) {
  auto guard = co_await sim::hold(cpu_);
  co_await engine_.delay(seconds / cpu_speed_);
}

void Host::degrade_nic(double factor) {
  egress_.bw *= factor;
  ingress_.bw *= factor;
}

void Host::degrade_cpu(double factor) { cpu_speed_ *= factor; }

Cluster::Cluster(sim::Engine& engine, const NetProfile& profile,
                 const std::vector<HostSpec>& specs)
    : engine_(engine), profile_(profile) {
  int id = 0;
  std::uint64_t cores = 0;
  for (const auto& spec : specs) {
    cores += std::uint64_t(spec.cores);
    hosts_.push_back(std::make_unique<Host>(engine, id++, spec, profile_));
  }
  engine_.metrics().gauge("cluster.hosts").set(double(hosts_.size()));
  engine_.metrics().gauge("cluster.cores").set(double(cores));
}

void Cluster::inject_faults(const sim::FaultPlan& plan) {
  for (const auto& degrade : plan.nic_degrades()) {
    engine_.metrics().counter("cluster.nic_degrades_armed").add();
    if (degrade.restore_at >= 0) {
      engine_.metrics().counter("cluster.nic_restores_armed").add();
    }
    Host& host = *hosts_.at(size_t(degrade.host_id));
    engine_.spawn([](sim::Engine& engine, Host& host, double at,
                     double factor, double restore_at) -> sim::Task<> {
      const double dt = at - engine.now();
      if (dt > 0) co_await engine.delay(dt);
      host.degrade_nic(factor);
      if (restore_at < 0) co_return;
      const double window = restore_at - engine.now();
      if (window > 0) co_await engine.delay(window);
      host.degrade_nic(1.0 / factor);
    }(engine_, host, degrade.at, degrade.factor, degrade.restore_at));
  }
  arm_cpu_degrades(plan.compute_faults().cpu);
  arm_disk_faults(plan.disk_faults());
}

void Cluster::arm_cpu_degrades(const std::vector<sim::CpuDegrade>& degrades) {
  for (const auto& degrade : degrades) {
    engine_.metrics().counter("cluster.cpu_degrades_armed").add();
    Host& host = *hosts_.at(size_t(degrade.host_id));
    engine_.spawn([](sim::Engine& engine, Host& host, double at,
                     double factor, double duration) -> sim::Task<> {
      const double dt = at - engine.now();
      if (dt > 0) co_await engine.delay(dt);
      host.degrade_cpu(factor);
      if (duration <= 0) co_return;
      co_await engine.delay(duration);
      host.degrade_cpu(1.0 / factor);
    }(engine_, host, degrade.at, degrade.factor, degrade.duration));
  }
}

void Cluster::arm_disk_faults(const std::map<int, sim::DiskFault>& faults) {
  for (const auto& [host_id, fault] : faults) {
    Host& host = *hosts_.at(size_t(host_id));
    if (fault.any_io_fault()) {
      engine_.metrics().counter("cluster.disk_faults_armed").add();
      host.fs().arm_fault(
          fault, engine_.make_rng("disk.fault.h" + std::to_string(host_id)));
    }
    if (fault.slow_at >= 0) {
      engine_.metrics().counter("cluster.disk_degrades_armed").add();
      engine_.spawn([](sim::Engine& engine, Host& host, double at,
                       double factor) -> sim::Task<> {
        const double dt = at - engine.now();
        if (dt > 0) co_await engine.delay(dt);
        host.fs().degrade_disks(factor);
      }(engine_, host, fault.slow_at, fault.slow_factor));
    }
  }
}

std::vector<Host*> Cluster::hosts() {
  std::vector<Host*> out;
  out.reserve(hosts_.size());
  for (auto& h : hosts_) out.push_back(h.get());
  return out;
}

std::vector<HostSpec> Cluster::uniform(int n, int disks_per_host, bool ssd,
                                       int cores) {
  std::vector<HostSpec> specs;
  specs.reserve(n);
  for (int i = 0; i < n; ++i) {
    HostSpec spec;
    spec.name = "host" + std::to_string(i);
    spec.cores = cores;
    spec.disks.clear();
    for (int d = 0; d < disks_per_host; ++d) {
      spec.disks.push_back(ssd ? storage::DiskSpec::ssd("ssd" + std::to_string(d))
                               : storage::DiskSpec::hdd("hdd" + std::to_string(d)));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace hmr::net
