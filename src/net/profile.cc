#include "net/profile.h"

namespace hmr::net {

// Calibration notes: bandwidth/latency figures follow common microbenchmark
// results on the paper-era hardware (Westmere, ConnectX-2 QDR, Chelsio
// T320): netperf on 1GigE ~941 Mb/s; 10GigE with TOE ~9.4 Gb/s; IPoIB
// (connected mode) ~12-14 Gb/s of the 32 Gb/s signaling rate; verbs
// ib_send_bw ~26 Gb/s payload. Socket stacks move ~2-3 GB/s per core.

NetProfile NetProfile::one_gige() {
  return {
      .name = "1GigE",
      .link_bw = 125.0e6,
      .efficiency = 0.94,
      .base_latency = 55e-6,
      .stack_bw = 2.5e9,
      .per_msg_cpu = 4e-6,
      .incast_penalty = 0.4,   // low-BDP links collapse hardest
  };
}

NetProfile NetProfile::ten_gige() {
  return {
      .name = "10GigE",
      .link_bw = 1.25e9,
      .efficiency = 0.92,
      .base_latency = 30e-6,  // TOE-assisted
      .stack_bw = 3.0e9,      // TOE offloads segmentation, not copies
      .per_msg_cpu = 3e-6,
      .incast_penalty = 0.05,
  };
}

NetProfile NetProfile::ipoib_qdr() {
  return {
      .name = "IPoIB (32Gbps)",
      .link_bw = 4.0e9,       // QDR payload capacity
      .efficiency = 0.42,     // IPoIB connected-mode reaches ~13.5 Gb/s
      .base_latency = 18e-6,
      .stack_bw = 2.5e9,
      .per_msg_cpu = 3e-6,
      .incast_penalty = 0.03,  // IB link-level credits soften incast
  };
}

NetProfile NetProfile::verbs_qdr() {
  return {
      .name = "IB verbs (32Gbps)",
      .link_bw = 4.0e9,
      .efficiency = 0.81,     // ~26 Gb/s payload
      .base_latency = 2e-6,
      .stack_bw = 0.0,        // OS bypass: HCA DMA, no core held
      .per_msg_cpu = 0.7e-6,  // WQE posting + completion handling
  };
}

}  // namespace hmr::net
