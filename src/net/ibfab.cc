#include "net/ibfab.h"

#include <algorithm>

namespace hmr::ibv {

sim::Task<Completion> CompletionQueue::wait() {
  auto completion = co_await entries_.recv();
  HMR_CHECK_MSG(completion.has_value(), "completion queue torn down");
  co_return *completion;
}

sim::Task<std::optional<Completion>> CompletionQueue::wait_opt() {
  co_return co_await entries_.recv();
}

std::optional<Completion> CompletionQueue::poll() {
  return entries_.try_recv();
}

sim::Task<> CompletionQueue::push(Completion completion) {
  if (!entries_.closed()) co_await entries_.send(std::move(completion));
}

ProtectionDomain::ProtectionDomain(sim::Engine& engine, Host& host)
    : engine_(engine), host_(host) {}

sim::Task<MemoryRegion*> ProtectionDomain::register_memory(
    MemoryRegionSpec spec) {
  HMR_CHECK_MSG(spec.buffer != nullptr, "registering null buffer");
  auto region = std::make_unique<MemoryRegion>();
  region->rkey_ = next_rkey_++;
  region->spec_ = std::move(spec);
  const double mib = double(region->modeled_size()) / (1024.0 * 1024.0);
  co_await engine_.delay(reg_cost_.base + reg_cost_.per_mib * mib);
  MemoryRegion* raw = region.get();
  regions_.emplace(raw->rkey_, std::move(region));
  co_return raw;
}

Status ProtectionDomain::deregister(std::uint32_t rkey) {
  if (regions_.erase(rkey) == 0) {
    return Status::NotFound("no such rkey: " + std::to_string(rkey));
  }
  return Status::Ok();
}

const MemoryRegion* ProtectionDomain::find(std::uint32_t rkey) const {
  auto it = regions_.find(rkey);
  return it == regions_.end() ? nullptr : it->second.get();
}

MemoryRegion* ProtectionDomain::find_mutable(std::uint32_t rkey) {
  auto it = regions_.find(rkey);
  return it == regions_.end() ? nullptr : it->second.get();
}

QueuePair::QueuePair(Network& network, ProtectionDomain& pd,
                     CompletionQueue& send_cq, CompletionQueue& recv_cq)
    : network_(network),
      pd_(pd),
      send_cq_(send_cq),
      recv_cq_(recv_cq),
      recv_posted_(network.engine()),
      send_lock_(network.engine(), 1, "qp.send") {}

Status QueuePair::connect(QueuePair& a, QueuePair& b) {
  if (a.state_ != QpState::kReset || b.state_ != QpState::kReset) {
    return Status::FailedPrecondition("QP not in RESET");
  }
  a.peer_ = &b;
  b.peer_ = &a;
  a.state_ = QpState::kRts;
  b.state_ = QpState::kRts;
  return Status::Ok();
}

Host& QueuePair::local_host() { return pd_.host(); }

Host& QueuePair::remote_host() {
  HMR_CHECK_MSG(peer_ != nullptr, "QP not connected");
  return peer_->pd_.host();
}

Status QueuePair::post_send(SendWr wr) {
  if (state_ != QpState::kRts) {
    return Status::FailedPrecondition("post_send on non-RTS QP");
  }
  network_.engine().spawn(run_send(std::move(wr)));
  return Status::Ok();
}

Status QueuePair::post_recv(RecvWr wr) {
  if (state_ == QpState::kReset || state_ == QpState::kError) {
    return Status::FailedPrecondition("post_recv on RESET/ERROR QP");
  }
  recv_queue_.push_back(wr);
  recv_posted_.set();
  recv_posted_.reset();
  return Status::Ok();
}

Status QueuePair::post_rdma_read(RdmaReadWr wr) {
  if (state_ != QpState::kRts) {
    return Status::FailedPrecondition("post_rdma_read on non-RTS QP");
  }
  network_.engine().spawn(run_rdma_read(wr));
  return Status::Ok();
}

Status QueuePair::post_rdma_write(RdmaWriteWr wr) {
  if (state_ != QpState::kRts) {
    return Status::FailedPrecondition("post_rdma_write on non-RTS QP");
  }
  network_.engine().spawn(run_rdma_write(std::move(wr)));
  return Status::Ok();
}

sim::Task<> QueuePair::run_send(SendWr wr) {
  auto order = co_await sim::hold(send_lock_);
  // RNR: park until the peer posts a receive (infinite rnr_retry).
  while (peer_->recv_queue_.empty()) {
    co_await peer_->recv_posted_.wait();
  }
  RecvWr recv = peer_->recv_queue_.front();
  peer_->recv_queue_.pop_front();

  const std::uint64_t bytes = wr.message.modeled_bytes;
  co_await network_.transmit(local_host(), remote_host(), bytes);

  Completion rx;
  rx.wr_id = recv.wr_id;
  rx.opcode = Opcode::kRecv;
  rx.byte_len = bytes;
  rx.message = std::move(wr.message);
  co_await peer_->recv_cq_.push(std::move(rx));

  Completion tx;
  tx.wr_id = wr.wr_id;
  tx.opcode = Opcode::kSend;
  tx.byte_len = bytes;
  co_await send_cq_.push(std::move(tx));
}

sim::Task<> QueuePair::run_rdma_read(RdmaReadWr wr) {
  auto order = co_await sim::hold(send_lock_);
  Completion completion;
  completion.wr_id = wr.wr_id;
  completion.opcode = Opcode::kRdmaRead;

  const MemoryRegion* region = peer_->pd_.find(wr.remote_rkey);
  if (region == nullptr ||
      wr.real_offset + wr.real_len > region->real_size()) {
    completion.status = WcStatus::kRemoteAccessError;
    state_ = QpState::kError;
    co_await send_cq_.push(std::move(completion));
    co_return;
  }
  // Read request travels to the responder (latency-only), data streams
  // back DMA-to-DMA: no CPU at either end.
  const auto modeled = static_cast<std::uint64_t>(
      double(wr.real_len) * region->spec().scale);
  co_await network_.transmit(remote_host(), local_host(), modeled);

  Bytes slice(region->spec().buffer->begin() + wr.real_offset,
              region->spec().buffer->begin() + wr.real_offset + wr.real_len);
  completion.byte_len = modeled;
  completion.message =
      Message::share(std::make_shared<const Bytes>(std::move(slice)), modeled);
  co_await send_cq_.push(std::move(completion));
}

sim::Task<> QueuePair::run_rdma_write(RdmaWriteWr wr) {
  auto order = co_await sim::hold(send_lock_);
  Completion completion;
  completion.wr_id = wr.wr_id;
  completion.opcode = Opcode::kRdmaWrite;

  MemoryRegion* region = peer_->pd_.find_mutable(wr.remote_rkey);
  const std::uint64_t real_len = wr.message.real_size();
  if (region == nullptr || real_len > region->real_size()) {
    completion.status = WcStatus::kRemoteAccessError;
    state_ = QpState::kError;
    co_await send_cq_.push(std::move(completion));
    co_return;
  }
  co_await network_.transmit(local_host(), remote_host(),
                             wr.message.modeled_bytes);
  std::copy(wr.message.payload->begin(), wr.message.payload->end(),
            region->spec().buffer->begin());
  completion.byte_len = wr.message.modeled_bytes;
  co_await send_cq_.push(std::move(completion));
}

}  // namespace hmr::ibv
