// Wire message: a real payload (shared, zero-copy through the sim) plus
// the modeled on-wire size. `tag` is a protocol discriminator private to
// each transport user (shuffle request/response, HDFS ops, ...).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.h"

namespace hmr::net {

struct Message {
  std::shared_ptr<const Bytes> payload;  // may be null (control-only)
  std::uint64_t modeled_bytes = 0;       // bytes charged on the wire
  std::uint64_t tag = 0;

  static Message control(std::uint64_t tag, std::uint64_t modeled_bytes) {
    return Message{nullptr, modeled_bytes, tag};
  }
  static Message data(Bytes bytes, double scale = 1.0,
                      std::uint64_t tag = 0) {
    const auto modeled =
        static_cast<std::uint64_t>(double(bytes.size()) * scale);
    return Message{std::make_shared<const Bytes>(std::move(bytes)), modeled,
                   tag};
  }
  static Message share(std::shared_ptr<const Bytes> bytes,
                       std::uint64_t modeled_bytes, std::uint64_t tag = 0) {
    return Message{std::move(bytes), modeled_bytes, tag};
  }

  std::uint64_t real_size() const { return payload ? payload->size() : 0; }

  // Overrides the wire charge (e.g. framing overhead on small control
  // payloads).
  Message&& with_modeled(std::uint64_t bytes) && {
    modeled_bytes = bytes;
    return std::move(*this);
  }
};

}  // namespace hmr::net
