// Flow-level network model.
//
// All hosts hang off one non-blocking switch; contention happens at the
// NIC links. A transfer is chunked, and each chunk moves at
// min(sender-egress share, receiver-ingress share) sampled when the
// chunk starts — the standard fluid approximation of max-min fairness.
//
// Socket-path transfers additionally occupy a CPU core alternately on
// the sending and receiving host for the wire duration (kernel copies,
// checksums, interrupts), so they contend with map/reduce compute.
// OS-bypass (verbs) transfers never touch the cores; the HCA DMAs.
#pragma once

#include <cstdint>

#include "net/cluster.h"
#include "net/profile.h"
#include "sim/engine.h"

namespace hmr::net {

class Network {
 public:
  Network(sim::Engine& engine, NetProfile profile);

  const NetProfile& profile() const { return profile_; }
  sim::Engine& engine() { return engine_; }

  // Moves `modeled_bytes` from src to dst as one message: one base-latency
  // charge plus chunked bandwidth. Honors the profile's CPU model.
  sim::Task<> transmit(Host& src, Host& dst, std::uint64_t modeled_bytes);

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  std::uint64_t messages_received() const { return messages_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  double cpu_seconds_charged() const { return cpu_seconds_; }

 private:
  sim::Engine& engine_;
  NetProfile profile_;
  std::uint64_t chunk_bytes_ = 1 * 1024 * 1024;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  double cpu_seconds_ = 0.0;
  // Registry mirrors (sim/engine metrics); references are stable for the
  // registry's lifetime, so the per-message hot path skips the name map.
  Counter& messages_metric_;
  Counter& bytes_metric_;
  Counter& messages_received_metric_;
  Counter& bytes_received_metric_;
  Gauge& cpu_seconds_metric_;
};

}  // namespace hmr::net
