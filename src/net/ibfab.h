// Simulated InfiniBand verbs layer (§II-B of the paper).
//
// Models the RC transport at the level the software above cares about:
// protection domains, memory registration (pinning cost, rkey/lkey),
// queue pairs with a state machine (RESET→INIT→RTR→RTS), posted
// send/recv work requests, RDMA READ/WRITE one-sided ops, and
// completion queues. Data moves over the Network model with the verbs
// profile (OS bypass: no CPU cores consumed).
//
// Deliberate simplifications, documented per DESIGN.md §2: no SRQ, no
// atomics, all WRs signaled, RNR handled by parking the sender until a
// recv is posted (infinite rnr_retry), connection setup is an
// out-of-band exchange like RDMA-CM would provide.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "net/cluster.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/channel.h"
#include "sim/sync.h"

namespace hmr::ibv {

using net::Host;
using net::Message;
using net::Network;

enum class Opcode { kSend, kRecv, kRdmaWrite, kRdmaRead };
enum class WcStatus { kSuccess, kLocalProtocolError, kRemoteAccessError };

struct Completion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  WcStatus status = WcStatus::kSuccess;
  std::uint64_t byte_len = 0;  // modeled bytes
  Message message;             // inbound payload for kRecv / kRdmaRead
};

class CompletionQueue {
 public:
  CompletionQueue(sim::Engine& engine, size_t capacity = 4096)
      : entries_(engine, capacity) {}

  // Blocks until a completion is available (ibv_get_cq_event-style).
  sim::Task<Completion> wait();
  // Like wait(), but returns nullopt after shutdown() — for daemon loops.
  sim::Task<std::optional<Completion>> wait_opt();
  // Non-blocking poll (ibv_poll_cq-style).
  std::optional<Completion> poll();
  // Tears the CQ down: parked waiters drain then observe nullopt.
  void shutdown() { entries_.close(); }
  size_t depth() const { return entries_.size(); }

 private:
  friend class QueuePair;
  // Completions arriving after shutdown() are dropped.
  sim::Task<> push(Completion completion);
  sim::Channel<Completion> entries_;
};

struct MemoryRegionSpec {
  std::shared_ptr<Bytes> buffer;  // mutable: RDMA WRITE lands here
  double scale = 1.0;             // modeled bytes = buffer->size() * scale
};

class MemoryRegion {
 public:
  std::uint32_t rkey() const { return rkey_; }
  std::uint64_t real_size() const { return spec_.buffer->size(); }
  std::uint64_t modeled_size() const {
    return static_cast<std::uint64_t>(double(real_size()) * spec_.scale);
  }
  const MemoryRegionSpec& spec() const { return spec_; }

 private:
  friend class ProtectionDomain;
  std::uint32_t rkey_ = 0;
  MemoryRegionSpec spec_;
};

// Registration cost model: page pinning + HCA translation-table update.
struct RegistrationCost {
  double base = 20e-6;
  double per_mib = 80e-6;  // ~0.3 us per 4 KiB page
};

class ProtectionDomain {
 public:
  ProtectionDomain(sim::Engine& engine, Host& host);

  // Pins the pages; returns the region (remains owned by the PD).
  sim::Task<MemoryRegion*> register_memory(MemoryRegionSpec spec);
  Status deregister(std::uint32_t rkey);
  // Remote lookup used by one-sided ops.
  const MemoryRegion* find(std::uint32_t rkey) const;
  MemoryRegion* find_mutable(std::uint32_t rkey);

  Host& host() { return host_; }
  RegistrationCost& registration_cost() { return reg_cost_; }

 private:
  sim::Engine& engine_;
  Host& host_;
  RegistrationCost reg_cost_;
  std::uint32_t next_rkey_ = 100;
  std::map<std::uint32_t, std::unique_ptr<MemoryRegion>> regions_;
};

enum class QpState { kReset, kInit, kRtr, kRts, kError };

struct SendWr {
  std::uint64_t wr_id = 0;
  Message message;
};
struct RecvWr {
  std::uint64_t wr_id = 0;
};
struct RdmaReadWr {
  std::uint64_t wr_id = 0;
  std::uint32_t remote_rkey = 0;
  std::uint64_t real_offset = 0;
  std::uint64_t real_len = 0;
};
struct RdmaWriteWr {
  std::uint64_t wr_id = 0;
  std::uint32_t remote_rkey = 0;  // must exist and be large enough
  Message message;
};

class QueuePair {
 public:
  QueuePair(Network& network, ProtectionDomain& pd, CompletionQueue& send_cq,
            CompletionQueue& recv_cq);
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  QpState state() const { return state_; }

  // Out-of-band connection establishment (RDMA-CM equivalent): moves both
  // QPs RESET→RTS against each other.
  static Status connect(QueuePair& a, QueuePair& b);

  // Two-sided. Sends park while the peer has no posted recv (RNR).
  Status post_send(SendWr wr);
  Status post_recv(RecvWr wr);
  // One-sided; peer CPU and peer CQs are untouched.
  Status post_rdma_read(RdmaReadWr wr);
  Status post_rdma_write(RdmaWriteWr wr);

  Host& local_host();
  Host& remote_host();

 private:
  sim::Task<> run_send(SendWr wr);
  sim::Task<> run_rdma_read(RdmaReadWr wr);
  sim::Task<> run_rdma_write(RdmaWriteWr wr);
  void complete_send(std::uint64_t wr_id, Opcode op, std::uint64_t bytes,
                     WcStatus status, Message message = {});

  Network& network_;
  ProtectionDomain& pd_;
  CompletionQueue& send_cq_;
  CompletionQueue& recv_cq_;
  QueuePair* peer_ = nullptr;
  QpState state_ = QpState::kReset;
  // Posted receive WRs waiting for inbound sends.
  std::deque<RecvWr> recv_queue_;
  // Pulsed whenever a recv is posted, to release RNR-parked remote senders.
  sim::Event recv_posted_;
  // Serializes the wire per QP: RC delivers in posting order.
  sim::Resource send_lock_;
};

}  // namespace hmr::ibv
