// Input generators: TeraGen (fixed 100-byte rows, §II-A1) and
// RandomWriter (variable-size records up to ~20,000 bytes combined,
// §II-A2 / §IV-C). Both write one single-block part file per map split,
// so the HDFS block size directly sets the number of map tasks — the
// knob the paper tunes per engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdfs/hdfs.h"
#include "net/cluster.h"

namespace hmr::workloads {

// Order-independent content digest used by the validators.
struct DatasetDigest {
  std::uint64_t records = 0;
  std::uint64_t checksum = 0;  // xor of per-record CRC-32Cs

  void fold(std::span<const std::uint8_t> key,
            std::span<const std::uint8_t> value);
  bool operator==(const DatasetDigest&) const = default;
};

struct DataGenSpec {
  std::string dir;                   // HDFS directory for part files
  std::uint64_t modeled_total = 0;   // the "sort size" in the figures
  std::uint64_t part_modeled = 0;    // bytes per part (= HDFS block size)
  double scale = 1.0;                // modeled bytes per real byte
  // Record inflation: each generated record *models* `record_inflation`x
  // the paper's record size (so the record count shrinks by the same
  // factor and stays simulable). TeraGen generates fixed 100-byte real
  // rows and is unaffected; RandomWriter sizes records so that
  // modeled_record = paper_record x record_inflation.
  double record_inflation = 1.0;
  std::uint64_t seed = 1;
};

// TeraGen: 10-byte uniform keys, 90-byte values (100-byte rows).
sim::Task<Result<DatasetDigest>> teragen(hdfs::MiniDfs& dfs,
                                         net::Cluster& cluster,
                                         std::vector<int> writer_hosts,
                                         DataGenSpec spec);

// RandomWriter: keys 10..990 bytes, values 0..19000 bytes.
sim::Task<Result<DatasetDigest>> random_writer(hdfs::MiniDfs& dfs,
                                               net::Cluster& cluster,
                                               std::vector<int> writer_hosts,
                                               DataGenSpec spec);

// Text-ish generator for WordCount examples: values are space-separated
// words drawn from a small vocabulary.
sim::Task<Result<DatasetDigest>> textgen(hdfs::MiniDfs& dfs,
                                         net::Cluster& cluster,
                                         std::vector<int> writer_hosts,
                                         DataGenSpec spec);

}  // namespace hmr::workloads
