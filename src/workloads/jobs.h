// Benchmark job builders (TeraSort, Sort, WordCount) and output
// validators (TeraValidate and the per-part Sort check).
#pragma once

#include <string>

#include "hdfs/hdfs.h"
#include "mapred/types.h"
#include "workloads/datagen.h"

namespace hmr::workloads {

// TeraSort: identity map/reduce over a RangePartitioner, so the
// concatenation of part files is globally sorted.
mapred::JobSpec terasort_job(hdfs::MiniDfs& dfs, const std::string& input_dir,
                             const std::string& output_dir, Conf conf);

// Sort: identity map/reduce over the default HashPartitioner (output
// sorted within each part only), like the Hadoop Sort example.
mapred::JobSpec sort_job(hdfs::MiniDfs& dfs, const std::string& input_dir,
                         const std::string& output_dir, Conf conf);

// WordCount over textgen input: map splits values into words, reduce
// sums counts.
mapred::JobSpec wordcount_job(hdfs::MiniDfs& dfs,
                              const std::string& input_dir,
                              const std::string& output_dir, Conf conf);

struct ValidationReport {
  bool per_part_sorted = false;
  bool globally_sorted = false;  // meaningful for TeraSort outputs
  DatasetDigest digest;

  bool valid_terasort(const DatasetDigest& input) const {
    return per_part_sorted && globally_sorted && digest == input;
  }
  bool valid_sort(const DatasetDigest& input) const {
    return per_part_sorted && digest == input;
  }
};

// TeraValidate: checks order and content of `output_dir`'s part files
// (untimed; operates on the real payloads).
Result<ValidationReport> validate_output(hdfs::MiniDfs& dfs,
                                         const std::string& output_dir);

}  // namespace hmr::workloads
