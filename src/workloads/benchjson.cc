#include "workloads/benchjson.h"

#include <cstdio>
#include <cstdlib>

namespace hmr::workloads {

BenchJson::BenchJson(std::string figure, std::string title,
                     std::string workload, int nodes)
    : figure_(std::move(figure)),
      title_(std::move(title)),
      workload_(std::move(workload)),
      nodes_(nodes) {}

void BenchJson::add_run(const std::string& series, double size_gb,
                        const RunOutcome& outcome) {
  const mapred::JobResult& job = outcome.job;
  const mapred::PhaseTimes phases = job.phases();

  Json phase_obj = Json::object();
  phase_obj.set("map", Json(phases.map));
  phase_obj.set("shuffle", Json(phases.shuffle));
  phase_obj.set("merge", Json(phases.merge));
  phase_obj.set("reduce", Json(phases.reduce));

  Json recovery = Json::object();
  recovery.set("fetch_timeouts", Json(std::int64_t(job.fetch_timeouts)));
  recovery.set("fetch_retries", Json(std::int64_t(job.fetch_retries)));
  recovery.set("trackers_blacklisted",
               Json(std::int64_t(job.trackers_blacklisted)));
  recovery.set("map_refetch_reruns",
               Json(std::int64_t(job.map_refetch_reruns)));
  recovery.set("malformed_msgs",
               Json(job.metrics.counter("shuffle.malformed_msgs")));

  Json run = Json::object();
  run.set("series", Json(series));
  run.set("size_gb", Json(size_gb));
  run.set("seconds", Json(job.elapsed()));
  run.set("phases", std::move(phase_obj));
  run.set("overlap_fraction", Json(job.overlap_fraction()));
  run.set("cache_hit_rate", Json(job.cache_hit_rate()));
  run.set("shuffled_bytes", Json(std::int64_t(job.shuffled_modeled_bytes)));
  run.set("validated", Json(outcome.validated));
  run.set("recovery", std::move(recovery));
  runs_.push_back(std::move(run));
}

Json BenchJson::to_json() const {
  Json doc = Json::object();
  doc.set("schema", Json("hmr-bench-v1"));
  doc.set("figure", Json(figure_));
  doc.set("title", Json(title_));
  doc.set("workload", Json(workload_));
  doc.set("nodes", Json(std::int64_t(nodes_)));
  doc.set("runs", runs_);
  return doc;
}

std::string BenchJson::write_file() const {
  std::string path = file_name();
  if (const char* dir = std::getenv("HMR_BENCH_DIR")) {
    if (dir[0] != '\0') path = std::string(dir) + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return "";
  }
  const std::string body = to_json().dump() + "\n";
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
    return "";
  }
  std::fprintf(stderr, "  wrote %s\n", path.c_str());
  return path;
}

}  // namespace hmr::workloads
