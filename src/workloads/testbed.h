// Testbed: one fully wired simulated deployment — cluster, fabric,
// HDFS-lite, and a JobRunner with all three shuffle engines registered.
// Mirrors the paper's setup (§IV-A): a master host running
// NameNode/JobTracker plus N compute hosts each running a
// DataNode/TaskTracker, all on one switch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hdfs/hdfs.h"
#include "mapred/jobrunner.h"
#include "mapred/jobtracker.h"
#include "net/cluster.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "workloads/datagen.h"
#include "workloads/jobs.h"

namespace hmr::workloads {

struct TestbedSpec {
  int nodes = 4;           // compute hosts (a master host is added)
  int disks_per_node = 1;  // 1 or 2 HDDs in the paper
  bool ssd = false;        // Figure 7/8 use SSD data stores
  int cores_per_node = 8;  // dual quad-core Westmere
  net::NetProfile profile = net::NetProfile::ipoib_qdr();
  hdfs::HdfsParams hdfs;
  std::uint64_t seed = 1;
  // Event-queue implementation for the testbed's engine. Both impls
  // dispatch in identical (timestamp, seq) order (sim/event_queue.h);
  // the legacy heap exists so equivalence oracles and benchmarks can
  // compare against the pre-4-ary behaviour.
  sim::EventQueue::Impl queue_impl = sim::EventQueue::Impl::kFourAry;
  // Worker-pool width for parallel work events (sim/parallel.h); 1 = the
  // serial engine. Results are byte-identical at every value — the
  // simfuzz engine.parallel_identity oracle enforces it. Jobs can
  // override per run via the sim.parallel.workers conf key.
  int parallel_workers = 1;
};

class Testbed {
 public:
  explicit Testbed(TestbedSpec spec);

  sim::Engine& engine() { return engine_; }
  net::Cluster& cluster() { return *cluster_; }
  net::Network& network() { return *network_; }
  hdfs::MiniDfs& dfs() { return *dfs_; }
  mapred::JobRunner& runner() { return *runner_; }
  const std::vector<int>& datanodes() const { return datanodes_; }
  const TestbedSpec& spec() const { return spec_; }

  // The multi-tenant front door (created on first use with a default
  // FIFO/unlimited SchedulerConfig). run_jobs() submits through it.
  mapred::JobTracker& tracker();
  // Replaces the tracker with one running `config`. Must be called
  // before any jobs are in flight.
  void set_scheduler(mapred::SchedulerConfig config);

  // Synchronous wrappers: spawn the coroutine and run the engine dry.
  Result<DatasetDigest> generate(const std::string& kind, DataGenSpec spec);
  mapred::JobResult run_job(mapred::JobSpec job);
  // Submits all jobs through the JobTracker at the current simulated
  // time: under the default FIFO/unlimited scheduler they run
  // concurrently, contending for the same TaskTracker slots, disks and
  // links (a multi-tenant cluster). set_scheduler() first to run them
  // under fair-share or capacity policies instead.
  std::vector<mapred::JobResult> run_jobs(std::vector<mapred::JobSpec> jobs);

 private:
  TestbedSpec spec_;
  sim::Engine engine_;
  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<hdfs::MiniDfs> dfs_;
  std::unique_ptr<mapred::JobRunner> runner_;
  std::unique_ptr<mapred::JobTracker> tracker_;
  std::vector<int> datanodes_;
};

}  // namespace hmr::workloads
