// Multi-tenant workload driver: a Poisson stream of TeraSort jobs from
// a mix of users, submitted through the JobTracker onto one shared
// testbed. This is the workload behind BENCH_multitenant (offered load
// vs job-latency percentiles per engine) and the scheduler tests.
//
// Determinism: interarrival gaps and the per-job user pick are drawn
// from the engine seed's "sched.arrivals" / "sched.arrivals.user"
// streams — two runs of the same spec produce byte-identical job
// traces (timestamps and output digests), which the replay test and
// the simfuzz multi-job oracle rely on.
#pragma once

#include <string>
#include <vector>

#include "workloads/experiment.h"

namespace hmr::workloads {

// One tenant in the arrival mix; each arriving job is charged to a user
// drawn with probability weight / sum(weights).
struct TenantMix {
  std::string user;
  double weight = 1.0;
};

struct MultiTenantSpec {
  EngineSetup setup = EngineSetup::ipoib();
  int nodes = 3;
  std::uint64_t block_size = 16ull * 1024 * 1024;
  // Per-job input size; every job sorts the same shared dataset (its
  // own output directory), so runtimes are comparable across jobs.
  std::uint64_t job_modeled_bytes = 128ull * 1024 * 1024;
  std::uint64_t target_real_bytes = 2ull * 1024 * 1024;
  int num_jobs = 12;
  // Policy, quotas, and the Poisson rate (sched.arrival.jobs.per.min);
  // rate 0 submits every job at time zero.
  mapred::SchedulerConfig sched;
  std::vector<TenantMix> tenants = {{"default", 1.0}};
  std::uint64_t seed = 1;
  bool validate = true;
};

// Nearest-rank percentiles over per-job latencies.
struct LatencySummary {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};
LatencySummary latency_summary(std::vector<double> latencies);

// Replay-comparable record of one job's life.
struct JobRecord {
  int id = 0;  // submission order, 1-based
  std::string user;
  double submitted_at = 0;
  double dispatched_at = 0;
  double finished_at = 0;
  double latency = 0;            // finished - submitted
  DatasetDigest output_digest;   // byte-identity across replays
  bool validated = false;
};

struct MultiTenantOutcome {
  std::vector<JobRecord> records;            // submission order
  std::map<std::string, mapred::TenantStats> tenants;
  LatencySummary latency;
  double makespan = 0;        // last finish time
  double cache_hit_rate = 0;  // aggregated across jobs
  bool all_validated = false;
};

// Generates the shared input, streams `num_jobs` submissions through a
// JobTracker running spec.sched, drains the engine, and validates every
// output against the input digest. Aborts if any job fails validation
// or never completes (starvation).
MultiTenantOutcome run_multitenant(const MultiTenantSpec& spec);

}  // namespace hmr::workloads
