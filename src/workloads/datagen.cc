#include "workloads/datagen.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/crc32.h"
#include "dataplane/kv.h"
#include "sim/sync.h"

namespace hmr::workloads {
namespace {

using dataplane::KvPair;

void fill_random(Bytes& out, size_t n, Rng& rng) {
  out.resize(n);
  size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t word = rng.next();
    std::memcpy(out.data() + i, &word, 8);
    i += 8;
  }
  for (; i < n; ++i) out[i] = std::uint8_t(rng.below(256));
}

// Record generator: fills `pair` and returns its serialized size.
using RecordGen = std::function<std::uint64_t(Rng&, KvPair&)>;

sim::Task<Result<DatasetDigest>> generate(hdfs::MiniDfs& dfs,
                                          net::Cluster& cluster,
                                          std::vector<int> writer_hosts,
                                          DataGenSpec spec,
                                          RecordGen gen) {
  HMR_CHECK_MSG(!writer_hosts.empty(), "datagen needs writer hosts");
  HMR_CHECK_MSG(spec.part_modeled > 0 && spec.modeled_total > 0,
                "datagen sizes must be positive");
  const std::uint64_t parts =
      (spec.modeled_total + spec.part_modeled - 1) / spec.part_modeled;
  const auto part_real = std::max<std::uint64_t>(
      110, static_cast<std::uint64_t>(double(spec.part_modeled) / spec.scale));

  auto digests = std::make_shared<std::vector<DatasetDigest>>(parts);
  auto failures = std::make_shared<int>(0);
  sim::WaitGroup writers(cluster.engine());
  for (std::uint64_t p = 0; p < parts; ++p) {
    writers.add();
    net::Host& writer =
        cluster.host(writer_hosts[p % writer_hosts.size()]);
    cluster.engine().spawn(
        [](hdfs::MiniDfs& dfs, net::Host& writer, DataGenSpec spec,
           RecordGen gen, std::uint64_t part, std::uint64_t part_real,
           std::shared_ptr<std::vector<DatasetDigest>> digests,
           std::shared_ptr<int> failures,
           sim::WaitGroup& done) -> sim::Task<> {
          Rng rng(spec.seed + part, "datagen");
          ByteWriter writer_buf;
          DatasetDigest digest;
          KvPair pair;
          while (true) {
            const auto record_size = gen(rng, pair);
            // Never cross the part boundary: a part must stay a single
            // HDFS block so records never straddle splits.
            if (writer_buf.size() > 0 &&
                writer_buf.size() + record_size > part_real) {
              break;
            }
            digest.fold(pair.key, pair.value);
            dataplane::encode_kv(pair, writer_buf);
            if (writer_buf.size() >= part_real) break;
          }
          char name[32];
          std::snprintf(name, sizeof name, "part-%05llu",
                        static_cast<unsigned long long>(part));
          const Status st = co_await dfs.write(
              writer, spec.dir + "/" + name, writer_buf.take(), spec.scale);
          if (!st.ok()) {
            ++*failures;
          } else {
            (*digests)[part] = digest;
          }
          done.done();
        }(dfs, writer, spec, gen, p, part_real, digests, failures, writers));
  }
  co_await writers.wait();
  if (*failures > 0) {
    co_return Result<DatasetDigest>(
        Status::Internal("datagen: part writes failed"));
  }
  DatasetDigest total;
  for (const auto& digest : *digests) {
    total.records += digest.records;
    total.checksum ^= digest.checksum;
  }
  co_return total;
}

}  // namespace

void DatasetDigest::fold(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> value) {
  ++records;
  const std::uint32_t crc = crc32c(value, crc32c(key));
  // Spread the 32-bit CRC over 64 bits so xor collisions stay unlikely.
  checksum ^= (std::uint64_t(crc) << 32) | (std::uint64_t(crc) * 0x9e3779b9u);
}

sim::Task<Result<DatasetDigest>> teragen(hdfs::MiniDfs& dfs,
                                         net::Cluster& cluster,
                                         std::vector<int> writer_hosts,
                                         DataGenSpec spec) {
  co_return co_await generate(
      dfs, cluster, std::move(writer_hosts), spec,
      [](Rng& rng, KvPair& pair) -> std::uint64_t {
        fill_random(pair.key, 10, rng);
        fill_random(pair.value, 90, rng);
        return pair.serialized_size();
      });
}

sim::Task<Result<DatasetDigest>> random_writer(hdfs::MiniDfs& dfs,
                                               net::Cluster& cluster,
                                               std::vector<int> writer_hosts,
                                               DataGenSpec spec) {
  // "the combined length of key-value pairs can be as large as 20,000
  // bytes" (§IV-C). Real record bytes are paper bytes x inflation/scale,
  // so each record models paper_size x inflation.
  const double shrink = spec.record_inflation / spec.scale;
  co_return co_await generate(
      dfs, cluster, std::move(writer_hosts), spec,
      [shrink](Rng& rng, KvPair& pair) -> std::uint64_t {
        const auto key_paper = 10 + rng.below(981);
        const auto value_paper = rng.below(19001);
        fill_random(pair.key,
                    std::max<size_t>(2, size_t(double(key_paper) * shrink)),
                    rng);
        fill_random(pair.value, size_t(double(value_paper) * shrink), rng);
        return pair.serialized_size();
      });
}

sim::Task<Result<DatasetDigest>> textgen(hdfs::MiniDfs& dfs,
                                         net::Cluster& cluster,
                                         std::vector<int> writer_hosts,
                                         DataGenSpec spec) {
  static constexpr const char* kVocabulary[] = {
      "the",  "quick",   "brown", "fox",   "jumps", "over",
      "lazy", "dog",     "data",  "node",  "track", "merge",
      "sort", "shuffle", "rdma",  "verbs", "queue", "pair"};
  co_return co_await generate(
      dfs, cluster, std::move(writer_hosts), spec,
      [](Rng& rng, KvPair& pair) -> std::uint64_t {
        Bytes key(8);
        const std::uint64_t line = rng.next();
        std::memcpy(key.data(), &line, 8);
        std::string text;
        const int words = 8 + int(rng.below(9));
        for (int w = 0; w < words; ++w) {
          if (w) text += ' ';
          text += kVocabulary[rng.below(std::size(kVocabulary))];
        }
        pair.key = std::move(key);
        pair.value.assign(text.begin(), text.end());
        return pair.serialized_size();
      });
}

}  // namespace hmr::workloads
