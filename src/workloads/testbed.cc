#include "workloads/testbed.h"

#include "hadoopa/engine.h"
#include "rdmashuffle/engine.h"

namespace hmr::workloads {

Testbed::Testbed(TestbedSpec spec)
    : spec_(spec), engine_(spec.seed, spec.queue_impl) {
  engine_.set_parallel_workers(spec.parallel_workers);
  // host 0 = master (NameNode + JobTracker); hosts 1..N = DataNode +
  // TaskTracker.
  auto host_specs = net::Cluster::uniform(spec.nodes + 1, spec.disks_per_node,
                                          spec.ssd, spec.cores_per_node);
  host_specs[0].name = "master";
  cluster_ = std::make_unique<net::Cluster>(engine_, spec.profile,
                                            host_specs);
  network_ = std::make_unique<net::Network>(engine_, spec.profile);
  for (int i = 1; i <= spec.nodes; ++i) datanodes_.push_back(i);
  dfs_ = std::make_unique<hdfs::MiniDfs>(*cluster_, *network_, spec.hdfs, 0,
                                         datanodes_);
  runner_ = std::make_unique<mapred::JobRunner>(*cluster_, *network_, *dfs_,
                                                datanodes_);
  runner_->register_engine("osu-ib", [](const Conf& conf) {
    return std::make_unique<rdmashuffle::RdmaShuffleEngine>(
        "osu-ib", rdmashuffle::RdmaShuffleOptions::osu_ib(conf));
  });
  runner_->register_engine("hadoop-a", [](const Conf& conf) {
    return std::make_unique<hadoopa::HadoopAEngine>(conf);
  });
}

Result<DatasetDigest> Testbed::generate(const std::string& kind,
                                        DataGenSpec gen_spec) {
  auto out = std::make_shared<Result<DatasetDigest>>(
      Status::Internal("datagen did not run"));
  engine_.spawn([](Testbed& bed, std::string kind, DataGenSpec gen_spec,
                   std::shared_ptr<Result<DatasetDigest>> out)
                    -> sim::Task<> {
    if (kind == "teragen") {
      *out = co_await teragen(bed.dfs(), bed.cluster(), bed.datanodes_,
                              gen_spec);
    } else if (kind == "randomwriter") {
      *out = co_await random_writer(bed.dfs(), bed.cluster(), bed.datanodes_,
                                    gen_spec);
    } else if (kind == "textgen") {
      *out = co_await textgen(bed.dfs(), bed.cluster(), bed.datanodes_,
                              gen_spec);
    } else {
      *out = Result<DatasetDigest>(
          Status::InvalidArgument("unknown generator: " + kind));
    }
  }(*this, kind, gen_spec, out));
  engine_.run();
  return *out;
}

mapred::JobTracker& Testbed::tracker() {
  if (tracker_ == nullptr) {
    tracker_ = std::make_unique<mapred::JobTracker>(
        engine_, *runner_, mapred::SchedulerConfig{});
  }
  return *tracker_;
}

void Testbed::set_scheduler(mapred::SchedulerConfig config) {
  HMR_CHECK_MSG(
      tracker_ == nullptr ||
          (tracker_->queued() == 0 && tracker_->running() == 0),
      "cannot replace the scheduler while jobs are queued or running");
  tracker_ = std::make_unique<mapred::JobTracker>(engine_, *runner_,
                                                  std::move(config));
}

std::vector<mapred::JobResult> Testbed::run_jobs(
    std::vector<mapred::JobSpec> jobs) {
  auto& jt = tracker();
  std::vector<std::shared_ptr<mapred::SubmittedJob>> handles;
  handles.reserve(jobs.size());
  for (auto& job : jobs) handles.push_back(jt.submit(std::move(job)));
  engine_.run();
  std::vector<mapred::JobResult> results;
  results.reserve(handles.size());
  for (const auto& handle : handles) {
    HMR_CHECK_MSG(handle->completed, "concurrent jobs did not all complete");
    results.push_back(handle->result);
  }
  HMR_CHECK_MSG(engine_.live_processes() == 0,
                "jobs left live processes behind");
  return results;
}

mapred::JobResult Testbed::run_job(mapred::JobSpec job) {
  auto out = std::make_shared<mapred::JobResult>();
  auto ok = std::make_shared<bool>(false);
  engine_.spawn([](Testbed& bed, mapred::JobSpec job,
                   std::shared_ptr<mapred::JobResult> out,
                   std::shared_ptr<bool> ok) -> sim::Task<> {
    *out = co_await bed.runner().run(std::move(job));
    *ok = true;
  }(*this, std::move(job), out, ok));
  engine_.run();
  HMR_CHECK_MSG(*ok, "job did not complete (deadlocked simulation?)");
  HMR_CHECK_MSG(engine_.live_processes() == 0,
                "job left live processes behind");
  return *out;
}

}  // namespace hmr::workloads
