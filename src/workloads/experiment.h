// Experiment runner for the paper's figures: builds a Testbed per
// configuration, generates input, runs the job, validates the output,
// and returns the job execution time the figures plot.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "workloads/testbed.h"

namespace hmr::workloads {

// One plotted series: which engine over which fabric, with the per-engine
// optimal settings the paper reports (block size, packet knobs).
struct EngineSetup {
  std::string label;        // legend text, e.g. "OSU-IB (32Gbps)"
  std::string engine;       // "vanilla" | "osu-ib" | "hadoop-a"
  net::NetProfile profile;  // fabric the series runs on
  Conf extra;               // engine-specific conf overrides

  static EngineSetup one_gige();
  static EngineSetup ten_gige();
  static EngineSetup ipoib();
  static EngineSetup hadoop_a();
  static EngineSetup osu_ib();
  static EngineSetup osu_ib_nocache();
};

struct RunConfig {
  EngineSetup setup;
  std::string workload = "terasort";  // "terasort" | "sort"
  std::uint64_t sort_modeled_bytes = 0;
  int nodes = 4;
  int disks = 1;
  bool ssd = false;
  std::uint64_t block_size = 0;  // 0 = per-workload paper default
  // Real payload carried through the simulation (DESIGN.md §2). Timing is
  // charged for sort_modeled_bytes regardless.
  std::uint64_t target_real_bytes = 16 * 1024 * 1024;
  std::uint64_t seed = 1;
  bool validate = true;
  // Optional fault injection (not owned; must outlive the run): NIC
  // degradations are armed on the cluster and shuffle responders/servlets
  // consult the plan per request. See sim/fault.h and docs/CONFIG.md.
  sim::FaultPlan* faults = nullptr;
};

struct RunOutcome {
  mapred::JobResult job;
  bool validated = false;
  // Order/content check of the output (digest comparable across runs:
  // a recovered faulty run must reproduce the fault-free checksum).
  ValidationReport validation;
  double seconds() const { return job.elapsed(); }
};

// Runs one full experiment (generate -> job -> validate). Aborts on
// validation failure: a shuffle engine that loses or disorders data must
// never produce a "result".
RunOutcome run_experiment(const RunConfig& config);

// Helper used by every figure bench: rows = sort sizes, columns = one
// per engine setup.
Table figure_table(const std::string& size_header,
                   const std::vector<std::uint64_t>& sizes,
                   const std::vector<EngineSetup>& setups,
                   const std::function<RunConfig(std::uint64_t,
                                                 const EngineSetup&)>& make);

}  // namespace hmr::workloads
