#include "workloads/jobs.h"

#include <algorithm>
#include <map>

#include "dataplane/kv.h"
#include "dataplane/merger.h"

namespace hmr::workloads {

using dataplane::KvPair;

namespace {

mapred::JobSpec identity_job(hdfs::MiniDfs& dfs, const std::string& name,
                             const std::string& input_dir,
                             const std::string& output_dir, Conf conf,
                             std::shared_ptr<const dataplane::Partitioner> p) {
  mapred::JobSpec spec;
  spec.name = name;
  spec.input_files = dfs.list(input_dir + "/");
  HMR_CHECK_MSG(!spec.input_files.empty(),
                "no input parts under " + input_dir);
  spec.output_dir = output_dir;
  spec.conf = std::move(conf);
  spec.partitioner = std::move(p);
  return spec;
}

}  // namespace

mapred::JobSpec terasort_job(hdfs::MiniDfs& dfs, const std::string& input_dir,
                             const std::string& output_dir, Conf conf) {
  return identity_job(dfs, "terasort", input_dir, output_dir,
                      std::move(conf),
                      std::make_shared<dataplane::RangePartitioner>());
}

mapred::JobSpec sort_job(hdfs::MiniDfs& dfs, const std::string& input_dir,
                         const std::string& output_dir, Conf conf) {
  return identity_job(dfs, "sort", input_dir, output_dir, std::move(conf),
                      std::make_shared<dataplane::HashPartitioner>());
}

mapred::JobSpec wordcount_job(hdfs::MiniDfs& dfs,
                              const std::string& input_dir,
                              const std::string& output_dir, Conf conf) {
  auto spec = identity_job(dfs, "wordcount", input_dir, output_dir,
                           std::move(conf),
                           std::make_shared<dataplane::HashPartitioner>());
  spec.map_fn = [](const KvPair& record, const mapred::Emit& emit) {
    const std::string text(record.value.begin(), record.value.end());
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find(' ', start);
      if (end == std::string::npos) end = text.size();
      if (end > start) {
        KvPair out;
        out.key.assign(text.begin() + start, text.begin() + end);
        out.value = {1};
        emit(std::move(out));
      }
      start = end + 1;
    }
  };
  spec.reduce_fn = [](const Bytes& key, const std::vector<Bytes>& values,
                      const mapred::Emit& emit) {
    // (also used as the combiner below: summing is associative)
    std::uint64_t count = 0;
    for (const auto& value : values) {
      std::uint64_t v = 0;
      for (size_t i = 0; i < value.size() && i < 8; ++i) {
        v |= std::uint64_t(value[i]) << (8 * i);
      }
      count += v;
    }
    KvPair out;
    out.key = key;
    out.value.resize(8);
    std::memcpy(out.value.data(), &count, 8);
    emit(std::move(out));
  };
  spec.combine_fn = spec.reduce_fn;  // counting is associative
  return spec;
}

Result<ValidationReport> validate_output(hdfs::MiniDfs& dfs,
                                         const std::string& output_dir) {
  const auto parts = dfs.list(output_dir + "/");
  if (parts.empty()) return Status::NotFound("no output under " + output_dir);

  ValidationReport report;
  report.per_part_sorted = true;
  report.globally_sorted = true;
  Bytes previous_last_key;
  bool have_previous = false;

  for (const auto& part : parts) {  // list() is path-sorted = reducer order
    auto payload = dfs.peek(part);
    if (!payload.ok()) return payload.status();
    auto records = dataplane::decode_run(*payload);
    if (!records.ok()) return records.status();

    for (size_t i = 0; i < records->size(); ++i) {
      const auto& record = (*records)[i];
      report.digest.fold(record.key, record.value);
      if (i > 0 && dataplane::KvLess::compare_keys((*records)[i - 1].key,
                                                   record.key) > 0) {
        report.per_part_sorted = false;
      }
    }
    if (!records->empty()) {
      if (have_previous &&
          dataplane::KvLess::compare_keys(previous_last_key,
                                          records->front().key) > 0) {
        report.globally_sorted = false;
      }
      previous_last_key = records->back().key;
      have_previous = true;
    }
  }
  report.globally_sorted = report.globally_sorted && report.per_part_sorted;
  return report;
}

}  // namespace hmr::workloads
