#include "workloads/report.h"

#include <cstdio>

#include "common/table.h"
#include "common/units.h"

namespace hmr::workloads {

std::string utilization_report(Testbed& bed) {
  const double horizon = bed.engine().now();
  Table table({"Host", "Disk", "Busy", "Read", "Written", "Seeks"});
  for (size_t h = 0; h < bed.cluster().size(); ++h) {
    auto& host = bed.cluster().host(h);
    for (size_t d = 0; d < host.fs().disk_count(); ++d) {
      auto& disk = host.fs().disk(d);
      const double busy =
          horizon > 0 ? disk.busy_seconds() / horizon * 100.0 : 0.0;
      table.add_row({host.name(), disk.spec().name,
                     Table::num(busy, 1) + "%",
                     format_bytes(disk.bytes_read()),
                     format_bytes(disk.bytes_written()),
                     std::to_string(disk.seeks())});
    }
  }
  std::string out = table.to_ascii();
  char line[160];
  std::snprintf(line, sizeof line,
                "network: %s in %llu messages, %.1f CPU-seconds of socket "
                "stack over %.1f simulated seconds\n",
                format_bytes(bed.network().bytes_sent()).c_str(),
                static_cast<unsigned long long>(bed.network().messages_sent()),
                bed.network().cpu_seconds_charged(), horizon);
  out += line;
  return out;
}

std::string job_report(const mapred::JobResult& result) {
  std::string out;
  char line[160];
  auto add = [&](const char* key, const std::string& value) {
    std::snprintf(line, sizeof line, "%-26s %s\n", key, value.c_str());
    out += line;
  };
  add("job time", Table::num(result.elapsed(), 1) + " s");
  const auto phases = result.phases();
  add("  map phase", Table::num(phases.map, 1) + " s");
  add("  shuffle phase", Table::num(phases.shuffle, 1) + " s");
  add("  merge phase", Table::num(phases.merge, 1) + " s");
  add("  reduce phase", Table::num(phases.reduce, 1) + " s");
  add("  overlap",
      Table::num(result.overlap_fraction() * 100.0, 1) + " % of " +
          Table::num(phases.sum(), 1) + " s phase total");
  add("maps / reduces", std::to_string(result.num_maps) + " / " +
                            std::to_string(result.num_reduces));
  add("input", format_bytes(result.input_modeled_bytes));
  add("shuffled", format_bytes(result.shuffled_modeled_bytes));
  add("output", format_bytes(result.output_modeled_bytes) + " in " +
                    std::to_string(result.output_records) + " records");
  add("spills", std::to_string(result.spills));
  if (result.failed_map_attempts > 0 || result.speculative_attempts > 0) {
    add("failed / speculative",
        std::to_string(result.failed_map_attempts) + " / " +
            std::to_string(result.speculative_attempts));
  }
  if (result.cache_hits + result.cache_misses > 0) {
    add("prefetch cache", std::to_string(result.cache_hits) + " hits / " +
                              std::to_string(result.cache_misses) +
                              " misses");
  }
  if (result.fetch_timeouts > 0 || result.trackers_blacklisted > 0) {
    add("shuffle recovery",
        std::to_string(result.fetch_timeouts) + " timeouts / " +
            std::to_string(result.fetch_retries) + " retries / " +
            std::to_string(result.trackers_blacklisted) + " blacklisted");
  }
  if (result.map_refetch_reruns > 0) {
    add("  refetched", format_bytes(result.refetched_modeled_bytes) +
                           " via " +
                           std::to_string(result.map_refetch_reruns) +
                           " map re-runs");
  }
  if (result.checksum_mismatches > 0 || result.storage_io_retries > 0 ||
      result.disk_full_events > 0) {
    add("storage integrity",
        std::to_string(result.checksum_mismatches) + " mismatches / " +
            std::to_string(result.storage_io_retries) + " IO retries / " +
            std::to_string(result.disk_full_events) + " disk-full");
    add("  recovered by",
        std::to_string(result.spill_rewrites) + " rewrites / " +
            std::to_string(result.cache_integrity_evictions) +
            " cache evictions / " +
            std::to_string(result.metrics.counter("storage.corrupt.rereads")) +
            " re-reads");
    const auto failovers = result.metrics.counter("hdfs.replica.failovers");
    if (failovers > 0) {
      add("  hdfs", std::to_string(failovers) + " replica failovers / " +
                        std::to_string(result.metrics.counter(
                            "hdfs.corrupt.replicas_pruned")) +
                        " pruned / " +
                        std::to_string(
                            result.metrics.counter("hdfs.rereplications")) +
                        " re-replicated");
    }
  }
  for (const auto& [name, value] : result.counters) {
    add(("  " + name).c_str(), std::to_string(value));
  }
  return out;
}

}  // namespace hmr::workloads
