// Machine-readable bench output: every figure binary writes one
// BENCH_<figure>.json next to its ASCII table so tools/bench_check can
// diff a run against a committed baseline. Schema "hmr-bench-v1":
//
//   { "schema": "hmr-bench-v1", "figure", "title", "workload", "nodes",
//     "runs": [ { "series", "size_gb", "seconds",
//                 "phases": {"map","shuffle","merge","reduce"},  // each <= seconds
//                 "overlap_fraction",                            // in [0, 1]
//                 "cache_hit_rate",                              // in [0, 1]
//                 "shuffled_bytes", "validated",
//                 "recovery": {"fetch_timeouts", "fetch_retries",
//                              "trackers_blacklisted",
//                              "map_refetch_reruns",
//                              "malformed_msgs"} } ] }
//
// The simulation is deterministic (seeded), so baseline comparisons can
// use a tight tolerance.
#pragma once

#include <string>

#include "common/json.h"
#include "workloads/experiment.h"

namespace hmr::workloads {

class BenchJson {
 public:
  BenchJson(std::string figure, std::string title, std::string workload,
            int nodes);

  // Appends one (series, size) cell of the figure.
  void add_run(const std::string& series, double size_gb,
               const RunOutcome& outcome);

  Json to_json() const;
  std::string file_name() const { return "BENCH_" + figure_ + ".json"; }

  // Writes file_name() under $HMR_BENCH_DIR (falling back to the working
  // directory). Returns the path written, or "" on I/O failure — benches
  // still print their tables either way.
  std::string write_file() const;

 private:
  std::string figure_;
  std::string title_;
  std::string workload_;
  int nodes_;
  Json runs_ = Json::array();
};

}  // namespace hmr::workloads
