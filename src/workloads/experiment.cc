#include "workloads/experiment.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace hmr::workloads {

EngineSetup EngineSetup::one_gige() {
  return {"1GigE", "vanilla", net::NetProfile::one_gige(), {}};
}
EngineSetup EngineSetup::ten_gige() {
  return {"10GigE", "vanilla", net::NetProfile::ten_gige(), {}};
}
EngineSetup EngineSetup::ipoib() {
  return {"IPoIB (32Gbps)", "vanilla", net::NetProfile::ipoib_qdr(), {}};
}
EngineSetup EngineSetup::hadoop_a() {
  EngineSetup setup{"HadoopA-IB (32Gbps)", "hadoop-a",
                    net::NetProfile::verbs_qdr(), {}};
  return setup;
}
EngineSetup EngineSetup::osu_ib() {
  EngineSetup setup{"OSU-IB (32Gbps)", "osu-ib", net::NetProfile::verbs_qdr(),
                    {}};
  return setup;
}
EngineSetup EngineSetup::osu_ib_nocache() {
  EngineSetup setup = osu_ib();
  setup.label = "OSU-IB (no caching)";
  setup.extra.set_bool(mapred::kCachingEnabled, false);
  return setup;
}

RunOutcome run_experiment(const RunConfig& config) {
  HMR_CHECK_MSG(config.sort_modeled_bytes > 0, "sort size required");
  const bool terasort = config.workload == "terasort";
  HMR_CHECK_MSG(terasort || config.workload == "sort",
                "unknown workload: " + config.workload);

  // Paper block sizes (§IV-B/C): TeraSort 256 MB (128 MB for Hadoop-A),
  // Sort 64 MB for every engine.
  std::uint64_t block = config.block_size;
  if (block == 0) {
    if (terasort) {
      block = config.setup.engine == "hadoop-a" ? 128 * kMiB : 256 * kMiB;
    } else {
      block = 64 * kMiB;
    }
  }

  TestbedSpec bed_spec;
  bed_spec.nodes = config.nodes;
  bed_spec.disks_per_node = config.disks;
  bed_spec.ssd = config.ssd;
  bed_spec.profile = config.setup.profile;
  bed_spec.hdfs.block_size = block;
  bed_spec.seed = config.seed;
  Testbed bed(bed_spec);

  const double scale = std::max(
      1.0, double(config.sort_modeled_bytes) / double(config.target_real_bytes));
  DataGenSpec gen;
  gen.dir = "/bench/in";
  gen.modeled_total = config.sort_modeled_bytes;
  gen.part_modeled = block;
  gen.scale = scale;
  gen.seed = config.seed;
  // Sort carries records ~1/32nd of the paper's real sizes so record
  // counts stay simulable while packet mechanics (fixed kv count vs byte
  // budget, §IV-C) keep their real proportions.
  if (!terasort) gen.record_inflation = std::max(1.0, scale / 32.0);
  auto digest =
      bed.generate(terasort ? "teragen" : "randomwriter", gen);
  HMR_CHECK_MSG(digest.ok(), "input generation failed");

  Conf conf = config.setup.extra;
  conf.set(mapred::kShuffleEngine, config.setup.engine);
  conf.set_double(mapred::kKvInflation,
                  terasort ? scale : gen.record_inflation);
  conf.set_bytes(mapred::kMaxRecordBytes,
                 terasort ? std::uint64_t(102.0 * scale)
                          : std::uint64_t(20010.0 * gen.record_inflation));
  mapred::JobSpec job =
      terasort ? terasort_job(bed.dfs(), gen.dir, "/bench/out", conf)
               : sort_job(bed.dfs(), gen.dir, "/bench/out", conf);
  if (config.faults != nullptr) {
    bed.cluster().inject_faults(*config.faults);
    job.faults = config.faults;
  }

  RunOutcome outcome;
  outcome.job = bed.run_job(std::move(job));

  if (config.validate) {
    auto report = validate_output(bed.dfs(), "/bench/out");
    HMR_CHECK_MSG(report.ok(), "output missing after job");
    outcome.validation = *report;
    const bool ok = terasort ? report->valid_terasort(*digest)
                             : report->valid_sort(*digest);
    HMR_CHECK_MSG(ok, "output validation FAILED for " + config.setup.label);
    outcome.validated = true;
  }
  return outcome;
}

Table figure_table(const std::string& size_header,
                   const std::vector<std::uint64_t>& sizes,
                   const std::vector<EngineSetup>& setups,
                   const std::function<RunConfig(std::uint64_t,
                                                 const EngineSetup&)>& make) {
  std::vector<std::string> headers{size_header};
  for (const auto& setup : setups) headers.push_back(setup.label);
  Table table(std::move(headers));
  for (const auto size : sizes) {
    std::vector<std::string> row{std::to_string(size / kGiB)};
    for (const auto& setup : setups) {
      const RunOutcome outcome = run_experiment(make(size, setup));
      row.push_back(Table::num(outcome.seconds(), 1));
      std::fprintf(stderr, "  [%s %lluGB] %s: %.1fs\n", size_header.c_str(),
                   static_cast<unsigned long long>(size / kGiB),
                   setup.label.c_str(), outcome.seconds());
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace hmr::workloads
