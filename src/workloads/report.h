// Post-run cluster utilization reporting: where the simulated time went
// (per-host disk busy fractions, bytes moved, seeks) and what the wire
// carried — the first thing one checks when an engine underperforms.
#pragma once

#include <string>

#include "mapred/types.h"
#include "workloads/testbed.h"

namespace hmr::workloads {

// Per-host utilization over [0, engine.now()]: disk busy %, bytes
// read/written, seeks; plus cluster-wide network totals.
std::string utilization_report(Testbed& bed);

// Hadoop-style job summary: phases, counters, shuffle volume.
std::string job_report(const mapred::JobResult& result);

}  // namespace hmr::workloads
