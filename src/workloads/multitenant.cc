#include "workloads/multitenant.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace hmr::workloads {

LatencySummary latency_summary(std::vector<double> latencies) {
  LatencySummary out;
  if (latencies.empty()) return out;
  std::sort(latencies.begin(), latencies.end());
  const auto rank = [&](double q) {
    const size_t n = latencies.size();
    const size_t r = std::clamp<size_t>(
        static_cast<size_t>(std::ceil(q * double(n))), 1, n);
    return latencies[r - 1];
  };
  out.p50 = rank(0.50);
  out.p95 = rank(0.95);
  out.p99 = rank(0.99);
  return out;
}

namespace {

// Weighted tenant pick; tenants keep their spec order so the draw is a
// pure function of the rng stream.
std::string pick_user(const std::vector<TenantMix>& tenants, Rng& rng) {
  double total = 0;
  for (const auto& tenant : tenants) total += tenant.weight;
  HMR_CHECK_MSG(total > 0, "tenant mix has no positive weight");
  double r = rng.uniform() * total;
  for (const auto& tenant : tenants) {
    r -= tenant.weight;
    if (r < 0) return tenant.user;
  }
  return tenants.back().user;
}

std::string out_dir(int job_index) {
  return "/mt/out" + std::to_string(job_index);
}

}  // namespace

MultiTenantOutcome run_multitenant(const MultiTenantSpec& spec) {
  HMR_CHECK_MSG(spec.num_jobs > 0, "num_jobs must be positive");
  HMR_CHECK_MSG(!spec.tenants.empty(), "tenant mix must not be empty");

  TestbedSpec bed_spec;
  bed_spec.nodes = spec.nodes;
  bed_spec.profile = spec.setup.profile;
  bed_spec.hdfs.block_size = spec.block_size;
  bed_spec.seed = spec.seed;
  Testbed bed(bed_spec);
  bed.set_scheduler(spec.sched);

  const double scale = std::max(
      1.0, double(spec.job_modeled_bytes) / double(spec.target_real_bytes));
  DataGenSpec gen;
  gen.dir = "/mt/in";
  gen.modeled_total = spec.job_modeled_bytes;
  gen.part_modeled = spec.block_size;
  gen.scale = scale;
  gen.seed = spec.seed;
  auto digest = bed.generate("teragen", gen);
  HMR_CHECK_MSG(digest.ok(), "multitenant input generation failed");

  Conf conf = spec.setup.extra;
  conf.set(mapred::kShuffleEngine, spec.setup.engine);
  conf.set_double(mapred::kKvInflation, scale);
  conf.set_bytes(mapred::kMaxRecordBytes, std::uint64_t(102.0 * scale));

  // Arrival process: exponential interarrivals at the configured rate,
  // user drawn per job from the mix. Both streams derive from the
  // engine seed, so a replay of the same spec is byte-identical.
  auto handles = std::make_shared<
      std::vector<std::shared_ptr<mapred::SubmittedJob>>>();
  auto& engine = bed.engine();
  engine.spawn([](Testbed& bed, const MultiTenantSpec& spec, Conf conf,
                  std::shared_ptr<std::vector<
                      std::shared_ptr<mapred::SubmittedJob>>> handles)
                   -> sim::Task<> {
    auto& engine = bed.engine();
    Rng arrivals = engine.make_rng("sched.arrivals");
    Rng users = engine.make_rng("sched.arrivals.user");
    const double rate = bed.tracker().config().arrival_jobs_per_min;
    for (int j = 1; j <= spec.num_jobs; ++j) {
      if (rate > 0) co_await engine.delay(arrivals.exponential(60.0 / rate));
      const std::string user = pick_user(spec.tenants, users);
      mapred::JobSpec job =
          terasort_job(bed.dfs(), "/mt/in", out_dir(j), conf);
      job.name = "mt-" + std::to_string(j);
      handles->push_back(bed.tracker().submit(std::move(job), user));
    }
  }(bed, spec, conf, handles));
  engine.run();

  HMR_CHECK_MSG(engine.live_processes() == 0,
                "multitenant run left live processes behind");
  HMR_CHECK_MSG(int(handles->size()) == spec.num_jobs,
                "arrival process did not submit every job");

  MultiTenantOutcome outcome;
  std::vector<double> latencies;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  outcome.all_validated = true;
  for (int j = 1; j <= spec.num_jobs; ++j) {
    const auto& handle = (*handles)[size_t(j - 1)];
    HMR_CHECK_MSG(handle->completed,
                  "job " + std::to_string(j) + " never completed (starved)");
    JobRecord record;
    record.id = handle->id;
    record.user = handle->user;
    record.submitted_at = handle->submitted_at;
    record.dispatched_at = handle->dispatched_at;
    record.finished_at = handle->finished_at;
    record.latency = handle->latency();
    cache_hits += handle->result.cache_hits;
    cache_lookups += handle->result.cache_hits + handle->result.cache_misses;
    if (spec.validate) {
      auto report = validate_output(bed.dfs(), out_dir(j));
      HMR_CHECK_MSG(report.ok(), "job output missing: " + out_dir(j));
      record.output_digest = report->digest;
      record.validated = report->valid_terasort(*digest);
      HMR_CHECK_MSG(record.validated,
                    "multitenant job output validation FAILED: " + out_dir(j));
    }
    outcome.all_validated = outcome.all_validated && record.validated;
    outcome.makespan = std::max(outcome.makespan, record.finished_at);
    latencies.push_back(record.latency);
    outcome.records.push_back(std::move(record));
  }
  outcome.tenants = bed.tracker().tenant_stats();
  outcome.latency = latency_summary(std::move(latencies));
  outcome.cache_hit_rate =
      cache_lookups == 0 ? 0.0 : double(cache_hits) / double(cache_lookups);
  return outcome;
}

}  // namespace hmr::workloads
