// Shared scaffolding for the figure-reproduction benches: every binary
// prints the same series the paper's figure plots (one row per sort
// size, one column per engine) plus the improvement percentages the
// paper quotes in the text.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "workloads/benchjson.h"
#include "workloads/experiment.h"

namespace hmr::bench {

using workloads::BenchJson;
using workloads::EngineSetup;
using workloads::RunConfig;
using workloads::run_experiment;

struct Series {
  EngineSetup setup;
  int disks = 1;
};

struct FigureSpec {
  std::string id;        // BENCH_<id>.json; empty skips the JSON artifact
  std::string title;
  std::string workload;  // "terasort" | "sort"
  int nodes = 4;
  bool ssd = false;
  std::vector<std::uint64_t> sizes_gb;
  std::vector<Series> series;
  std::uint64_t target_real_bytes = 16 * 1024 * 1024;
};

inline std::string series_label(const FigureSpec& spec, const Series& series) {
  std::string label = series.setup.label;
  if (series.disks > 1) {
    label += ' ';
    label += std::to_string(series.disks);
    label += "disks";
  } else if (spec.series.size() > 4) {  // disk-count comparisons
    label += " 1disk";
  }
  return label;
}

inline void run_figure(const FigureSpec& spec) {
  std::printf("== %s ==\n", spec.title.c_str());
  std::vector<std::string> headers{"Sort Size (GB)"};
  for (const auto& series : spec.series) {
    headers.push_back(series_label(spec, series));
  }
  Table table(std::move(headers));
  // Matrix of results for the improvement summary.
  std::vector<std::vector<double>> seconds(spec.sizes_gb.size());
  BenchJson bench(spec.id, spec.title, spec.workload, spec.nodes);

  for (size_t row = 0; row < spec.sizes_gb.size(); ++row) {
    const auto gb = spec.sizes_gb[row];
    std::vector<std::string> cells{std::to_string(gb)};
    for (const auto& series : spec.series) {
      RunConfig config;
      config.setup = series.setup;
      config.workload = spec.workload;
      config.sort_modeled_bytes = gb * kGiB;
      config.nodes = spec.nodes;
      config.disks = series.disks;
      config.ssd = spec.ssd;
      config.target_real_bytes = spec.target_real_bytes;
      std::fprintf(stderr, "  %s %lluGB %s...\n", spec.workload.c_str(),
                   static_cast<unsigned long long>(gb),
                   series.setup.label.c_str());
      const auto outcome = run_experiment(config);
      bench.add_run(series_label(spec, series), double(gb), outcome);
      seconds[row].push_back(outcome.seconds());
      cells.push_back(Table::num(outcome.seconds(), 1));
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("(Job Execution Time in seconds; lower is better)\n\n");
  std::fflush(stdout);
  if (!spec.id.empty()) bench.write_file();
}

// Improvement of column b over column a at one row, in percent.
inline double improvement(double a, double b) { return (a - b) / a * 100.0; }

}  // namespace hmr::bench
