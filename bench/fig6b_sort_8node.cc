// Figure 6(b): the Sort benchmark on eight DataNodes, 25-40 GB.
//
// Paper quotes (40 GB): OSU-IB 27% over IPoIB and 32% over Hadoop-A.
#include "fig_common.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  FigureSpec spec;
  spec.id = "fig6b";
  spec.title = "Figure 6(b): Sort, 8 DataNodes, single HDD";
  spec.workload = "sort";
  spec.nodes = 8;
  spec.sizes_gb = {25, 30, 35, 40};
  spec.series = {{EngineSetup::one_gige(), 1},
                 {EngineSetup::ipoib(), 1},
                 {EngineSetup::hadoop_a(), 1},
                 {EngineSetup::osu_ib(), 1}};
  run_figure(spec);
  return 0;
}
