// bench/multitenant: offered load vs job-latency percentiles on a
// shared multi-tenant cluster. Each cell streams a Poisson arrival
// trace of small TeraSort jobs from a three-user mix through the
// JobTracker's fair-share scheduler and reports the p95 job latency
// (the "seconds" column bench_check diffs), plus p50/p99 and makespan
// as extra fields. Its BENCH_multitenant.json is diffed against
// bench/baselines/BENCH_multitenant.json in the CI bench-multitenant
// job; regenerate the baseline with
//   HMR_BENCH_DIR=bench/baselines ./build/bench/multitenant
// after any intentional scheduling or performance change.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"
#include "common/units.h"
#include "workloads/experiment.h"
#include "workloads/multitenant.h"

using namespace hmr;
using namespace hmr::workloads;

namespace {

MultiTenantSpec spec_for(EngineSetup setup, double jobs_per_min) {
  MultiTenantSpec spec;
  spec.setup = std::move(setup);
  spec.nodes = 2;
  spec.block_size = 16 * kMiB;
  spec.job_modeled_bytes = 64 * kMiB;  // 4 maps per job
  spec.target_real_bytes = 1 * kMiB;
  spec.num_jobs = 12;
  spec.seed = 42;
  spec.sched.policy = mapred::SchedPolicy::kFair;
  spec.sched.max_running_jobs = 4;
  spec.sched.arrival_jobs_per_min = jobs_per_min;
  spec.sched.pools["alice"].weight = 3.0;
  spec.sched.pools["bob"].weight = 1.0;
  spec.sched.pools["carol"].weight = 1.0;
  spec.tenants = {{"alice", 2.0}, {"bob", 1.0}, {"carol", 1.0}};
  return spec;
}

Json run_cell(const std::string& series, double jobs_per_min,
              const MultiTenantOutcome& outcome) {
  // hmr-bench-v1 row: size_gb carries the swept offered load (jobs/min)
  // and seconds the p95 job latency; the single-job phase breakdown has
  // no analogue across a whole trace, so phases are reported as zeros.
  Json phases = Json::object();
  for (const char* phase : {"map", "shuffle", "merge", "reduce"}) {
    phases.set(phase, Json(0.0));
  }
  Json latency = Json::object();
  latency.set("p50", Json(outcome.latency.p50));
  latency.set("p95", Json(outcome.latency.p95));
  latency.set("p99", Json(outcome.latency.p99));

  Json run = Json::object();
  run.set("series", Json(series));
  run.set("size_gb", Json(jobs_per_min));
  run.set("seconds", Json(outcome.latency.p95));
  run.set("phases", std::move(phases));
  run.set("overlap_fraction", Json(0.0));
  run.set("cache_hit_rate", Json(outcome.cache_hit_rate));
  run.set("validated", Json(outcome.all_validated));
  run.set("latency", std::move(latency));
  run.set("makespan", Json(outcome.makespan));
  run.set("jobs", Json(std::int64_t(outcome.records.size())));
  return run;
}

void write_doc(const Json& doc) {
  std::string path = "BENCH_multitenant.json";
  if (const char* dir = std::getenv("HMR_BENCH_DIR")) {
    if (dir[0] != '\0') path = std::string(dir) + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  const std::string body = doc.dump() + "\n";
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "  wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const std::vector<double> loads = {30, 60, 120};  // offered jobs/min
  const std::vector<EngineSetup> engines = {EngineSetup::ipoib(),
                                            EngineSetup::osu_ib()};

  std::printf(
      "== Multi-tenant: 12-job Poisson trace, fair-share, "
      "2 DataNodes, p95 job latency ==\n");
  std::vector<std::string> headers{"Offered load (jobs/min)"};
  for (const auto& engine : engines) headers.push_back(engine.label);
  Table table(std::move(headers));

  Json runs = Json::array();
  for (const double load : loads) {
    std::vector<std::string> cells{Table::num(load, 0)};
    for (const auto& engine : engines) {
      std::fprintf(stderr, "  %s at %.0f jobs/min...\n",
                   engine.label.c_str(), load);
      const auto outcome = run_multitenant(spec_for(engine, load));
      runs.push_back(run_cell(engine.label, load, outcome));
      cells.push_back(Table::num(outcome.latency.p95, 1));
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("(p95 job latency in seconds; lower is better)\n\n");
  std::fflush(stdout);

  Json doc = Json::object();
  doc.set("schema", Json("hmr-bench-v1"));
  doc.set("figure", Json("multitenant"));
  doc.set("title", Json("Multi-tenant offered load vs job latency"));
  doc.set("workload", Json("terasort"));
  doc.set("nodes", Json(std::int64_t(2)));
  doc.set("runs", std::move(runs));
  write_doc(doc);
  return 0;
}
