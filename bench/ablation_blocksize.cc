// Ablation A1: HDFS block size per engine (§IV: "we have identified the
// optimal values of HDFS block-size for different interconnects as well
// as for Hadoop-A and our design" — 256 MB for IPoIB/OSU-IB, 128 MB for
// Hadoop-A). Sweeps the block size for each engine on a fixed TeraSort.
#include "fig_common.h"
#include "mapred/types.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  std::printf("== Ablation A1: HDFS block size (TeraSort 20GB, 4 nodes) ==\n");
  Table table({"Block size", "IPoIB (32Gbps)", "HadoopA-IB (32Gbps)",
               "OSU-IB (32Gbps)"});
  BenchJson bench("ablation_blocksize", "Ablation A1: HDFS block size",
                  "terasort", 4);
  for (const std::uint64_t block_mb : {64, 128, 256, 512}) {
    std::vector<std::string> row{std::to_string(block_mb) + "MB"};
    for (auto setup : {EngineSetup::ipoib(), EngineSetup::hadoop_a(),
                       EngineSetup::osu_ib()}) {
      RunConfig config;
      config.setup = setup;
      config.workload = "terasort";
      config.sort_modeled_bytes = 20 * kGiB;
      config.nodes = 4;
      config.block_size = block_mb * kMiB;
      std::fprintf(stderr, "  block=%lluMB %s...\n",
                   static_cast<unsigned long long>(block_mb),
                   setup.label.c_str());
      const auto outcome = run_experiment(config);
      bench.add_run(setup.label + " block=" + std::to_string(block_mb) + "MB",
                    20.0, outcome);
      row.push_back(Table::num(outcome.seconds(), 1));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("(Job Execution Time in seconds; lower is better)\n");
  bench.write_file();
  return 0;
}
