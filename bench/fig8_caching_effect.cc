// Figure 8: the effect of the intermediate-data caching mechanism —
// Sort on SSD data stores, 5-20 GB, {IPoIB, OSU-IB without caching,
// OSU-IB with caching}.
//
// Paper quote: caching enabled improves OSU-IB by 18.39% at 20 GB.
// Extension rows (DESIGN.md §5 ablations): reduce-overlap disabled.
#include "fig_common.h"
#include "mapred/types.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  FigureSpec spec;
  spec.id = "fig8";
  spec.title = "Figure 8: Effect of the caching mechanism (Sort on SSD)";
  spec.workload = "sort";
  spec.nodes = 4;
  spec.ssd = true;
  spec.sizes_gb = {5, 10, 15, 20};
  auto no_overlap = workloads::EngineSetup::osu_ib();
  no_overlap.label = "OSU-IB (No Overlap)";
  no_overlap.extra.set_bool(mapred::kOverlapReduce, false);
  spec.series = {{EngineSetup::ipoib(), 1},
                 {EngineSetup::osu_ib_nocache(), 1},
                 {EngineSetup::osu_ib(), 1},
                 {no_overlap, 1}};
  run_figure(spec);
  return 0;
}
