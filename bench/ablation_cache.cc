// Ablation A3: PrefetchCache capacity — §IV-B's observation that the
// design "has more benefits in storage nodes" (24 GB RAM vs 12 GB).
// Sweeps mapred.local.caching.bytes on the paper's headline workload.
#include "fig_common.h"
#include "mapred/types.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  std::printf(
      "== Ablation A3: cache capacity (TeraSort 60GB, 8 nodes, 1 HDD) ==\n");
  Table table({"mapred.local.caching.bytes", "Job time (s)", "Hit rate"});
  BenchJson bench("ablation_cache", "Ablation A3: cache capacity",
                  "terasort", 8);
  for (const char* cache : {"0GB", "1GB", "2GB", "4GB", "8GB", "12GB"}) {
    RunConfig config;
    config.setup = EngineSetup::osu_ib();
    if (std::string(cache) == "0GB") {
      config.setup.extra.set_bool(mapred::kCachingEnabled, false);
    } else {
      config.setup.extra.set(mapred::kCacheBytes, cache);
    }
    config.workload = "terasort";
    config.sort_modeled_bytes = 60 * kGiB;
    config.nodes = 8;
    std::fprintf(stderr, "  cache=%s...\n", cache);
    const auto outcome = run_experiment(config);
    bench.add_run(std::string("OSU-IB cache=") + cache, 60.0, outcome);
    const auto total = outcome.job.cache_hits + outcome.job.cache_misses;
    table.add_row({cache, Table::num(outcome.seconds(), 1),
                   total == 0 ? "-"
                              : Table::num(double(outcome.job.cache_hits) /
                                               double(total) * 100.0,
                                           1) + "%"});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("(per-node map output here is ~7.5GB: the sweep crosses the "
              "working-set size)\n");
  bench.write_file();
  return 0;
}
