// Ablation A2: shuffle packet sizing — the §III-C(3) tunables. Sweeps
// the OSU-IB byte budget (mapred.rdma.packet.bytes) on both workloads,
// and the Hadoop-A fixed kv count on Sort; this is the design choice
// behind the paper's §IV-C Hadoop-A findings.
#include "fig_common.h"
#include "mapred/types.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  {
    std::printf(
        "== Ablation A2a: OSU-IB packet byte budget (20GB, 4 nodes) ==\n");
    Table table({"mapred.rdma.packet.bytes", "TeraSort (s)", "Sort (s)"});
    BenchJson bench("ablation_packet_bytes",
                    "Ablation A2a: OSU-IB packet byte budget", "terasort+sort",
                    4);
    for (const char* packet : {"64KB", "256KB", "1MB", "4MB", "16MB"}) {
      std::vector<std::string> row{packet};
      for (const char* workload : {"terasort", "sort"}) {
        RunConfig config;
        config.setup = EngineSetup::osu_ib();
        config.setup.extra.set(mapred::kRdmaPacketBytes, packet);
        config.workload = workload;
        config.sort_modeled_bytes = 20 * kGiB;
        config.nodes = 4;
        std::fprintf(stderr, "  packet=%s %s...\n", packet, workload);
        const auto outcome = run_experiment(config);
        bench.add_run(std::string(workload) + " packet=" + packet, 20.0,
                      outcome);
        row.push_back(Table::num(outcome.seconds(), 1));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.to_ascii().c_str(), stdout);
    bench.write_file();
  }
  {
    std::printf(
        "\n== Ablation A2b: Hadoop-A fixed kv count per packet (Sort 20GB, "
        "4 nodes) ==\n");
    Table table({"mapred.rdma.kv.per.packet", "Sort (s)"});
    BenchJson bench("ablation_packet_kv",
                    "Ablation A2b: Hadoop-A fixed kv count per packet", "sort",
                    4);
    for (const int count : {64, 256, 1024, 4096}) {
      RunConfig config;
      config.setup = EngineSetup::hadoop_a();
      config.setup.extra.set_int(mapred::kRdmaKvPerPacket, count);
      config.workload = "sort";
      config.sort_modeled_bytes = 20 * kGiB;
      config.nodes = 4;
      std::fprintf(stderr, "  kv=%d sort...\n", count);
      const auto outcome = run_experiment(config);
      bench.add_run("hadoop-a kv=" + std::to_string(count), 20.0, outcome);
      table.add_row(
          {std::to_string(count), Table::num(outcome.seconds(), 1)});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
    bench.write_file();
    std::printf(
        "(fixed counts ignore record size: harmless on 100-byte TeraSort "
        "rows, ruinous on 20KB Sort records)\n");
  }
  return 0;
}
