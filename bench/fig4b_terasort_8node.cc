// Figure 4(b): TeraSort job execution times on an eight-DataNode
// cluster, 60-100 GB, engines {1GigE, IPoIB, Hadoop-A, OSU-IB}, one and
// two HDDs per node.
//
// Paper quotes (100 GB): OSU-IB 21% over Hadoop-A with a single HDD and
// 31% with dual HDDs; 32% over IPoIB (headline of the abstract), rising
// to 39% with multiple disks.
#include "fig_common.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  FigureSpec spec;
  spec.id = "fig4b";
  spec.title = "Figure 4(b): TeraSort, 8 DataNodes, single and dual HDD";
  spec.workload = "terasort";
  spec.nodes = 8;
  spec.sizes_gb = {60, 80, 100};
  for (int disks : {1, 2}) {
    spec.series.push_back({EngineSetup::one_gige(), disks});
    spec.series.push_back({EngineSetup::ipoib(), disks});
    spec.series.push_back({EngineSetup::hadoop_a(), disks});
    spec.series.push_back({EngineSetup::osu_ib(), disks});
  }
  run_figure(spec);
  return 0;
}
