// Microbenchmark M4: record codec and sorter throughput — the per-byte
// CPU costs behind the simulator's map/merge compute model.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/crc32.h"
#include "common/rng.h"
#include "dataplane/kv.h"

namespace {

using namespace hmr;
using namespace hmr::dataplane;

std::vector<KvPair> records(int n, size_t key_len, size_t val_len,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KvPair> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    KvPair pair;
    pair.key.resize(key_len);
    pair.value.resize(val_len);
    for (auto& b : pair.key) b = std::uint8_t(rng.below(256));
    out.push_back(std::move(pair));
  }
  return out;
}

void BM_EncodeRun(benchmark::State& state) {
  auto pairs = records(int(state.range(0)), 10, 90, 1);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const Bytes run = encode_run(pairs);
    benchmark::DoNotOptimize(run.data());
    bytes += run.size();
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_EncodeRun)->Arg(1024)->Arg(65536);

void BM_DecodeRun(benchmark::State& state) {
  auto pairs = records(int(state.range(0)), 10, 90, 2);
  const Bytes run = encode_run(pairs);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto decoded = decode_run(run);
    benchmark::DoNotOptimize(decoded.value().size());
    bytes += run.size();
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_DecodeRun)->Arg(1024)->Arg(65536);

void BM_SortRecords(benchmark::State& state) {
  auto pairs = records(int(state.range(0)), 10, 90, 3);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto copy = pairs;
    std::sort(copy.begin(), copy.end(), KvLess{});
    benchmark::DoNotOptimize(copy.data());
    bytes += std::uint64_t(copy.size()) * 102;
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_SortRecords)->Arg(4096)->Arg(131072);

void BM_Crc32c(benchmark::State& state) {
  Bytes data(size_t(state.range(0)), 0xa5);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
    bytes += data.size();
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(1 << 20);

void BM_KeyCompare(benchmark::State& state) {
  auto pairs = records(1024, size_t(state.range(0)), 0, 4);
  Rng rng(5);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const auto& a = pairs[rng.below(pairs.size())];
    const auto& b = pairs[rng.below(pairs.size())];
    acc += std::uint64_t(KvLess::compare_keys(a.key, b.key));
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_KeyCompare)->Arg(10)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
