// Microbenchmark M5: the discrete-event engine itself — how many
// events/sec the coroutine scheduler sustains, since every simulated
// experiment's wall-clock cost is bounded by it.
#include <benchmark/benchmark.h>

#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace {

using namespace hmr;
using namespace hmr::sim;

void BM_EngineDelayEvents(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine engine;
    engine.spawn([](Engine& e) -> Task<> {
      for (int i = 0; i < 10000; ++i) co_await e.delay(0.001);
    }(engine));
    engine.run();
    events += engine.events_dispatched();
  }
  state.SetItemsProcessed(std::int64_t(events));
}
BENCHMARK(BM_EngineDelayEvents);

void BM_EngineManyProcesses(benchmark::State& state) {
  const int procs = int(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine engine;
    for (int p = 0; p < procs; ++p) {
      engine.spawn([](Engine& e, int p) -> Task<> {
        for (int i = 0; i < 100; ++i) co_await e.delay(0.001 * (p + 1));
      }(engine, p));
    }
    engine.run();
    events += engine.events_dispatched();
  }
  state.SetItemsProcessed(std::int64_t(events));
}
BENCHMARK(BM_EngineManyProcesses)->Arg(10)->Arg(1000)->Arg(10000);

void BM_ChannelThroughput(benchmark::State& state) {
  const size_t capacity = size_t(state.range(0));
  std::uint64_t items = 0;
  for (auto _ : state) {
    Engine engine;
    Channel<int> ch(engine, capacity);
    constexpr int kItems = 20000;
    engine.spawn([](Channel<int>& ch) -> Task<> {
      for (int i = 0; i < kItems; ++i) co_await ch.send(i);
      ch.close();
    }(ch));
    engine.spawn([](Channel<int>& ch) -> Task<> {
      while (co_await ch.recv()) {
      }
    }(ch));
    engine.run();
    items += kItems;
  }
  state.SetItemsProcessed(std::int64_t(items));
}
BENCHMARK(BM_ChannelThroughput)->Arg(1)->Arg(64)->Arg(4096);

void BM_ResourceContention(benchmark::State& state) {
  const int waiters = int(state.range(0));
  std::uint64_t acquisitions = 0;
  for (auto _ : state) {
    Engine engine;
    Resource r(engine, 4, "slots");
    for (int w = 0; w < waiters; ++w) {
      engine.spawn([](Engine& e, Resource& r) -> Task<> {
        for (int i = 0; i < 50; ++i) {
          co_await r.acquire();
          co_await e.delay(0.0001);
          r.release();
        }
      }(engine, r));
    }
    engine.run();
    acquisitions += std::uint64_t(waiters) * 50;
  }
  state.SetItemsProcessed(std::int64_t(acquisitions));
}
BENCHMARK(BM_ResourceContention)->Arg(8)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
