// Microbenchmark M1: k-way merge throughput (the reducer's core loop) —
// how the heap merge scales with the number of sorted runs and the
// record size, plus MapOutputBuilder sort/serialize cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "dataplane/kv.h"
#include "dataplane/merger.h"
#include "dataplane/partitioner.h"
#include "dataplane/segment.h"

namespace {

using namespace hmr;
using namespace hmr::dataplane;

std::vector<KvPair> sorted_run(int n, std::uint64_t seed, size_t val_len) {
  Rng rng(seed);
  std::vector<KvPair> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    KvPair pair;
    pair.key.resize(10);
    for (auto& b : pair.key) b = std::uint8_t(rng.below(256));
    pair.value.assign(val_len, 0x42);
    out.push_back(std::move(pair));
  }
  std::sort(out.begin(), out.end(), KvLess{});
  return out;
}

void BM_StreamMergerKWay(benchmark::State& state) {
  const int k = int(state.range(0));
  const int per_run = 2000;
  std::vector<std::vector<KvPair>> runs;
  for (int s = 0; s < k; ++s) runs.push_back(sorted_run(per_run, s + 1, 90));

  std::uint64_t records = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<KvSource>> sources;
    sources.reserve(runs.size());
    for (const auto& run : runs) {
      sources.push_back(std::make_unique<VectorSource>(run));
    }
    StreamMerger merger(std::move(sources));
    KvPair pair;
    while (merger.next(&pair)) benchmark::DoNotOptimize(pair.key.data());
    records += merger.records_merged();
  }
  state.SetItemsProcessed(std::int64_t(records));
  state.SetBytesProcessed(std::int64_t(records) * 102);
}
BENCHMARK(BM_StreamMergerKWay)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(400);

void BM_MergeRecordSize(benchmark::State& state) {
  const size_t val_len = size_t(state.range(0));
  const int records_total = 16384;
  std::vector<std::vector<KvPair>> runs;
  for (int s = 0; s < 8; ++s) {
    runs.push_back(sorted_run(records_total / 8, s + 1, val_len));
  }
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<KvSource>> sources;
    for (const auto& run : runs) {
      sources.push_back(std::make_unique<VectorSource>(run));
    }
    StreamMerger merger(std::move(sources));
    KvPair pair;
    while (merger.next(&pair)) bytes += pair.serialized_size();
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_MergeRecordSize)->Arg(90)->Arg(1000)->Arg(19000);

void BM_MapOutputBuilder(benchmark::State& state) {
  const int n = int(state.range(0));
  auto records = sorted_run(n, 7, 90);
  RangePartitioner partitioner;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    MapOutputBuilder builder(32, partitioner);
    for (const auto& record : records) builder.add(record);
    const MapOutput output = builder.build();
    benchmark::DoNotOptimize(output.total_bytes());
    bytes += output.total_bytes();
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_MapOutputBuilder)->Arg(1024)->Arg(16384)->Arg(131072);

// Chunked SegmentReader extraction — the RdmaResponder's inner loop.
void BM_TakeChunk(benchmark::State& state) {
  const std::uint64_t budget = std::uint64_t(state.range(0));
  auto pairs = sorted_run(20000, 9, 90);
  auto backing = std::make_shared<const Bytes>(encode_run(pairs));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    SegmentReader reader(backing, *backing);
    std::uint64_t n = 0;
    while (!reader.exhausted()) {
      auto chunk = reader.take_chunk(UINT64_MAX, budget, &n);
      benchmark::DoNotOptimize(chunk.data());
      bytes += chunk.size();
    }
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_TakeChunk)->Arg(4 * 1024)->Arg(64 * 1024)->Arg(1024 * 1024);

}  // namespace

BENCHMARK_MAIN();
