// bench/smoke: a fast TeraSort per shuffle engine (IPoIB sockets,
// Hadoop-A, OSU-IB) sized to finish in seconds. Its BENCH_smoke.json is
// what tools/bench_check diffs against bench/baselines/BENCH_smoke.json
// in the CI bench-smoke job; regenerate the baseline with
//   HMR_BENCH_DIR=bench/baselines ./build/bench/smoke
// after any intentional performance change.
#include "fig_common.h"

#include "mapred/types.h"

using namespace hmr;
using namespace hmr::bench;

namespace {

// Same engine with end-to-end checksum verification off: the delta
// against the stock OSU-IB column prices the integrity extension
// (DESIGN.md §6.2) in the baseline-diffed artifact.
EngineSetup osu_ib_nochecksum() {
  EngineSetup setup = EngineSetup::osu_ib();
  setup.label = "OSU-IB (no checksums)";
  setup.extra.set_bool(mapred::kIntegrityEnabled, false);
  return setup;
}

}  // namespace

int main() {
  FigureSpec spec;
  spec.id = "smoke";
  spec.title = "Smoke: TeraSort 2GB, 2 DataNodes, one run per engine";
  spec.workload = "terasort";
  spec.nodes = 2;
  spec.sizes_gb = {2};
  spec.series = {{EngineSetup::ipoib(), 1},
                 {EngineSetup::hadoop_a(), 1},
                 {EngineSetup::osu_ib(), 1},
                 {osu_ib_nochecksum(), 1}};
  spec.target_real_bytes = 4 * kMiB;
  run_figure(spec);
  return 0;
}
