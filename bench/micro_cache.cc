// Microbenchmark M3: PrefetchCache operations under the access patterns
// the TaskTracker sees — insert bursts at map completion, demand skew
// from hot reducers, and eviction churn when the working set exceeds
// the budget.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "dataplane/cache.h"

namespace {

using namespace hmr;
using namespace hmr::dataplane;

std::shared_ptr<const MapOutput> dummy() {
  return std::make_shared<const MapOutput>();
}

void BM_CachePutGetResident(benchmark::State& state) {
  PrefetchCache cache(std::uint64_t(state.range(0)) * 1000);
  for (int i = 0; i < state.range(0); ++i) {
    cache.put("map_" + std::to_string(i), dummy(), 1000);
  }
  Rng rng(1);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const auto key = "map_" + std::to_string(rng.below(state.range(0)));
    hits += cache.get(key) != nullptr;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_CachePutGetResident)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CacheEvictionChurn(benchmark::State& state) {
  // Working set 4x the budget: every put evicts.
  const int entries = int(state.range(0));
  PrefetchCache cache(std::uint64_t(entries) * 1000 / 4);
  Rng rng(2);
  int i = 0;
  for (auto _ : state) {
    cache.put("map_" + std::to_string(i++ % entries), dummy(), 1000,
              int(rng.below(3)));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
  state.counters["evictions"] = double(cache.stats().evictions);
}
BENCHMARK(BM_CacheEvictionChurn)->Arg(256)->Arg(4096);

void BM_CacheDemandBoost(benchmark::State& state) {
  PrefetchCache cache(1000 * 1000);
  for (int i = 0; i < 1000; ++i) {
    cache.put("map_" + std::to_string(i), dummy(), 1000);
  }
  Rng rng(3);
  for (auto _ : state) {
    cache.boost("map_" + std::to_string(rng.below(1000)), int(rng.below(8)));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_CacheDemandBoost);

// Mixed TaskTracker-like workload: 10% inserts, 85% gets (zipf-ish skew
// toward recent maps), 5% demand boosts.
void BM_CacheMixedWorkload(benchmark::State& state) {
  PrefetchCache cache(500 * 1000);
  Rng rng(4);
  int next_map = 0;
  for (auto _ : state) {
    const auto dice = rng.below(100);
    if (dice < 10 || next_map == 0) {
      cache.put("map_" + std::to_string(next_map++), dummy(), 1000);
    } else if (dice < 95) {
      // Recent maps are hot: sample from the last 256.
      const auto lo = next_map > 256 ? next_map - 256 : 0;
      const auto key = lo + int(rng.below(std::uint64_t(next_map - lo)));
      benchmark::DoNotOptimize(cache.get("map_" + std::to_string(key)));
    } else {
      cache.boost("map_" + std::to_string(rng.below(std::uint64_t(next_map))),
                  5);
    }
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheMixedWorkload);

}  // namespace

BENCHMARK_MAIN();
