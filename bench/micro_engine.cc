// bench/micro_engine: the ISSUE-7 event-queue speedup, measured and
// committed. Two deterministic workloads run on BOTH EventQueue
// implementations (4-ary + now-FIFO vs the legacy binary heap that
// reproduces the pre-optimization std::priority_queue) and the ratio of
// their wall-clock times is emitted as the hmr-bench-v1 "seconds" field:
//
//   seconds = time(kFourAry) / time(kLegacyBinaryHeap)
//
// A ratio is machine-independent in first order (CPU frequency cancels),
// so tools/bench_check can diff it against bench/baselines/
// BENCH_engine.json with a tight tolerance. A baseline ratio <= 0.5 is
// the committed proof of the >= 2x events/sec acceptance criterion.
// Absolute events/sec for both impls ride along as extra keys (allowed
// by the schema) for human eyes.
//
// Regenerate the baseline after an intentional engine change with
//   HMR_BENCH_DIR=bench/baselines ./build/bench/micro_engine
//
// Noise control, in layers: times are thread-CPU (immune to preemption
// and CPU steal), a warmup pair absorbs first-touch page faults, reps
// are INTERLEAVED (4-ary rep, legacy rep, 4-ary rep, ...) so each
// 4-ary rep is paired with a legacy rep that saw the same machine
// state, and the reported ratio is the MEDIAN of per-pair ratios — a
// noisy stretch skews one pair, not the estimate. Both impls see
// identical event streams.
// A second family of series covers ISSUE-8 parallel work events
// (sim/parallel.h): "parallel-overhead" is the thread-CPU cost of
// routing compute through `co_await engine.parallel` at workers=1
// relative to running the same compute inline (the price of admission,
// ~1.0), and "parallel-speedup" is the wall-clock time of the same
// compute-heavy workload at workers=2 relative to workers=1 (< 1 is a
// speedup; 4- and 8-worker ratios ride along as ungated extra keys
// because CI core counts vary). Both runs double as an identity check:
// `validated` demands every width produced the same event count, final
// clock, and per-host compute checksum.
// A third series times the ISSUE-9 hmr-lint call-graph analysis over
// the repo's own tree: the gated quantity is full-analysis time as a
// multiple of a bare lex of the same files, bounding what the
// repo-wide effect propagation costs on top of tokenization.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "lint/lexer.h"
#include "lint/lint.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/parallel.h"

namespace {

using namespace hmr;
using namespace hmr::sim;

constexpr int kReps = 5;

// Thread CPU time, not wall clock: the benchmark is single-threaded and
// CPU-bound, so this is the honest cost — and it is immune to scheduler
// preemption and (on shared CI runners) CPU steal, which otherwise
// swing wall-clock reps by 30%+.
double now_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

// One timed repetition of a workload on one implementation.
struct Once {
  std::uint64_t events = 0;  // events processed (impl-invariant)
  double seconds = 0;        // wall time for this rep
  double final_time = 0;     // queue/engine clock at the end (sanity)
};

// One workload measured on both impls: the ratio (the baseline-diffed
// number) is the MEDIAN of per-pair ratios — each 4-ary rep is paired
// with the legacy rep that ran right next to it in time, so a noisy
// stretch of machine skews one pair, not the estimate.
struct Comparison {
  std::uint64_t events = 0;    // events per rep (impl-invariant)
  double ratio = 0;            // median of per-pair fourary/legacy times
  double fourary_seconds = 0;  // median rep time, for display ev/s
  double legacy_seconds = 0;
  bool streams_match = false;  // both impls saw identical event streams
};

// Workload 1: raw queue churn against a fat backlog. 32k staggered
// future events stay resident while 16M pop+push operations replay the
// engine's dominant mix: 7 of 8 re-arms land at exactly now() (channel
// and resource wakeups — the FIFO fast path) and 1 of 8 is a short
// future timer (the heap path). No coroutines are resumed — this
// isolates the container cost the engine pays per event. Jitters are
// precomputed so the measured loop is queue ops and nothing else.
Once queue_churn(EventQueue::Impl impl) {
  constexpr std::size_t kBacklog = 32768;
  // Sized so one rep is hundreds of milliseconds of CPU: the kernel
  // accounts thread CPU time in ~10ms jiffies, so short reps would be
  // quantization noise.
  constexpr std::uint64_t kOps = 16'000'000;
  static const std::vector<double> jitter = [] {
    std::vector<double> j(4096);
    Rng rng(7, "micro_engine.churn");
    for (double& v : j) v = 1e-6 + rng.uniform() * 0.01;
    return j;
  }();
  Once m;
  m.events = kOps;
  EventQueue queue(impl);
  Rng backlog_rng(11, "micro_engine.backlog");
  std::uint64_t seq = 0;
  double now = 0.0;
  for (std::size_t i = 0; i < kBacklog; ++i) {
    // Far-future: the backlog stays resident for the whole run, so
    // every heap op works against its full depth.
    queue.push(now, {1e9 + backlog_rng.uniform() * 1e9, seq++, {}});
  }
  queue.push(now, {0.0, seq++, {}});  // primes the dispatch chain
  const double t0 = now_seconds();
  for (std::uint64_t op = 0; op < kOps; ++op) {
    EventQueue::Event event = queue.pop();
    now = event.at;
    const double at =
        (op & 7) != 0 ? now : now + jitter[op / 8 % jitter.size()];
    queue.push(now, {at, seq++, {}});
  }
  m.seconds = now_seconds() - t0;
  m.final_time = now;
  return m;
}

// Workload 2: the full engine loop. 128k far-future timer processes
// keep the heap deep (each holds exactly one pending event for the
// whole hot phase) while 64 hot processes spin on delay(0), so every
// hot dispatch exercises the now-FIFO (or, on the legacy impl, a full
// O(log n) push+pop against the 128k backlog) plus real coroutine
// resumption — the events/sec the simulator actually sustains.
Once engine_dispatch(EventQueue::Impl impl) {
  constexpr int kTimers = 131072;
  constexpr int kHot = 64;
  constexpr int kSpins = 16000;
  Once m;
  Engine engine(1, impl);
  for (int t = 0; t < kTimers; ++t) {
    engine.spawn([](Engine& e, int t) -> Task<> {
      co_await e.delay(1e6 + t);  // pending for the whole hot phase
    }(engine, t));
  }
  for (int h = 0; h < kHot; ++h) {
    engine.spawn([](Engine& e) -> Task<> {
      for (int i = 0; i < kSpins; ++i) co_await e.delay(0.0);
    }(engine));
  }
  const double t0 = now_seconds();
  engine.run();
  m.seconds = now_seconds() - t0;
  m.events = engine.events_dispatched();
  m.final_time = engine.now();
  return m;
}

// Wall clock for the speedup series: worker threads are the whole
// point, so thread-CPU time of the engine thread would miss them.
double now_wall_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

// One timed repetition of the parallel-compute workload.
struct ParallelOnce {
  double seconds = 0;
  std::uint64_t events = 0;
  double final_time = 0;
  std::uint64_t checksum = 0;  // XOR of per-host compute sums
};

// Workload 3: parallel work events. Eight hosts each run rounds of
// `co_await parallel(host, <hash spin>)` separated by equal delays, so
// every round is one batch of eight single-item chains — the shape
// map-compute batches take in a real job. The spin is sized to
// millisecond-scale chains (what a map task's decode+sort+build costs)
// so compute dominates the pool's per-batch condvar handoff — on
// virtualized CI runners a futex wake costs tens to hundreds of
// microseconds, which would drown sub-millisecond chains. `use_wall`
// picks the clock: wall for speedup, thread-CPU for the workers=1
// overhead ratio (single-threaded there, and immune to CI preemption).
ParallelOnce parallel_compute(int workers, bool use_wall,
                              bool use_parallel_path = true) {
  constexpr int kHosts = 8;
  constexpr int kRounds = 8;
  constexpr int kSpin = 2'000'000;
  Engine engine(3);
  engine.set_parallel_workers(workers);
  std::vector<std::uint64_t> sums(std::size_t(kHosts), 0);
  const auto spin = [](int host, int round) {
    std::uint64_t h = 1469598103934665603ull +
                      std::uint64_t(host) * 1099511628211ull +
                      std::uint64_t(round);
    for (int i = 0; i < kSpin; ++i) {
      h ^= std::uint64_t(i);
      h *= 1099511628211ull;
    }
    return h;
  };
  for (int host = 0; host < kHosts; ++host) {
    if (use_parallel_path) {
      engine.spawn([](Engine& e, int host, std::uint64_t* sum,
                      decltype(spin) spin) -> Task<> {
        for (int round = 0; round < kRounds; ++round) {
          co_await e.parallel(host, [=](ParallelEffects&) {
            *sum += spin(host, round);  // chain-confined slot
          });
          co_await e.delay(1e-3);
        }
      }(engine, host, &sums[std::size_t(host)], spin));
    } else {
      // Inline twin: identical compute and event cadence, no work
      // events — the baseline the overhead ratio divides by.
      engine.spawn([](Engine& e, int host, std::uint64_t* sum,
                      decltype(spin) spin) -> Task<> {
        for (int round = 0; round < kRounds; ++round) {
          *sum += spin(host, round);
          co_await e.delay(1e-3);
        }
      }(engine, host, &sums[std::size_t(host)], spin));
    }
  }
  ParallelOnce m;
  const double t0 = use_wall ? now_wall_seconds() : now_seconds();
  engine.run();
  m.seconds = (use_wall ? now_wall_seconds() : now_seconds()) - t0;
  m.events = engine.events_dispatched();
  m.final_time = engine.now();
  for (std::uint64_t s : sums) m.checksum ^= s;
  return m;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// Interleaved pairs: one warmup pair (discarded — first-touch page
// faults and allocator growth land there), then kReps timed pairs.
template <typename Workload>
Comparison measure(Workload workload) {
  Comparison c;
  workload(EventQueue::Impl::kFourAry);
  workload(EventQueue::Impl::kLegacyBinaryHeap);
  std::vector<double> ratios, fourary_times, legacy_times;
  for (int rep = 0; rep < kReps; ++rep) {
    const Once f = workload(EventQueue::Impl::kFourAry);
    const Once l = workload(EventQueue::Impl::kLegacyBinaryHeap);
    ratios.push_back(f.seconds / l.seconds);
    fourary_times.push_back(f.seconds);
    legacy_times.push_back(l.seconds);
    c.events = f.events;
    c.streams_match =
        f.events == l.events && f.final_time == l.final_time;
  }
  c.ratio = median(ratios);
  c.fourary_seconds = median(fourary_times);
  c.legacy_seconds = median(legacy_times);
  return c;
}

Json make_run(const std::string& series, const Comparison& c) {
  Json phases = Json::object();
  for (const char* phase : {"map", "shuffle", "merge", "reduce"}) {
    phases.set(phase, Json(0.0));
  }
  Json run = Json::object();
  run.set("series", Json(series));
  run.set("size_gb", Json(0.0));
  // The baseline-diffed quantity: new-queue time as a fraction of
  // legacy-queue time (< 1 is a speedup, 0.5 is the 2x acceptance bar).
  run.set("seconds", Json(c.ratio));
  run.set("phases", std::move(phases));
  run.set("overlap_fraction", Json(0.0));
  run.set("cache_hit_rate", Json(0.0));
  // Validated = both impls processed the identical event stream: same
  // count, same final simulated clock.
  run.set("validated", Json(c.streams_match));
  run.set("events_per_sec_fourary",
          Json(double(c.events) / c.fourary_seconds));
  run.set("events_per_sec_legacy",
          Json(double(c.events) / c.legacy_seconds));
  std::printf("%-28s 4-ary %10.0f ev/s   legacy %10.0f ev/s   %.2fx\n",
              series.c_str(), double(c.events) / c.fourary_seconds,
              double(c.events) / c.legacy_seconds, 1.0 / c.ratio);
  return run;
}

// The identity half of the parallel series: every width must have seen
// the same stream and computed the same bytes.
bool parallel_match(const ParallelOnce& a, const ParallelOnce& b) {
  return a.events == b.events && a.final_time == b.final_time &&
         a.checksum == b.checksum;
}

// The parallel series are gated with the ratio of per-width MINIMUM rep
// times, not the median of per-pair ratios the queue series use: wall
// clock on virtualized runners takes one-sided noise (steal, neighbor
// load only ever slow a rep down), and the min over interleaved reps is
// the clean-machine estimate that noise cannot inflate.
double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

// Overhead of the parallel path itself: thread-CPU time of the
// workers=1 engine routing compute through work events, as a fraction
// of the inline twin.
Json make_parallel_overhead_run() {
  std::vector<double> path_times, inline_times;
  bool match = true;
  std::uint64_t events = 0;
  parallel_compute(1, /*use_wall=*/false);
  parallel_compute(1, /*use_wall=*/false, /*use_parallel_path=*/false);
  for (int rep = 0; rep < kReps; ++rep) {
    const ParallelOnce p = parallel_compute(1, /*use_wall=*/false);
    const ParallelOnce inline_twin =
        parallel_compute(1, /*use_wall=*/false, /*use_parallel_path=*/false);
    path_times.push_back(p.seconds);
    inline_times.push_back(inline_twin.seconds);
    match = match && p.checksum == inline_twin.checksum;
    events = p.events;
  }
  const double ratio = min_of(path_times) / min_of(inline_times);
  Json phases = Json::object();
  for (const char* phase : {"map", "shuffle", "merge", "reduce"}) {
    phases.set(phase, Json(0.0));
  }
  Json run = Json::object();
  run.set("series", Json("parallel-overhead 1-worker"));
  run.set("size_gb", Json(0.0));
  run.set("seconds", Json(ratio));
  run.set("phases", std::move(phases));
  run.set("overlap_fraction", Json(0.0));
  run.set("cache_hit_rate", Json(0.0));
  run.set("validated", Json(match));
  run.set("events_per_rep", Json(double(events)));
  std::printf("%-28s parallel-path/inline CPU ratio %.3f\n",
              "parallel-overhead 1-worker", ratio);
  return run;
}

// Wall-clock speedup of real worker threads. The gated "seconds" is the
// workers=2 ratio (every CI runner has 2 cores); wider pools ride along
// as ungated keys. Reps interleave all widths so each rep's ratios share
// machine state.
Json make_parallel_speedup_run() {
  std::vector<double> t1, t2, t4, t8;
  bool match = true;
  parallel_compute(1, /*use_wall=*/true);
  parallel_compute(2, /*use_wall=*/true);
  for (int rep = 0; rep < kReps; ++rep) {
    const ParallelOnce w1 = parallel_compute(1, /*use_wall=*/true);
    const ParallelOnce w2 = parallel_compute(2, /*use_wall=*/true);
    const ParallelOnce w4 = parallel_compute(4, /*use_wall=*/true);
    const ParallelOnce w8 = parallel_compute(8, /*use_wall=*/true);
    t1.push_back(w1.seconds);
    t2.push_back(w2.seconds);
    t4.push_back(w4.seconds);
    t8.push_back(w8.seconds);
    match = match && parallel_match(w1, w2) && parallel_match(w1, w4) &&
            parallel_match(w1, w8);
  }
  const double r2 = min_of(t2) / min_of(t1);
  const double r4 = min_of(t4) / min_of(t1);
  const double r8 = min_of(t8) / min_of(t1);
  Json phases = Json::object();
  for (const char* phase : {"map", "shuffle", "merge", "reduce"}) {
    phases.set(phase, Json(0.0));
  }
  Json run = Json::object();
  run.set("series", Json("parallel-speedup 2-workers"));
  run.set("size_gb", Json(0.0));
  run.set("seconds", Json(r2));
  run.set("phases", std::move(phases));
  run.set("overlap_fraction", Json(0.0));
  run.set("cache_hit_rate", Json(0.0));
  run.set("validated", Json(match));
  run.set("speedup_w4", Json(r4));
  run.set("speedup_w8", Json(r8));
  std::printf("%-28s wall ratio w2 %.3f  w4 %.3f  w8 %.3f  (%.2fx at 2)\n",
              "parallel-speedup 2-workers", r2, r4, r8, 1.0 / r2);
  return run;
}

// Workload 5: the hmr-lint repo-wide call-graph analysis (ISSUE 9) run
// over the repo's own tree. Gated "seconds" is the full analysis (call
// graph extraction, fixed-point effect propagation, every rule family)
// as a multiple of a bare lex of the same files — a machine-independent
// ratio, like the queue series, bounding how much the call-graph layers
// cost on top of tokenization. Absolute full-tree milliseconds ride
// along ungated for human eyes. `validated` doubles as a dogfood check:
// the tree must lint to zero findings.
Json make_lint_run() {
  std::vector<lint::SourceFile> files;
  // The CI bench job runs from the repo root; the ".." fallbacks cover
  // invocations from build/ or build/bench/.
  for (const char* root : {".", "..", "../.."}) {
    auto tree = lint::collect_tree(root, {"src", "tools", "tests"});
    if (tree.ok() && tree.value().size() >= 20) {
      files = std::move(tree).value();
      break;
    }
  }
  Json phases = Json::object();
  for (const char* phase : {"map", "shuffle", "merge", "reduce"}) {
    phases.set(phase, Json(0.0));
  }
  Json run = Json::object();
  run.set("series", Json("lint-callgraph full-tree"));
  run.set("size_gb", Json(0.0));
  run.set("phases", std::move(phases));
  run.set("overlap_fraction", Json(0.0));
  run.set("cache_hit_rate", Json(0.0));
  if (files.empty()) {
    // No repo tree near the binary (an installed copy, say): emit an
    // invalid run rather than crash. CI always has the tree.
    run.set("seconds", Json(0.0));
    run.set("validated", Json(false));
    std::printf("%-28s repo tree not found; series invalid\n",
                "lint-callgraph full-tree");
    return run;
  }
  (void)lint::lint_files(files, {});  // warmup: allocator growth
  std::vector<double> full_times, lex_times;
  std::size_t findings = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    // Both passes repeat inside the timer: a single pass is a handful
    // of ~10ms kernel CPU-accounting jiffies, and quantization on
    // either side of the ratio would eat the gate's tolerance.
    constexpr int kFullIters = 4;
    double t0 = now_seconds();
    for (int it = 0; it < kFullIters; ++it) {
      const lint::Report report = lint::lint_files(files, {});
      findings = report.findings.size();
    }
    full_times.push_back((now_seconds() - t0) / kFullIters);
    constexpr int kLexIters = 8;
    t0 = now_seconds();
    std::size_t tokens = 0;
    for (int it = 0; it < kLexIters; ++it) {
      for (const auto& f : files) {
        tokens += lint::lex(f.path, f.text).tokens.size();
      }
    }
    lex_times.push_back((now_seconds() - t0) / kLexIters);
    if (tokens == 0) findings += 1;  // lex produced nothing: invalid
  }
  const double ratio = min_of(full_times) / min_of(lex_times);
  run.set("seconds", Json(ratio));
  run.set("validated", Json(findings == 0));
  run.set("lint_files", Json(double(files.size())));
  run.set("lint_full_ms", Json(min_of(full_times) * 1e3));
  std::printf("%-28s full/lex ratio %.2f   full %.0f ms over %zu files\n",
              "lint-callgraph full-tree", ratio, min_of(full_times) * 1e3,
              files.size());
  return run;
}

}  // namespace

int main() {
  std::printf("micro_engine: EventQueue 4-ary+FIFO vs legacy binary heap "
              "(median of %d interleaved rep pairs)\n", kReps);
  Json runs = Json::array();
  runs.push_back(
      make_run("queue-churn 32k-backlog", measure(queue_churn)));
  runs.push_back(
      make_run("engine-dispatch 128k-timers", measure(engine_dispatch)));
  runs.push_back(make_parallel_overhead_run());
  runs.push_back(make_parallel_speedup_run());
  runs.push_back(make_lint_run());

  Json doc = Json::object();
  doc.set("schema", Json("hmr-bench-v1"));
  doc.set("figure", Json("engine"));
  doc.set("title", Json("Engine event-queue: 4-ary+FIFO time as a fraction "
                        "of the legacy binary heap"));
  doc.set("workload", Json("microbench"));
  doc.set("nodes", Json(std::int64_t(0)));
  doc.set("runs", std::move(runs));

  std::string path = "BENCH_engine.json";
  // lint:ignore(determinism): HMR_BENCH_DIR only redirects host-side bench report output; nothing in the simulation reads it
  if (const char* dir = std::getenv("HMR_BENCH_DIR")) {
    if (dir[0] != '\0') path = std::string(dir) + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_engine: cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string body = doc.dump() + "\n";
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "  wrote %s\n", path.c_str());
  return 0;
}
