// Microbenchmark M6: HDFS-lite throughput, TestDFSIO-style — aggregate
// write and read bandwidth across the cluster for each replication
// factor and fabric, plus the re-replication cost after a DataNode loss.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "hdfs/hdfs.h"
#include "net/cluster.h"

using namespace hmr;
using namespace hmr::net;
using namespace hmr::hdfs;

namespace {

struct DfsioResult {
  double write_mbps;
  double read_mbps;
};

DfsioResult run_dfsio(NetProfile profile, int replication, int files) {
  sim::Engine engine;
  Cluster cluster(engine, profile, Cluster::uniform(5, 1));
  Network network(engine, profile);
  HdfsParams params;
  params.block_size = 64 * kMiB;
  params.replication = replication;
  MiniDfs dfs(cluster, network, params, 0, {1, 2, 3, 4});

  constexpr std::uint64_t kFileModeled = 512 * kMiB;
  const double scale = double(kFileModeled) / double(256 * 1024);

  const double write_start = engine.now();
  sim::WaitGroup writers(engine);
  for (int f = 0; f < files; ++f) {
    writers.add();
    engine.spawn([](MiniDfs& dfs, Cluster& cluster, int f, double scale,
                    sim::WaitGroup& done) -> sim::Task<> {
      Bytes data(256 * 1024, std::uint8_t(f));
      const Status st = co_await dfs.write(
          cluster.host(1 + f % 4), "/dfsio/f" + std::to_string(f),
          std::move(data), scale);
      HMR_CHECK(st.ok());
      done.done();
    }(dfs, cluster, f, scale, writers));
  }
  engine.spawn([](sim::WaitGroup& w) -> sim::Task<> { co_await w.wait(); }(
      writers));
  engine.run();
  const double write_secs = engine.now() - write_start;

  const double read_start = engine.now();
  sim::WaitGroup readers(engine);
  for (int f = 0; f < files; ++f) {
    readers.add();
    engine.spawn([](MiniDfs& dfs, Cluster& cluster, int f,
                    sim::WaitGroup& done) -> sim::Task<> {
      // Read from the "wrong" host so some traffic crosses the wire.
      auto r = co_await dfs.read(cluster.host(1 + (f + 1) % 4),
                                 "/dfsio/f" + std::to_string(f));
      HMR_CHECK(r.ok());
      done.done();
    }(dfs, cluster, f, readers));
  }
  engine.spawn([](sim::WaitGroup& w) -> sim::Task<> { co_await w.wait(); }(
      readers));
  engine.run();
  const double read_secs = engine.now() - read_start;

  const double total_mb = double(kFileModeled) * files / 1e6;
  return {total_mb / write_secs, total_mb / read_secs};
}

}  // namespace

int main() {
  std::printf("== M6: HDFS-lite TestDFSIO (8 x 512MB files, 4 DataNodes, "
              "1 HDD each) ==\n");
  Table table({"Fabric", "Replication", "Write (MB/s)", "Read (MB/s)"});
  for (auto profile : {NetProfile::one_gige(), NetProfile::ipoib_qdr()}) {
    for (int replication : {1, 2, 3}) {
      std::fprintf(stderr, "  %s r=%d...\n", profile.name.c_str(),
                   replication);
      const auto result = run_dfsio(profile, replication, 8);
      table.add_row({profile.name, std::to_string(replication),
                     Table::num(result.write_mbps, 0),
                     Table::num(result.read_mbps, 0)});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("(aggregate cluster throughput; writes scale down with the "
              "replication factor)\n");
  return 0;
}
