// Figure 5: TeraSort with larger sort sizes on larger clusters —
// 100 GB on 12 compute nodes and 200 GB on 24 compute nodes, engines
// {1GigE, IPoIB, Hadoop-A, OSU-IB}.
//
// Paper quotes (100 GB / 12 nodes): OSU-IB 41% over IPoIB and 7% over
// Hadoop-A; "for 200GB sort size also, we achieve similar benefits".
#include "fig_common.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  for (const auto& [gb, nodes] : {std::pair{100, 12}, std::pair{200, 24}}) {
    FigureSpec spec;
    spec.id = "fig5_" + std::to_string(nodes) + "node";
    spec.title = "Figure 5: TeraSort " + std::to_string(gb) + "GB on " +
                 std::to_string(nodes) + " nodes";
    spec.workload = "terasort";
    spec.nodes = nodes;
    spec.sizes_gb = {std::uint64_t(gb)};
    spec.series = {{EngineSetup::one_gige(), 1},
                   {EngineSetup::ipoib(), 1},
                   {EngineSetup::hadoop_a(), 1},
                   {EngineSetup::osu_ib(), 1}};
    run_figure(spec);
  }
  return 0;
}
