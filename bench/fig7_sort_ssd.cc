// Figure 7: the Sort benchmark with SSDs as the HDFS data store,
// 5-20 GB on four DataNodes.
//
// Paper quotes (15 GB): OSU-IB 22% over Hadoop-A and 46% over IPoIB.
#include "fig_common.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  FigureSpec spec;
  spec.id = "fig7";
  spec.title = "Figure 7: Sort on SSD data stores, 4 DataNodes";
  spec.workload = "sort";
  spec.nodes = 4;
  spec.ssd = true;
  spec.sizes_gb = {5, 10, 15, 20};
  spec.series = {{EngineSetup::one_gige(), 1},
                 {EngineSetup::ipoib(), 1},
                 {EngineSetup::hadoop_a(), 1},
                 {EngineSetup::osu_ib(), 1}};
  run_figure(spec);
  return 0;
}
