// bench/speculation: job-latency percentiles vs slow-node fraction with
// speculative execution on and off, for all three shuffle engines. Each
// cell runs a seeded set of TeraSort trials on a 10-DataNode testbed
// where `fraction` of the hosts get a permanent 4x CPU degrade
// (sim.fault.cpu.* conf keys, armed at t=1s) and reports p50/p95/p99
// job latency across the trials; the "seconds" column bench_check diffs
// is the p95. With LATE speculation on, backups of the degraded hosts'
// tasks land on healthy nodes and the tail collapses — the p99 row at
// the 10% fraction is the ISSUE-10 acceptance series. Its
// BENCH_speculation.json is diffed against
// bench/baselines/BENCH_speculation.json in the CI bench-speculation
// job; regenerate the baseline with
//   HMR_BENCH_DIR=bench/baselines ./build/bench/speculation
// after any intentional scheduling or performance change.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"
#include "common/units.h"
#include "mapred/types.h"
#include "sim/fault.h"
#include "workloads/experiment.h"

using namespace hmr;
using namespace hmr::workloads;

namespace {

constexpr int kNodes = 10;
constexpr int kTrials = 5;

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0;
};

Percentiles percentiles(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const size_t idx = size_t(q * double(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
  };
  return Percentiles{at(0.50), at(0.95), at(0.99)};
}

// Comma-joined host ids 1..slow_nodes (datanodes are hosts 1..kNodes).
std::string slow_host_list(int slow_nodes) {
  std::string hosts;
  for (int h = 1; h <= slow_nodes; ++h) {
    if (!hosts.empty()) hosts += ",";
    hosts += std::to_string(h);
  }
  return hosts;
}

RunConfig config_for(const EngineSetup& engine, double fraction,
                     bool speculative, std::uint64_t seed) {
  RunConfig config;
  config.setup = engine;
  config.workload = "terasort";
  config.nodes = kNodes;
  config.sort_modeled_bytes = 160 * kMiB;  // one 16 MiB split per node
  config.block_size = 16 * kMiB;
  config.target_real_bytes = 512 * kKiB;
  config.seed = seed;

  const int slow_nodes = int(fraction * kNodes + 0.5);
  if (slow_nodes > 0) {
    // Conf-driven compute faults: the listed hosts run all compute at
    // quarter speed from t=1s for the rest of the job (no restore), the
    // canonical "one bad node doubles the tail" straggler shape.
    config.setup.extra.set(sim::kCpuFaultHosts, slow_host_list(slow_nodes));
    config.setup.extra.set_double(sim::kCpuFaultAtSec, 1.0);
    config.setup.extra.set_double(sim::kCpuFaultFactor, 0.25);
  }
  config.setup.extra.set_bool(mapred::kSpeculativeExecution, speculative);
  config.setup.extra.set_bool(mapred::kReduceSpeculativeExecution,
                              speculative);
  return config;
}

Json run_cell(const std::string& series, double fraction,
              const Percentiles& latency, bool validated,
              std::uint64_t attempts, std::uint64_t wins) {
  // hmr-bench-v1 row: size_gb carries the swept slow-node fraction and
  // seconds the p95 job latency; single-job phase breakdowns do not
  // aggregate across trials, so phases are reported as zeros.
  Json phases = Json::object();
  for (const char* phase : {"map", "shuffle", "merge", "reduce"}) {
    phases.set(phase, Json(0.0));
  }
  Json pcts = Json::object();
  pcts.set("p50", Json(latency.p50));
  pcts.set("p95", Json(latency.p95));
  pcts.set("p99", Json(latency.p99));

  Json run = Json::object();
  run.set("series", Json(series));
  run.set("size_gb", Json(fraction));
  run.set("seconds", Json(latency.p95));
  run.set("phases", std::move(phases));
  run.set("overlap_fraction", Json(0.0));
  run.set("cache_hit_rate", Json(0.0));
  run.set("validated", Json(validated));
  run.set("latency", std::move(pcts));
  run.set("speculative_attempts", Json(std::int64_t(attempts)));
  run.set("speculative_wins", Json(std::int64_t(wins)));
  return run;
}

void write_doc(const Json& doc) {
  std::string path = "BENCH_speculation.json";
  if (const char* dir = std::getenv("HMR_BENCH_DIR")) {
    if (dir[0] != '\0') path = std::string(dir) + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  const std::string body = doc.dump() + "\n";
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "  wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const std::vector<double> fractions = {0.0, 0.1, 0.2};
  const std::vector<EngineSetup> engines = {
      EngineSetup::ipoib(), EngineSetup::hadoop_a(), EngineSetup::osu_ib()};

  std::printf(
      "== Speculation: TeraSort p95 latency vs slow-node fraction, "
      "%d DataNodes, %d trials per cell ==\n",
      kNodes, kTrials);
  std::vector<std::string> headers{"Slow-node fraction"};
  for (const auto& engine : engines) {
    headers.push_back(engine.label + " spec=off");
    headers.push_back(engine.label + " spec=on");
  }
  Table table(std::move(headers));

  Json runs = Json::array();
  for (const double fraction : fractions) {
    std::vector<std::string> cells{Table::num(fraction, 2)};
    for (const auto& engine : engines) {
      for (const bool speculative : {false, true}) {
        std::fprintf(stderr, "  %s spec=%s fraction=%.2f...\n",
                     engine.label.c_str(), speculative ? "on" : "off",
                     fraction);
        std::vector<double> samples;
        bool validated = true;
        std::uint64_t attempts = 0, wins = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
          const auto outcome = run_experiment(config_for(
              engine, fraction, speculative, std::uint64_t(trial) + 1));
          samples.push_back(outcome.seconds());
          validated = validated && outcome.validated;
          attempts += outcome.job.speculative_attempts;
          wins += outcome.job.speculative_wins;
        }
        const Percentiles latency = percentiles(std::move(samples));
        runs.push_back(run_cell(
            engine.label + (speculative ? " spec=on" : " spec=off"),
            fraction, latency, validated, attempts, wins));
        cells.push_back(Table::num(latency.p95, 1));
      }
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("(p95 job latency in seconds; lower is better)\n\n");
  std::fflush(stdout);

  Json doc = Json::object();
  doc.set("schema", Json("hmr-bench-v1"));
  doc.set("figure", Json("speculation"));
  doc.set("title",
          Json("Speculative execution vs slow-node fraction"));
  doc.set("workload", Json("terasort"));
  doc.set("nodes", Json(std::int64_t(kNodes)));
  doc.set("runs", std::move(runs));
  write_doc(doc);
  return 0;
}
