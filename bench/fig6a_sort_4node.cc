// Figure 6(a): the Sort benchmark (RandomWriter input, variable-size
// records up to 20,000 bytes) on four DataNodes, 5-20 GB, engines
// {1GigE, IPoIB, Hadoop-A, OSU-IB}, 64 MB HDFS blocks.
//
// Paper quotes (20 GB): OSU-IB 26% over IPoIB and 38% over Hadoop-A —
// and, notably, "Hadoop-A performs worse than IPoIB" on this benchmark
// because its fixed kv-count packets ignore the record size.
#include "fig_common.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  FigureSpec spec;
  spec.id = "fig6a";
  spec.title = "Figure 6(a): Sort, 4 DataNodes, single HDD";
  spec.workload = "sort";
  spec.nodes = 4;
  spec.sizes_gb = {5, 10, 15, 20};
  spec.series = {{EngineSetup::one_gige(), 1},
                 {EngineSetup::ipoib(), 1},
                 {EngineSetup::hadoop_a(), 1},
                 {EngineSetup::osu_ib(), 1}};
  run_figure(spec);
  return 0;
}
