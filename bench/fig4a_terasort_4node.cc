// Figure 4(a): TeraSort job execution times on a four-DataNode cluster,
// sort sizes 20-40 GB, engines {10GigE, IPoIB, Hadoop-A, OSU-IB} with
// one and two HDDs per node.
//
// Paper quotes (single HDD, 30 GB): OSU-IB 9% over Hadoop-A, 35% over
// IPoIB, 38% over 10GigE. Dual HDD 30 GB: 13% / 38% / 43%; dual HDD
// 40 GB: 17% / 48% / 51%.
#include "fig_common.h"

using namespace hmr;
using namespace hmr::bench;

int main() {
  FigureSpec spec;
  spec.id = "fig4a";
  spec.title =
      "Figure 4(a): TeraSort, 4 DataNodes, single and dual HDD";
  spec.workload = "terasort";
  spec.nodes = 4;
  spec.sizes_gb = {20, 30, 40};
  for (int disks : {1, 2}) {
    spec.series.push_back({EngineSetup::ten_gige(), disks});
    spec.series.push_back({EngineSetup::ipoib(), disks});
    spec.series.push_back({EngineSetup::hadoop_a(), disks});
    spec.series.push_back({EngineSetup::osu_ib(), disks});
  }
  run_figure(spec);
  return 0;
}
