// Microbenchmark M2: verbs vs socket transport latency/bandwidth on the
// simulated fabric — the ib_send_lat / netperf style numbers (§II-B)
// that explain the engine-level results. Prints *simulated* figures.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "net/cluster.h"
#include "net/socket.h"
#include "ucr/endpoint.h"

using namespace hmr;
using namespace hmr::net;

namespace {

// One ping-pong + one bulk stream over a socket pair; returns
// {half-rtt seconds, bulk bytes/sec} in simulated time.
std::pair<double, double> socket_numbers(NetProfile profile) {
  sim::Engine engine;
  Cluster cluster(engine, profile, Cluster::uniform(2, 1));
  Network network(engine, profile);
  Listener listener(network, cluster.host(1));
  double rtt = 0, bulk = 0;
  constexpr std::uint64_t kBulk = 256 * 1024 * 1024;

  engine.spawn([](Listener& l) -> sim::Task<> {
    auto sock = co_await l.accept();
    while (auto msg = co_await sock->recv()) {
      if (msg->tag == 1) co_await sock->send(Message::control(2, 64));
    }
  }(listener));
  engine.spawn([](Network& net, Cluster& cluster, Listener& l, double& rtt,
                  double& bulk) -> sim::Task<> {
    auto sock = co_await connect(net, cluster.host(0), l);
    const double t0 = net.engine().now();
    co_await sock->send(Message::control(1, 64));
    (void)co_await sock->recv();
    rtt = (net.engine().now() - t0) / 2;
    const double t1 = net.engine().now();
    co_await sock->send(Message::control(0, kBulk));
    bulk = double(kBulk) / (net.engine().now() - t1);
    sock->close();
  }(network, cluster, listener, rtt, bulk));
  engine.run();
  return {rtt, bulk};
}

std::pair<double, double> ucr_numbers() {
  const auto profile = NetProfile::verbs_qdr();
  sim::Engine engine;
  Cluster cluster(engine, profile, Cluster::uniform(2, 1));
  Network network(engine, profile);
  ucr::Listener listener(network, cluster.host(1));
  double rtt = 0, bulk = 0;
  constexpr std::uint64_t kBulk = 256 * 1024 * 1024;

  std::unique_ptr<ucr::Endpoint> server;
  engine.spawn([](ucr::Listener& l, std::unique_ptr<ucr::Endpoint>& out)
                   -> sim::Task<> {
    out = co_await l.accept();
    while (auto msg = co_await out->recv()) {
      if (msg->tag == 1) co_await out->send(Message::control(2, 64));
    }
  }(listener, server));
  std::unique_ptr<ucr::Endpoint> client;
  engine.spawn([](Network& net, Cluster& cluster, ucr::Listener& l,
                  std::unique_ptr<ucr::Endpoint>& client, double& rtt,
                  double& bulk) -> sim::Task<> {
    client = co_await ucr::connect(net, cluster.host(0), l);
    const double t0 = net.engine().now();
    co_await client->send(Message::control(1, 64));
    (void)co_await client->recv();
    rtt = (net.engine().now() - t0) / 2;
    const double t1 = net.engine().now();
    co_await client->send(Message::control(0, kBulk));  // rendezvous
    bulk = double(kBulk) / (net.engine().now() - t1);
    client->close();
  }(network, cluster, listener, client, rtt, bulk));
  engine.run();
  if (client) client->close();
  if (server) server->close();
  engine.run();
  return {rtt, bulk};
}

}  // namespace

int main() {
  std::printf("== M2: transport microbenchmark (simulated fabric) ==\n");
  Table table({"Path", "64B half-RTT (us)", "Bulk bandwidth (MB/s)"});
  for (auto profile : {NetProfile::one_gige(), NetProfile::ten_gige(),
                       NetProfile::ipoib_qdr()}) {
    const auto [rtt, bulk] = socket_numbers(profile);
    table.add_row({"sockets / " + profile.name, Table::num(rtt * 1e6, 1),
                   Table::num(bulk / 1e6, 0)});
  }
  const auto [rtt, bulk] = ucr_numbers();
  table.add_row({"UCR verbs / IB QDR", Table::num(rtt * 1e6, 1),
                 Table::num(bulk / 1e6, 0)});
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "(paper-era reference: IPoIB ~13.5 Gb/s and ~20 us; verbs ~26 Gb/s "
      "and ~2 us on the same QDR HCA)\n");
  return 0;
}
