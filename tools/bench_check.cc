// bench_check — compares a BENCH_*.json produced by a figure/smoke bench
// against a committed baseline and validates the schema's internal
// consistency (phases fit inside the wall-clock, ratios stay in [0, 1],
// outputs validated). CI fails when a run regresses past the tolerance.
//
//   bench_check <baseline.json> <candidate.json> [--tolerance 0.15]
//
// Runs are matched by (series, size_gb). The simulation is seeded and
// deterministic, so the default tolerance mostly absorbs intentional
// model changes, not noise; tighten or loosen per call site.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

using hmr::Json;

int g_failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++g_failures;
}

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_check: cannot open %s\n", path);
    std::exit(2);
  }
  std::string body;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, n);
  std::fclose(f);
  return body;
}

Json parse_file(const char* path) {
  auto parsed = Json::parse(read_file(path));
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_check: %s: %s\n", path,
                 parsed.status().to_string().c_str());
    std::exit(2);
  }
  return std::move(parsed).value();
}

double num(const Json& run, const char* key) {
  const Json* v = run.find(key);
  if (v == nullptr || !v->is_number()) {
    fail(std::string("missing numeric field '") + key + "'");
    return 0.0;
  }
  return v->as_double();
}

std::string run_name(const Json& run) {
  const Json* series = run.find("series");
  const Json* size = run.find("size_gb");
  std::string name =
      series != nullptr && series->is_string() ? series->as_string() : "?";
  char buf[32];
  std::snprintf(buf, sizeof buf, " @%ggb",
                size != nullptr && size->is_number() ? size->as_double() : -1.0);
  return name + buf;
}

// Schema sanity for one document; returns the runs array.
const Json* validate_doc(const char* path, const Json& doc) {
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "hmr-bench-v1") {
    fail(std::string(path) + ": not an hmr-bench-v1 document");
    return nullptr;
  }
  const Json* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array() || runs->size() == 0) {
    fail(std::string(path) + ": empty or missing runs array");
    return nullptr;
  }
  for (size_t i = 0; i < runs->size(); ++i) {
    const Json& run = runs->at(i);
    const std::string name = run_name(run);
    const double seconds = num(run, "seconds");
    if (!(seconds > 0)) fail(name + ": non-positive wall-clock");
    const Json* phases = run.find("phases");
    if (phases == nullptr || !phases->is_object()) {
      fail(name + ": missing phases object");
    } else {
      for (const char* phase : {"map", "shuffle", "merge", "reduce"}) {
        const double t = num(*phases, phase);
        // Tiny epsilon: the emitter clamps, so anything past it is a bug.
        if (t < 0 || t > seconds * (1 + 1e-9)) {
          fail(name + ": phase '" + phase + "' outside [0, wall-clock]");
        }
      }
    }
    for (const char* ratio : {"overlap_fraction", "cache_hit_rate"}) {
      const double r = num(run, ratio);
      if (r < 0 || r > 1) fail(name + ": " + ratio + " outside [0, 1]");
    }
    const Json* validated = run.find("validated");
    if (validated == nullptr || !validated->is_bool() ||
        !validated->as_bool()) {
      fail(name + ": output not validated");
    }
  }
  return runs;
}

const Json* find_run(const Json& runs, const std::string& series,
                     double size_gb) {
  for (size_t i = 0; i < runs.size(); ++i) {
    const Json& run = runs.at(i);
    const Json* s = run.find("series");
    const Json* gb = run.find("size_gb");
    if (s != nullptr && s->is_string() && s->as_string() == series &&
        gb != nullptr && gb->is_number() && gb->as_double() == size_gb) {
      return &run;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  double tolerance = 0.15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (candidate_path == nullptr) {
      candidate_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr) {
    std::fprintf(
        stderr,
        "usage: bench_check <baseline.json> <candidate.json> "
        "[--tolerance 0.15]\n");
    return 2;
  }

  const Json baseline = parse_file(baseline_path);
  const Json candidate = parse_file(candidate_path);
  const Json* base_runs = validate_doc(baseline_path, baseline);
  const Json* cand_runs = validate_doc(candidate_path, candidate);
  if (base_runs == nullptr || cand_runs == nullptr) return 1;

  for (size_t i = 0; i < base_runs->size(); ++i) {
    const Json& base = base_runs->at(i);
    const std::string name = run_name(base);
    const Json* series = base.find("series");
    const Json* size = base.find("size_gb");
    if (series == nullptr || size == nullptr) continue;  // already failed
    const Json* cand =
        find_run(*cand_runs, series->as_string(), size->as_double());
    if (cand == nullptr) {
      fail(name + ": missing from candidate");
      continue;
    }
    const double want = num(base, "seconds");
    const double got = num(*cand, "seconds");
    const double drift = want > 0 ? (got - want) / want : 0.0;
    std::printf("%-48s baseline %8.1fs  candidate %8.1fs  %+6.1f%%\n",
                name.c_str(), want, got, drift * 100.0);
    if (drift > tolerance || drift < -tolerance) {
      fail(name + ": drifted past tolerance");
    }
  }
  if (cand_runs->size() != base_runs->size()) {
    fail("run counts differ: baseline " + std::to_string(base_runs->size()) +
         ", candidate " + std::to_string(cand_runs->size()));
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "bench_check: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("bench_check: OK (%zu runs within %.0f%%)\n", base_runs->size(),
              tolerance * 100.0);
  return 0;
}
