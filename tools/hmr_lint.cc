// hmr-lint CLI: walks src/, tools/, and tests/ and enforces every rule
// family, including the call-graph-based ones (parallel-purity,
// coroutine-borrow, transitive-determinism). See docs/LINT.md.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
//
//   hmr_lint [--repo-root DIR] [--format text|json] [--out FILE]
//            [--callgraph FILE] [--no-doc-check] [--list-metrics]
//            [--list-config-keys] [DIR...]
//
// DIRs default to `src tools tests`, relative to --repo-root (default:
// the current directory). --format json emits the machine-readable
// hmr-lint-v1 report the CI lint job archives; --callgraph writes the
// hmr-callgraph-v1 per-function effect analysis (also a CI artifact);
// --list-metrics / --list-config-keys print the extracted registries
// (the input for regenerating docs/METRICS.md).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

using hmr::lint::Options;
using hmr::lint::Report;

std::string read_file_or_empty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: hmr_lint [--repo-root DIR] [--format text|json] [--out FILE]\n"
      "                [--callgraph FILE] [--no-doc-check] [--list-metrics]\n"
      "                [--list-config-keys] [DIR...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo_root = ".";
  std::string format = "text";
  std::string out_path;
  std::string callgraph_path;
  bool doc_check = true;
  bool list_metrics = false;
  bool list_config_keys = false;
  std::vector<std::string> dirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--repo-root") {
      const char* v = next();
      if (v == nullptr) return usage();
      repo_root = v;
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr || (std::strcmp(v, "text") != 0 &&
                           std::strcmp(v, "json") != 0)) {
        return usage();
      }
      format = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage();
      out_path = v;
    } else if (arg == "--callgraph") {
      const char* v = next();
      if (v == nullptr) return usage();
      callgraph_path = v;
    } else if (arg == "--no-doc-check") {
      doc_check = false;
    } else if (arg == "--list-metrics") {
      list_metrics = true;
    } else if (arg == "--list-config-keys") {
      list_config_keys = true;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tools", "tests"};

  Options opts;
  if (doc_check) {
    opts.config_doc = read_file_or_empty(repo_root + "/docs/CONFIG.md");
    opts.metrics_doc = read_file_or_empty(repo_root + "/docs/METRICS.md");
    if (opts.config_doc.empty()) {
      std::fprintf(stderr,
                   "hmr_lint: %s/docs/CONFIG.md missing or empty (pass "
                   "--no-doc-check to skip registry cross-checks)\n",
                   repo_root.c_str());
      return 2;
    }
    if (opts.metrics_doc.empty()) {
      std::fprintf(stderr,
                   "hmr_lint: %s/docs/METRICS.md missing or empty (pass "
                   "--no-doc-check to skip registry cross-checks)\n",
                   repo_root.c_str());
      return 2;
    }
  }

  auto files = hmr::lint::collect_tree(repo_root, dirs);
  if (!files.ok()) {
    std::fprintf(stderr, "hmr_lint: %s\n",
                 files.status().to_string().c_str());
    return 2;
  }
  const Report report = hmr::lint::lint_files(files.value(), opts);

  if (!callgraph_path.empty()) {
    std::string body = report.callgraph.dump();
    body.push_back('\n');
    std::FILE* f = std::fopen(callgraph_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "hmr_lint: cannot write %s\n",
                   callgraph_path.c_str());
      return 2;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }

  if (list_config_keys) {
    for (const auto& k : report.config_keys) std::printf("%s\n", k.c_str());
    return 0;
  }
  if (list_metrics) {
    for (const auto& m : report.metric_names) std::printf("%s\n", m.c_str());
    for (const auto& m : report.metric_name_suffixes) {
      std::printf("*.%s\n", m.c_str());
    }
    return 0;
  }

  std::string body;
  if (format == "json") {
    body = report.to_json().dump();
    body.push_back('\n');
  } else {
    for (const auto& f : report.findings) {
      body += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
              f.message + "\n";
    }
    body += std::to_string(report.findings.size()) + " finding(s), " +
            std::to_string(files.value().size()) + " file(s), " +
            std::to_string(report.config_keys.size()) + " config key(s), " +
            std::to_string(report.metric_names.size() +
                           report.metric_name_suffixes.size()) +
            " metric name(s)\n";
  }
  if (out_path.empty()) {
    std::fputs(body.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "hmr_lint: cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }
  return report.clean() ? 0 : 1;
}
