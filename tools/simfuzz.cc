// simfuzz — deterministic simulation fuzzer with a cross-engine
// equivalence oracle (docs/TESTING.md).
//
//   simfuzz --seeds 200 [--seed-base 1] [--out-dir DIR] [--no-shrink] [-v]
//   simfuzz --replay <seed>       # regenerate + re-check one seed
//   simfuzz --replay-file <path>  # re-check a FUZZ_*.json or corpus file
//
// Every seed expands to one randomized scenario run through all three
// shuffle engines; a failing seed leaves DIR/FUZZ_<seed>.json behind
// (scenario, violations, shrunk repro) and the exit status is the number
// of failing seeds (capped at 125 to stay clear of shell exit codes).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "simfuzz/fuzzer.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: simfuzz --seeds N [--seed-base B] [--out-dir DIR] "
               "[--disk-faults] [--no-shrink] [-v]\n"
               "       simfuzz --replay SEED [options]\n"
               "       simfuzz --replay-file PATH [options]\n");
  return 2;
}

int report_outcome(const hmr::simfuzz::FuzzReport& report) {
  if (report.ok()) {
    std::printf("simfuzz: %s: ok\n", report.scenario.summary().c_str());
    return 0;
  }
  std::printf("simfuzz: %s: %s\n", report.scenario.summary().c_str(),
              report.verdict.summary().c_str());
  if (!(report.shrunk == report.scenario)) {
    std::printf("simfuzz: shrunk repro: %s (%s)\n",
                report.shrunk.summary().c_str(),
                report.shrunk_verdict.summary().c_str());
  }
  if (!report.record_path.empty()) {
    std::printf("simfuzz: record: %s\n", report.record_path.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  hmr::simfuzz::FuzzOptions options;
  long long seeds = -1;
  unsigned long long seed_base = 1;
  long long replay_seed = -1;
  const char* replay_file = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoll(argv[++i]);
    } else if (std::strcmp(arg, "--seed-base") == 0 && i + 1 < argc) {
      seed_base = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--out-dir") == 0 && i + 1 < argc) {
      options.out_dir = argv[++i];
    } else if (std::strcmp(arg, "--replay") == 0 && i + 1 < argc) {
      replay_seed = std::atoll(argv[++i]);
    } else if (std::strcmp(arg, "--replay-file") == 0 && i + 1 < argc) {
      replay_file = argv[++i];
    } else if (std::strcmp(arg, "--disk-faults") == 0) {
      options.force_disk_faults = true;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      options.shrink = false;
    } else if (std::strcmp(arg, "-v") == 0 ||
               std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else {
      std::fprintf(stderr, "simfuzz: unknown argument %s\n", arg);
      return usage();
    }
  }

  if (replay_file != nullptr) {
    auto scenario = hmr::simfuzz::load_scenario_file(replay_file);
    if (!scenario.ok()) {
      std::fprintf(stderr, "simfuzz: %s\n",
                   scenario.status().to_string().c_str());
      return 2;
    }
    return report_outcome(
        hmr::simfuzz::check_and_report(*scenario, options));
  }
  if (replay_seed >= 0) {
    return report_outcome(
        hmr::simfuzz::fuzz_one(std::uint64_t(replay_seed), options));
  }
  if (seeds <= 0) return usage();

  const int failures =
      hmr::simfuzz::fuzz_range(seed_base, int(seeds), options);
  if (failures == 0) {
    std::printf("simfuzz: %lld seeds ok (base %llu)\n", seeds, seed_base);
    return 0;
  }
  std::fprintf(stderr, "simfuzz: %d/%lld seeds failed\n", failures, seeds);
  return failures > 125 ? 125 : failures;
}
