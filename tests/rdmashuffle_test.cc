// Unit tests for the RDMA shuffle engine's wire protocol and option
// resolution, plus targeted behaviour checks that the integration suite
// (engines_test.cc) doesn't isolate.
#include <gtest/gtest.h>

#include "common/units.h"
#include "mapred/types.h"
#include "rdmashuffle/engine.h"
#include "rdmashuffle/protocol.h"
#include "sim/fault.h"
#include "workloads/experiment.h"
#include "workloads/report.h"

namespace hmr::rdmashuffle {
namespace {

// ---------------------------------------------------------------- protocol

TEST(ProtocolTest, DataRequestRoundTrip) {
  DataRequest req;
  req.job_id = 3;
  req.map_id = 123;
  req.reduce_id = 45;
  req.cursor_real = 1'000'000;
  req.max_pairs = 1024;
  req.max_real_bytes = 65536;
  const auto decoded = DataRequest::decode(req.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->job_id, req.job_id);
  EXPECT_EQ(decoded->map_id, req.map_id);
  EXPECT_EQ(decoded->reduce_id, req.reduce_id);
  EXPECT_EQ(decoded->cursor_real, req.cursor_real);
  EXPECT_EQ(decoded->max_pairs, req.max_pairs);
  EXPECT_EQ(decoded->max_real_bytes, req.max_real_bytes);
}

TEST(ProtocolTest, DataResponseHeaderRoundTrip) {
  DataResponse resp;
  resp.job_id = 1;
  resp.map_id = 7;
  resp.reduce_id = 9;
  resp.cursor_real = 987654;
  resp.n_pairs = 333;
  resp.chunk_real_bytes = 44444;
  resp.eof = true;
  Bytes wire = resp.encode_header();
  // Responses carry the records after the header; make sure the decoder
  // leaves the reader positioned at them.
  wire.push_back(0xEE);
  ByteReader reader(wire);
  const auto decoded = DataResponse::decode_header(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->map_id, 7u);
  // The cursor echo is what lets a copier discard stale duplicates of
  // timed-out requests.
  EXPECT_EQ(decoded->cursor_real, 987654u);
  EXPECT_EQ(decoded->n_pairs, 333u);
  EXPECT_EQ(decoded->chunk_real_bytes, 44444u);
  EXPECT_TRUE(decoded->eof);
  EXPECT_EQ(reader.remaining(), 1u);
}

// Fuzz-shaped hardening checks: every truncation of a valid frame must
// come back as an error — never a crash — and never as a bogus value.

TEST(ProtocolTest, DataRequestDecodeRejectsEveryTruncation) {
  DataRequest req;
  req.job_id = 3;
  req.map_id = 123;
  req.reduce_id = 45;
  req.cursor_real = 1'000'000;
  req.max_pairs = 1024;
  req.max_real_bytes = 65536;
  const Bytes wire = req.encode();
  for (size_t len = 0; len < wire.size(); ++len) {
    const Bytes prefix(wire.begin(), wire.begin() + len);
    const auto decoded = DataRequest::decode(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is just as malformed as truncation.
  Bytes padded = wire;
  padded.push_back(0xAB);
  EXPECT_FALSE(DataRequest::decode(padded).ok());
}

TEST(ProtocolTest, DataResponseHeaderDecodeRejectsEveryTruncation) {
  DataResponse resp;
  resp.job_id = 1;
  resp.map_id = 7;
  resp.reduce_id = 9;
  resp.cursor_real = 987654;
  resp.n_pairs = 333;
  resp.chunk_real_bytes = 44444;
  resp.eof = true;
  const Bytes wire = resp.encode_header();
  for (size_t len = 0; len < wire.size(); ++len) {
    const Bytes prefix(wire.begin(), wire.begin() + len);
    ByteReader reader(prefix);
    const auto decoded = DataResponse::decode_header(reader);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(ProtocolTest, DecodeSurvivesGarbageBytes) {
  // Deterministic pseudo-garbage across a spread of lengths: decode must
  // always return (ok or error), never abort.
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (size_t len : {0u, 1u, 7u, 35u, 36u, 37u, 64u, 200u}) {
    Bytes noise(len);
    for (auto& b : noise) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = std::uint8_t(x);
    }
    // lint:ignore(status-discipline): decoding noise must not crash; the error Result is the point
    (void)DataRequest::decode(noise);
    ByteReader reader(noise);
    // lint:ignore(status-discipline): decoding noise must not crash; the error Result is the point
    (void)DataResponse::decode_header(reader);
  }
}

TEST(ProtocolTest, WireSizesAreSmall) {
  // The paper stresses light-weight control messages.
  EXPECT_LE(DataRequest{}.encode().size(), kRequestWireBytes);
  EXPECT_LE(DataResponse{}.encode_header().size(), kResponseHeaderBytes);
}

// ----------------------------------------------------------------- options

TEST(OptionsTest, OsuDefaultsAreBytesBudgeted) {
  const auto opt = RdmaShuffleOptions::osu_ib(Conf{});
  EXPECT_TRUE(opt.use_cache);
  EXPECT_GT(opt.packet_bytes, 0u);
  EXPECT_EQ(opt.kv_per_packet, 0u);  // byte mode
  EXPECT_TRUE(opt.overlap_reduce);
  EXPECT_TRUE(opt.pipelined_refill);
  EXPECT_FALSE(opt.charge_by_count);
}

TEST(OptionsTest, HadoopADefaultsMatchSc11Description) {
  const auto opt = RdmaShuffleOptions::hadoop_a(Conf{});
  EXPECT_FALSE(opt.use_cache);            // no DataEngine caching
  EXPECT_EQ(opt.packet_bytes, 0u);        // count is the only budget
  EXPECT_GT(opt.kv_per_packet, 0u);       // fixed kv count
  EXPECT_FALSE(opt.pipelined_refill);     // network-levitated on-demand
  EXPECT_TRUE(opt.charge_by_count);       // buffers sized by count
}

TEST(OptionsTest, ConfOverridesApply) {
  Conf conf;
  conf.set_bool(mapred::kCachingEnabled, false);
  conf.set("mapred.rdma.packet.bytes", "4MB");
  conf.set_int(mapred::kResponderThreads, 9);
  conf.set_bool(mapred::kOverlapReduce, false);
  conf.set("mapred.local.caching.bytes", "2GB");
  const auto opt = RdmaShuffleOptions::osu_ib(conf);
  EXPECT_FALSE(opt.use_cache);
  EXPECT_EQ(opt.packet_bytes, 4 * kMiB);
  EXPECT_EQ(opt.responder_threads, 9);
  EXPECT_FALSE(opt.overlap_reduce);
  EXPECT_EQ(opt.cache_bytes, 2 * kGiB);
}

TEST(OptionsTest, HadoopAKvCountTunable) {
  Conf conf;
  conf.set_int(mapred::kRdmaKvPerPacket, 4096);
  EXPECT_EQ(RdmaShuffleOptions::hadoop_a(conf).kv_per_packet, 4096u);
}

// -------------------------------------------------- engine behaviour

workloads::RunConfig tiny(workloads::EngineSetup setup) {
  workloads::RunConfig config;
  config.setup = std::move(setup);
  config.workload = "terasort";
  config.sort_modeled_bytes = 512 * kMiB;
  config.nodes = 3;
  config.block_size = 32 * kMiB;
  config.target_real_bytes = 2 * kMiB;
  return config;
}

TEST(RdmaEngineTest, SmallPacketsMeanMoreRequestsNotLoss) {
  auto small = tiny(workloads::EngineSetup::osu_ib());
  small.setup.extra.set_bytes(mapred::kRdmaPacketBytes, 32 * 1024);
  auto big = tiny(workloads::EngineSetup::osu_ib());
  big.setup.extra.set_bytes(mapred::kRdmaPacketBytes, 16 * kMiB);
  const auto small_run = workloads::run_experiment(small);
  const auto big_run = workloads::run_experiment(big);
  EXPECT_TRUE(small_run.validated);
  EXPECT_TRUE(big_run.validated);
  // Same payload either way.
  EXPECT_NEAR(double(small_run.job.shuffled_modeled_bytes),
              double(big_run.job.shuffled_modeled_bytes),
              double(big_run.job.shuffled_modeled_bytes) * 0.01);
}

TEST(RdmaEngineTest, SingleResponderStillCorrect) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.setup.extra.set_int(mapred::kResponderThreads, 1);
  EXPECT_TRUE(workloads::run_experiment(config).validated);
}

TEST(RdmaEngineTest, TinyCacheDegradesToMisses) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.setup.extra.set("mapred.local.caching.bytes", "1MB");
  const auto outcome = workloads::run_experiment(config);
  EXPECT_TRUE(outcome.validated);
  // Map outputs (~170 MB modeled each tracker) dwarf a 1 MB cache: most
  // requests must miss, yet the job still completes correctly.
  EXPECT_GT(outcome.job.cache_misses, outcome.job.cache_hits);
}

TEST(RdmaEngineTest, TightShuffleMemoryStillCompletes) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.setup.extra.set("mapred.job.shuffle.input.buffer.bytes", "8MB");
  EXPECT_TRUE(workloads::run_experiment(config).validated);
}

TEST(RdmaEngineTest, HadoopATightMemoryStillCompletes) {
  // The urgency bypass must keep the levitated merge live even when the
  // provisioned buffers dwarf the budget.
  auto config = tiny(workloads::EngineSetup::hadoop_a());
  config.setup.extra.set("mapred.job.shuffle.input.buffer.bytes", "4MB");
  EXPECT_TRUE(workloads::run_experiment(config).validated);
}

TEST(RdmaEngineTest, CacheHitsDominateWhenCacheFits) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  const auto outcome = workloads::run_experiment(config);
  EXPECT_GT(outcome.job.cache_hits, outcome.job.cache_misses * 5);
}

}  // namespace
}  // namespace hmr::rdmashuffle

namespace hmr::rdmashuffle {
namespace {

TEST(RdmaEngineTest, WriteRendezvousModeValidates) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.setup.extra.set(mapred::kRdmaRendezvous, "write");
  const auto outcome = workloads::run_experiment(config);
  EXPECT_TRUE(outcome.validated);
}

TEST(OptionsTest, RendezvousModeFromConf) {
  Conf conf;
  conf.set(mapred::kRdmaRendezvous, "write");
  EXPECT_EQ(RdmaShuffleOptions::osu_ib(conf).ucr.rendezvous,
            ucr::RendezvousMode::kWrite);
  EXPECT_EQ(RdmaShuffleOptions::osu_ib(Conf{}).ucr.rendezvous,
            ucr::RendezvousMode::kRead);
}

TEST(OptionsTest, ResponderDeadlineFromConf) {
  EXPECT_GT(RdmaShuffleOptions::osu_ib(Conf{}).responder_deadline, 0.0);
  Conf conf;
  conf.set_double(mapred::kResponderDeadlineSec, 7.5);
  EXPECT_EQ(RdmaShuffleOptions::osu_ib(conf).responder_deadline, 7.5);
  EXPECT_EQ(RdmaShuffleOptions::hadoop_a(conf).responder_deadline, 7.5);
}

// ------------------------------------------------- fault recovery

// Short timeouts/backoffs keep the simulated recovery fast; threshold 2
// blacklists a dead tracker after two consecutive timeouts.
void arm_fast_recovery(workloads::RunConfig& config) {
  config.setup.extra.set_double(mapred::kFetchTimeoutSec, 2.0);
  config.setup.extra.set_double(mapred::kFetchBackoffBaseSec, 0.1);
  config.setup.extra.set_double(mapred::kFetchBackoffMaxSec, 0.5);
  config.setup.extra.set_int(mapred::kBlacklistFailures, 2);
}

TEST(RdmaRecoveryTest, KilledTrackerRecoversWithIdenticalOutput) {
  const auto clean = workloads::run_experiment(
      tiny(workloads::EngineSetup::osu_ib()));
  ASSERT_TRUE(clean.validated);

  // Kill tracker host 1's shuffle service mid-shuffle (host 0 is the
  // master and runs no TaskTracker).
  sim::FaultPlan plan(11);
  const double mid_shuffle =
      clean.job.submit_time +
      0.5 * (clean.job.shuffle_done_time - clean.job.submit_time);
  plan.kill_tracker(1, mid_shuffle);
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.faults = &plan;
  arm_fast_recovery(config);
  const auto faulted = workloads::run_experiment(config);

  ASSERT_TRUE(faulted.validated);
  // The acceptance bar: byte-identical output despite losing a tracker.
  EXPECT_EQ(faulted.validation.digest.records,
            clean.validation.digest.records);
  EXPECT_EQ(faulted.validation.digest.checksum,
            clean.validation.digest.checksum);
  // Recovery must be visible in the result counters and the report.
  EXPECT_GT(faulted.job.fetch_timeouts, 0u);
  EXPECT_GT(faulted.job.fetch_retries, 0u);
  EXPECT_EQ(faulted.job.trackers_blacklisted, 1u);
  EXPECT_GT(faulted.job.map_refetch_reruns, 0u);
  EXPECT_GT(faulted.job.refetched_modeled_bytes, 0u);
  EXPECT_GT(faulted.job.elapsed(), clean.job.elapsed());
  const std::string report = workloads::job_report(faulted.job);
  EXPECT_NE(report.find("shuffle recovery"), std::string::npos);
  EXPECT_NE(report.find("refetched"), std::string::npos);
}

TEST(RdmaRecoveryTest, DroppedResponsesRetryToCompletion) {
  sim::FaultPlan plan(5);
  plan.drop_responses(1, 0.2);
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.faults = &plan;
  config.setup.extra.set_double(mapred::kFetchTimeoutSec, 1.0);
  config.setup.extra.set_double(mapred::kFetchBackoffBaseSec, 0.05);
  config.setup.extra.set_double(mapred::kFetchBackoffMaxSec, 0.2);
  // A 20%-lossy responder is degraded, not dead: keep it off the
  // blacklist and let retries absorb the losses.
  config.setup.extra.set_int(mapred::kBlacklistFailures, 1000000);
  config.setup.extra.set_int(mapred::kFetchMaxRetries, 50);
  const auto outcome = workloads::run_experiment(config);
  ASSERT_TRUE(outcome.validated);
  EXPECT_GT(outcome.job.fetch_timeouts, 0u);
  EXPECT_EQ(outcome.job.trackers_blacklisted, 0u);
  EXPECT_EQ(outcome.job.map_refetch_reruns, 0u);
}

TEST(RdmaRecoveryTest, StalledResponsesAreDeduplicated) {
  // Stalls longer than the fetch timeout force retries whose original
  // responses still arrive later — the cursor echo must discard (or
  // coalesce) the duplicates without corrupting the merge.
  sim::FaultPlan plan(17);
  plan.stall_responses(1, 0.1, 2.0);
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.faults = &plan;
  config.setup.extra.set_double(mapred::kFetchTimeoutSec, 1.0);
  config.setup.extra.set_double(mapred::kFetchBackoffBaseSec, 0.05);
  config.setup.extra.set_double(mapred::kFetchBackoffMaxSec, 0.2);
  config.setup.extra.set_int(mapred::kBlacklistFailures, 1000000);
  config.setup.extra.set_int(mapred::kFetchMaxRetries, 50);
  // A stalled response pins its responder thread (like a hung disk
  // read); give the pool headroom so retries don't snowball into a
  // retry storm — that failure mode is real but not what this test is
  // about.
  config.setup.extra.set_int(mapred::kResponderThreads, 16);
  const auto outcome = workloads::run_experiment(config);
  ASSERT_TRUE(outcome.validated);
  EXPECT_GT(outcome.job.fetch_timeouts, 0u);
}

TEST(RdmaRecoveryTest, HadoopAKilledTrackerAlsoRecovers) {
  // The on-demand (network-levitated) refill path shares the recovery
  // machinery: timeouts fire on the merge's critical path.
  sim::FaultPlan plan(23);
  plan.kill_tracker(2, 0.0);  // dead before the shuffle even starts
  auto config = tiny(workloads::EngineSetup::hadoop_a());
  config.faults = &plan;
  arm_fast_recovery(config);
  const auto outcome = workloads::run_experiment(config);
  ASSERT_TRUE(outcome.validated);
  EXPECT_EQ(outcome.job.trackers_blacklisted, 1u);
  EXPECT_GT(outcome.job.map_refetch_reruns, 0u);
}

TEST(RdmaRecoveryTest, NicDegradeSlowsButCompletes) {
  const auto clean = workloads::run_experiment(
      tiny(workloads::EngineSetup::osu_ib()));
  sim::FaultPlan plan;
  // In this tiny config the shuffle overlaps the map phase and the
  // network is far from the bottleneck, so the cut must be near-fatal
  // (32 Gbps -> ~64 Mbps) to surface in the job time at all.
  plan.degrade_nic(1, 0.0, 0.002);
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.faults = &plan;
  const auto degraded = workloads::run_experiment(config);
  ASSERT_TRUE(degraded.validated);
  EXPECT_GT(degraded.job.elapsed(), clean.job.elapsed() * 1.05);
}

TEST(RdmaRecoveryTest, NicRestoreBoundsTheSlowdown) {
  // A transient NIC brownout (same near-fatal cut, restored at t=1s)
  // must cost strictly less than the permanent degrade above, and the
  // restore arming must be visible in the cluster metrics.
  sim::FaultPlan permanent;
  permanent.degrade_nic(1, 0.0, 0.002);
  auto perm_config = tiny(workloads::EngineSetup::osu_ib());
  perm_config.faults = &permanent;
  const auto perm = workloads::run_experiment(perm_config);

  sim::FaultPlan transient;
  transient.degrade_nic(1, 0.0, 0.002, /*restore_at=*/1.0);
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.faults = &transient;
  const auto restored = workloads::run_experiment(config);

  ASSERT_TRUE(perm.validated);
  ASSERT_TRUE(restored.validated);
  EXPECT_LT(restored.job.elapsed(), perm.job.elapsed());
  EXPECT_EQ(restored.job.metrics.counter("cluster.nic_restores_armed"), 1);
  EXPECT_EQ(perm.job.metrics.counter("cluster.nic_restores_armed"), 0);
}

TEST(RdmaRecoveryTest, KillAfterJobEndIsHarmless) {
  // A kill armed far past the job's lifetime must leave no trace: no
  // timeouts, no blacklisting, byte-identical output to a clean run.
  const auto clean = workloads::run_experiment(
      tiny(workloads::EngineSetup::osu_ib()));
  sim::FaultPlan plan(13);
  plan.kill_tracker(1, 1e9);
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.faults = &plan;
  arm_fast_recovery(config);
  const auto outcome = workloads::run_experiment(config);
  ASSERT_TRUE(outcome.validated);
  EXPECT_EQ(outcome.job.fetch_timeouts, 0u);
  EXPECT_EQ(outcome.job.trackers_blacklisted, 0u);
  EXPECT_EQ(outcome.validation.digest.checksum,
            clean.validation.digest.checksum);
}

TEST(RdmaRecoveryTest, RecoveryCountersMatchMetricTwins) {
  // The JobResult recovery counters and the metrics-registry counters
  // are incremented on independent paths; a faulted run must keep the
  // twins equal (the fuzzer's conservation oracle, pinned as a unit
  // test).
  sim::FaultPlan plan(31);
  plan.kill_tracker(1, 0.0);
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.faults = &plan;
  arm_fast_recovery(config);
  const auto outcome = workloads::run_experiment(config);
  ASSERT_TRUE(outcome.validated);
  const auto& m = outcome.job.metrics;
  EXPECT_GT(outcome.job.fetch_timeouts, 0u);
  EXPECT_EQ(std::int64_t(outcome.job.fetch_timeouts),
            m.counter("shuffle.fetch.timeouts"));
  EXPECT_EQ(std::int64_t(outcome.job.fetch_retries),
            m.counter("shuffle.fetch.retries"));
  EXPECT_EQ(std::int64_t(outcome.job.trackers_blacklisted),
            m.counter("shuffle.trackers.blacklisted"));
  EXPECT_EQ(std::int64_t(outcome.job.map_refetch_reruns),
            m.counter("shuffle.refetch.reruns"));
}

TEST(RdmaRecoveryDeathTest, AllTrackersKilledAborts) {
  // With every tracker dead there is nowhere left to re-execute map
  // output; the runtime refuses to spin forever and aborts with a
  // diagnostic naming the exhausted blacklist.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::FaultPlan plan(29);
        plan.kill_tracker(1, 0.0);
        plan.kill_tracker(2, 0.0);
        plan.kill_tracker(3, 0.0);
        auto config = tiny(workloads::EngineSetup::osu_ib());
        config.faults = &plan;
        arm_fast_recovery(config);
        config.setup.extra.set_int(mapred::kFetchMaxRetries, 1000);
        (void)workloads::run_experiment(config);
      },
      "every TaskTracker is blacklisted");
}

}  // namespace
}  // namespace hmr::rdmashuffle
