// Unit tests for the RDMA shuffle engine's wire protocol and option
// resolution, plus targeted behaviour checks that the integration suite
// (engines_test.cc) doesn't isolate.
#include <gtest/gtest.h>

#include "common/units.h"
#include "mapred/types.h"
#include "rdmashuffle/engine.h"
#include "rdmashuffle/protocol.h"
#include "workloads/experiment.h"

namespace hmr::rdmashuffle {
namespace {

// ---------------------------------------------------------------- protocol

TEST(ProtocolTest, DataRequestRoundTrip) {
  DataRequest req;
  req.job_id = 3;
  req.map_id = 123;
  req.reduce_id = 45;
  req.cursor_real = 1'000'000;
  req.max_pairs = 1024;
  req.max_real_bytes = 65536;
  const auto decoded = DataRequest::decode(req.encode());
  EXPECT_EQ(decoded.job_id, req.job_id);
  EXPECT_EQ(decoded.map_id, req.map_id);
  EXPECT_EQ(decoded.reduce_id, req.reduce_id);
  EXPECT_EQ(decoded.cursor_real, req.cursor_real);
  EXPECT_EQ(decoded.max_pairs, req.max_pairs);
  EXPECT_EQ(decoded.max_real_bytes, req.max_real_bytes);
}

TEST(ProtocolTest, DataResponseHeaderRoundTrip) {
  DataResponse resp;
  resp.job_id = 1;
  resp.map_id = 7;
  resp.reduce_id = 9;
  resp.n_pairs = 333;
  resp.chunk_real_bytes = 44444;
  resp.eof = true;
  Bytes wire = resp.encode_header();
  // Responses carry the records after the header; make sure the decoder
  // leaves the reader positioned at them.
  wire.push_back(0xEE);
  ByteReader reader(wire);
  const auto decoded = DataResponse::decode_header(reader);
  EXPECT_EQ(decoded.map_id, 7u);
  EXPECT_EQ(decoded.n_pairs, 333u);
  EXPECT_EQ(decoded.chunk_real_bytes, 44444u);
  EXPECT_TRUE(decoded.eof);
  EXPECT_EQ(reader.remaining(), 1u);
}

TEST(ProtocolTest, WireSizesAreSmall) {
  // The paper stresses light-weight control messages.
  EXPECT_LE(DataRequest{}.encode().size(), kRequestWireBytes);
  EXPECT_LE(DataResponse{}.encode_header().size(), kResponseHeaderBytes);
}

// ----------------------------------------------------------------- options

TEST(OptionsTest, OsuDefaultsAreBytesBudgeted) {
  const auto opt = RdmaShuffleOptions::osu_ib(Conf{});
  EXPECT_TRUE(opt.use_cache);
  EXPECT_GT(opt.packet_bytes, 0u);
  EXPECT_EQ(opt.kv_per_packet, 0u);  // byte mode
  EXPECT_TRUE(opt.overlap_reduce);
  EXPECT_TRUE(opt.pipelined_refill);
  EXPECT_FALSE(opt.charge_by_count);
}

TEST(OptionsTest, HadoopADefaultsMatchSc11Description) {
  const auto opt = RdmaShuffleOptions::hadoop_a(Conf{});
  EXPECT_FALSE(opt.use_cache);            // no DataEngine caching
  EXPECT_EQ(opt.packet_bytes, 0u);        // count is the only budget
  EXPECT_GT(opt.kv_per_packet, 0u);       // fixed kv count
  EXPECT_FALSE(opt.pipelined_refill);     // network-levitated on-demand
  EXPECT_TRUE(opt.charge_by_count);       // buffers sized by count
}

TEST(OptionsTest, ConfOverridesApply) {
  Conf conf;
  conf.set_bool(mapred::kCachingEnabled, false);
  conf.set("mapred.rdma.packet.bytes", "4MB");
  conf.set_int(mapred::kResponderThreads, 9);
  conf.set_bool(mapred::kOverlapReduce, false);
  conf.set("mapred.local.caching.bytes", "2GB");
  const auto opt = RdmaShuffleOptions::osu_ib(conf);
  EXPECT_FALSE(opt.use_cache);
  EXPECT_EQ(opt.packet_bytes, 4 * kMiB);
  EXPECT_EQ(opt.responder_threads, 9);
  EXPECT_FALSE(opt.overlap_reduce);
  EXPECT_EQ(opt.cache_bytes, 2 * kGiB);
}

TEST(OptionsTest, HadoopAKvCountTunable) {
  Conf conf;
  conf.set_int(mapred::kRdmaKvPerPacket, 4096);
  EXPECT_EQ(RdmaShuffleOptions::hadoop_a(conf).kv_per_packet, 4096u);
}

// -------------------------------------------------- engine behaviour

workloads::RunConfig tiny(workloads::EngineSetup setup) {
  workloads::RunConfig config;
  config.setup = std::move(setup);
  config.workload = "terasort";
  config.sort_modeled_bytes = 512 * kMiB;
  config.nodes = 3;
  config.block_size = 32 * kMiB;
  config.target_real_bytes = 2 * kMiB;
  return config;
}

TEST(RdmaEngineTest, SmallPacketsMeanMoreRequestsNotLoss) {
  auto small = tiny(workloads::EngineSetup::osu_ib());
  small.setup.extra.set_bytes(mapred::kRdmaPacketBytes, 32 * 1024);
  auto big = tiny(workloads::EngineSetup::osu_ib());
  big.setup.extra.set_bytes(mapred::kRdmaPacketBytes, 16 * kMiB);
  const auto small_run = workloads::run_experiment(small);
  const auto big_run = workloads::run_experiment(big);
  EXPECT_TRUE(small_run.validated);
  EXPECT_TRUE(big_run.validated);
  // Same payload either way.
  EXPECT_NEAR(double(small_run.job.shuffled_modeled_bytes),
              double(big_run.job.shuffled_modeled_bytes),
              double(big_run.job.shuffled_modeled_bytes) * 0.01);
}

TEST(RdmaEngineTest, SingleResponderStillCorrect) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.setup.extra.set_int(mapred::kResponderThreads, 1);
  EXPECT_TRUE(workloads::run_experiment(config).validated);
}

TEST(RdmaEngineTest, TinyCacheDegradesToMisses) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.setup.extra.set("mapred.local.caching.bytes", "1MB");
  const auto outcome = workloads::run_experiment(config);
  EXPECT_TRUE(outcome.validated);
  // Map outputs (~170 MB modeled each tracker) dwarf a 1 MB cache: most
  // requests must miss, yet the job still completes correctly.
  EXPECT_GT(outcome.job.cache_misses, outcome.job.cache_hits);
}

TEST(RdmaEngineTest, TightShuffleMemoryStillCompletes) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.setup.extra.set("mapred.job.shuffle.input.buffer.bytes", "8MB");
  EXPECT_TRUE(workloads::run_experiment(config).validated);
}

TEST(RdmaEngineTest, HadoopATightMemoryStillCompletes) {
  // The urgency bypass must keep the levitated merge live even when the
  // provisioned buffers dwarf the budget.
  auto config = tiny(workloads::EngineSetup::hadoop_a());
  config.setup.extra.set("mapred.job.shuffle.input.buffer.bytes", "4MB");
  EXPECT_TRUE(workloads::run_experiment(config).validated);
}

TEST(RdmaEngineTest, CacheHitsDominateWhenCacheFits) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  const auto outcome = workloads::run_experiment(config);
  EXPECT_GT(outcome.job.cache_hits, outcome.job.cache_misses * 5);
}

}  // namespace
}  // namespace hmr::rdmashuffle

namespace hmr::rdmashuffle {
namespace {

TEST(RdmaEngineTest, WriteRendezvousModeValidates) {
  auto config = tiny(workloads::EngineSetup::osu_ib());
  config.setup.extra.set(mapred::kRdmaRendezvous, "write");
  const auto outcome = workloads::run_experiment(config);
  EXPECT_TRUE(outcome.validated);
}

TEST(OptionsTest, RendezvousModeFromConf) {
  Conf conf;
  conf.set(mapred::kRdmaRendezvous, "write");
  EXPECT_EQ(RdmaShuffleOptions::osu_ib(conf).ucr.rendezvous,
            ucr::RendezvousMode::kWrite);
  EXPECT_EQ(RdmaShuffleOptions::osu_ib(Conf{}).ucr.rendezvous,
            ucr::RendezvousMode::kRead);
}

}  // namespace
}  // namespace hmr::rdmashuffle
