#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace hmr::sim {
namespace {

// ---------------------------------------------------------------- engine

TEST(EngineTest, StartsAtZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.live_processes(), 0);
}

TEST(EngineTest, DelayAdvancesClock) {
  Engine engine;
  double finished_at = -1.0;
  engine.spawn([](Engine& e, double& out) -> Task<> {
    co_await e.delay(2.5);
    co_await e.delay(1.5);
    out = e.now();
  }(engine, finished_at));
  engine.run();
  EXPECT_DOUBLE_EQ(finished_at, 4.0);
  EXPECT_EQ(engine.live_processes(), 0);
}

TEST(EngineTest, EqualTimeEventsRunInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.spawn([](Engine& e, std::vector<int>& order, int id) -> Task<> {
      co_await e.delay(1.0);
      order.push_back(id);
    }(engine, order, i));
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Both queue implementations must realize the exact same (at, seq) total
// order, including events pushed at the current time (FIFO fast path)
// interleaved with same-time events that were heap-resident already.
TEST(EventQueueTest, ImplsAgreeOnDispatchOrder) {
  for (const auto impl :
       {EventQueue::Impl::kFourAry, EventQueue::Impl::kLegacyBinaryHeap}) {
    EventQueue queue(impl);
    std::uint64_t seq = 0;
    // Heap-resident events for t=1.0 scheduled from t=0...
    queue.push(0.0, {1.0, seq++, {}});  // seq 0
    queue.push(0.0, {2.0, seq++, {}});  // seq 1
    queue.push(0.0, {1.0, seq++, {}});  // seq 2
    // ...then time advances to 1.0 and same-time pushes hit the FIFO.
    queue.push(1.0, {1.0, seq++, {}});  // seq 3
    queue.push(1.0, {1.5, seq++, {}});  // seq 4 (future: heap)
    queue.push(1.0, {1.0, seq++, {}});  // seq 5
    std::vector<std::uint64_t> order;
    while (!queue.empty()) order.push_back(queue.pop().seq);
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 2, 3, 5, 4, 1}))
        << "impl=" << static_cast<int>(impl);
  }
}

TEST(EventQueueTest, NextAtSeesBothLanes) {
  EventQueue queue(EventQueue::Impl::kFourAry);
  queue.push(0.0, {3.0, 0, {}});
  EXPECT_DOUBLE_EQ(queue.next_at(), 3.0);
  queue.push(0.0, {0.0, 1, {}});  // lands in the now-FIFO
  EXPECT_DOUBLE_EQ(queue.next_at(), 0.0);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().seq, 1u);
  EXPECT_EQ(queue.pop().seq, 0u);
  EXPECT_TRUE(queue.empty());
}

// End-to-end determinism: a jittery workload dispatches identically on
// the 4-ary+FIFO queue and the legacy binary heap.
TEST(EngineTest, QueueImplsAreObservationallyEqual) {
  auto trace = [](EventQueue::Impl impl) {
    Engine engine(7, impl);
    std::vector<std::pair<double, int>> events;
    for (int i = 0; i < 16; ++i) {
      engine.spawn(
          [](Engine& e, std::vector<std::pair<double, int>>& events,
             int id) -> Task<> {
            Rng rng = e.make_rng("jitter." + std::to_string(id));
            for (int step = 0; step < 50; ++step) {
              const double dt = rng.chance(0.5) ? 0.0 : rng.uniform();
              co_await e.delay(dt);
              events.emplace_back(e.now(), id);
            }
          }(engine, events, i));
    }
    engine.run();
    return events;
  };
  const auto fast = trace(EventQueue::Impl::kFourAry);
  const auto legacy = trace(EventQueue::Impl::kLegacyBinaryHeap);
  EXPECT_EQ(fast, legacy);
  EXPECT_EQ(fast.size(), 16u * 50u);
}

TEST(EngineTest, ZeroDelayRunsAtSameTime) {
  Engine engine;
  double t = -1;
  engine.spawn([](Engine& e, double& t) -> Task<> {
    co_await e.delay(0.0);
    t = e.now();
  }(engine, t));
  engine.run();
  EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(EngineTest, StructuredChildReturnsValue) {
  Engine engine;
  int result = 0;
  engine.spawn([](Engine& e, int& out) -> Task<> {
    auto child = [](Engine& e) -> Task<int> {
      co_await e.delay(1.0);
      co_return 42;
    };
    out = co_await child(e);
  }(engine, result));
  engine.run();
  EXPECT_EQ(result, 42);
}

TEST(EngineTest, NestedChildrenComposeDelays) {
  Engine engine;
  double done = 0;
  engine.spawn([](Engine& e, double& done) -> Task<> {
    auto inner = [](Engine& e) -> Task<int> {
      co_await e.delay(1.0);
      co_return 1;
    };
    auto middle = [inner](Engine& e) -> Task<int> {
      int total = 0;
      for (int i = 0; i < 3; ++i) total += co_await inner(e);
      co_return total;
    };
    const int total = co_await middle(e);
    EXPECT_EQ(total, 3);
    done = e.now();
  }(engine, done));
  engine.run();
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(EngineTest, ExceptionPropagatesToAwaiter) {
  Engine engine;
  bool caught = false;
  engine.spawn([](Engine& e, bool& caught) -> Task<> {
    auto thrower = [](Engine& e) -> Task<int> {
      co_await e.delay(0.5);
      throw std::runtime_error("boom");
    };
    try {
      (void)co_await thrower(e);
    } catch (const std::runtime_error& err) {
      caught = std::string(err.what()) == "boom";
    }
  }(engine, caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(EngineTest, RunUntilStopsEarly) {
  Engine engine;
  int ticks = 0;
  engine.spawn([](Engine& e, int& ticks) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      co_await e.delay(1.0);
      ++ticks;
    }
  }(engine, ticks));
  engine.run_until(10.5);
  EXPECT_EQ(ticks, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 10.5);
  EXPECT_EQ(engine.live_processes(), 1);
  engine.run();
  EXPECT_EQ(ticks, 100);
}

TEST(EngineTest, BlockedProcessReportedLive) {
  Engine engine;
  Event never(engine);
  engine.spawn([](Event& ev) -> Task<> { co_await ev.wait(); }(never));
  engine.run();
  EXPECT_EQ(engine.live_processes(), 1);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine(42);
    std::vector<double> times;
    auto rng = engine.make_rng("jitter");
    for (int i = 0; i < 10; ++i) {
      engine.spawn(
          [](Engine& e, std::vector<double>& times, double dt) -> Task<> {
            co_await e.delay(dt);
            times.push_back(e.now());
          }(engine, times, rng.uniform()));
    }
    engine.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineTest, MakeRngIsStable) {
  Engine a(7), b(7);
  EXPECT_EQ(a.make_rng("x").next(), b.make_rng("x").next());
}

// ----------------------------------------------------------------- event

TEST(EventTest, SetWakesAllWaiters) {
  Engine engine;
  Event ev(engine);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Event& ev, int& woken) -> Task<> {
      co_await ev.wait();
      ++woken;
    }(ev, woken));
  }
  engine.spawn([](Engine& e, Event& ev) -> Task<> {
    co_await e.delay(5.0);
    ev.set();
  }(engine, ev));
  engine.run();
  EXPECT_EQ(woken, 3);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(EventTest, WaitOnSetEventIsImmediate) {
  Engine engine;
  Event ev(engine);
  ev.set();
  double t = -1;
  engine.spawn([](Engine& e, Event& ev, double& t) -> Task<> {
    co_await e.delay(1.0);
    co_await ev.wait();
    t = e.now();
  }(engine, ev, t));
  engine.run();
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(EventTest, ResetRearms) {
  Engine engine;
  Event ev(engine);
  ev.set();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
  int woken = 0;
  engine.spawn([](Event& ev, int& woken) -> Task<> {
    co_await ev.wait();
    ++woken;
  }(ev, woken));
  engine.spawn([](Event& ev) -> Task<> {
    ev.set();
    co_return;
  }(ev));
  engine.run();
  EXPECT_EQ(woken, 1);
}

// -------------------------------------------------------------- resource

TEST(ResourceTest, CapacityLimitsConcurrency) {
  Engine engine;
  Resource cores(engine, 2, "cpu");
  int concurrent = 0, peak = 0;
  for (int i = 0; i < 6; ++i) {
    engine.spawn([](Engine& e, Resource& r, int& concurrent,
                    int& peak) -> Task<> {
      co_await r.acquire();
      ++concurrent;
      peak = std::max(peak, concurrent);
      co_await e.delay(1.0);
      --concurrent;
      r.release();
    }(engine, cores, concurrent, peak));
  }
  engine.run();
  EXPECT_EQ(peak, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);  // 6 jobs, 2 at a time, 1s each
  EXPECT_EQ(cores.available(), 2);
}

TEST(ResourceTest, FifoOrderPreserved) {
  Engine engine;
  Resource r(engine, 1, "disk");
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    engine.spawn([](Engine& e, Resource& r, std::vector<int>& order,
                    int id) -> Task<> {
      co_await e.delay(double(id) * 0.001);  // stagger arrival
      co_await r.acquire();
      order.push_back(id);
      co_await e.delay(1.0);
      r.release();
    }(engine, r, order, i));
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ResourceTest, LargeRequestBlocksLaterSmallOnes) {
  Engine engine;
  Resource r(engine, 4, "mem");
  std::vector<std::string> order;
  engine.spawn([](Engine& e, Resource& r,
                  std::vector<std::string>& order) -> Task<> {
    co_await r.acquire(3);
    order.push_back("A3");
    co_await e.delay(2.0);
    r.release(3);
  }(engine, r, order));
  engine.spawn([](Engine& e, Resource& r,
                  std::vector<std::string>& order) -> Task<> {
    co_await e.delay(0.1);
    co_await r.acquire(3);  // must wait for A to release
    order.push_back("B3");
    r.release(3);
  }(engine, r, order));
  engine.spawn([](Engine& e, Resource& r,
                  std::vector<std::string>& order) -> Task<> {
    co_await e.delay(0.2);
    co_await r.acquire(1);  // would fit, but must not jump the queue
    order.push_back("C1");
    r.release(1);
  }(engine, r, order));
  engine.run();
  EXPECT_EQ(order, (std::vector<std::string>{"A3", "B3", "C1"}));
}

TEST(ResourceTest, HoldReleasesOnScopeExit) {
  Engine engine;
  Resource r(engine, 1, "slot");
  double second_start = -1;
  engine.spawn([](Engine& e, Resource& r) -> Task<> {
    auto guard = co_await hold(r);
    co_await e.delay(3.0);
    // guard released at scope exit
  }(engine, r));
  engine.spawn([](Engine& e, Resource& r, double& start) -> Task<> {
    auto guard = co_await hold(r);
    start = e.now();
  }(engine, r, second_start));
  engine.run();
  EXPECT_DOUBLE_EQ(second_start, 3.0);
  EXPECT_EQ(r.available(), 1);
}

// ------------------------------------------------------------- waitgroup

TEST(WaitGroupTest, WaitsForAll) {
  Engine engine;
  WaitGroup wg(engine);
  double done_at = -1;
  for (int i = 1; i <= 3; ++i) {
    wg.add();
    engine.spawn([](Engine& e, WaitGroup& wg, double dt) -> Task<> {
      co_await e.delay(dt);
      wg.done();
    }(engine, wg, double(i)));
  }
  engine.spawn([](Engine& e, WaitGroup& wg, double& done_at) -> Task<> {
    co_await wg.wait();
    done_at = e.now();
  }(engine, wg, done_at));
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST(WaitGroupTest, EmptyGroupDoesNotBlock) {
  Engine engine;
  WaitGroup wg(engine);
  bool ran = false;
  engine.spawn([](WaitGroup& wg, bool& ran) -> Task<> {
    co_await wg.wait();
    ran = true;
  }(wg, ran));
  engine.run();
  EXPECT_TRUE(ran);
}

// --------------------------------------------------------------- channel

TEST(ChannelTest, FifoDelivery) {
  Engine engine;
  Channel<int> ch(engine, 4);
  std::vector<int> received;
  engine.spawn([](Channel<int>& ch) -> Task<> {
    for (int i = 0; i < 8; ++i) co_await ch.send(i);
    ch.close();
  }(ch));
  engine.spawn([](Channel<int>& ch, std::vector<int>& received) -> Task<> {
    while (auto v = co_await ch.recv()) received.push_back(*v);
  }(ch, received));
  engine.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(engine.live_processes(), 0);
}

TEST(ChannelTest, BoundedCapacityBlocksSender) {
  Engine engine;
  Channel<int> ch(engine, 2);
  int sent = 0;
  engine.spawn([](Channel<int>& ch, int& sent) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await ch.send(i);
      ++sent;
    }
  }(ch, sent));
  engine.spawn([](Engine& e, Channel<int>& ch) -> Task<> {
    co_await e.delay(10.0);
    (void)co_await ch.recv();
  }(engine, ch));
  engine.run();
  // 2 buffered + 1 handed to the receiver after its recv = 3 completed sends.
  EXPECT_EQ(sent, 3);
  EXPECT_EQ(engine.live_processes(), 1);  // sender still parked
}

TEST(ChannelTest, ReceiverBlocksUntilSend) {
  Engine engine;
  Channel<std::string> ch(engine, 1);
  double received_at = -1;
  engine.spawn([](Engine& e, Channel<std::string>& ch,
                  double& received_at) -> Task<> {
    auto v = co_await ch.recv();
    EXPECT_TRUE(v.has_value());
    EXPECT_EQ(*v, "hi");
    received_at = e.now();
  }(engine, ch, received_at));
  engine.spawn([](Engine& e, Channel<std::string>& ch) -> Task<> {
    co_await e.delay(7.0);
    co_await ch.send("hi");
  }(engine, ch));
  engine.run();
  EXPECT_DOUBLE_EQ(received_at, 7.0);
}

TEST(ChannelTest, CloseWakesParkedReceivers) {
  Engine engine;
  Channel<int> ch(engine, 1);
  int nullopts = 0;
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Channel<int>& ch, int& nullopts) -> Task<> {
      auto v = co_await ch.recv();
      if (!v) ++nullopts;
    }(ch, nullopts));
  }
  engine.spawn([](Engine& e, Channel<int>& ch) -> Task<> {
    co_await e.delay(1.0);
    ch.close();
  }(engine, ch));
  engine.run();
  EXPECT_EQ(nullopts, 3);
}

TEST(ChannelTest, CloseDrainsBufferFirst) {
  Engine engine;
  Channel<int> ch(engine, 4);
  std::vector<int> got;
  int nullopts = 0;
  engine.spawn([](Channel<int>& ch) -> Task<> {
    co_await ch.send(1);
    co_await ch.send(2);
    ch.close();
  }(ch));
  engine.spawn([](Engine& e, Channel<int>& ch, std::vector<int>& got,
                  int& nullopts) -> Task<> {
    co_await e.delay(1.0);
    while (true) {
      auto v = co_await ch.recv();
      if (!v) {
        ++nullopts;
        break;
      }
      got.push_back(*v);
    }
  }(engine, ch, got, nullopts));
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_EQ(nullopts, 1);
}

TEST(ChannelTest, MultipleProducersConsumers) {
  Engine engine;
  Channel<int> ch(engine, 3);
  WaitGroup producers(engine);
  std::vector<int> received;
  for (int p = 0; p < 4; ++p) {
    producers.add();
    engine.spawn(
        [](Engine& e, Channel<int>& ch, WaitGroup& wg, int base) -> Task<> {
          for (int i = 0; i < 10; ++i) {
            co_await e.delay(0.01);
            co_await ch.send(base + i);
          }
          wg.done();
        }(engine, ch, producers, p * 100));
  }
  engine.spawn([](Channel<int>& ch, WaitGroup& wg) -> Task<> {
    co_await wg.wait();
    ch.close();
  }(ch, producers));
  for (int c = 0; c < 2; ++c) {
    engine.spawn([](Channel<int>& ch, std::vector<int>& received) -> Task<> {
      while (auto v = co_await ch.recv()) received.push_back(*v);
    }(ch, received));
  }
  engine.run();
  EXPECT_EQ(received.size(), 40u);
  EXPECT_EQ(engine.live_processes(), 0);
}

// Property-style sweep: N producers × M items delivered exactly once for a
// range of channel capacities.
class ChannelSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChannelSweepTest, ExactlyOnceDelivery) {
  const size_t capacity = GetParam();
  Engine engine;
  Channel<int> ch(engine, capacity);
  WaitGroup producers(engine);
  std::vector<int> received;
  constexpr int kProducers = 3, kItems = 25;
  for (int p = 0; p < kProducers; ++p) {
    producers.add();
    engine.spawn(
        [](Channel<int>& ch, WaitGroup& wg, int p) -> Task<> {
          for (int i = 0; i < kItems; ++i) co_await ch.send(p * kItems + i);
          wg.done();
        }(ch, producers, p));
  }
  engine.spawn([](Channel<int>& ch, WaitGroup& wg) -> Task<> {
    co_await wg.wait();
    ch.close();
  }(ch, producers));
  engine.spawn([](Channel<int>& ch, std::vector<int>& received) -> Task<> {
    while (auto v = co_await ch.recv()) received.push_back(*v);
  }(ch, received));
  engine.run();
  ASSERT_EQ(received.size(), size_t(kProducers * kItems));
  std::vector<int> sorted = received;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kProducers * kItems; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_EQ(engine.live_processes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ChannelSweepTest,
                         ::testing::Values(1, 2, 3, 7, 64));

}  // namespace
}  // namespace hmr::sim

namespace hmr::sim {
namespace {

TEST(ResourceTest, TryAcquireNonBlocking) {
  Engine engine;
  Resource r(engine, 2, "slots");
  EXPECT_TRUE(r.try_acquire(2));
  EXPECT_FALSE(r.try_acquire(1));
  r.release(2);
  EXPECT_TRUE(r.try_acquire(1));
  r.release(1);
}

TEST(ResourceTest, TryAcquireYieldsToQueuedWaiters) {
  Engine engine;
  Resource r(engine, 1, "slot");
  bool waiter_got_it = false;
  engine.spawn([](Engine& e, Resource& r) -> Task<> {
    co_await r.acquire();          // takes the only unit
    co_await e.delay(1.0);
    r.release();
    co_return;
  }(engine, r));
  engine.spawn([](Resource& r, bool& got) -> Task<> {
    co_await r.acquire();          // queues behind the holder
    got = true;
    r.release();
  }(r, waiter_got_it));
  engine.spawn([](Engine& e, Resource& r) -> Task<> {
    co_await e.delay(0.5);
    // A queued waiter exists: try_acquire must not jump the line even
    // after the release happens.
    EXPECT_FALSE(r.try_acquire(1));
    co_return;
  }(engine, r));
  engine.run();
  EXPECT_TRUE(waiter_got_it);
}

TEST(ChannelTest, TrySendRespectsCapacityAndClose) {
  Engine engine;
  Channel<int> ch(engine, 2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));  // full
  EXPECT_EQ(ch.try_recv().value(), 1);
  EXPECT_TRUE(ch.try_send(3));
  ch.close();
  EXPECT_FALSE(ch.try_send(4));  // closed
}

TEST(ChannelTest, TrySendHandsOffToParkedReceiver) {
  Engine engine;
  Channel<int> ch(engine, 1);
  int got = -1;
  engine.spawn([](Channel<int>& ch, int& got) -> Task<> {
    auto v = co_await ch.recv();
    got = v.value_or(-2);
  }(ch, got));
  engine.spawn([](Channel<int>& ch) -> Task<> {
    EXPECT_TRUE(ch.try_send(42));
    co_return;
  }(ch));
  engine.run();
  EXPECT_EQ(got, 42);
}

TEST(ChannelTest, TryRecvDrainsBuffer) {
  Engine engine;
  Channel<int> ch(engine, 4);
  EXPECT_FALSE(ch.try_recv().has_value());
  EXPECT_TRUE(ch.try_send(7));
  EXPECT_EQ(ch.try_recv().value(), 7);
  EXPECT_FALSE(ch.try_recv().has_value());
}

}  // namespace
}  // namespace hmr::sim

#include "sim/trace.h"

namespace hmr::sim {
namespace {

TEST(TracerTest, RecordsSpansWithSimTime) {
  Engine engine;
  Tracer tracer(engine);
  engine.set_tracer(&tracer);
  engine.spawn([](Engine& e) -> Task<> {
    auto span = maybe_span(e.tracer(), "host0", "map", "map_0");
    co_await e.delay(2.0);
  }(engine));
  engine.run();
  EXPECT_EQ(tracer.size(), 1u);
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"map_0\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000000.000"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"host0\""), std::string::npos);
}

TEST(TracerTest, NullTracerIsFree) {
  Engine engine;
  engine.spawn([](Engine& e) -> Task<> {
    auto span = maybe_span(e.tracer(), "x", "y", "z");  // tracer() == null
    co_await e.delay(1.0);
  }(engine));
  engine.run();
  EXPECT_EQ(engine.tracer(), nullptr);
}

TEST(TracerTest, JsonEscapesSpecials) {
  Engine engine;
  Tracer tracer(engine);
  tracer.instant("tr\"ack", "cat", "na\\me\nline");
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("tr\\\"ack"), std::string::npos);
  EXPECT_NE(json.find("na\\\\me\\nline"), std::string::npos);
}

// Regression tests for Span teardown ordering. In the usual scope order
// (`Engine e; Tracer t(e);`) the tracer dies before the engine, and the
// engine then destroys detached frames whose Spans still point at the
// dead tracer. The span must detect this (via the engine's tracer
// identity) and drop the record instead of touching freed memory.
TEST(SpanLifetimeTest, SpanInLeakedFrameSurvivesTracerDeath) {
  {
    Engine engine;
    Tracer tracer(engine);
    engine.set_tracer(&tracer);
    engine.spawn([](Engine& e) -> Task<> {
      auto span = maybe_span(e.tracer(), "host", "cat", "stuck");
      co_await e.delay(1e9);  // never resumed; frame dies in ~Engine
    }(engine));
    engine.run_until(1.0);
    EXPECT_EQ(engine.live_processes(), 1);
  }  // ~Tracer detaches, then ~Engine destroys the frame: span is a no-op
  SUCCEED();
}

TEST(SpanLifetimeTest, TracerDetachesFromEngineOnDestruction) {
  Engine engine;
  {
    Tracer tracer(engine);
    engine.set_tracer(&tracer);
    EXPECT_EQ(engine.tracer(), &tracer);
  }
  EXPECT_EQ(engine.tracer(), nullptr);
}

TEST(SpanLifetimeTest, ReplacedTracerDoesNotReceiveStaleSpans) {
  Engine engine;
  Tracer first(engine);
  Tracer second(engine);
  engine.set_tracer(&first);
  {
    auto span = first.span("t", "c", "from_first");
    // The tracer is swapped while the span is open; on close, the span
    // must record to neither (its tracer is no longer installed).
    engine.set_tracer(&second);
  }
  EXPECT_EQ(first.size(), 0u);
  EXPECT_EQ(second.size(), 0u);
  engine.set_tracer(nullptr);
}

TEST(SpanLifetimeTest, SpanStillRecordsInNormalOperation) {
  Engine engine;
  Tracer tracer(engine);
  engine.set_tracer(&tracer);
  engine.spawn([](Engine& e) -> Task<> {
    auto span = maybe_span(e.tracer(), "host", "cat", "work");
    co_await e.delay(2.0);
  }(engine));
  engine.run();
  ASSERT_EQ(tracer.size(), 1u);
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000000.000"), std::string::npos);
}

TEST(TracerTest, InterningKeepsLabelsStable) {
  Engine engine;
  Tracer tracer(engine);
  // Pass labels through short-lived buffers: the tracer must own copies.
  for (int i = 0; i < 3; ++i) {
    const std::string track = "track" + std::to_string(i % 2);
    tracer.instant(track, "cat", "evt");
  }
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"track0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"track1\""), std::string::npos);
  EXPECT_EQ(tracer.size(), 3u);
}

TEST(TracerTest, TracksGetStableThreadIds) {
  Engine engine;
  Tracer tracer(engine);
  tracer.instant("b", "c", "1");
  tracer.instant("a", "c", "2");
  tracer.instant("b", "c", "3");
  const std::string json = tracer.to_chrome_json();
  // Two thread_name metadata records, three instants.
  size_t count = 0, pos = 0;
  while ((pos = json.find("thread_name", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace hmr::sim

namespace hmr::sim {
namespace {

TEST(EngineTest, MaxEventsSurfacesCleanOverrun) {
  Engine engine;
  engine.set_max_events(100);
  engine.spawn([](Engine& e) -> Task<> {
    while (true) co_await e.delay(0.001);  // would run forever
  }(engine));
  engine.run();  // returns instead of aborting
  EXPECT_TRUE(engine.overrun());
  EXPECT_EQ(engine.events_dispatched(), 100u);
  EXPECT_GT(engine.pending_events(), 0u);   // runaway still queued
  EXPECT_EQ(engine.live_processes(), 1);    // the loop never finished
  EXPECT_FALSE(engine.step());              // valve stays shut
}

TEST(EngineTest, RunUntilStopsAtOverrunWithoutTimeJump) {
  Engine engine;
  engine.set_max_events(10);
  engine.spawn([](Engine& e) -> Task<> {
    while (true) co_await e.delay(1.0);
  }(engine));
  engine.run_until(100.0);
  EXPECT_TRUE(engine.overrun());
  // Time must not jump to the deadline past still-queued events.
  EXPECT_LT(engine.now(), 100.0);
}

TEST(EngineTest, NoOverrunWhenUnderLimit) {
  Engine engine;
  engine.set_max_events(1000);
  engine.spawn([](Engine& e) -> Task<> { co_await e.delay(1.0); }(engine));
  engine.run();
  EXPECT_FALSE(engine.overrun());
  EXPECT_EQ(engine.live_processes(), 0);
}

TEST(EngineTest, DetachedExceptionAborts) {
  Engine engine;
  engine.spawn([](Engine& e) -> Task<> {
    co_await e.delay(0.1);
    throw std::runtime_error("unhandled in daemon");
  }(engine));
  EXPECT_DEATH(engine.run(), "detached sim task threw");
}

TEST(EngineTest, NegativeDelayAborts) {
  Engine engine;
  // Tasks are lazy: the bad delay fires when the engine runs the task.
  engine.spawn([](Engine& e) -> Task<> { co_await e.delay(-1.0); }(engine));
  EXPECT_DEATH(engine.run(), "negative delay");
}

TEST(ResourceTest, OverReleaseAborts) {
  Engine engine;
  Resource r(engine, 1, "x");
  EXPECT_DEATH(r.release(), "over-release");
}

TEST(ChannelTest, SendOnClosedAborts) {
  Engine engine;
  Channel<int> ch(engine, 1);
  ch.close();
  engine.spawn([](Channel<int>& ch) -> Task<> { co_await ch.send(1); }(ch));
  EXPECT_DEATH(engine.run(), "closed channel");
}

}  // namespace
}  // namespace hmr::sim
