// Tests for conservative parallel event execution (sim/parallel.h,
// DESIGN.md §6.4): host-partition batching, staging-buffer drain order,
// exception propagation, the WorkerPool itself, and the serial-vs-
// parallel byte-identity contract — a worker-pool width sweep over
// simfuzz scenarios plus the 256-node terasort, asserting that
// workers > 1 reproduces the serial engine's serialized JobResult byte
// for byte. This suite is also the TSan CI tier's main workload: every
// width > 1 runs real threads.

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/conf.h"
#include "mapred/types.h"
#include "sim/engine.h"
#include "sim/parallel.h"
#include "simfuzz/oracle.h"
#include "simfuzz/scenario.h"
#include "workloads/jobs.h"
#include "workloads/testbed.h"

namespace hmr::sim {
namespace {

constexpr std::uint64_t kMiB = 1024 * 1024;
constexpr int kWidths[] = {1, 2, 4, 8};

// --- host-partition batching ------------------------------------------

// Twelve same-timestamp work events on four hosts must form ONE batch of
// four chains at every width, and works sharing a host must execute in
// seq (spawn) order even when other chains run concurrently.
TEST(BatchPartitionTest, SameTimestampWorksGroupIntoHostChains) {
  for (int workers : kWidths) {
    Engine engine(1);
    engine.set_parallel_workers(workers);
    std::vector<std::vector<int>> per_host(4);
    for (int i = 0; i < 12; ++i) {
      engine.spawn([](Engine& e, int host, int i,
                      std::vector<int>* order) -> Task<> {
        co_await e.parallel(host, [order, i](ParallelEffects&) {
          // Chain-confined: only this host's chain touches *order, and a
          // chain runs on exactly one worker.
          order->push_back(i);
        });
      }(engine, i / 3, i, &per_host[std::size_t(i / 3)]));
    }
    engine.run();
    for (int h = 0; h < 4; ++h) {
      EXPECT_EQ(per_host[std::size_t(h)],
                (std::vector<int>{3 * h, 3 * h + 1, 3 * h + 2}))
          << "workers=" << workers << " host=" << h;
    }
    const auto& m = engine.metrics();
    EXPECT_EQ(m.counter_value("engine.parallel.batches"), 1)
        << "workers=" << workers;
    EXPECT_EQ(m.counter_value("engine.parallel.batch_events"), 12);
    EXPECT_EQ(m.counter_value("engine.parallel.chains"), 4);
  }
}

// Work events at different timestamps must land in different batches —
// batching never reaches across simulated time.
TEST(BatchPartitionTest, DistinctTimestampsFormDistinctBatches) {
  Engine engine(1);
  engine.set_parallel_workers(4);
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Engine& e, int i) -> Task<> {
      co_await e.delay(0.001 * i);
      co_await e.parallel(i, [](ParallelEffects&) {});
    }(engine, i));
  }
  engine.run();
  EXPECT_EQ(engine.metrics().counter_value("engine.parallel.batches"), 3);
  EXPECT_EQ(engine.metrics().counter_value("engine.parallel.chains"), 3);
}

// --- staging-buffer drain order ---------------------------------------

// Deferred callbacks and counter deltas staged by concurrent chains must
// drain in (timestamp, seq) order on the engine thread, regardless of
// which worker finished first.
TEST(StagingDrainTest, EffectsDrainInSeqOrderAcrossChains) {
  for (int workers : kWidths) {
    Engine engine(1);
    engine.set_parallel_workers(workers);
    Counter& staged = engine.metrics().counter("test.staged");
    std::vector<int> order;  // engine-thread only: appended during drains
    for (int i = 0; i < 8; ++i) {
      engine.spawn([](Engine& e, int i, Counter* staged,
                      std::vector<int>* order) -> Task<> {
        co_await e.parallel(i % 4, [=](ParallelEffects& fx) {
          fx.add(*staged, i + 1);
          fx.defer([order, i] { order->push_back(i); });
        });
      }(engine, i, &staged, &order));
    }
    engine.run();
    std::vector<int> want(8);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(order, want) << "workers=" << workers;
    EXPECT_EQ(staged.value(), 36) << "workers=" << workers;
  }
}

// A deferred callback runs before its own continuation resumes.
TEST(StagingDrainTest, DeferRunsBeforeContinuation) {
  for (int workers : {1, 4}) {
    Engine engine(1);
    engine.set_parallel_workers(workers);
    bool deferred_ran = false;
    bool resumed_after_defer = false;
    engine.spawn([](Engine& e, bool* deferred_ran,
                    bool* resumed_after_defer) -> Task<> {
      co_await e.parallel(0, [deferred_ran](ParallelEffects& fx) {
        fx.defer([deferred_ran] { *deferred_ran = true; });
      });
      *resumed_after_defer = *deferred_ran;
    }(engine, &deferred_ran, &resumed_after_defer));
    engine.run();
    EXPECT_TRUE(deferred_ran) << "workers=" << workers;
    EXPECT_TRUE(resumed_after_defer) << "workers=" << workers;
  }
}

// --- error propagation ------------------------------------------------

// A throwing fn fails only the awaiting task, on the engine thread, even
// when the batch genuinely ran on the pool alongside a healthy chain.
TEST(ParallelEngineTest, ExceptionResurfacesInAwaitingTask) {
  for (int workers : {1, 2}) {
    Engine engine(1);
    engine.set_parallel_workers(workers);
    bool caught = false;
    bool healthy_ran = false;
    engine.spawn([](Engine& e, bool* caught) -> Task<> {
      try {
        co_await e.parallel(0, [](ParallelEffects&) {
          throw std::runtime_error("boom");
        });
      } catch (const std::runtime_error&) {
        *caught = true;
      }
    }(engine, &caught));
    engine.spawn([](Engine& e, bool* healthy_ran) -> Task<> {
      co_await e.parallel(1, [](ParallelEffects&) {});
      *healthy_ran = true;
    }(engine, &healthy_ran));
    engine.run();
    EXPECT_TRUE(caught) << "workers=" << workers;
    EXPECT_TRUE(healthy_ran) << "workers=" << workers;
    EXPECT_EQ(engine.live_processes(), 0) << "workers=" << workers;
  }
}

// --- WorkerPool -------------------------------------------------------

// The pool runs every chain exactly once, preserves in-chain order, and
// survives reuse across batches (generations).
TEST(WorkerPoolTest, RunsEveryChainInOrderAndReuses) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  for (int batch = 0; batch < 3; ++batch) {
    constexpr int kChains = 5;
    std::vector<std::vector<ParallelWork>> works(kChains);
    std::vector<std::vector<int>> executed(kChains);
    std::vector<std::vector<ParallelWork*>> chains(kChains);
    for (int c = 0; c < kChains; ++c) {
      const int len = c + 1;  // uneven chains exercise work stealing
      works[std::size_t(c)].resize(std::size_t(len));
      for (int i = 0; i < len; ++i) {
        ParallelWork& w = works[std::size_t(c)][std::size_t(i)];
        std::vector<int>* log = &executed[std::size_t(c)];
        w.fn = [log, i](ParallelEffects&) { log->push_back(i); };
        chains[std::size_t(c)].push_back(&w);
      }
    }
    pool.run(chains);
    for (int c = 0; c < kChains; ++c) {
      std::vector<int> want(std::size_t(c + 1));
      std::iota(want.begin(), want.end(), 0);
      EXPECT_EQ(executed[std::size_t(c)], want)
          << "batch=" << batch << " chain=" << c;
    }
  }
}

// More chains than workers: all still complete (excess chains queue).
TEST(WorkerPoolTest, MoreChainsThanWorkers) {
  WorkerPool pool(2);
  constexpr int kChains = 16;
  std::vector<ParallelWork> works(kChains);
  std::vector<int> done(kChains, 0);
  std::vector<std::vector<ParallelWork*>> chains(kChains);
  for (int c = 0; c < kChains; ++c) {
    int* slot = &done[std::size_t(c)];
    works[std::size_t(c)].fn = [slot](ParallelEffects&) { *slot = 1; };
    chains[std::size_t(c)].push_back(&works[std::size_t(c)]);
  }
  pool.run(chains);
  EXPECT_EQ(std::accumulate(done.begin(), done.end(), 0), kChains);
}

// --- serial-vs-parallel identity at the engine level ------------------

// A mixed workload (delays, staged counters, deferred callbacks, plain
// metrics between awaits) must leave identical time, event counts, and
// metric snapshots at every width.
TEST(ParallelEngineTest, MixedWorkloadIdenticalAcrossWidths) {
  const auto run_once = [](int workers) {
    Engine engine(7);
    engine.set_parallel_workers(workers);
    Counter& compute = engine.metrics().counter("test.compute");
    for (int i = 0; i < 8; ++i) {
      engine.spawn([](Engine& e, int i, Counter* compute) -> Task<> {
        for (int round = 0; round < 5; ++round) {
          co_await e.parallel(i % 3, [=](ParallelEffects& fx) {
            fx.add(*compute, i + round);
          });
          e.metrics().counter("test.rounds").add(1);
          co_await e.delay(0.001 * double((i * 7 + round) % 5 + 1));
        }
      }(engine, i, &compute));
    }
    const Time end = engine.run();
    return std::tuple(end, engine.events_dispatched(),
                      engine.metrics().snapshot().to_json());
  };
  const auto ref = run_once(1);
  for (int workers : {2, 4, 8}) {
    EXPECT_EQ(run_once(workers), ref) << "workers=" << workers;
  }
}

// The max-events safety valve counts batched work events one by one, so
// it trips at the same point — same dispatch count, same simulated time
// — at every width.
TEST(ParallelEngineTest, MaxEventsValveTripsIdenticallyAcrossWidths) {
  const auto run_once = [](int workers) {
    Engine engine(1);
    engine.set_parallel_workers(workers);
    engine.set_max_events(64);
    for (int i = 0; i < 8; ++i) {
      engine.spawn([](Engine& e, int i) -> Task<> {
        for (int round = 0; round < 100; ++round) {
          co_await e.parallel(i, [](ParallelEffects&) {});
          co_await e.delay(0.001);
        }
      }(engine, i));
    }
    engine.run();
    return std::tuple(engine.overrun(), engine.events_dispatched(),
                      engine.now());
  };
  const auto ref = run_once(1);
  EXPECT_TRUE(std::get<0>(ref));
  for (int workers : {2, 4}) {
    EXPECT_EQ(run_once(workers), ref) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace hmr::sim

namespace hmr::simfuzz {
namespace {

constexpr std::uint64_t kMiB = 1024 * 1024;

// Bound a generated scenario's data volume so the 16-seed × 4-width
// sweep stays inside the CI budget; shape, knobs, and fault plan are
// untouched (smaller data is strictly easier to complete).
Scenario capped(std::uint64_t seed) {
  Scenario s = Scenario::generate(seed);
  if (s.modeled_bytes > 96 * kMiB) s.modeled_bytes = 96 * kMiB;
  if (s.target_real_bytes > 512 * 1024) s.target_real_bytes = 512 * 1024;
  return s;
}

// ISSUE 8 success metric, fuzz half: sixteen generated scenarios —
// faults, concurrent knobs, every workload — replayed at workers
// {2, 4, 8} must serialize byte-identically to the workers=1 run.
TEST(ParallelStressTest, SimfuzzSeedsByteIdenticalAcrossWidths) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const Scenario s = capped(seed);
    const EngineRun serial =
        run_engine(s, "osu-ib", sim::EventQueue::Impl::kFourAry,
                   /*parallel_workers=*/1);
    ASSERT_FALSE(serial.result_json.empty()) << s.summary();
    for (int workers : {2, 4, 8}) {
      const EngineRun parallel =
          run_engine(s, "osu-ib", sim::EventQueue::Impl::kFourAry, workers);
      EXPECT_EQ(parallel.result_json, serial.result_json)
          << s.summary() << " workers=" << workers;
    }
  }
}

// ISSUE 8 success metric, scale half: the 256-node terasort (the ISSUE 7
// benchmark scenario) is byte-identical between the serial engine and
// real worker pools of 2, 4, and 8 threads.
TEST(ParallelStressTest, Terasort256NodesByteIdenticalAcrossWidths) {
  constexpr double kScale = 8192.0;  // ~512 KiB real bytes carried
  const auto run_with = [&](int workers) {
    workloads::TestbedSpec spec;
    spec.nodes = 256;
    spec.hdfs.block_size = 32 * kMiB;
    spec.parallel_workers = workers;
    workloads::Testbed bed(spec);

    workloads::DataGenSpec gen;
    gen.dir = "/in";
    gen.modeled_total = 4096 * kMiB;  // 128 map tasks at 32 MiB blocks
    gen.part_modeled = 32 * kMiB;
    gen.scale = kScale;
    gen.seed = 9;
    EXPECT_TRUE(bed.generate("teragen", gen).ok());

    Conf conf;
    conf.set(mapred::kShuffleEngine, "osu-ib");
    conf.set_int(mapred::kNumReduces, 256);  // one reducer per node
    conf.set_double(mapred::kKvInflation, kScale);
    conf.set_bytes(mapred::kMaxRecordBytes, std::uint64_t(102.0 * kScale));
    const auto result =
        bed.run_job(workloads::terasort_job(bed.dfs(), "/in", "/out", conf));
    EXPECT_EQ(result.num_maps, 128);
    EXPECT_EQ(result.num_reduces, 256);
    if (workers == 1) {
      const auto report = workloads::validate_output(bed.dfs(), "/out");
      EXPECT_TRUE(report.ok());
      if (report.ok()) {
        EXPECT_TRUE(report->per_part_sorted);
        EXPECT_TRUE(report->globally_sorted);
      }
    }
    return job_result_json(result);
  };
  const std::string serial = run_with(1);
  ASSERT_FALSE(serial.empty());
  for (int workers : {2, 4, 8}) {
    EXPECT_EQ(run_with(workers), serial) << "workers=" << workers;
  }
}

// The vanilla engine's parallelized kernels — the servlet/copier
// checksum scans and the in-memory + merge-pass k-way merge drains —
// serialize byte-identically across worker widths on the 256-node
// terasort. A small shuffle buffer and io.sort.factor force both merge
// kernels to run; integrity checks exercise the CRC scans end to end.
TEST(ParallelStressTest, Terasort256VanillaKernelsByteIdenticalAcrossWidths) {
  constexpr double kScale = 8192.0;
  const auto run_with = [&](int workers) {
    workloads::TestbedSpec spec;
    spec.nodes = 256;
    spec.hdfs.block_size = 32 * kMiB;
    spec.parallel_workers = workers;
    workloads::Testbed bed(spec);

    workloads::DataGenSpec gen;
    gen.dir = "/in";
    gen.modeled_total = 2048 * kMiB;  // 64 map tasks at 32 MiB blocks
    gen.part_modeled = 32 * kMiB;
    gen.scale = kScale;
    gen.seed = 11;
    EXPECT_TRUE(bed.generate("teragen", gen).ok());

    Conf conf;
    conf.set(mapred::kShuffleEngine, "vanilla");
    conf.set_int(mapred::kNumReduces, 64);
    conf.set_double(mapred::kKvInflation, kScale);
    conf.set_bytes(mapred::kMaxRecordBytes, std::uint64_t(102.0 * kScale));
    conf.set_bool(mapred::kIntegrityEnabled, true);
    conf.set_bytes(mapred::kShuffleBufferBytes, 4 * kMiB);
    conf.set_int(mapred::kIoSortFactor, 3);
    const auto result =
        bed.run_job(workloads::terasort_job(bed.dfs(), "/in", "/out", conf));
    EXPECT_EQ(result.num_maps, 64);
    EXPECT_EQ(result.num_reduces, 64);
    return job_result_json(result);
  };
  const std::string serial = run_with(1);
  ASSERT_FALSE(serial.empty());
  for (int workers : {2, 4, 8}) {
    EXPECT_EQ(run_with(workers), serial) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace hmr::simfuzz
